//! Offline vendored minimal benchmark harness with a criterion-shaped API.
//!
//! Provides `Criterion`, benchmark groups, `Bencher::iter`, `Throughput`,
//! `BenchmarkId`, and the `criterion_group!` / `criterion_main!` macros —
//! enough to compile and run the workspace's `benches/` with wall-clock
//! mean timings printed to stdout. No statistics, plots, or baselines.

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Work-per-iteration declaration, used to derive a rate column.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A parameterized benchmark name.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Id rendered from a parameter value, e.g. `18x3`.
    pub fn from_parameter<P: Display>(param: P) -> Self {
        BenchmarkId {
            name: param.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Measurement driver handed to each benchmark closure.
pub struct Bencher {
    mean_ns: f64,
}

impl Bencher {
    /// Times `f`: one warmup call, then enough iterations to fill a small
    /// fixed budget, recording the mean wall-clock time per iteration.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f());
        // Calibrate: how many iterations fit in the budget?
        let probe = Instant::now();
        black_box(f());
        let once = probe.elapsed().max(Duration::from_nanos(1));
        let budget = Duration::from_millis(300);
        let iters = (budget.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / f64::from(iters);
    }
}

/// A named set of related benchmarks sharing a throughput declaration.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Declares the per-iteration work for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs one benchmark.
    pub fn bench_function<N: Display, F: FnMut(&mut Bencher)>(&mut self, id: N, mut f: F) {
        let mut b = Bencher { mean_ns: 0.0 };
        f(&mut b);
        self.report(&id.to_string(), b.mean_ns);
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut b = Bencher { mean_ns: 0.0 };
        f(&mut b, input);
        self.report(&id.to_string(), b.mean_ns);
    }

    /// Ends the group (printing happens per-benchmark; this is a no-op
    /// kept for API compatibility).
    pub fn finish(self) {}

    fn report(&self, id: &str, mean_ns: f64) {
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) if mean_ns > 0.0 => {
                let mib_s = n as f64 / (1024.0 * 1024.0) / (mean_ns * 1e-9);
                format!("  {mib_s:>10.1} MiB/s")
            }
            Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
                let elem_s = n as f64 / (mean_ns * 1e-9);
                format!("  {elem_s:>10.0} elem/s")
            }
            _ => String::new(),
        };
        println!("{}/{:<24} {:>12.0} ns/iter{}", self.name, id, mean_ns, rate);
    }
}

/// Top-level benchmark context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group<N: Display>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<N: Display, F: FnMut(&mut Bencher)>(&mut self, id: N, mut f: F) {
        let mut b = Bencher { mean_ns: 0.0 };
        f(&mut b);
        println!("{:<24} {:>12.0} ns/iter", id.to_string(), b.mean_ns);
    }
}

/// Bundles benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_positive_mean() {
        let mut b = Bencher { mean_ns: 0.0 };
        b.iter(|| std::hint::black_box(1 + 1));
        assert!(b.mean_ns > 0.0);
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.throughput(Throughput::Bytes(1024));
        let mut ran = false;
        group.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 0u64);
        });
        group.finish();
        assert!(ran);
    }
}

//! Offline vendored subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *small* slice of the `rand` API it actually uses:
//! [`RngCore`], [`SeedableRng`], and the [`RngExt`] extension trait with
//! `random`, `random_range`, and `random_bool`. The uniform-range
//! implementation uses Lemire-style rejection-free modulo reduction; the
//! tiny bias (< 2^-32 for the ranges used here) is irrelevant for
//! deterministic stimulus generation, which only needs stability.

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a fixed-size byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64 —
    /// distinct `u64` seeds yield uncorrelated raw seeds.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let w = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be drawn uniformly from an RNG via [`RngExt::random`].
pub trait Random {
    /// Draws one uniform value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Random for $t {
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_random_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                 u64 => next_u64, usize => next_u64,
                 i8 => next_u32, i16 => next_u32, i32 => next_u32, i64 => next_u64);

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 uniform mantissa bits in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types with a uniform between-two-bounds sampler. The blanket
/// [`SampleRange`] impls are generic over this trait so that type
/// inference can flow from an untyped range literal to the value type
/// (e.g. `slice[rng.random_range(0..n)]` infers `usize`), matching how
/// the real `rand` crate structures these traits.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw in `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_sample_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self, hi: Self, inclusive: bool, rng: &mut R,
            ) -> Self {
                let span = (hi as u64).wrapping_sub(lo as u64);
                if inclusive {
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
                } else {
                    lo.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
        }
    )*};
}

impl_sample_uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self, hi: Self, inclusive: bool, rng: &mut R,
            ) -> Self {
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                let off = if inclusive {
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    rng.next_u64() % (span + 1)
                } else {
                    rng.next_u64() % span
                };
                (lo as i64).wrapping_add(off as i64) as $t
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8, i16, i32, i64);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(lo: Self, hi: Self, _: bool, rng: &mut R) -> Self {
        lo + f64::random(rng) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_between<R: RngCore + ?Sized>(lo: Self, hi: Self, _: bool, rng: &mut R) -> Self {
        lo + f32::random(rng) * (hi - lo)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value in the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_between(lo, hi, true, rng)
    }
}

/// Convenience drawing methods, mirroring `rand::Rng`.
pub trait RngExt: RngCore {
    /// Draws a uniform value of type `T`.
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    /// Draws a uniform value from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::random(self) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.0 = self.0.wrapping_add(0x9E37_79B9);
            (self.0 >> 16) as u32
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Counter(7);
        for _ in 0..1000 {
            let v: u8 = r.random_range(10..20);
            assert!((10..20).contains(&v));
            let w: i32 = r.random_range(-5..5);
            assert!((-5..5).contains(&w));
            let x: u8 = r.random_range(0..=255);
            let _ = x;
            let f: f32 = r.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = Counter(1);
        let _: u32 = r.random_range(5..5);
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = Counter(3);
        let mut buf = [0u8; 11];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}

//! Offline vendored ChaCha8 random number generator.
//!
//! A faithful implementation of the ChaCha stream cipher keyed as an RNG
//! (8 rounds), exposing the [`rand::RngCore`] / [`rand::SeedableRng`]
//! interface of the vendored `rand` crate. Output is a pure function of
//! the 32-byte seed, which is all the workspace's deterministic stimulus
//! generators require.

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// ChaCha with 8 rounds, used as a deterministic RNG.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Input block: constants, 8 key words, 64-bit counter, 2 nonce words.
    input: [u32; 16],
    buf: [u32; 16],
    /// Next unread word of `buf`; 16 means exhausted.
    idx: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut x = self.input;
        for _ in 0..4 {
            // Column round.
            quarter(&mut x, 0, 4, 8, 12);
            quarter(&mut x, 1, 5, 9, 13);
            quarter(&mut x, 2, 6, 10, 14);
            quarter(&mut x, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut x, 0, 5, 10, 15);
            quarter(&mut x, 1, 6, 11, 12);
            quarter(&mut x, 2, 7, 8, 13);
            quarter(&mut x, 3, 4, 9, 14);
        }
        for (o, i) in x.iter_mut().zip(self.input.iter()) {
            *o = o.wrapping_add(*i);
        }
        self.buf = x;
        self.idx = 0;
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.input[12].overflowing_add(1);
        self.input[12] = lo;
        if carry {
            self.input[13] = self.input[13].wrapping_add(1);
        }
    }
}

#[inline]
fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut input = [0u32; 16];
        input[..4].copy_from_slice(&CONSTANTS);
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            input[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            input,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let va: Vec<u32> = (0..64).map(|_| a.next_u32()).collect();
        let vb: Vec<u32> = (0..64).map(|_| b.next_u32()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn block_counter_advances() {
        // More than one 64-word block must not repeat.
        let mut r = ChaCha8Rng::seed_from_u64(9);
        let first: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn ext_methods_work() {
        let mut r = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..100 {
            let v: usize = r.random_range(0..10);
            assert!(v < 10);
        }
    }
}

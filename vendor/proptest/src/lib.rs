//! Offline vendored subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so this crate
//! reimplements the slice of proptest the workspace's property tests use:
//! the [`Strategy`] trait with `prop_map` / `prop_filter` /
//! `prop_recursive`, the `collection::vec` / `option::of` /
//! `sample::select` combinators, integer-range and regex-literal
//! strategies, and the `proptest!` / `prop_assert!` / `prop_assert_eq!` /
//! `prop_oneof!` macros.
//!
//! Differences from real proptest, deliberate for an offline stub:
//! generation is seeded deterministically per (test name, case index), so
//! every run explores the same cases; there is **no shrinking** — a
//! failing case prints its generated values verbatim; and the regex
//! strategy supports only the literal/class/`{m,n}` subset the tests use.

use std::sync::Arc;

use rand::RngCore;

/// Deterministic per-case RNG (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one test case, keyed by test identity and case index.
    pub fn for_case(test_id: &str, case: u64) -> Self {
        // FNV-1a over the test id, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_id.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A failed property inside a `proptest!` body.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test values.
///
/// Generation-only: `new_value` draws one value; there is no shrink tree.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred` (bounded retry).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Builds recursive values: `f` receives a strategy for the previous
    /// depth level and returns the strategy for one level up. `_size` and
    /// `_items` are accepted for API compatibility and ignored — depth
    /// alone bounds the stub's recursion.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _size: u32,
        _items: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let base = self.boxed();
        let mut cur = base.clone();
        for _ in 0..depth {
            // Mix the base back in at every level so expected size stays
            // bounded even though there is no explicit size budget.
            cur = Union::new(vec![base.clone(), f(cur).boxed()]).boxed();
        }
        cur
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.new_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 candidates in a row: {}",
            self.reason
        );
    }
}

/// Uniform choice between strategies of the same value type
/// (the engine behind `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options`; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[idx].new_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                use rand::RngExt;
                rng.random_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                use rand::RngExt;
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

/// Regex-literal strategies: `"[a-z]{1,10}"`-style patterns generate
/// matching `String`s. Supports literal characters, `[..]` classes with
/// ranges, and `{m}` / `{m,n}` counts — the subset the tests use.
impl Strategy for &'static str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        use rand::RngExt;
        let mut out = String::new();
        let chars: Vec<char> = self.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            // One atom: a class or a literal character.
            let pool: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .expect("unterminated class in regex strategy")
                    + i;
                let mut pool = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        for c in chars[j]..=chars[j + 2] {
                            pool.push(c);
                        }
                        j += 3;
                    } else {
                        pool.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                pool
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            // Optional {m} / {m,n} repetition.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated count in regex strategy")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<usize>().expect("count"),
                        n.trim().parse::<usize>().expect("count"),
                    ),
                    None => {
                        let m = body.trim().parse::<usize>().expect("count");
                        (m, m)
                    }
                }
            } else {
                (1, 1)
            };
            let count = rng.random_range(lo..=hi);
            for _ in 0..count {
                let pick = (rng.next_u64() % pool.len() as u64) as usize;
                out.push(pool[pick]);
            }
        }
        out
    }
}

pub mod bool {
    //! `prop::bool::ANY`.
    use super::{Strategy, TestRng};
    use rand::RngCore;

    /// Strategy type for uniform booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Uniform `bool`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod num {
    //! `prop::num::u8::ANY` and friends.

    macro_rules! num_mod {
        ($($m:ident : $t:ty => $via:ident),*) => {$(
            pub mod $m {
                use crate::{Strategy, TestRng};
                use rand::RngCore;

                /// Strategy type for uniform values of the full domain.
                #[derive(Clone, Copy, Debug)]
                pub struct Any;

                /// The full-domain uniform strategy.
                pub const ANY: Any = Any;

                impl Strategy for Any {
                    type Value = $t;

                    fn new_value(&self, rng: &mut TestRng) -> $t {
                        rng.$via() as $t
                    }
                }
            }
        )*};
    }

    num_mod!(u8: u8 => next_u32, u16: u16 => next_u32, u32: u32 => next_u32,
             u64: u64 => next_u64, usize: usize => next_u64,
             i8: i8 => next_u32, i16: i16 => next_u32, i32: i32 => next_u32,
             i64: i64 => next_u64);
}

pub mod collection {
    //! `proptest::collection::vec`.
    use super::{Strategy, TestRng};
    use rand::RngExt;

    /// Sizes accepted by [`vec`]: an exact count or a half-open range.
    pub trait IntoSizeRange {
        /// Lower (inclusive) and upper (exclusive) length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// Strategy for `Vec`s of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        assert!(lo < hi, "empty vec size range");
        VecStrategy { element, lo, hi }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.lo..self.hi);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod option {
    //! `proptest::option::of`.
    use super::{Strategy, TestRng};
    use rand::RngCore;

    /// Strategy for `Option<T>`: `None` one time in four.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.new_value(rng))
            }
        }
    }
}

pub mod sample {
    //! `proptest::sample::select`.
    use super::{Strategy, TestRng};
    use rand::RngCore;

    /// Strategy drawing uniformly from `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select over an empty set");
        Select { options }
    }

    /// See [`select`].
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            let idx = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[idx].clone()
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Defines property tests. Each case draws fresh values from the listed
/// strategies; a failure panics with the generated values (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@all ($cfg) $($rest)*);
    };
    (@all ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let test_id = concat!(module_path!(), "::", stringify!($name));
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::for_case(test_id, case as u64);
                let mut case_desc = String::new();
                let result: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $(
                        let value = $crate::Strategy::new_value(&($strat), &mut rng);
                        case_desc.push_str(&format!(
                            "{} = {:?}, ", stringify!($pat), value));
                        let $pat = value;
                    )+
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = result {
                    panic!(
                        "proptest {} failed at case {}/{}: {}\n  with {}",
                        test_id, case, config.cases, e, case_desc
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@all ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {
        match (&$lhs, &$rhs) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                        stringify!($lhs), stringify!($rhs), l, r
                    )));
                }
            }
        }
    };
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {
        match (&$lhs, &$rhs) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                        stringify!($lhs), stringify!($rhs), format!($($fmt)+), l, r
                    )));
                }
            }
        }
    };
}

/// Uniform choice among strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_respect_bounds() {
        let mut rng = crate::TestRng::for_case("t", 0);
        for _ in 0..200 {
            let v = crate::Strategy::new_value(&(3u8..9), &mut rng);
            assert!((3..9).contains(&v));
            let xs = crate::Strategy::new_value(&prop::collection::vec(0u32..5, 2..6), &mut rng);
            assert!((2..6).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn regex_literal_strategy() {
        let mut rng = crate::TestRng::for_case("re", 1);
        for _ in 0..100 {
            let s = crate::Strategy::new_value(&"[a-c]{2,4}x", &mut rng);
            let (body, tail) = s.split_at(s.len() - 1);
            assert_eq!(tail, "x");
            assert!((2..=4).contains(&body.len()));
            assert!(body.bytes().all(|b| (b'a'..=b'c').contains(&b)));
        }
    }

    #[test]
    fn deterministic_per_case() {
        let s = prop::collection::vec(0u64..1000, 0..20);
        let mut r1 = crate::TestRng::for_case("d", 7);
        let mut r2 = crate::TestRng::for_case("d", 7);
        assert_eq!(
            crate::Strategy::new_value(&s, &mut r1),
            crate::Strategy::new_value(&s, &mut r2)
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_roundtrip(x in 0u32..10, ys in prop::collection::vec(0u8..4, 0..5)) {
            prop_assert!(x < 10);
            prop_assert_eq!(ys.len(), ys.len());
        }
    }

    #[test]
    fn oneof_and_recursive_terminate() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        let leaf = (0u8..4).prop_map(Tree::Leaf);
        let tree = leaf.prop_recursive(3, 24, 4, |inner| {
            prop_oneof![
                prop::collection::vec(inner.clone(), 1..3).prop_map(Tree::Node),
                inner.prop_map(|t| Tree::Node(vec![t])),
            ]
        });
        let mut rng = crate::TestRng::for_case("tree", 3);
        for _ in 0..50 {
            // Must not hang or overflow the stack.
            let _ = crate::Strategy::new_value(&tree, &mut rng);
        }
    }
}

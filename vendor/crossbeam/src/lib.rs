//! Offline vendored shim for the `crossbeam` scoped-thread API.
//!
//! Wraps `std::thread::scope` (stable since Rust 1.63) behind the
//! `crossbeam::thread::scope` interface the workspace uses: the scope
//! closure and each spawned closure receive a [`thread::Scope`] handle,
//! and the top-level call returns `Err` instead of unwinding when a
//! worker panics.

pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Result of a scoped run: `Err` carries a worker's panic payload.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// Handle for spawning threads tied to the enclosing scope.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Join handle for a thread spawned in a scope.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (`Err` on panic).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope handle
        /// so workers can spawn further workers.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Runs `f` with a scope handle; all spawned threads are joined before
    /// this returns. A panicking worker surfaces as `Err` rather than an
    /// unwind, matching crossbeam's contract.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let data = [1u64, 2, 3, 4];
        let mut sums = vec![0u64; 2];
        thread::scope(|scope| {
            for (i, slot) in sums.iter_mut().enumerate() {
                let half = &data[i * 2..i * 2 + 2];
                scope.spawn(move |_| {
                    *slot = half.iter().sum();
                });
            }
        })
        .expect("workers do not panic");
        assert_eq!(sums, vec![3, 7]);
    }

    #[test]
    fn join_returns_value() {
        let got = thread::scope(|scope| {
            let h = scope.spawn(|_| 21 * 2);
            h.join().expect("no panic")
        })
        .expect("no panic");
        assert_eq!(got, 42);
    }

    #[test]
    fn worker_panic_becomes_err() {
        let res = thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(res.is_err());
    }

    #[test]
    fn nested_spawn_through_handle() {
        let out = thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 7).join().expect("inner ok"))
                .join()
                .expect("outer ok")
        })
        .expect("scope ok");
        assert_eq!(out, 7);
    }
}

//! The Entity Resolution benchmark.
//!
//! Entity resolution finds duplicate database entries despite format
//! variation and typos (Bo et al.). AutomataZoo rebuilt this benchmark
//! with a name generator producing 10,000+ unique names rendered in
//! several formats and an error-injecting streaming database. Each name
//! compiles to one automaton recognizing its format variants
//! case-insensitively.

use azoo_regex::{compile_ruleset, Ruleset};
use azoo_workloads::names::{streaming_database, unique_names, Name, StreamConfig};

/// Parameters for the Entity Resolution benchmark.
#[derive(Debug, Clone, Copy)]
pub struct EntityParams {
    /// Number of unique names to resolve (AutomataZoo: 10,000).
    pub names: usize,
    /// Records in the streaming database input.
    pub records: usize,
    /// Generation seed.
    pub seed: u64,
}

impl Default for EntityParams {
    fn default() -> Self {
        EntityParams {
            names: 10_000,
            records: 100_000,
            seed: 0xE277,
        }
    }
}

/// The matcher pattern for one name: an alternation of its rendering
/// formats with flexible separators, case-insensitive.
pub fn name_pattern(name: &Name) -> String {
    let first = &name.first;
    let last = &name.last;
    let initial = &first[0..1];
    format!(r"/({first} +{last}|{last}, *{first}|{initial}\. {last})/i")
}

/// Compiles the matcher set for `names`.
pub fn compile_names(names: &[Name]) -> Ruleset {
    let patterns: Vec<String> = names.iter().map(name_pattern).collect();
    compile_ruleset(patterns.iter().map(String::as_str))
}

/// Builds the benchmark: matchers for `names` unique names plus the
/// streaming database with duplicates, format variation, and injected
/// errors.
pub fn build(params: &EntityParams) -> (azoo_core::Automaton, Vec<u8>) {
    let names = unique_names(params.seed, params.names);
    let ruleset = compile_names(&names);
    let input = streaming_database(
        params.seed ^ 0xD00D,
        &names,
        &StreamConfig {
            records: params.records,
            duplicate_rate: 0.3,
            error_rate: 0.3,
        },
    );
    (ruleset.automaton, input)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use azoo_engines::{CollectSink, Engine, NfaEngine};
    use azoo_workloads::names::NameFormat;

    #[test]
    fn pattern_matches_all_formats_case_insensitively() {
        let name = Name {
            first: "maria".into(),
            last: "kovson".into(),
        };
        let a = azoo_regex::compile(&name_pattern(&name), 0).unwrap();
        let mut engine = NfaEngine::new(&a).unwrap();
        for fmt in [
            NameFormat::FirstLast,
            NameFormat::LastCommaFirst,
            NameFormat::InitialLast,
        ] {
            let mut text = name.render(fmt).to_uppercase().into_bytes();
            text.push(b'\n');
            let mut sink = CollectSink::new();
            engine.scan(&text, &mut sink);
            assert!(!sink.reports().is_empty(), "format {fmt:?} missed");
        }
    }

    #[test]
    fn pattern_rejects_other_names() {
        let a = azoo_regex::compile(
            &name_pattern(&Name {
                first: "maria".into(),
                last: "kovson".into(),
            }),
            0,
        )
        .unwrap();
        let mut engine = NfaEngine::new(&a).unwrap();
        let mut sink = CollectSink::new();
        engine.scan(b"johan bergman\nkovson, pietro\n", &mut sink);
        assert!(sink.reports().is_empty());
    }

    #[test]
    fn benchmark_resolves_duplicates_in_stream() {
        let (a, input) = build(&EntityParams {
            names: 150,
            records: 3000,
            seed: 4,
        });
        a.validate().unwrap();
        let stats = azoo_core::AutomatonStats::compute(&a);
        // The Glushkov construction gives one component per format
        // alternative (three per name).
        assert_eq!(stats.subgraphs, 450);
        // Per-name automata are a few dozen states across their three
        // format components (paper: 41.3 avg per name).
        let per_name = stats.states as f64 / 150.0;
        assert!(per_name > 15.0 && per_name < 80.0, "{per_name} states/name");
        let mut engine = NfaEngine::new(&a).unwrap();
        let mut sink = CollectSink::new();
        engine.scan(&input, &mut sink);
        let distinct: std::collections::HashSet<u32> =
            sink.reports().iter().map(|r| r.code.0).collect();
        // With a 30% duplicate rate over 3000 records, a large share of
        // the 150 names must be resolved at least once.
        assert!(
            distinct.len() > 75,
            "only {} names resolved",
            distinct.len()
        );
    }
}

/// A resolved duplicate: which database record matched which known name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Resolution {
    /// Zero-based record (line) number in the streaming database.
    pub record: usize,
    /// Index of the known name that matched.
    pub name_index: u32,
}

/// Turns a report stream from scanning the newline-separated database
/// into record-level resolutions — the interpretable full-kernel output
/// (which record duplicates which entity), deduplicated.
pub fn resolve(database: &[u8], reports: &[(u64, u32)]) -> Vec<Resolution> {
    // Prefix count of newlines up to each offset.
    let mut line_starts = vec![0usize];
    for (i, &b) in database.iter().enumerate() {
        if b == b'\n' {
            line_starts.push(i + 1);
        }
    }
    let mut out: Vec<Resolution> = reports
        .iter()
        .map(|&(offset, name_index)| {
            let record = line_starts
                .partition_point(|&s| s <= offset as usize)
                .saturating_sub(1);
            Resolution { record, name_index }
        })
        .collect();
    out.sort_unstable_by_key(|r| (r.record, r.name_index));
    out.dedup();
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod kernel_tests {
    use super::*;
    use azoo_engines::{CollectSink, Engine, NfaEngine};
    use azoo_workloads::names::Name;

    #[test]
    fn resolutions_point_at_the_right_records() {
        let names = vec![
            Name {
                first: "maria".into(),
                last: "kovson".into(),
            },
            Name {
                first: "johan".into(),
                last: "bergman".into(),
            },
        ];
        let ruleset = compile_names(&names);
        let db = b"nobody special\nkovson, maria\nx\njohan bergman\n".to_vec();
        let mut engine = NfaEngine::new(&ruleset.automaton).unwrap();
        let mut sink = CollectSink::new();
        engine.scan(&db, &mut sink);
        let pairs: Vec<(u64, u32)> = sink
            .reports()
            .iter()
            .map(|r| (r.offset, r.code.0))
            .collect();
        let resolutions = resolve(&db, &pairs);
        assert_eq!(
            resolutions,
            vec![
                Resolution {
                    record: 1,
                    name_index: 0
                },
                Resolution {
                    record: 3,
                    name_index: 1
                },
            ]
        );
    }

    #[test]
    fn resolve_dedups_multiple_format_hits() {
        // One record matching twice (e.g. overlapping alternatives) still
        // yields one resolution.
        let reports = vec![(5, 0), (7, 0), (5, 0)];
        let db = b"maria kovson\n".to_vec();
        let r = resolve(&db, &reports);
        assert_eq!(r.len(), 1);
        assert_eq!(
            r[0],
            Resolution {
                record: 0,
                name_index: 0
            }
        );
    }
}

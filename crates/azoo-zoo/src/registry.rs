//! The registry of all 24 AutomataZoo benchmarks.

use azoo_core::Automaton;

use crate::{
    ap_prng, brill, clamav, crispr, entity, file_carving, fuzzy, hamming, levenshtein, protomata,
    random_forest, sequence_match, snort, yara,
};

/// Build scale: `Full` reproduces the paper's published sizes; `Small`
/// and `Tiny` shrink pattern counts and inputs for fast iteration and
/// tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// ~1% of full scale; for unit tests.
    Tiny,
    /// ~10% of full scale.
    Small,
    /// The paper's published benchmark sizes.
    #[default]
    Full,
}

impl Scale {
    /// Scales a pattern/filter count.
    pub fn count(self, full: usize) -> usize {
        match self {
            Scale::Tiny => (full / 100).max(2),
            Scale::Small => (full / 10).max(2),
            Scale::Full => full,
        }
    }

    /// Scales an input length.
    pub fn input(self, full: usize) -> usize {
        match self {
            Scale::Tiny => (full / 64).max(1024),
            Scale::Small => (full / 8).max(4096),
            Scale::Full => full,
        }
    }
}

/// A built benchmark: automaton plus standard input stimulus.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Which benchmark this is.
    pub id: BenchmarkId,
    /// The benchmark automaton.
    pub automaton: Automaton,
    /// The standard input stimulus.
    pub input: Vec<u8>,
}

/// Identifiers for the 24 AutomataZoo benchmarks (Table I rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BenchmarkId {
    Snort,
    ClamAv,
    Protomata,
    Brill,
    RandomForestA,
    RandomForestB,
    RandomForestC,
    Hamming18x3,
    Hamming22x5,
    Hamming31x10,
    Levenshtein19x3,
    Levenshtein24x5,
    Levenshtein37x10,
    SeqMatch6w6p,
    SeqMatch6w6pWc,
    SeqMatch6w10p,
    SeqMatch6w10pWc,
    EntityResolution,
    CrisprCasOffinder,
    CrisprCasOt,
    Yara,
    YaraWide,
    FileCarving,
    ApPrng4,
    ApPrng8,
    FuzzySnort,
    FuzzyDna,
}

impl BenchmarkId {
    /// All benchmarks: the 24 Table I rows (plus the AP PRNG variant
    /// split) and the two fuzzy approximate-matching extensions.
    pub const ALL: [BenchmarkId; 27] = [
        BenchmarkId::Snort,
        BenchmarkId::ClamAv,
        BenchmarkId::Protomata,
        BenchmarkId::Brill,
        BenchmarkId::RandomForestA,
        BenchmarkId::RandomForestB,
        BenchmarkId::RandomForestC,
        BenchmarkId::Hamming18x3,
        BenchmarkId::Hamming22x5,
        BenchmarkId::Hamming31x10,
        BenchmarkId::Levenshtein19x3,
        BenchmarkId::Levenshtein24x5,
        BenchmarkId::Levenshtein37x10,
        BenchmarkId::SeqMatch6w6p,
        BenchmarkId::SeqMatch6w6pWc,
        BenchmarkId::SeqMatch6w10p,
        BenchmarkId::SeqMatch6w10pWc,
        BenchmarkId::EntityResolution,
        BenchmarkId::CrisprCasOffinder,
        BenchmarkId::CrisprCasOt,
        BenchmarkId::Yara,
        BenchmarkId::YaraWide,
        BenchmarkId::FileCarving,
        BenchmarkId::ApPrng4,
        BenchmarkId::ApPrng8,
        BenchmarkId::FuzzySnort,
        BenchmarkId::FuzzyDna,
    ];

    /// The Table I row label.
    pub fn name(self) -> &'static str {
        match self {
            BenchmarkId::Snort => "Snort",
            BenchmarkId::ClamAv => "ClamAV",
            BenchmarkId::Protomata => "Protomata",
            BenchmarkId::Brill => "Brill",
            BenchmarkId::RandomForestA => "Random Forest A",
            BenchmarkId::RandomForestB => "Random Forest B",
            BenchmarkId::RandomForestC => "Random Forest C",
            BenchmarkId::Hamming18x3 => "Hamming 18x3",
            BenchmarkId::Hamming22x5 => "Hamming 22x5",
            BenchmarkId::Hamming31x10 => "Hamming 31x10",
            BenchmarkId::Levenshtein19x3 => "Levenshtein 19x3",
            BenchmarkId::Levenshtein24x5 => "Levenshtein 24x5",
            BenchmarkId::Levenshtein37x10 => "Levenshtein 37x10",
            BenchmarkId::SeqMatch6w6p => "Seq. Match 6w 6p",
            BenchmarkId::SeqMatch6w6pWc => "Seq. Match 6w 6p wC",
            BenchmarkId::SeqMatch6w10p => "Seq. Match 6w 10p",
            BenchmarkId::SeqMatch6w10pWc => "Seq. Match 6w 10p wC",
            BenchmarkId::EntityResolution => "Entity Resolution",
            BenchmarkId::CrisprCasOffinder => "CRISPR CasOffinder",
            BenchmarkId::CrisprCasOt => "CRISPR CasOT",
            BenchmarkId::Yara => "YARA",
            BenchmarkId::YaraWide => "YARA Wide",
            BenchmarkId::FileCarving => "File Carving",
            BenchmarkId::ApPrng4 => "AP PRNG 4-sided",
            BenchmarkId::ApPrng8 => "AP PRNG 8-sided",
            BenchmarkId::FuzzySnort => "Fuzzy Snort k1",
            BenchmarkId::FuzzyDna => "Fuzzy DNA k2",
        }
    }

    /// The application domain (Table I column).
    pub fn domain(self) -> &'static str {
        match self {
            BenchmarkId::Snort => "Network Intrusion Detection",
            BenchmarkId::ClamAv => "Virus Detection",
            BenchmarkId::Protomata => "Motif Search",
            BenchmarkId::Brill => "Part of Speech Tagging",
            BenchmarkId::RandomForestA
            | BenchmarkId::RandomForestB
            | BenchmarkId::RandomForestC => "Machine Learning",
            BenchmarkId::Hamming18x3
            | BenchmarkId::Hamming22x5
            | BenchmarkId::Hamming31x10
            | BenchmarkId::Levenshtein19x3
            | BenchmarkId::Levenshtein24x5
            | BenchmarkId::Levenshtein37x10 => "String Similarity",
            BenchmarkId::SeqMatch6w6p
            | BenchmarkId::SeqMatch6w6pWc
            | BenchmarkId::SeqMatch6w10p
            | BenchmarkId::SeqMatch6w10pWc => "Ordered Pattern Counting",
            BenchmarkId::EntityResolution => "Duplicate entry identification",
            BenchmarkId::CrisprCasOffinder | BenchmarkId::CrisprCasOt => "DNA pattern search",
            BenchmarkId::Yara | BenchmarkId::YaraWide => "Malware pattern search",
            BenchmarkId::FileCarving => "File metadata search",
            BenchmarkId::ApPrng4 | BenchmarkId::ApPrng8 => "Pseudo-random number generation",
            BenchmarkId::FuzzySnort | BenchmarkId::FuzzyDna => "Approximate matching",
        }
    }

    /// How the benchmark's automata and stimulus are generated — the
    /// paper's requirement that every benchmark ship with generation
    /// instructions (Section III, "100% open-source software").
    pub fn generation_notes(self) -> &'static str {
        use BenchmarkId::*;
        match self {
            Snort => {
                "Synthetic Snort-like ruleset (content literals, pcre rules, \
                 buffer-modifier and isdataat classes); rules with modifiers \
                 excluded per Section V; compiled with azoo-regex; input is a \
                 PCAP-like HTTP stream with planted attack strings."
            }
            ClamAv => {
                "Synthetic hex signature DB (fixed bytes, ?? wildcards, {n-m} \
                 jumps) translated to /regex/s and compiled; input is a disk \
                 image of mixed file types with two planted signature instances."
            }
            Protomata => {
                "1,309 PROSITE-syntax motifs (residues, [classes], {exclusions}, \
                 x(n,m) gaps) translated to regexes over the 20-letter amino \
                 alphabet; input is a protein database with planted motif \
                 instances."
            }
            Brill => {
                "5,000 contextual rule conditions from Brill's transformation \
                 templates (PREVTAG/NEXTTAG/SURROUND/CURWORD/PREVWORD) over \
                 word/TAG tokens; input is a synthetic tagged corpus."
            }
            RandomForestA | RandomForestB | RandomForestC => {
                "20-tree CART forest trained on a synthetic MNIST stand-in with \
                 the variant's (features, max-leaves) hyperparameters; each leaf \
                 path becomes one 31-state (62 for C) chain; input is the \
                 bin-quantized per-tree segmented stream of a test batch. \
                 Automata classification is exactly the model's prediction."
            }
            Hamming18x3 | Hamming22x5 | Hamming31x10 => {
                "1,000 two-track (position, mismatches) mesh filters over random \
                 DNA patterns with the Table-V (l, d); input is 1 MB of random \
                 DNA. Lengths chosen by the Figure-1 profiling methodology."
            }
            Levenshtein19x3 | Levenshtein24x5 | Levenshtein37x10 => {
                "1,000 Levenshtein-NFA filters (deletion closure pre-expanded, \
                 match/any tracks) over random DNA with the Table-V (l, d); \
                 input is 1 MB of random DNA."
            }
            SeqMatch6w6p | SeqMatch6w6pWc | SeqMatch6w10p | SeqMatch6w10pWc => {
                "1,719 candidate sequences of 6/10 itemsets (2..=6 items each) \
                 as skip/match/separator machines over sorted transactions; wC \
                 variants gate reports behind latched support counters; input \
                 is a random transaction stream."
            }
            EntityResolution => {
                "10,000 unique generated names, each compiled as a /i \
                 alternation of three rendering formats; input is a streaming \
                 database with 30% (possibly error-injected) duplicates."
            }
            CrisprCasOffinder => {
                "2,000 20bp guides as exact-12bp-seed + distance-1 tail meshes \
                 (the seed-anchored CasOFFinder-style design); input is random \
                 DNA with planted on-/off-target sites."
            }
            CrisprCasOt => {
                "2,000 20bp guides as whole-guide distance-3 Hamming meshes \
                 (the tolerant CasOT-style design); same input construction."
            }
            Yara | YaraWide => {
                "Synthetic YARA hex strings (nibble wildcards, [n-m] jumps, \
                 ( | ) groups) lowered to byte classes and compiled; Wide \
                 variant 16-bit-widened via azoo-passes::widen; input is a set \
                 of malware-like files with planted instances."
            }
            FileCarving => {
                "Nine patterns: PKZip local header with full DOS-timestamp \
                 bit-field validation and MPEG-2 marker-bit patterns authored \
                 as bit-level automata and 8-strided; zip EOCD / MPEG codes / \
                 mp4 ftyp / e-mail / SSN as byte regexes; input is a \
                 corrupted-filesystem stream from the media generator."
            }
            ApPrng4 | ApPrng8 => {
                "1,000 N-sided Markov-chain automata (N^2 face states + output \
                 states, per-chain salted walks); input is uniform random \
                 bytes; face-0 reports form the PRNG bit stream."
            }
            FuzzySnort => {
                "400 Snort-corpus content literals (case-insensitive) compiled \
                 by azoo-fuzzy at edit distance 1 with the full Levenshtein \
                 profile; input is printable noise seeded with exact and \
                 1-edit-mutated occurrences."
            }
            FuzzyDna => {
                "1,000 random 20bp DNA motifs compiled by azoo-fuzzy at \
                 mismatch budget 2 with the substitution-only (Hamming) \
                 profile; input is random DNA seeded with exact and \
                 2-substituted occurrences."
            }
        }
    }

    /// Builds the benchmark at the given scale.
    pub fn build(self, scale: Scale) -> Benchmark {
        let (automaton, input) = match self {
            BenchmarkId::Snort => snort::build(&snort::SnortParams {
                rules: scale.count(3200),
                input_len: scale.input(1 << 20),
                ..snort::SnortParams::default()
            }),
            BenchmarkId::ClamAv => clamav::build(&clamav::ClamAvParams {
                signatures: scale.count(33_000),
                input_len: scale.input(1 << 20),
                ..clamav::ClamAvParams::default()
            }),
            BenchmarkId::Protomata => protomata::build(&protomata::ProtomataParams {
                motifs: scale.count(1309),
                input_len: scale.input(1 << 20),
                ..protomata::ProtomataParams::default()
            }),
            BenchmarkId::Brill => brill::build(&brill::BrillParams {
                rules: scale.count(5000),
                input_tokens: scale.count(150_000),
                ..brill::BrillParams::default()
            }),
            BenchmarkId::RandomForestA
            | BenchmarkId::RandomForestB
            | BenchmarkId::RandomForestC => {
                let variant = match self {
                    BenchmarkId::RandomForestA => random_forest::Variant::A,
                    BenchmarkId::RandomForestB => random_forest::Variant::B,
                    _ => random_forest::Variant::C,
                };
                let mut params = random_forest::RandomForestParams::published(variant);
                params.train_samples = scale.count(params.train_samples);
                params.test_samples = scale.count(params.test_samples);
                if scale != Scale::Full {
                    params.trees = 5;
                }
                let bench = random_forest::build(&params);
                (bench.fa.automaton, bench.input)
            }
            BenchmarkId::Hamming18x3 => ham(scale, 18, 3),
            BenchmarkId::Hamming22x5 => ham(scale, 22, 5),
            BenchmarkId::Hamming31x10 => ham(scale, 31, 10),
            BenchmarkId::Levenshtein19x3 => lev(scale, 19, 3),
            BenchmarkId::Levenshtein24x5 => lev(scale, 24, 5),
            BenchmarkId::Levenshtein37x10 => lev(scale, 37, 10),
            BenchmarkId::SeqMatch6w6p => seq(scale, 6, false),
            BenchmarkId::SeqMatch6w6pWc => seq(scale, 6, true),
            BenchmarkId::SeqMatch6w10p => seq(scale, 10, false),
            BenchmarkId::SeqMatch6w10pWc => seq(scale, 10, true),
            BenchmarkId::EntityResolution => entity::build(&entity::EntityParams {
                names: scale.count(10_000),
                records: scale.count(100_000),
                ..entity::EntityParams::default()
            }),
            BenchmarkId::CrisprCasOffinder => cr(scale, crispr::CrisprDesign::OffFinder),
            BenchmarkId::CrisprCasOt => cr(scale, crispr::CrisprDesign::CasOt),
            BenchmarkId::Yara => {
                let mut p = yara::YaraParams::published(false);
                p.rules = scale.count(p.rules);
                p.input_len = scale.input(p.input_len);
                yara::build(&p)
            }
            BenchmarkId::YaraWide => {
                let mut p = yara::YaraParams::published(true);
                p.rules = scale.count(p.rules);
                p.input_len = scale.input(p.input_len);
                yara::build(&p)
            }
            BenchmarkId::FileCarving => file_carving::build(&file_carving::FileCarvingParams {
                input_len: scale.input(1 << 20),
                ..file_carving::FileCarvingParams::default()
            }),
            BenchmarkId::ApPrng4 => prng(scale, 4),
            BenchmarkId::ApPrng8 => prng(scale, 8),
            BenchmarkId::FuzzySnort => fz(scale, fuzzy::FuzzyParams::published_snort(1), true),
            BenchmarkId::FuzzyDna => fz(scale, fuzzy::FuzzyParams::published_dna(2), false),
        };
        Benchmark {
            id: self,
            automaton,
            input,
        }
    }
}

fn ham(scale: Scale, l: usize, d: usize) -> (Automaton, Vec<u8>) {
    let mut p = hamming::HammingParams::published(l, d);
    p.filters = scale.count(p.filters);
    p.input_len = scale.input(p.input_len);
    hamming::build(&p)
}

fn lev(scale: Scale, l: usize, d: usize) -> (Automaton, Vec<u8>) {
    let mut p = levenshtein::LevenshteinParams::published(l, d);
    p.filters = scale.count(p.filters);
    p.input_len = scale.input(p.input_len);
    levenshtein::build(&p)
}

fn seq(scale: Scale, itemsets: usize, counters: bool) -> (Automaton, Vec<u8>) {
    let mut p = sequence_match::SeqMatchParams::published(itemsets, counters);
    p.filters = scale.count(p.filters);
    p.transactions = scale.count(p.transactions);
    sequence_match::build(&p)
}

fn cr(scale: Scale, design: crispr::CrisprDesign) -> (Automaton, Vec<u8>) {
    let mut p = crispr::CrisprParams::published(design);
    p.guides = scale.count(p.guides);
    p.input_len = scale.input(p.input_len);
    crispr::build(&p)
}

fn fz(scale: Scale, mut p: fuzzy::FuzzyParams, snort: bool) -> (Automaton, Vec<u8>) {
    p.patterns = scale.count(p.patterns);
    p.input_len = scale.input(p.input_len);
    let (a, input, _) = if snort {
        fuzzy::build_snort(&p)
    } else {
        fuzzy::build_dna(&p)
    };
    (a, input)
}

fn prng(scale: Scale, sides: usize) -> (Automaton, Vec<u8>) {
    let mut p = ap_prng::ApPrngParams::published(sides);
    p.chains = scale.count(p.chains);
    p.input_len = scale.input(p.input_len);
    ap_prng::build(&p)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn registry_lists_24_benchmarks() {
        assert_eq!(BenchmarkId::ALL.len(), 27);
        let names: std::collections::HashSet<&str> =
            BenchmarkId::ALL.iter().map(|b| b.name()).collect();
        assert_eq!(names.len(), 27);
    }

    #[test]
    fn every_benchmark_builds_at_tiny_scale() {
        for id in BenchmarkId::ALL {
            let bench = id.build(Scale::Tiny);
            assert!(bench.automaton.state_count() > 0, "{} is empty", id.name());
            assert!(!bench.input.is_empty(), "{} has no input", id.name());
            bench
                .automaton
                .validate()
                .unwrap_or_else(|e| panic!("{} invalid: {e}", id.name()));
        }
    }

    #[test]
    fn every_benchmark_has_generation_notes() {
        for id in BenchmarkId::ALL {
            assert!(
                id.generation_notes().len() > 40,
                "{} lacks notes",
                id.name()
            );
            assert!(!id.domain().is_empty());
        }
    }

    #[test]
    fn scales_order_sizes() {
        let tiny = BenchmarkId::Hamming18x3.build(Scale::Tiny);
        let small = BenchmarkId::Hamming18x3.build(Scale::Small);
        assert!(small.automaton.state_count() > tiny.automaton.state_count());
        assert!(small.input.len() > tiny.input.len());
    }
}

//! Levenshtein (edit-distance) mesh automata (Tracy et al.; AutomataZoo
//! Section X).
//!
//! A Levenshtein filter for pattern `p` and distance `d` reports at every
//! input offset where some suffix of the stream so far is within edit
//! distance `d` of `p` (insertions, deletions, substitutions). The
//! construction is the classic Levenshtein NFA over configurations
//! `(consumed, edits)` with deletion ε-moves pre-expanded by closure, and
//! made homogeneous with two tracks per configuration: one entered by a
//! match (class `{p[i]}`) and one entered by an insert/substitute (class
//! `Σ`).

use azoo_core::{Automaton, StartKind, StateId, SymbolClass};
use azoo_workloads::dna;

/// Parameters for the Levenshtein benchmark family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevenshteinParams {
    /// Encoded pattern length `l`.
    pub length: usize,
    /// Edit-distance threshold `d`.
    pub distance: usize,
    /// Number of filters `N`.
    pub filters: usize,
    /// Input length in base-pairs.
    pub input_len: usize,
    /// Generation seed.
    pub seed: u64,
}

impl LevenshteinParams {
    /// The paper's three published variants (Table V): `19x3`, `24x5`,
    /// `37x10`, each with 1,000 filters.
    pub fn published(length: usize, distance: usize) -> Self {
        LevenshteinParams {
            length,
            distance,
            filters: 1000,
            input_len: 1 << 20,
            seed: 0x1EE7 + (length * 100 + distance) as u64,
        }
    }
}

/// Builds one Levenshtein filter automaton for `pattern` within edit
/// distance `d`, reporting with `code`.
///
/// # Panics
///
/// Panics if the pattern is empty or `d >= pattern.len()`.
#[allow(clippy::needless_range_loop)] // index loops mirror the (i, e, track) mesh
pub fn levenshtein_filter(pattern: &[u8], d: usize, code: u32) -> Automaton {
    let l = pattern.len();
    assert!(l > 0, "empty pattern");
    assert!(d < l, "distance must be below pattern length");
    let mut a = Automaton::new();
    // Track 0: entered by matching p[i-1]; track 1: entered by any symbol
    // (insertion or substitution).
    let mut ids = vec![vec![[None::<StateId>; 2]; d + 1]; l + 1];
    let accepting = |i: usize, e: usize| l - i <= d - e;
    for i in 0..=l {
        for e in 0..=d {
            if i >= 1 {
                let s = a.add_ste(SymbolClass::from_byte(pattern[i - 1]), StartKind::None);
                ids[i][e][0] = Some(s);
                if accepting(i, e) {
                    a.set_report(s, code);
                }
            }
            if e >= 1 {
                let s = a.add_ste(SymbolClass::FULL, StartKind::None);
                ids[i][e][1] = Some(s);
                if accepting(i, e) {
                    a.set_report(s, code);
                }
            }
        }
    }
    // Deletion closure of configuration (i, e).
    let closure = |i: usize, e: usize| -> Vec<(usize, usize)> {
        (0..=(l - i).min(d - e)).map(|j| (i + j, e + j)).collect()
    };
    // Symbol successors of a configuration set (match / substitute /
    // insert), as homogeneous target states.
    let targets_of = |cfg: (usize, usize)| -> Vec<StateId> {
        let mut out = Vec::new();
        for (i, e) in closure(cfg.0, cfg.1) {
            if i < l {
                if let Some(m) = ids[i + 1][e][0] {
                    out.push(m);
                }
                if e < d {
                    if let Some(s) = ids[i + 1][e + 1][1] {
                        out.push(s);
                    }
                }
            }
            if e < d {
                if let Some(ins) = ids[i][e + 1][1] {
                    out.push(ins);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    };
    for i in 0..=l {
        for e in 0..=d {
            for track in 0..2 {
                let Some(s) = ids[i][e][track] else { continue };
                for t in targets_of((i, e)) {
                    a.add_edge(s, t);
                }
            }
        }
    }
    // Start states: symbol successors of the initial configuration (0,0).
    for t in targets_of((0, 0)) {
        if let azoo_core::ElementKind::Ste { start, .. } = &mut a.element_mut(t).kind {
            *start = StartKind::AllInput;
        }
    }
    // The uniform (i, e) grid creates some configurations no path can
    // reach (e.g. high-edit cells next to the start); prune them.
    azoo_passes::remove_dead(&a)
}

/// Builds the full benchmark: `filters` filters over random DNA patterns,
/// plus the standard random-DNA input.
pub fn build(params: &LevenshteinParams) -> (Automaton, Vec<u8>) {
    let mut a = Automaton::new();
    for i in 0..params.filters {
        let pattern = dna::random_dna(params.seed ^ (i as u64 + 1), params.length);
        let f = levenshtein_filter(&pattern, params.distance, i as u32);
        a.append(&f);
    }
    let input = dna::random_dna(params.seed ^ 0xFFFF_0002, params.input_len);
    (a, input)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use azoo_engines::{CollectSink, Engine, NfaEngine};

    /// Sellers' algorithm: offsets where some stream suffix is within
    /// edit distance d of the pattern.
    fn naive_levenshtein(pattern: &[u8], d: usize, input: &[u8]) -> Vec<u64> {
        let l = pattern.len();
        let mut prev: Vec<usize> = (0..=l).collect();
        let mut out = Vec::new();
        for (o, &c) in input.iter().enumerate() {
            let mut cur = vec![0usize; l + 1];
            for j in 1..=l {
                let sub = prev[j - 1] + usize::from(c != pattern[j - 1]);
                let ins = prev[j] + 1;
                let del = cur[j - 1] + 1;
                cur[j] = sub.min(ins).min(del);
            }
            if cur[l] <= d {
                out.push(o as u64);
            }
            prev = cur;
        }
        out
    }

    #[test]
    fn filter_agrees_with_sellers_dp() {
        let pattern = b"ACGTTGA";
        for d in 1..4 {
            let a = levenshtein_filter(pattern, d, 0);
            a.validate().unwrap();
            let input = dna::random_dna(17, 300);
            let mut engine = NfaEngine::new(&a).unwrap();
            let mut sink = CollectSink::new();
            engine.scan(&input, &mut sink);
            let mut got: Vec<u64> = sink.reports().iter().map(|r| r.offset).collect();
            got.sort_unstable();
            got.dedup();
            assert_eq!(got, naive_levenshtein(pattern, d, &input), "d={d}");
        }
    }

    #[test]
    fn detects_each_edit_kind() {
        let a = levenshtein_filter(b"ACGTACGT", 1, 0);
        let mut engine = NfaEngine::new(&a).unwrap();
        for (mutated, kind) in [
            (&b"ACGTACGT"[..], "exact"),
            (&b"ACGAACGT"[..], "substitution"),
            (&b"ACGACGT"[..], "deletion"),
            (&b"ACGTTACGT"[..], "insertion"),
        ] {
            let mut padded = b"CCCC".to_vec();
            padded.extend_from_slice(mutated);
            padded.extend_from_slice(b"CCCC");
            let mut sink = CollectSink::new();
            engine.scan(&padded, &mut sink);
            assert!(!sink.reports().is_empty(), "{kind} not detected");
        }
    }

    #[test]
    fn two_edits_not_detected_at_d1() {
        let a = levenshtein_filter(b"AAAACCCCGGGG", 1, 0);
        let mut engine = NfaEngine::new(&a).unwrap();
        let mut sink = CollectSink::new();
        // Two substitutions, far apart.
        engine.scan(b"TTTT AATACCCCGGTG TTTT", &mut sink);
        assert!(sink.reports().is_empty());
    }

    #[test]
    fn edge_density_exceeds_hamming() {
        // Table I: Levenshtein meshes are much denser than Hamming.
        let lev = levenshtein_filter(&dna::random_dna(2, 19), 3, 0);
        let ham = crate::hamming::hamming_filter(&dna::random_dna(2, 18), 3, 0);
        let lev_density = lev.edge_count() as f64 / lev.state_count() as f64;
        let ham_density = ham.edge_count() as f64 / ham.state_count() as f64;
        assert!(
            lev_density > 1.5 * ham_density,
            "lev {lev_density} vs ham {ham_density}"
        );
    }

    #[test]
    fn benchmark_builds_per_filter_subgraphs() {
        let (a, input) = build(&LevenshteinParams {
            length: 9,
            distance: 2,
            filters: 5,
            input_len: 400,
            seed: 3,
        });
        let stats = azoo_core::AutomatonStats::compute(&a);
        assert_eq!(stats.subgraphs, 5);
        assert_eq!(input.len(), 400);
    }
}

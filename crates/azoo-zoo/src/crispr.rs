//! The CRISPR/Cas9 off-target-search benchmarks (Bo et al., HPCA 2018).
//!
//! Finding candidate gRNA binding sites means scanning a genome for
//! approximate matches of 20bp guide sequences. Bo et al. built two
//! automata filter designs mirroring the two software baselines:
//!
//! * **CasOFFinder-style** (`OFF`): a seed-anchored shallow filter —
//!   exact match on the 12bp PAM-adjacent seed plus a distance-1 mesh
//!   over the remaining 8bp (small and quiet, ~37 states/filter in the
//!   paper).
//! * **CasOT-style** (`OT`): a whole-guide distance-3 mismatch mesh (the
//!   larger, more tolerant and much more active design — ~101
//!   states/filter and a 5x higher active set in the paper).
//!
//! AutomataZoo generates 2,000 filters per benchmark, the largest problem
//! size evaluated in Bo's work.

use azoo_core::{Automaton, ElementKind, StartKind, SymbolClass};
use azoo_workloads::dna;
use rand::RngExt;

use crate::hamming::hamming_filter;

/// Which CRISPR filter design to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrisprDesign {
    /// CasOFFinder-style whole-guide shallow mismatch filter.
    OffFinder,
    /// CasOT-style exact-seed + tolerant-tail filter.
    CasOt,
}

/// Parameters for the CRISPR benchmarks.
#[derive(Debug, Clone, Copy)]
pub struct CrisprParams {
    /// Filter design.
    pub design: CrisprDesign,
    /// Number of guide filters (AutomataZoo: 2,000).
    pub guides: usize,
    /// Guide length in base-pairs (biology: 20).
    pub guide_len: usize,
    /// Genome stream length.
    pub input_len: usize,
    /// Generation seed.
    pub seed: u64,
}

impl CrisprParams {
    /// Full-scale parameters for a design.
    pub fn published(design: CrisprDesign) -> Self {
        CrisprParams {
            design,
            guides: 2000,
            guide_len: 20,
            input_len: 1 << 20,
            seed: 0xC815,
        }
    }
}

/// Builds a CasOT-style filter: a whole-guide distance-3 Hamming mesh.
pub fn cas_ot_filter(guide: &[u8], code: u32) -> Automaton {
    hamming_filter(guide, 3.min(guide.len() - 1), code)
}

/// Builds a CasOFFinder-style filter: exact 12bp seed, then a distance-1
/// Hamming mesh over the remaining tail.
///
/// # Panics
///
/// Panics if the guide is shorter than 14bp.
pub fn cas_offinder_filter(guide: &[u8], code: u32) -> Automaton {
    assert!(guide.len() >= 14, "guide too short for seed+tail split");
    let (seed, tail) = guide.split_at(12);
    let mut a = Automaton::new();
    let classes: Vec<SymbolClass> = seed.iter().map(|&b| SymbolClass::from_byte(b)).collect();
    let (_, seed_end) = a.add_chain(&classes, StartKind::AllInput);
    // Attach the tail mesh: demote its start states and drive them from
    // the seed.
    let tail_mesh = hamming_filter(tail, 1, code);
    let tail_starts = tail_mesh.start_states();
    let offset = a.append(&tail_mesh);
    for s in tail_starts {
        let id = azoo_core::StateId::new(s.index() + offset as usize);
        if let ElementKind::Ste { start, .. } = &mut a.element_mut(id).kind {
            *start = StartKind::None;
        }
        a.add_edge(seed_end, id);
    }
    a
}

/// Builds the benchmark: `guides` filters plus a genome stream with a
/// few planted exact and one-mismatch sites.
pub fn build(params: &CrisprParams) -> (Automaton, Vec<u8>) {
    let mut a = Automaton::new();
    let mut guides = Vec::with_capacity(params.guides);
    for i in 0..params.guides {
        let guide = dna::random_guide(params.seed ^ (i as u64 + 1), params.guide_len);
        let f = match params.design {
            CrisprDesign::OffFinder => cas_offinder_filter(&guide, i as u32),
            CrisprDesign::CasOt => cas_ot_filter(&guide, i as u32),
        };
        a.append(&f);
        guides.push(guide);
    }
    // Plant some sites: exact copies and single-substitution copies.
    let mut r = azoo_workloads::rng(params.seed ^ 0xDA7A);
    let planted: Vec<Vec<u8>> = guides
        .iter()
        .take(10)
        .enumerate()
        .map(|(i, g)| {
            let mut site = g.clone();
            if i % 2 == 1 {
                // Mutate outside the 12bp seed so both filter designs
                // still accept the site.
                let at = r.random_range(12..site.len());
                site[at] = dna::DNA[r.random_range(0..4)];
            }
            site
        })
        .collect();
    let (input, _) = dna::dna_with_planted(params.seed ^ 0xFEED, params.input_len, &planted);
    (a, input)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use azoo_engines::{CollectSink, Engine, NfaEngine};

    fn scan_codes(a: &Automaton, input: &[u8]) -> std::collections::HashSet<u32> {
        let mut engine = NfaEngine::new(a).unwrap();
        let mut sink = CollectSink::new();
        engine.scan(input, &mut sink);
        sink.reports().iter().map(|r| r.code.0).collect()
    }

    #[test]
    fn casot_tolerates_three_mismatches_anywhere() {
        let guide = b"ACGTACGTACGTACGTACGT";
        let a = cas_ot_filter(guide, 0);
        a.validate().unwrap();
        let mut three = guide.to_vec();
        three[2] = b'A'; // was G
        three[9] = b'A'; // was C
        three[16] = b'C'; // was A
        assert!(scan_codes(&a, guide).contains(&0));
        assert!(scan_codes(&a, &three).contains(&0));
        let mut four = three.clone();
        four[19] = b'A'; // was T
        assert!(!scan_codes(&a, &four).contains(&0));
    }

    #[test]
    fn offinder_requires_exact_seed() {
        let guide = b"ACGTACGTACGTACGTACGT";
        let a = cas_offinder_filter(guide, 0);
        a.validate().unwrap();
        // Mismatch in the 12bp seed kills the match...
        let mut seed_mut = guide.to_vec();
        seed_mut[4] = b'T'; // was A
        assert!(!scan_codes(&a, &seed_mut).contains(&0));
        // ...one tail mismatch is tolerated, two are not.
        let mut tail_one = guide.to_vec();
        tail_one[16] = b'C'; // was A
        assert!(scan_codes(&a, &tail_one).contains(&0));
        let mut tail_two = tail_one.clone();
        tail_two[13] = b'A'; // was C
        assert!(!scan_codes(&a, &tail_two).contains(&0));
    }

    #[test]
    fn ot_filters_are_larger_and_more_active_than_off() {
        // Table I: CasOT 101 states/filter and a ~5x higher active set
        // than CasOFFinder's 37 states/filter.
        let guide = dna::random_guide(1, 20);
        let off = cas_offinder_filter(&guide, 0);
        let ot = cas_ot_filter(&guide, 0);
        assert!(ot.state_count() > off.state_count());
        let input = dna::random_dna(9, 20_000);
        let mut sink = azoo_engines::NullSink::new();
        let p_off = NfaEngine::new(&off)
            .unwrap()
            .scan_profiled(&input, &mut sink);
        let p_ot = NfaEngine::new(&ot)
            .unwrap()
            .scan_profiled(&input, &mut sink);
        assert!(
            p_ot.active_set() > 2.0 * p_off.active_set(),
            "ot {} vs off {}",
            p_ot.active_set(),
            p_off.active_set()
        );
    }

    #[test]
    fn benchmark_finds_planted_sites() {
        let (a, input) = build(&CrisprParams {
            design: CrisprDesign::OffFinder,
            guides: 30,
            guide_len: 20,
            input_len: 50_000,
            seed: 9,
        });
        let codes = scan_codes(&a, &input);
        let found = (0..10).filter(|c| codes.contains(c)).count();
        assert!(found >= 9, "only {found}/10 planted sites found");
    }
}

//! The AP PRNG benchmarks (Wadden et al., ICCD 2016).
//!
//! Driving automata with uniformly random symbols turns state transitions
//! into probabilistic events: each Markov-chain automaton simulates an
//! N-sided die, and many chains in parallel yield a high-throughput
//! pseudo-random bit source. A chain over `N` faces has one homogeneous
//! state per `(face, incoming byte-range)` pair (`N²` states) plus `N`
//! output states that report whenever face 0 is entered — 20 states for
//! the 4-sided chain and 72 for the 8-sided one, matching Table I.

use azoo_core::{Automaton, StartKind, SymbolClass};

/// Parameters for the AP PRNG benchmarks.
#[derive(Debug, Clone, Copy)]
pub struct ApPrngParams {
    /// Number of die faces (4 or 8 in the paper).
    pub sides: usize,
    /// Number of parallel chains (paper: 1,000).
    pub chains: usize,
    /// Random input length in bytes.
    pub input_len: usize,
    /// Generation seed (for the input stimulus).
    pub seed: u64,
}

impl ApPrngParams {
    /// Full-scale published variant.
    pub fn published(sides: usize) -> Self {
        ApPrngParams {
            sides,
            chains: 1000,
            input_len: 1 << 20,
            seed: 0x99A6,
        }
    }
}

/// The byte range owned by roll `q` of an `sides`-sided die.
fn roll_class(sides: usize, q: usize) -> SymbolClass {
    let width = 256 / sides;
    let lo = (q * width) as u8;
    let hi = if q + 1 == sides {
        255
    } else {
        (lo as usize + width - 1) as u8
    };
    SymbolClass::from_range(lo, hi)
}

/// Next face after rolling `q` on face `f`. The per-face offsets are
/// derived from `salt` so that parallel chains follow *different* walks —
/// otherwise identically-built chains driven by the shared input stay in
/// lockstep and their combined output degenerates.
fn next_face(f: usize, q: usize, sides: usize, salt: u64) -> usize {
    let mix = salt
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(f as u64)
        .wrapping_mul(0xbf58_476d_1ce4_e5b9);
    (f + q + 1 + (mix >> 32) as usize) % sides
}

/// Builds one `sides`-sided Markov-chain automaton reporting (with
/// `code`) every time face 0 is entered. `salt` decorrelates parallel
/// chains.
///
/// # Panics
///
/// Panics unless `sides` divides 256.
#[allow(clippy::needless_range_loop)] // index loops mirror the (face, roll) mesh
pub fn markov_chain_salted(sides: usize, code: u32, salt: u64) -> Automaton {
    assert!(sides > 1 && 256 % sides == 0, "sides must divide 256");
    let mut a = Automaton::new();
    // face_state[f][q]: on face f, entered by roll q.
    let mut face_state = vec![vec![azoo_core::StateId::new(0); sides]; sides];
    for f in 0..sides {
        for q in 0..sides {
            // Initially-enabled states: those the initial face (0) rolls
            // into at the very first symbol.
            let start = if next_face(0, q, sides, salt) == f {
                StartKind::StartOfData
            } else {
                StartKind::None
            };
            face_state[f][q] = a.add_ste(roll_class(sides, q), start);
        }
    }
    // Output states: report whenever face 0 is entered via roll q. Only
    // rolls that can actually lead to face 0 get an output state (the
    // salted walk may not use every roll for that step).
    let used: std::collections::HashSet<usize> = (0..sides)
        .flat_map(|f| (0..sides).map(move |q| (f, q)))
        .filter(|&(f, q)| next_face(f, q, sides, salt) == 0)
        .map(|(_, q)| q)
        .collect();
    let mut out_state = vec![None; sides];
    for q in 0..sides {
        if !used.contains(&q) {
            continue;
        }
        let start = if next_face(0, q, sides, salt) == 0 {
            StartKind::StartOfData
        } else {
            StartKind::None
        };
        let s = a.add_ste(roll_class(sides, q), start);
        a.set_report(s, code);
        out_state[q] = Some(s);
    }
    for f in 0..sides {
        for q in 0..sides {
            let from = face_state[f][q];
            for q2 in 0..sides {
                let to_face = next_face(f, q2, sides, salt);
                a.add_edge(from, face_state[to_face][q2]);
                if to_face == 0 {
                    a.add_edge(from, out_state[q2].expect("created for used rolls"));
                }
            }
        }
    }
    a
}

/// Builds one chain with a zero salt (convenient for single-chain use).
pub fn markov_chain(sides: usize, code: u32) -> Automaton {
    markov_chain_salted(sides, code, 0)
}

/// Builds the benchmark: `chains` parallel Markov chains plus uniform
/// random bytes.
pub fn build(params: &ApPrngParams) -> (Automaton, Vec<u8>) {
    let mut a = Automaton::new();
    for i in 0..params.chains {
        a.append(&markov_chain_salted(params.sides, i as u32, i as u64 + 1));
    }
    let input = azoo_workloads::random_bytes(params.seed, params.input_len);
    (a, input)
}

/// Extracts a pseudo-random bit stream from a report stream: one bit per
/// input symbol, the parity of the number of chains that entered face 0
/// on that symbol.
pub fn extract_bits(reports: &[(u64, u32)], symbols: usize) -> Vec<bool> {
    let mut counts = vec![0u32; symbols];
    for &(offset, _) in reports {
        if (offset as usize) < symbols {
            counts[offset as usize] += 1;
        }
    }
    counts.into_iter().map(|c| c % 2 == 1).collect()
}

/// Statistical quality metrics for a generated bit stream (the checks
/// the AP PRNG paper runs on its output).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BitQuality {
    /// Fraction of one-bits (ideal 0.5).
    pub ones_fraction: f64,
    /// Fraction of adjacent equal pairs (ideal 0.5).
    pub serial_agreement: f64,
    /// Chi-square statistic of the byte histogram against uniform
    /// (255 degrees of freedom; < ~310 passes at alpha = 0.01).
    pub byte_chi_square: f64,
    /// Longest run of equal bits.
    pub longest_run: usize,
}

/// Computes [`BitQuality`] for `bits`.
///
/// # Panics
///
/// Panics if fewer than 16 bits are provided.
pub fn bit_quality(bits: &[bool]) -> BitQuality {
    assert!(bits.len() >= 16, "need at least 16 bits");
    let ones = bits.iter().filter(|&&b| b).count() as f64;
    let agree = bits.windows(2).filter(|w| w[0] == w[1]).count() as f64;
    let mut longest = 0usize;
    let mut run = 0usize;
    let mut prev = None;
    for &b in bits {
        if Some(b) == prev {
            run += 1;
        } else {
            run = 1;
            prev = Some(b);
        }
        longest = longest.max(run);
    }
    let bytes: Vec<u8> = bits
        .chunks_exact(8)
        .map(|c| c.iter().fold(0u8, |acc, &b| (acc << 1) | b as u8))
        .collect();
    let mut hist = [0u64; 256];
    for &b in &bytes {
        hist[b as usize] += 1;
    }
    let expected = bytes.len() as f64 / 256.0;
    let chi: f64 = if expected > 0.0 {
        hist.iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum()
    } else {
        0.0
    };
    BitQuality {
        ones_fraction: ones / bits.len() as f64,
        serial_agreement: agree / (bits.len() - 1) as f64,
        byte_chi_square: chi,
        longest_run: longest,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use azoo_engines::{CollectSink, CountSink, Engine, NfaEngine};

    #[test]
    fn state_counts_match_table_i() {
        // sides^2 face states plus up to `sides` output states (Table I:
        // 20 and 72 per chain).
        let four = markov_chain(4, 0).state_count();
        let eight = markov_chain(8, 0).state_count();
        assert!((17..=20).contains(&four), "4-sided chain has {four}");
        assert!((65..=72).contains(&eight), "8-sided chain has {eight}");
    }

    #[test]
    fn chain_never_dies_and_visits_face0_at_expected_rate() {
        let a = markov_chain(4, 0);
        a.validate().unwrap();
        let input = azoo_workloads::random_bytes(1, 40_000);
        let mut engine = NfaEngine::new(&a).unwrap();
        let mut sink = CountSink::new();
        let profile = engine.scan_profiled(&input, &mut sink);
        // Exactly `sides` face states enabled every cycle, plus one
        // output state when face 0 is next.
        assert!(profile.active_set() >= 4.0 && profile.active_set() <= 6.0);
        // Face 0 is visited with probability 1/4 per symbol.
        let rate = sink.count() as f64 / input.len() as f64;
        assert!((rate - 0.25).abs() < 0.02, "face-0 rate {rate}");
    }

    #[test]
    fn eight_sided_rate_is_one_eighth() {
        let a = markov_chain(8, 0);
        let input = azoo_workloads::random_bytes(2, 40_000);
        let mut engine = NfaEngine::new(&a).unwrap();
        let mut sink = CountSink::new();
        engine.scan(&input, &mut sink);
        let rate = sink.count() as f64 / input.len() as f64;
        assert!((rate - 0.125).abs() < 0.01, "face-0 rate {rate}");
    }

    #[test]
    fn bitstream_is_balanced_and_uncorrelated() {
        let (a, input) = build(&ApPrngParams {
            sides: 4,
            chains: 64,
            input_len: 20_000,
            seed: 3,
        });
        let mut engine = NfaEngine::new(&a).unwrap();
        let mut sink = CollectSink::new();
        engine.scan(&input, &mut sink);
        let pairs: Vec<(u64, u32)> = sink
            .reports()
            .iter()
            .map(|r| (r.offset, r.code.0))
            .collect();
        let bits = extract_bits(&pairs, input.len());
        // Monobit test: ones fraction near 1/2.
        let ones = bits.iter().filter(|&&b| b).count() as f64 / bits.len() as f64;
        assert!((ones - 0.5).abs() < 0.02, "ones fraction {ones}");
        // Serial test: adjacent-bit agreement near 1/2.
        let agree =
            bits.windows(2).filter(|w| w[0] == w[1]).count() as f64 / (bits.len() - 1) as f64;
        assert!((agree - 0.5).abs() < 0.02, "serial agreement {agree}");
    }

    #[test]
    fn bit_quality_detects_bias() {
        // A fair-ish alternating-block stream vs an all-ones stream.
        let biased = vec![true; 1024];
        let q = bit_quality(&biased);
        assert_eq!(q.ones_fraction, 1.0);
        assert_eq!(q.longest_run, 1024);
        assert!(q.byte_chi_square > 10_000.0);
        // The actual PRNG output passes.
        let (a, input) = build(&ApPrngParams {
            sides: 4,
            chains: 32,
            input_len: 60_000,
            seed: 11,
        });
        let mut engine = NfaEngine::new(&a).unwrap();
        let mut sink = CollectSink::new();
        engine.scan(&input, &mut sink);
        let pairs: Vec<(u64, u32)> = sink
            .reports()
            .iter()
            .map(|r| (r.offset, r.code.0))
            .collect();
        let q = bit_quality(&extract_bits(&pairs, input.len()));
        assert!((q.ones_fraction - 0.5).abs() < 0.02);
        assert!((q.serial_agreement - 0.5).abs() < 0.02);
        assert!(q.byte_chi_square < 400.0, "chi^2 {}", q.byte_chi_square);
        assert!(q.longest_run < 40);
    }

    #[test]
    fn deterministic_build() {
        let (a1, i1) = build(&ApPrngParams {
            sides: 8,
            chains: 3,
            input_len: 100,
            seed: 7,
        });
        let (a2, i2) = build(&ApPrngParams {
            sides: 8,
            chains: 3,
            input_len: 100,
            seed: 7,
        });
        assert_eq!(a1, a2);
        assert_eq!(i1, i2);
    }
}

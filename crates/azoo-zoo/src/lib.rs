//! Generators for the 24 AutomataZoo benchmarks.
//!
//! Each module builds one application domain's automata and standard
//! input stimulus, following the construction the paper describes
//! (Section IV). Where the paper relies on proprietary or unavailable
//! artifacts (the real Snort ruleset, ClamAV database, PROSITE, MNIST,
//! VirusSign samples), seeded synthetic equivalents with the same
//! structural statistics are generated — see DESIGN.md §3 for the
//! substitution table.
//!
//! The [`BenchmarkId`] registry enumerates all 24 benchmarks and builds
//! any of them at three scales:
//!
//! ```
//! use azoo_zoo::{BenchmarkId, Scale};
//!
//! let bench = BenchmarkId::Hamming18x3.build(Scale::Tiny);
//! assert!(bench.automaton.state_count() > 0);
//! assert!(!bench.input.is_empty());
//! bench.automaton.validate().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]
pub mod ap_prng;
pub mod brill;
pub mod clamav;
pub mod crispr;
pub mod entity;
pub mod file_carving;
pub mod fuzzy;
pub mod hamming;
pub mod levenshtein;
pub mod protomata;
pub mod random_forest;
pub mod sequence_match;
pub mod snort;
pub mod yara;

mod registry;

pub use registry::{Benchmark, BenchmarkId, Scale};

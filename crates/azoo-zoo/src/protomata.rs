//! The Protomata protein-motif benchmark.
//!
//! Protomata scans protein databases for the 1,309 PROSITE motifs. The
//! PROSITE database itself is not shipped, so motifs are generated in
//! genuine PROSITE syntax with realistic structure, translated to regular
//! expressions, and compiled. AutomataZoo deliberately keeps the original
//! 1,309-pattern problem size ("free-form benchmarks": no synthetic
//! padding to fill an AP chip).

use azoo_regex::{compile_ruleset, Ruleset};
use azoo_workloads::dna::{protein_database, AMINO_ACIDS};
use rand::RngExt;
use rand_chacha::ChaCha8Rng;

/// Parameters for the Protomata benchmark.
#[derive(Debug, Clone, Copy)]
pub struct ProtomataParams {
    /// Number of motifs (the canonical problem size is 1,309).
    pub motifs: usize,
    /// Protein database size in residues.
    pub input_len: usize,
    /// Generation seed.
    pub seed: u64,
}

impl Default for ProtomataParams {
    fn default() -> Self {
        ProtomataParams {
            motifs: 1309,
            input_len: 1 << 20,
            seed: 0x9607,
        }
    }
}

/// Generates one motif in PROSITE syntax, e.g.
/// `C-x(2,4)-[LIVM]-{P}-G-H-x(3)-C`.
pub fn generate_motif(r: &mut ChaCha8Rng) -> String {
    let elements = r.random_range(6..16);
    let mut parts = Vec::with_capacity(elements);
    for _ in 0..elements {
        let roll = r.random_range(0..100);
        if roll < 55 {
            // Specific residue.
            parts.push((AMINO_ACIDS[r.random_range(0..20)] as char).to_string());
        } else if roll < 70 {
            // Residue class.
            let k = r.random_range(2..5);
            let mut set = String::new();
            for _ in 0..k {
                set.push(AMINO_ACIDS[r.random_range(0..20)] as char);
            }
            parts.push(format!("[{set}]"));
        } else if roll < 80 {
            // Excluded residue.
            parts.push(format!(
                "{{{}}}",
                AMINO_ACIDS[r.random_range(0..20)] as char
            ));
        } else if roll < 92 {
            // Fixed gap.
            parts.push(format!("x({})", r.random_range(1..4)));
        } else {
            // Variable gap.
            let lo = r.random_range(1..3);
            parts.push(format!("x({},{})", lo, lo + r.random_range(1..4)));
        }
    }
    parts.join("-")
}

/// Translates a PROSITE motif into a delimited regular expression over
/// the amino-acid alphabet.
///
/// Supported syntax: residues, `x`, `x(n)`, `x(n,m)`, `[classes]`,
/// `{exclusions}`, and the `<` / `>` anchors.
///
/// # Errors
///
/// Returns a description of the offending element.
pub fn prosite_to_regex(motif: &str) -> Result<String, String> {
    let amino: String = AMINO_ACIDS.iter().map(|&c| c as char).collect();
    let mut out = String::from("/");
    let mut body = motif.trim().trim_end_matches('.');
    if let Some(rest) = body.strip_prefix('<') {
        out.push('^');
        body = rest;
    }
    let anchored_end = body.ends_with('>');
    let body = body.trim_end_matches('>');
    for element in body.split('-') {
        let element = element.trim();
        if element.is_empty() {
            return Err("empty element".into());
        }
        if let Some(rest) = element.strip_prefix('x') {
            let any = format!("[{amino}]");
            if rest.is_empty() {
                out.push_str(&any);
            } else if let Some(args) = rest.strip_prefix('(').and_then(|s| s.strip_suffix(')')) {
                match args.split_once(',') {
                    Some((lo, hi)) => out.push_str(&format!("{any}{{{lo},{hi}}}")),
                    None => out.push_str(&format!("{any}{{{args}}}")),
                }
            } else {
                return Err(format!("malformed gap '{element}'"));
            }
        } else if let Some(set) = element.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            out.push_str(&format!("[{set}]"));
        } else if let Some(not) = element.strip_prefix('{').and_then(|s| s.strip_suffix('}')) {
            // Exclusion, restricted to the amino alphabet.
            let allowed: String = amino.chars().filter(|c| !not.contains(*c)).collect();
            out.push_str(&format!("[{allowed}]"));
        } else if element.len() == 1 && amino.contains(element) {
            out.push_str(element);
        } else {
            return Err(format!("unsupported element '{element}'"));
        }
    }
    if anchored_end {
        out.push('$');
    }
    out.push('/');
    Ok(out)
}

/// Renders a concrete instance of a motif (for planting true positives).
pub fn instantiate(motif: &str, r: &mut ChaCha8Rng) -> Vec<u8> {
    let mut out = Vec::new();
    for element in motif
        .trim_end_matches('>')
        .trim_start_matches('<')
        .split('-')
    {
        let element = element.trim();
        if let Some(rest) = element.strip_prefix('x') {
            let n = if let Some(args) = rest.strip_prefix('(').and_then(|s| s.strip_suffix(')')) {
                match args.split_once(',') {
                    Some((lo, _)) => lo.parse().unwrap_or(1),
                    None => args.parse().unwrap_or(1),
                }
            } else {
                1
            };
            for _ in 0..n {
                out.push(AMINO_ACIDS[r.random_range(0..20)]);
            }
        } else if let Some(set) = element.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            let bytes = set.as_bytes();
            out.push(bytes[r.random_range(0..bytes.len())]);
        } else if let Some(not) = element.strip_prefix('{').and_then(|s| s.strip_suffix('}')) {
            loop {
                let c = AMINO_ACIDS[r.random_range(0..20)];
                if !not.contains(c as char) {
                    out.push(c);
                    break;
                }
            }
        } else if !element.is_empty() {
            out.push(element.as_bytes()[0]);
        }
    }
    out
}

/// Builds the benchmark: motif automata plus a protein database with a
/// handful of planted motif instances.
pub fn build(params: &ProtomataParams) -> (azoo_core::Automaton, Vec<u8>) {
    let mut r = azoo_workloads::rng(params.seed);
    let motifs: Vec<String> = (0..params.motifs).map(|_| generate_motif(&mut r)).collect();
    let regexes: Vec<String> = motifs
        .iter()
        .map(|m| prosite_to_regex(m).expect("generated motifs are well-formed"))
        .collect();
    let ruleset: Ruleset = compile_ruleset(regexes.iter().map(String::as_str));
    let planted: Vec<Vec<u8>> = motifs
        .iter()
        .take(8)
        .map(|m| instantiate(m, &mut r))
        .collect();
    let input = protein_database(params.seed ^ 0x1234, params.input_len, &planted);
    (ruleset.automaton, input)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use azoo_engines::{CollectSink, Engine, NfaEngine};

    #[test]
    fn translation_of_known_motif() {
        // The classic zinc-finger-like motif shape.
        let re = prosite_to_regex("C-x(2,4)-C-x(3)-[LIVMFYWC]-x(8)-H-x(3,5)-H").unwrap();
        assert!(re.starts_with('/') && re.ends_with('/'));
        assert!(re.contains("{2,4}"));
        let a = azoo_regex::compile(&re, 0).unwrap();
        a.validate().unwrap();
    }

    #[test]
    fn anchors_translate() {
        let re = prosite_to_regex("<A-C-D>").unwrap();
        assert!(re.starts_with("/^"));
        assert!(re.ends_with("$/"));
    }

    #[test]
    fn exclusion_excludes() {
        let re = prosite_to_regex("{P}").unwrap();
        assert!(!re[2..re.len() - 2].contains('P'));
        assert!(re.contains('A'));
    }

    #[test]
    fn malformed_motifs_error() {
        assert!(prosite_to_regex("A--C").is_err());
        assert!(prosite_to_regex("x(").is_err());
        assert!(prosite_to_regex("B1").is_err());
    }

    #[test]
    fn instances_match_their_motifs() {
        let mut r = azoo_workloads::rng(3);
        for _ in 0..10 {
            let motif = generate_motif(&mut r);
            let re = prosite_to_regex(&motif).unwrap();
            let a = azoo_regex::compile(&re, 0).unwrap();
            let instance = instantiate(&motif, &mut r);
            let mut engine = NfaEngine::new(&a).unwrap();
            let mut sink = CollectSink::new();
            engine.scan(&instance, &mut sink);
            assert!(
                !sink.reports().is_empty(),
                "instance of '{motif}' (re {re}) not matched"
            );
        }
    }

    #[test]
    fn benchmark_finds_planted_motifs() {
        let (a, input) = build(&ProtomataParams {
            motifs: 40,
            input_len: 100_000,
            seed: 6,
        });
        let mut engine = NfaEngine::new(&a).unwrap();
        let mut sink = CollectSink::new();
        engine.scan(&input, &mut sink);
        let codes: std::collections::HashSet<u32> =
            sink.reports().iter().map(|r| r.code.0).collect();
        // At least half of the eight planted motifs must be found (some
        // instances may be clipped by record breaks).
        let planted_found = (0..8).filter(|c| codes.contains(c)).count();
        assert!(planted_found >= 4, "only {planted_found}/8 planted found");
    }
}

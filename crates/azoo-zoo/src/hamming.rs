//! Hamming-distance mesh automata (Roy & Aluru; AutomataZoo Section X).
//!
//! A Hamming filter for pattern `p` of length `l` and distance `d`
//! reports every input window of length `l` within Hamming distance `d`
//! of `p`. The mesh tracks `(position, mismatches)` with two state tracks
//! — one entered by matching `p[i]`, one by mismatching — which makes the
//! automaton homogeneous (the symbol class lives on the state).

use azoo_core::{Automaton, StartKind, SymbolClass};
use azoo_workloads::dna;

/// Parameters for the Hamming benchmark family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HammingParams {
    /// Encoded pattern length `l`.
    pub length: usize,
    /// Mismatch threshold `d`.
    pub distance: usize,
    /// Number of filters `N`.
    pub filters: usize,
    /// Input length in base-pairs.
    pub input_len: usize,
    /// Generation seed.
    pub seed: u64,
}

impl HammingParams {
    /// The paper's three published variants (Table V): `18x3`, `22x5`,
    /// `31x10`, each with 1,000 filters.
    pub fn published(length: usize, distance: usize) -> Self {
        HammingParams {
            length,
            distance,
            filters: 1000,
            input_len: 1 << 20,
            seed: 0xA200 + (length * 100 + distance) as u64,
        }
    }
}

/// Builds one Hamming filter automaton for `pattern` within distance `d`.
/// All final-column states report with `code`.
///
/// # Panics
///
/// Panics if the pattern is empty or `d >= pattern.len()`.
#[allow(clippy::needless_range_loop)] // index loops mirror the (i, k, track) mesh
pub fn hamming_filter(pattern: &[u8], d: usize, code: u32) -> Automaton {
    let l = pattern.len();
    assert!(l > 0, "empty pattern");
    assert!(d < l, "distance must be below pattern length");
    let mut a = Automaton::new();
    // State (i, k, track): consumed i symbols (1-based), k mismatches;
    // track 0 = entered by match, track 1 = entered by mismatch.
    // ids[i-1][k][track]
    let mut ids = vec![[[None::<azoo_core::StateId>; 2]; 32]; l];
    assert!(d < 31, "distance out of supported range");
    for i in 1..=l {
        let sym = SymbolClass::from_byte(pattern[i - 1]);
        let nsym = sym.complement();
        for k in 0..=d.min(i) {
            // Match track: k mismatches among first i-1 symbols, i-th
            // matched. Exists when k <= i-1.
            if k < i {
                let start = if i == 1 {
                    StartKind::AllInput
                } else {
                    StartKind::None
                };
                let s = a.add_ste(sym, start);
                ids[i - 1][k][0] = Some(s);
            }
            // Mismatch track: i-th symbol mismatched, so k >= 1.
            if k >= 1 {
                let start = if i == 1 {
                    StartKind::AllInput
                } else {
                    StartKind::None
                };
                let s = a.add_ste(nsym, start);
                ids[i - 1][k][1] = Some(s);
            }
        }
    }
    // Wire transitions and reports.
    for i in 1..=l {
        for k in 0..=d.min(i) {
            for track in 0..2 {
                let Some(s) = ids[i - 1][k][track] else {
                    continue;
                };
                if i == l {
                    a.set_report(s, code);
                    continue;
                }
                if let Some(m) = ids[i][k][0] {
                    a.add_edge(s, m);
                }
                if k < d {
                    if let Some(mm) = ids[i][k + 1][1] {
                        a.add_edge(s, mm);
                    }
                }
            }
        }
    }
    a
}

/// Builds the full benchmark: `filters` filters over random DNA patterns,
/// plus the standard random-DNA input stimulus.
pub fn build(params: &HammingParams) -> (Automaton, Vec<u8>) {
    let mut a = Automaton::new();
    for i in 0..params.filters {
        let pattern = dna::random_dna(params.seed ^ (i as u64 + 1), params.length);
        let f = hamming_filter(&pattern, params.distance, i as u32);
        a.append(&f);
    }
    let input = dna::random_dna(params.seed ^ 0xFFFF_0001, params.input_len);
    (a, input)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use azoo_engines::{CollectSink, Engine, NfaEngine};

    /// Reference: all window end-offsets within Hamming distance d.
    fn naive_hamming(pattern: &[u8], d: usize, input: &[u8]) -> Vec<u64> {
        let l = pattern.len();
        let mut out = Vec::new();
        for start in 0..input.len().saturating_sub(l - 1) {
            let mism = pattern
                .iter()
                .zip(&input[start..start + l])
                .filter(|(a, b)| a != b)
                .count();
            if mism <= d {
                out.push((start + l - 1) as u64);
            }
        }
        out
    }

    #[test]
    fn filter_agrees_with_naive_scan() {
        let pattern = b"ACGTAC";
        for d in 0..4 {
            let a = hamming_filter(pattern, d, 0);
            a.validate().unwrap();
            let input = dna::random_dna(5, 400);
            let mut engine = NfaEngine::new(&a).unwrap();
            let mut sink = CollectSink::new();
            engine.scan(&input, &mut sink);
            let mut got: Vec<u64> = sink.reports().iter().map(|r| r.offset).collect();
            got.sort_unstable();
            got.dedup();
            assert_eq!(got, naive_hamming(pattern, d, &input), "d={d}");
        }
    }

    #[test]
    fn exact_match_reports_once_per_occurrence() {
        let a = hamming_filter(b"AAAA", 0, 0);
        let mut engine = NfaEngine::new(&a).unwrap();
        let mut sink = CollectSink::new();
        engine.scan(b"CCAAAACC", &mut sink);
        assert_eq!(sink.reports().len(), 1);
    }

    #[test]
    fn state_count_scales_with_l_and_d() {
        let small = hamming_filter(&dna::random_dna(1, 18), 3, 0);
        let large = hamming_filter(&dna::random_dna(1, 31), 10, 0);
        assert!(large.state_count() > 2 * small.state_count());
        // Roughly 2(d+1) states per column.
        assert!(small.state_count() >= 18 * 4 && small.state_count() <= 18 * 8);
    }

    #[test]
    fn benchmark_has_one_subgraph_per_filter() {
        let (a, input) = build(&HammingParams {
            length: 10,
            distance: 2,
            filters: 7,
            input_len: 500,
            seed: 1,
        });
        let stats = azoo_core::AutomatonStats::compute(&a);
        assert_eq!(stats.subgraphs, 7);
        assert_eq!(input.len(), 500);
        a.validate().unwrap();
    }
}

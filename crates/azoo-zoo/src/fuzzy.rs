//! Fuzzy (bounded edit-distance) workload family — the ROADMAP's
//! "approximate matching as a first-class scenario".
//!
//! Two corpora, both built on `azoo_fuzzy`'s general Levenshtein-
//! automaton construction rather than the fixed Table-V instances:
//!
//! * **Fuzzy Snort** — the synthetic Snort corpus's plain content
//!   literals (`word_word_NNNNN`, case-insensitive) compiled at edit
//!   distance `k` with the full Levenshtein profile, modelling
//!   signature matching that survives attacker typo-mutations;
//! * **Fuzzy DNA** — random DNA motifs compiled at mismatch budget `k`
//!   with the substitution-only (Hamming) profile, the
//!   motifs-with-mismatches search CRISPR-style pipelines run.
//!
//! Inputs plant both exact occurrences and copies mutated by exactly
//! `k` edits, so every error layer of the mesh does real work during a
//! scan (and `k = 0` automata genuinely miss the mutated plants).

use azoo_core::{Automaton, SymbolClass};
use azoo_fuzzy::{fuzzy_automaton, fuzzy_from_bytes, EditProfile, FuzzyStats};
use azoo_workloads::dna;
use rand::RngExt;
use rand_chacha::ChaCha8Rng;

/// Parameters for one fuzzy workload build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzyParams {
    /// Number of patterns compiled into the database.
    pub patterns: usize,
    /// Edit budget `k` (error layers = `k + 1`).
    pub max_edits: usize,
    /// Input length in bytes.
    pub input_len: usize,
    /// Generation seed.
    pub seed: u64,
}

impl FuzzyParams {
    /// Standard fuzzy-Snort instance at edit distance `k`.
    pub fn published_snort(max_edits: usize) -> Self {
        FuzzyParams {
            patterns: 400,
            max_edits,
            input_len: 1 << 20,
            seed: 0xF0220 + max_edits as u64,
        }
    }

    /// Standard fuzzy-DNA instance (20bp motifs) at mismatch budget `k`.
    pub fn published_dna(max_edits: usize) -> Self {
        FuzzyParams {
            patterns: 1000,
            max_edits,
            input_len: 1 << 20,
            seed: 0xD2A00 + max_edits as u64,
        }
    }
}

/// Length of the generated DNA motifs.
const MOTIF_LEN: usize = 20;

/// The Snort-corpus content strings the fuzzy family compiles: the same
/// `word_word_NNNNN` literals `snort::generate_ruleset` emits as plain
/// content rules.
pub fn content_strings(seed: u64, n: usize) -> Vec<Vec<u8>> {
    crate::snort::generate_ruleset(seed, 4 * n)
        .into_iter()
        .filter_map(|rule| {
            // Plain content rules read /word_word_NNNNN/i with no
            // buffer modifiers; keep the literal. The underscore check
            // excludes the tiny http-buffer fragments (`/er/i`, ...).
            if !rule.modifiers.is_empty() {
                return None;
            }
            let p = rule.pattern.as_str();
            let body = p.strip_prefix('/')?.strip_suffix("/i")?;
            (body.contains('_') && body.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_'))
                .then(|| body.as_bytes().to_vec())
        })
        .take(n)
        .collect()
}

/// Applies exactly `edits` random edits of the given profile to `p`.
fn mutate(
    rng: &mut ChaCha8Rng,
    p: &[u8],
    edits: usize,
    profile: EditProfile,
    pool: &[u8],
) -> Vec<u8> {
    let mut out = p.to_vec();
    let mut kinds = Vec::new();
    if profile.substitutions {
        kinds.push(0u8);
    }
    if profile.insertions {
        kinds.push(1);
    }
    if profile.deletions {
        kinds.push(2);
    }
    for _ in 0..edits {
        if out.is_empty() || kinds.is_empty() {
            break;
        }
        let at = rng.random_range(0..out.len());
        match kinds[rng.random_range(0..kinds.len())] {
            0 => {
                let old = out[at];
                let mut new = pool[rng.random_range(0..pool.len())];
                while new == old {
                    new = pool[rng.random_range(0..pool.len())];
                }
                out[at] = new;
            }
            1 => out.insert(at, pool[rng.random_range(0..pool.len())]),
            _ => {
                out.remove(at);
            }
        }
    }
    out
}

/// Plants `plants` into `noise` at evenly strided offsets.
fn plant(noise: &mut [u8], plants: &[Vec<u8>]) {
    if plants.is_empty() {
        return;
    }
    let stride = noise.len() / plants.len();
    for (i, p) in plants.iter().enumerate() {
        let at = i * stride;
        if at + p.len() <= noise.len() {
            noise[at..at + p.len()].copy_from_slice(p);
        }
    }
}

/// Builds the fuzzy-Snort workload: case-insensitive content strings at
/// edit distance `max_edits` under the full Levenshtein profile, over an
/// ASCII stream seeded with exact and `k`-mutated occurrences.
pub fn build_snort(params: &FuzzyParams) -> (Automaton, Vec<u8>, FuzzyStats) {
    let mut rng = azoo_workloads::rng(params.seed);
    let patterns = content_strings(params.seed, params.patterns);
    let mut a = Automaton::new();
    let mut stats = FuzzyStats {
        states: 0,
        edges: 0,
        layers: params.max_edits + 1,
        pattern_len: 0,
        est_active_width: 0,
    };
    for (i, p) in patterns.iter().enumerate() {
        let classes: Vec<SymbolClass> = p
            .iter()
            .map(|&b| SymbolClass::from_byte(b).ascii_case_fold())
            .collect();
        let (f, s) = fuzzy_automaton(
            &classes,
            params.max_edits,
            EditProfile::LEVENSHTEIN,
            i as u32,
        )
        .expect("content strings are longer than any supported edit budget");
        a.append(&f);
        stats.states += s.states;
        stats.edges += s.edges;
        stats.pattern_len = stats.pattern_len.max(s.pattern_len);
        stats.est_active_width += s.est_active_width;
    }
    // Printable ASCII noise with exact and k-mutated plants; mutations
    // use the benchmark's own alphabet so k = 0 automata miss them.
    const ASCII: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_ /:.&=-";
    let mut input: Vec<u8> = (0..params.input_len)
        .map(|_| ASCII[rng.random_range(0..ASCII.len())])
        .collect();
    let plants: Vec<Vec<u8>> = patterns
        .iter()
        .enumerate()
        .map(|(i, p)| {
            if i % 2 == 0 {
                p.clone()
            } else {
                mutate(
                    &mut rng,
                    p,
                    params.max_edits.max(1),
                    EditProfile::LEVENSHTEIN,
                    ASCII,
                )
            }
        })
        .collect();
    plant(&mut input, &plants);
    (a, input, stats)
}

/// Builds the fuzzy-DNA workload: random motifs at mismatch budget
/// `max_edits` under the substitution-only profile, over random DNA with
/// exact and `k`-substituted plants.
pub fn build_dna(params: &FuzzyParams) -> (Automaton, Vec<u8>, FuzzyStats) {
    let mut rng = azoo_workloads::rng(params.seed ^ 0xD0A);
    let motifs: Vec<Vec<u8>> = (0..params.patterns)
        .map(|i| dna::random_dna(params.seed ^ (i as u64 + 1), MOTIF_LEN))
        .collect();
    let mut a = Automaton::new();
    let mut stats = FuzzyStats {
        states: 0,
        edges: 0,
        layers: params.max_edits + 1,
        pattern_len: 0,
        est_active_width: 0,
    };
    for (i, m) in motifs.iter().enumerate() {
        let (f, s) = fuzzy_from_bytes(m, params.max_edits, EditProfile::HAMMING, i as u32)
            .expect("motifs are longer than any supported edit budget");
        a.append(&f);
        stats.states += s.states;
        stats.edges += s.edges;
        stats.pattern_len = stats.pattern_len.max(s.pattern_len);
        stats.est_active_width += s.est_active_width;
    }
    let mut input = dna::random_dna(params.seed ^ 0xFFFF_0003, params.input_len);
    let plants: Vec<Vec<u8>> = motifs
        .iter()
        .enumerate()
        .map(|(i, m)| {
            if i % 2 == 0 {
                m.clone()
            } else {
                mutate(
                    &mut rng,
                    m,
                    params.max_edits.max(1),
                    EditProfile::HAMMING,
                    &dna::DNA,
                )
            }
        })
        .collect();
    plant(&mut input, &plants);
    (a, input, stats)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use azoo_engines::{CollectSink, Engine, NfaEngine};

    fn report_count(a: &Automaton, input: &[u8]) -> usize {
        let mut engine = NfaEngine::new(a).unwrap();
        let mut sink = CollectSink::new();
        engine.scan(input, &mut sink);
        sink.reports().len()
    }

    #[test]
    fn content_strings_come_from_the_snort_corpus() {
        let strings = content_strings(0xF0221, 16);
        assert_eq!(strings.len(), 16);
        for s in &strings {
            // word_word_NNNNN shape: two corpus words and a 5-digit tag.
            let text = std::str::from_utf8(s).unwrap();
            let parts: Vec<&str> = text.split('_').collect();
            assert!(parts.len() >= 3, "unexpected content string {text}");
            assert_eq!(parts.last().unwrap().len(), 5);
            assert!(s.len() > azoo_fuzzy::MAX_EDITS as usize);
        }
    }

    #[test]
    fn snort_workload_reports_grow_with_k() {
        // One shared stimulus (the k = 1 build's, with 1-edit mutated
        // plants) scanned by all three budgets: larger budgets accept
        // supersets of the language, so counts must be monotone.
        let params = |k: usize| {
            let mut p = FuzzyParams::published_snort(k);
            p.patterns = 6;
            p.input_len = 4096;
            p.seed = 0xF0220;
            p
        };
        let (_, input, _) = build_snort(&params(1));
        let counts: Vec<usize> = (0..=2)
            .map(|k| {
                let (a, _, stats) = build_snort(&params(k));
                assert_eq!(a.validate_all(), Vec::new());
                assert_eq!(stats.layers, k + 1);
                report_count(&a, &input)
            })
            .collect();
        assert!(
            counts[0] <= counts[1] && counts[1] <= counts[2],
            "{counts:?}"
        );
        assert!(
            counts[1] > counts[0],
            "mutated plants need k >= 1: {counts:?}"
        );
    }

    #[test]
    fn dna_workload_detects_mutated_motifs_only_at_k() {
        let mut p = FuzzyParams::published_dna(2);
        p.patterns = 4;
        p.input_len = 4096;
        let (a2, input, _) = build_dna(&p);
        assert_eq!(a2.validate_all(), Vec::new());
        let with_k = report_count(&a2, &input);
        let (a0, _, _) = build_dna(&FuzzyParams { max_edits: 0, ..p });
        // Same motifs at k = 0 see strictly fewer hits on the same
        // stimulus: the 2-substituted plants are invisible to them.
        let without_k = report_count(&a0, &input);
        assert!(with_k > without_k, "k=2 {with_k} vs k=0 {without_k}");
        assert!(with_k >= 4, "every plant should be found at k=2");
    }
}

//! The Snort network-intrusion-detection benchmark (Sections IV and V).
//!
//! The real registered Snort ruleset is not redistributable, so this
//! module generates a synthetic ruleset with the same structural taxonomy
//! the paper manipulates:
//!
//! * ordinary content / pcre rules (the benchmark body),
//! * rules carrying Snort-specific regex modifiers (`http_uri`-style)
//!   whose patterns are only meaningful applied to a packet sub-buffer —
//!   matched against the whole stream they report absurdly often,
//! * `isdataat`-style rules, including one extreme outlier responsible
//!   for a large share of all reports (Section V observes exactly this),
//! * a few rules using unsupported constructs (back-references) that the
//!   open-source compiler must skip, as `pcre2mnrl` does.
//!
//! [`filter_rules`] reproduces the paper's two-stage exclusion, and the
//! Section-V harness shows the same multiplicative report-rate drops.

use azoo_regex::{compile_ruleset, Ruleset};
use azoo_workloads::network::{pcap_like, PcapConfig};
use rand::RngExt;

/// Snort rule-option modifiers relevant to the Section V methodology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Modifier {
    /// Pattern applies to a specific HTTP buffer (`http_uri`,
    /// `http_header`, ...), not the raw stream.
    HttpBuffer,
    /// Rule checks for data existence downstream of the match.
    IsDataAt,
}

/// One synthetic Snort rule.
#[derive(Debug, Clone)]
pub struct SnortRule {
    /// The rule's pcre pattern (delimited notation).
    pub pattern: String,
    /// Snort-specific modifiers attached to the rule.
    pub modifiers: Vec<Modifier>,
}

/// Parameters for the Snort benchmark.
#[derive(Debug, Clone, Copy)]
pub struct SnortParams {
    /// Total rules generated (before exclusions).
    pub rules: usize,
    /// Input stream size in bytes.
    pub input_len: usize,
    /// Generation seed.
    pub seed: u64,
}

impl Default for SnortParams {
    fn default() -> Self {
        SnortParams {
            rules: 3200,
            input_len: 1 << 20,
            seed: 0x5210,
        }
    }
}

const WORDS: [&str; 12] = [
    "admin", "shell", "exploit", "select", "union", "passwd", "cmd", "script", "eval", "update",
    "login", "config",
];

/// Generates the synthetic ruleset.
pub fn generate_ruleset(seed: u64, n: usize) -> Vec<SnortRule> {
    let mut r = azoo_workloads::rng(seed);
    let mut rules = Vec::with_capacity(n);
    for i in 0..n {
        let roll = r.random_range(0..100);
        let word = WORDS[r.random_range(0..WORDS.len())];
        let word2 = WORDS[r.random_range(0..WORDS.len())];
        if roll < 45 {
            // Plain content rules: distinctive multi-byte literals.
            let tag: u32 = r.random_range(0..100_000);
            rules.push(SnortRule {
                pattern: format!("/{word}_{word2}_{tag:05}/i"),
                modifiers: vec![],
            });
        } else if roll < 65 {
            // Regex rules with classes and counted repetition.
            let pattern = match r.random_range(0..4) {
                0 => format!(
                    r"/GET \/[a-z0-9_]{{3,24}}\/{word}\.(php|asp|cgi)\?id=\d{{1,8}}&tok=[a-f0-9]{{8,24}}/i"
                ),
                1 => format!(r"/User-Agent: {word}[A-Za-z0-9\.\-]{{8,40}}/"),
                2 => format!(r"/\x90{{16,48}}[\x00-\x1f]{word}/s"),
                _ => format!(
                    r"/({word}|{word2})=[a-z0-9]{{8,32}}&sid=\d{{2,8}}&h=[0-9a-f]{{4,16}}/i"
                ),
            };
            rules.push(SnortRule {
                pattern,
                modifiers: vec![],
            });
        } else if roll < 72 {
            // Structural rules that legitimately match per packet — the
            // benchmark's steady base report rate.
            let pattern = [
                r"/\.php\?id=/",
                r"/Host: example/",
                r"/HTTP\/1\.[01]/",
                r"/GET \/|POST \//",
                "/\\r\\n\\r\\n/",
            ][r.random_range(0..5)];
            rules.push(SnortRule {
                pattern: pattern.to_owned(),
                modifiers: vec![],
            });
        } else if roll < 90 {
            // http-buffer rules: tiny, extremely common fragments that
            // flood when applied to the raw stream instead of the URI
            // buffer they were written for.
            let frag = ["er", "in", "on", "re", "at", "es", "ti", "or"][r.random_range(0..8)];
            rules.push(SnortRule {
                pattern: format!("/{}/i", regex_escape(frag)),
                modifiers: vec![Modifier::HttpBuffer],
            });
        } else if roll < 95 {
            // isdataat rules: frequent fragments; every seventeenth is
            // the pathological space-matching outlier Section V observes
            // dominating the post-filter report stream.
            let frag = if i % 17 == 0 { " " } else { "d=" };
            rules.push(SnortRule {
                pattern: format!("/{}/", regex_escape(frag)),
                modifiers: vec![Modifier::IsDataAt],
            });
        } else {
            // Rules the open-source compiler cannot support.
            rules.push(SnortRule {
                pattern: format!(r"/({word})x\1/"),
                modifiers: vec![],
            });
        }
    }
    rules
}

fn regex_escape(s: &str) -> String {
    let mut out = String::new();
    for c in s.chars() {
        if !c.is_ascii_alphanumeric() {
            out.push('\\');
        }
        out.push(c);
    }
    out
}

/// Applies the Section-V exclusions: optionally drop rules with
/// Snort-specific buffer modifiers, and/or `isdataat` rules.
pub fn filter_rules(
    rules: &[SnortRule],
    exclude_http_buffer: bool,
    exclude_isdataat: bool,
) -> Vec<&SnortRule> {
    rules
        .iter()
        .filter(|rule| {
            !((exclude_http_buffer && rule.modifiers.contains(&Modifier::HttpBuffer))
                || (exclude_isdataat && rule.modifiers.contains(&Modifier::IsDataAt)))
        })
        .collect()
}

/// Compiles a rule list into one automaton (skipping what the front-end
/// cannot compile, as the paper's methodology does).
pub fn compile_rules(rules: &[&SnortRule]) -> Ruleset {
    compile_ruleset(rules.iter().map(|r| r.pattern.as_str()))
}

/// Builds the AutomataZoo Snort benchmark: the fully filtered ruleset
/// (both exclusions applied) plus the standard PCAP-like input carrying
/// planted attack strings.
pub fn build(params: &SnortParams) -> (azoo_core::Automaton, Vec<u8>) {
    let rules = generate_ruleset(params.seed, params.rules);
    let kept = filter_rules(&rules, true, true);
    let ruleset = compile_rules(&kept);
    let mut r = azoo_workloads::rng(params.seed ^ 0xABCD);
    // Plant literal fragments derived from a few plain rules.
    let planted: Vec<Vec<u8>> = kept
        .iter()
        .filter(|rule| rule.modifiers.is_empty() && !rule.pattern.contains('\\'))
        .take(20)
        .map(|rule| {
            rule.pattern
                .trim_matches('/')
                .trim_end_matches('i')
                .trim_matches('/')
                .as_bytes()
                .to_vec()
        })
        .collect();
    let input = pcap_like(
        r.random(),
        &PcapConfig {
            len: params.input_len,
            planted,
            plant_rate: 0.02,
        },
    );
    (ruleset.automaton, input)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use azoo_engines::{CountSink, Engine, NfaEngine};

    #[test]
    fn ruleset_has_all_classes() {
        let rules = generate_ruleset(1, 1000);
        assert_eq!(rules.len(), 1000);
        let http = rules
            .iter()
            .filter(|r| r.modifiers.contains(&Modifier::HttpBuffer))
            .count();
        let isd = rules
            .iter()
            .filter(|r| r.modifiers.contains(&Modifier::IsDataAt))
            .count();
        assert!(http > 100 && isd > 20, "http={http} isdataat={isd}");
    }

    #[test]
    fn filtering_removes_exactly_flagged_rules() {
        let rules = generate_ruleset(2, 500);
        let all = filter_rules(&rules, false, false).len();
        let no_http = filter_rules(&rules, true, false).len();
        let no_both = filter_rules(&rules, true, true).len();
        assert_eq!(all, 500);
        assert!(no_http < all);
        assert!(no_both < no_http);
    }

    #[test]
    fn unsupported_rules_are_skipped_not_fatal() {
        let rules = generate_ruleset(3, 400);
        let kept = filter_rules(&rules, true, true);
        let rs = compile_rules(&kept);
        assert!(rs.compiled > 0);
        assert!(!rs.skipped.is_empty(), "backref rules should be skipped");
        rs.automaton.validate().unwrap();
    }

    #[test]
    fn modifier_rules_dominate_report_volume() {
        // The Section V phenomenon at small scale: including the modifier
        // rules inflates the report rate by a large factor.
        let rules = generate_ruleset(4, 400);
        let input = pcap_like(
            9,
            &PcapConfig {
                len: 50_000,
                ..PcapConfig::default()
            },
        );
        let count_reports = |set: &[&SnortRule]| -> u64 {
            let rs = compile_rules(set);
            let mut engine = NfaEngine::new(&rs.automaton).unwrap();
            let mut sink = CountSink::new();
            engine.scan(&input, &mut sink);
            sink.count()
        };
        let unfiltered = count_reports(&filter_rules(&rules, false, false));
        let filtered = count_reports(&filter_rules(&rules, true, true));
        assert!(
            unfiltered > 4 * filtered.max(1),
            "unfiltered {unfiltered} vs filtered {filtered}"
        );
    }

    #[test]
    fn benchmark_builds_and_matches_planted_content() {
        let (a, input) = build(&SnortParams {
            rules: 300,
            input_len: 60_000,
            seed: 11,
        });
        let mut engine = NfaEngine::new(&a).unwrap();
        let mut sink = CountSink::new();
        engine.scan(&input, &mut sink);
        assert!(sink.count() > 0, "planted strings should fire rules");
    }
}

//! The File Carving benchmark (Section IX-B).
//!
//! File carving recovers files from raw byte streams by recognizing
//! header/footer patterns. Simple exact-match headers produce floods of
//! false positives, so AutomataZoo's benchmark validates the *bit-fields*
//! inside headers — e.g. the MS-DOS timestamp in a PKZip local file
//! header, whose seconds/minutes/hours fields cross byte boundaries.
//! Those patterns are authored as **bit-level automata** (alphabet
//! `{0, 1}`) and automatically 8-strided into byte automata.
//!
//! The benchmark is nine patterns: PKZip local header (with full
//! timestamp validation), PKZip end-of-central-directory, MPEG-2 pack
//! header (with marker-bit validation), MPEG-2 video PES header, MPEG-2
//! system header, MPEG program end, MP4 `ftyp` box, e-mail addresses,
//! and SSNs.

use azoo_core::{Automaton, SymbolClass};
use azoo_passes::stride8;
use azoo_regex::{compile, compile_pattern, Ast, Flags, Pattern};
use azoo_workloads::media::{carving_stimulus, CarvingConfig};

/// Parameters for the File Carving benchmark.
#[derive(Debug, Clone, Copy)]
pub struct FileCarvingParams {
    /// Input stream size in bytes.
    pub input_len: usize,
    /// Generation seed.
    pub seed: u64,
}

impl Default for FileCarvingParams {
    fn default() -> Self {
        FileCarvingParams {
            input_len: 1 << 20,
            seed: 0xF11E,
        }
    }
}

/// Report codes for the nine carved patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Carved {
    /// PKZip local file header with validated DOS timestamp.
    ZipLocalHeader = 0,
    /// PKZip end-of-central-directory record.
    ZipEndOfDirectory = 1,
    /// MPEG-2 program-stream pack header with '01' marker bits.
    Mpeg2Pack = 2,
    /// MPEG-2 video PES start code (0xE0-0xEF).
    Mpeg2VideoPes = 3,
    /// MPEG-2 system header start code.
    Mpeg2System = 4,
    /// MPEG program-end code.
    MpegProgramEnd = 5,
    /// MP4 `ftyp` box with known brands.
    Mp4Ftyp = 6,
    /// E-mail address.
    Email = 7,
    /// Social security number.
    Ssn = 8,
}

// ---- bit-level AST helpers ------------------------------------------------

fn bit(v: bool) -> Ast {
    Ast::Class(SymbolClass::from_byte(v as u8))
}

fn any_bit() -> Ast {
    Ast::Class(SymbolClass::from_bytes(&[0, 1]))
}

fn any_bits(n: usize) -> Vec<Ast> {
    (0..n).map(|_| any_bit()).collect()
}

/// The 8 bits of a byte, MSB first.
fn byte_bits(b: u8) -> Vec<Ast> {
    (0..8).map(|i| bit((b >> (7 - i)) & 1 == 1)).collect()
}

fn bytes_bits(bytes: &[u8]) -> Vec<Ast> {
    bytes.iter().flat_map(|&b| byte_bits(b)).collect()
}

/// `width`-bit field (MSB first) constrained to `value <= max`.
fn le_field(width: usize, max: u32) -> Ast {
    assert!(width <= 32 && max < (1u64 << width) as u32);
    // One branch per 1-bit of `max` (higher bits equal, this bit 0, rest
    // free), plus the exact value.
    let mut branches = Vec::new();
    for pos in (0..width).rev() {
        if max >> pos & 1 == 1 {
            let mut bits = Vec::with_capacity(width);
            for p in (0..width).rev() {
                use std::cmp::Ordering;
                match p.cmp(&pos) {
                    Ordering::Greater => bits.push(bit(max >> p & 1 == 1)),
                    Ordering::Equal => bits.push(bit(false)),
                    Ordering::Less => bits.push(any_bit()),
                }
            }
            branches.push(Ast::Concat(bits));
        }
    }
    branches.push(Ast::Concat(
        (0..width).rev().map(|p| bit(max >> p & 1 == 1)).collect(),
    ));
    Ast::Alt(branches)
}

/// `width`-bit field constrained to `value >= 1` (not all zeros): one
/// branch per position of the first 1-bit.
fn nonzero_field(width: usize) -> Ast {
    let branches = (0..width)
        .map(|first_one| {
            let mut bits = vec![bit(false); first_one];
            bits.push(bit(true));
            bits.extend(any_bits(width - first_one - 1));
            Ast::Concat(bits)
        })
        .collect();
    Ast::Alt(branches)
}

/// Bit-level pattern for a valid little-endian MS-DOS time: stream order
/// is low byte then high byte, MSB-first within each byte. Fields of the
/// 16-bit value `v`: seconds/2 = v4..v0 (<= 29), minutes = v10..v5
/// (<= 59), hours = v15..v11 (<= 23). The minutes field crosses the byte
/// boundary — the case byte-level regexes cannot express.
fn dos_time_bits() -> Ast {
    // Stream positions: byte0 = v7..v0, byte1 = v15..v8.
    // minutes = v10..v5: v10,v9,v8 live in byte1 (last 3 stream bits),
    // v7,v6,v5 lead byte0. Constraint "minutes <= 59" means
    // NOT(v10 v9 v8 = 111 AND v7 = 1). Factor into branches over the
    // coupled bits, with seconds (v4..v0, contiguous in byte0) and hours
    // (v15..v11, contiguous in byte1) nested inside.
    let sec = le_field(5, 29);
    let hours = le_field(5, 23);
    let branch = |v7: Option<bool>, high3: Vec<Ast>| -> Ast {
        let mut bits = Vec::new();
        bits.push(v7.map_or_else(any_bit, bit)); // v7
        bits.extend(any_bits(2)); // v6 v5 free
        bits.push(sec.clone()); // v4..v0
        bits.push(hours.clone()); // v15..v11
        bits.extend(high3); // v10 v9 v8
        Ast::Concat(bits)
    };
    Ast::Alt(vec![
        // v7 = 0: minutes <= 59 regardless of the high bits' value,
        // as long as v10..v8 themselves don't exceed: 0b111 with v7=0 is
        // minutes 56..59 — still valid. So high bits free.
        branch(Some(false), any_bits(3)),
        // v7 = 1: need v10 v9 v8 != 111.
        branch(Some(true), vec![bit(false), any_bit(), any_bit()]),
        branch(Some(true), vec![bit(true), bit(false), any_bit()]),
        branch(Some(true), vec![bit(true), bit(true), bit(false)]),
    ])
}

/// Bit-level pattern for a valid little-endian MS-DOS date: day = v4..v0
/// (>= 1), month = v8..v5 (1..=12, crossing the byte boundary), year =
/// v15..v9 (free).
fn dos_date_bits() -> Ast {
    let day = nonzero_field(5);
    // month = v8 v7 v6 v5; v8 is the last stream bit of byte1, v7..v5
    // lead byte0. Enumerate the twelve valid values.
    let branches = (1u8..=12)
        .map(|m| {
            let mut bits = Vec::new();
            for p in [2usize, 1, 0] {
                bits.push(bit(m >> p & 1 == 1)); // v7 v6 v5
            }
            bits.push(day.clone()); // v4..v0
            bits.extend(any_bits(7)); // v15..v9 year
            bits.push(bit(m >> 3 & 1 == 1)); // v8
            Ast::Concat(bits)
        })
        .collect();
    Ast::Alt(branches)
}

/// The PKZip local-file-header bit pattern: magic, 2 free version bytes,
/// 2 free flag bytes, method ∈ {stored, deflate}, then a fully validated
/// DOS time and date.
pub fn zip_local_header_bits() -> Ast {
    let mut bits = bytes_bits(b"PK\x03\x04");
    bits.extend(any_bits(16)); // version needed
    bits.extend(any_bits(16)); // flags
    bits.push(Ast::Alt(vec![
        Ast::Concat(bytes_bits(&[0x00, 0x00])), // stored
        Ast::Concat(bytes_bits(&[0x08, 0x00])), // deflate
    ]));
    bits.push(dos_time_bits());
    bits.push(dos_date_bits());
    Ast::Concat(bits)
}

/// The MPEG-2 pack header bit pattern: pack start code then the
/// `01` marker bits introducing the system clock reference.
pub fn mpeg2_pack_bits() -> Ast {
    let mut bits = bytes_bits(&[0x00, 0x00, 0x01, 0xBA]);
    bits.push(bit(false));
    bits.push(bit(true));
    bits.extend(any_bits(6));
    Ast::Concat(bits)
}

/// MPEG-2 video PES start code: `00 00 01 1110xxxx`.
pub fn mpeg2_pes_bits() -> Ast {
    let mut bits = bytes_bits(&[0x00, 0x00, 0x01]);
    bits.extend([bit(true), bit(true), bit(true), bit(false)]);
    bits.extend(any_bits(4));
    Ast::Concat(bits)
}

fn compile_bit_pattern(ast: Ast, code: u32) -> Automaton {
    let pattern = Pattern {
        ast,
        anchored_start: false,
        anchored_end: false,
        flags: Flags::default(),
    };
    let bit_nfa = compile_pattern(&pattern, code).expect("bit patterns are well-formed");
    stride8(&bit_nfa).expect("bit patterns stride cleanly")
}

/// Builds the nine-pattern File Carving automaton.
pub fn build_automaton() -> Automaton {
    let mut a = Automaton::new();
    // Bit-level patterns, 8-strided.
    a.append(&compile_bit_pattern(
        zip_local_header_bits(),
        Carved::ZipLocalHeader as u32,
    ));
    a.append(&compile_bit_pattern(
        mpeg2_pack_bits(),
        Carved::Mpeg2Pack as u32,
    ));
    a.append(&compile_bit_pattern(
        mpeg2_pes_bits(),
        Carved::Mpeg2VideoPes as u32,
    ));
    // Byte-level patterns.
    let byte_patterns: [(&str, Carved); 6] = [
        (r"/PK\x05\x06/s", Carved::ZipEndOfDirectory),
        (r"/\x00\x00\x01\xbb/s", Carved::Mpeg2System),
        (r"/\x00\x00\x01\xb9/s", Carved::MpegProgramEnd),
        (r"/\x00\x00\x00.ftyp(isom|mp42|avc1)/s", Carved::Mp4Ftyp),
        (
            r"/[a-z0-9_]{1,16}@[a-z0-9_]{1,12}\.(com|net|org|edu)/",
            Carved::Email,
        ),
        (
            r"/[0-8][0-9][0-9]-[0-9][0-9]-[0-9][0-9][0-9][0-9]/",
            Carved::Ssn,
        ),
    ];
    for (pattern, code) in byte_patterns {
        a.append(&compile(pattern, code as u32).expect("carving patterns are well-formed"));
    }
    a
}

/// Builds the benchmark: the automaton plus the corrupted-filesystem
/// stimulus.
pub fn build(params: &FileCarvingParams) -> (Automaton, Vec<u8>) {
    let a = build_automaton();
    let input = carving_stimulus(
        params.seed,
        &CarvingConfig {
            len: params.input_len,
            ..CarvingConfig::default()
        },
    );
    (a, input)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use azoo_engines::{CollectSink, Engine, NfaEngine};
    use azoo_workloads::media::{dos_date, dos_time, zip_local_header};

    fn codes_in(a: &Automaton, input: &[u8]) -> std::collections::HashSet<u32> {
        let mut engine = NfaEngine::new(a).unwrap();
        let mut sink = CollectSink::new();
        engine.scan(input, &mut sink);
        sink.reports().iter().map(|r| r.code.0).collect()
    }

    fn zip_header_with(time: u16, date: u16) -> Vec<u8> {
        let mut h = b"PK\x03\x04".to_vec();
        h.extend_from_slice(&[0x14, 0x00]); // version
        h.extend_from_slice(&[0x00, 0x00]); // flags
        h.extend_from_slice(&[0x08, 0x00]); // deflate
        h.extend_from_slice(&time.to_le_bytes());
        h.extend_from_slice(&date.to_le_bytes());
        h
    }

    #[test]
    fn valid_zip_header_carved() {
        let a = compile_bit_pattern(zip_local_header_bits(), 0);
        a.validate().unwrap();
        let header = zip_header_with(dos_time(13, 45, 28), dos_date(2019, 11, 4));
        assert!(codes_in(&a, &header).contains(&0));
        // Edge timestamps.
        for (h, m, s) in [(0, 0, 0), (23, 59, 58)] {
            let header = zip_header_with(dos_time(h, m, s), dos_date(1999, 1, 1));
            assert!(codes_in(&a, &header).contains(&0), "time {h}:{m}:{s}");
        }
    }

    #[test]
    fn invalid_timestamps_rejected() {
        let a = compile_bit_pattern(zip_local_header_bits(), 0);
        // seconds/2 = 30 and 31 are invalid.
        for bad_secs in [30u16, 31] {
            let time = (13 << 11) | (45 << 5) | bad_secs;
            let header = zip_header_with(time, dos_date(2019, 11, 4));
            assert!(!codes_in(&a, &header).contains(&0), "secs field {bad_secs}");
        }
        // minutes 60..63 invalid.
        for bad_min in [60u16, 63] {
            let time = (13 << 11) | (bad_min << 5) | 10;
            let header = zip_header_with(time, dos_date(2019, 11, 4));
            assert!(!codes_in(&a, &header).contains(&0), "min field {bad_min}");
        }
        // hours 24..31 invalid.
        let time = (29 << 11) | (45 << 5) | 10;
        assert!(!codes_in(&a, &zip_header_with(time, dos_date(2019, 11, 4))).contains(&0));
        // month 0 and 13 invalid; day 0 invalid.
        for (y, m, d) in [(2019u16, 0u16, 4u16), (2019, 13, 4), (2019, 11, 0)] {
            let date = ((y - 1980) << 9) | (m << 5) | d;
            let header = zip_header_with(dos_time(1, 2, 4), date);
            assert!(!codes_in(&a, &header).contains(&0), "date {y}-{m}-{d}");
        }
    }

    #[test]
    fn generated_zip_headers_always_carve() {
        // The workload generator emits valid timestamps by construction.
        let a = compile_bit_pattern(zip_local_header_bits(), 0);
        let mut r = azoo_workloads::rng(4);
        for i in 0..10 {
            let h = zip_local_header(&mut r, "x.bin");
            assert!(codes_in(&a, &h).contains(&0), "header {i} rejected");
        }
    }

    #[test]
    fn mpeg_marker_bits_validated() {
        let a = compile_bit_pattern(mpeg2_pack_bits(), 2);
        assert!(codes_in(&a, &[0, 0, 1, 0xBA, 0b0100_0000]).contains(&2));
        assert!(codes_in(&a, &[0, 0, 1, 0xBA, 0b0111_1111]).contains(&2));
        // Wrong marker (MPEG-1 uses 0010).
        assert!(!codes_in(&a, &[0, 0, 1, 0xBA, 0b0010_0000]).contains(&2));
        assert!(!codes_in(&a, &[0, 0, 1, 0xBA, 0b1100_0000]).contains(&2));
    }

    #[test]
    fn pes_range_is_e0_to_ef() {
        let a = compile_bit_pattern(mpeg2_pes_bits(), 3);
        assert!(codes_in(&a, &[0, 0, 1, 0xE0]).contains(&3));
        assert!(codes_in(&a, &[0, 0, 1, 0xEF]).contains(&3));
        assert!(!codes_in(&a, &[0, 0, 1, 0xDF]).contains(&3));
        assert!(!codes_in(&a, &[0, 0, 1, 0xF0]).contains(&3));
    }

    #[test]
    fn nine_subgraphs() {
        let a = build_automaton();
        let stats = azoo_core::AutomatonStats::compute(&a);
        assert_eq!(stats.subgraphs, 9);
        a.validate().unwrap();
    }

    #[test]
    fn stimulus_triggers_every_pattern_class() {
        let (a, input) = build(&FileCarvingParams {
            input_len: 400_000,
            seed: 2,
        });
        let codes = codes_in(&a, &input);
        for expected in [
            Carved::ZipLocalHeader,
            Carved::Mpeg2Pack,
            Carved::Mp4Ftyp,
            Carved::Email,
            Carved::Ssn,
        ] {
            assert!(
                codes.contains(&(expected as u32)),
                "{expected:?} never carved; found {codes:?}"
            );
        }
    }
}

//! The Sequence Matching (sequential pattern mining) benchmarks
//! (Wang et al.; AutomataZoo Sections IV and VII).
//!
//! Input: a stream of *transactions* — sorted, distinct item symbols
//! (`1..=100`) terminated by a separator (`0xFF`); the stream begins with
//! one separator. A filter for a candidate sequence `[S_1, ..., S_p]`
//! reports when the itemsets appear, each inside one transaction, in
//! order across distinct transactions.
//!
//! Variants:
//!
//! * `wC` — a counter element accumulates occurrences and only reports
//!   when the support threshold is reached, collapsing the output stream
//!   (the paper's motivation for counter elements).
//! * *padded* — each itemset slot is provisioned for `capacity` items but
//!   soft-configured for fewer, leaving extra states that match a symbol
//!   never present in the input. These are the architecture-specific
//!   soft-reconfiguration states whose CPU cost Section VII measures
//!   (our Table III).

use azoo_core::{Automaton, CounterMode, StartKind, StateId, SymbolClass};
use rand::RngExt;

/// Largest item symbol; items are `1..=ITEM_MAX`.
pub const ITEM_MAX: u8 = 100;
/// Transaction separator symbol.
pub const SEP: u8 = 0xFF;
/// Pad symbol configured into soft-reconfiguration states; never occurs
/// in input.
pub const PAD: u8 = 0xFD;

/// Parameters for the Sequence Matching benchmarks.
#[derive(Debug, Clone, Copy)]
pub struct SeqMatchParams {
    /// Itemsets per candidate sequence (`6p` / `10p`).
    pub itemsets: usize,
    /// Maximum items per itemset (`6w`).
    pub width: usize,
    /// Attach support counters (`wC`).
    pub counters: bool,
    /// Soft-reconfiguration capacity per itemset slot (Section VII pads
    /// each slot to this size).
    pub pad_capacity: Option<usize>,
    /// Number of candidate-sequence filters (AutomataZoo: 1,719).
    pub filters: usize,
    /// Counter support threshold for `wC`.
    pub min_support: u32,
    /// Transactions in the input stream.
    pub transactions: usize,
    /// Generation seed.
    pub seed: u64,
}

impl SeqMatchParams {
    /// Full-scale published variant.
    pub fn published(itemsets: usize, counters: bool) -> Self {
        SeqMatchParams {
            itemsets,
            width: 6,
            counters,
            pad_capacity: None,
            filters: 1719,
            min_support: 3,
            transactions: 60_000,
            seed: 0x5EC5,
        }
    }
}

/// One candidate sequence: `p` itemsets of sorted distinct items.
pub type Sequence = Vec<Vec<u8>>;

/// Generates a random candidate sequence.
pub fn generate_sequence(
    r: &mut rand_chacha::ChaCha8Rng,
    itemsets: usize,
    width: usize,
) -> Sequence {
    (0..itemsets)
        .map(|_| {
            let k = r.random_range(2..=width.max(2));
            let mut items = std::collections::BTreeSet::new();
            while items.len() < k {
                items.insert(r.random_range(1..=ITEM_MAX));
            }
            items.into_iter().collect()
        })
        .collect()
}

/// Appends one sequence filter to `a`, reporting with `code`.
pub fn append_filter(
    a: &mut Automaton,
    sequence: &Sequence,
    code: u32,
    counter: Option<(u32, CounterMode)>,
    pad_capacity: Option<usize>,
) {
    assert!(!sequence.is_empty());
    let items_class = SymbolClass::from_range(1, ITEM_MAX);
    let sep_class = SymbolClass::from_byte(SEP);
    let pad_class = SymbolClass::from_byte(PAD);

    // Global starter fires at every transaction boundary.
    let starter = a.add_ste(sep_class, StartKind::AllInput);
    let mut entry_sources: Vec<StateId> = vec![starter];

    for (si, itemset) in sequence.iter().enumerate() {
        let k = itemset.len();
        let last_itemset = si + 1 == sequence.len();
        // States. sk[j] = "skipping items after j matches"; the post-
        // completion skip is the separate `tail` state below.
        let sk: Vec<StateId> = (0..k)
            .map(|_| a.add_ste(items_class, StartKind::None))
            .collect();
        let m: Vec<StateId> = itemset
            .iter()
            .map(|&item| a.add_ste(SymbolClass::from_byte(item), StartKind::None))
            .collect();
        let r_sep = a.add_ste(sep_class, StartKind::None);
        // Entry set: skip, first item, retry-at-separator.
        let entry = [sk[0], m[0], r_sep];
        for &src in &entry_sources {
            for &e in &entry {
                a.add_edge(src, e);
            }
        }
        // Retry re-launches this itemset at the next transaction.
        for &e in &entry {
            a.add_edge(r_sep, e);
        }
        // Skip machinery and item progression.
        for j in 0..k {
            a.add_edge(sk[j], sk[j]);
            a.add_edge(sk[j], m[j]);
            a.add_edge(sk[j], r_sep);
            a.add_edge(m[j], r_sep);
            if j + 1 < k {
                a.add_edge(m[j], m[j + 1]);
                a.add_edge(m[j], sk[j + 1]);
            }
        }
        // Soft-reconfiguration pads: the capacity-minus-k provisioned
        // item slots. On the physical fabric these sit wired into the
        // filter's live routing, so the active machinery (skip and match
        // states) keeps enabling them every transaction even though they
        // never match — exactly the do-no-computation states whose CPU
        // cost Section VII measures.
        if let Some(cap) = pad_capacity {
            for t in 0..cap.saturating_sub(k) {
                let pad = a.add_ste(pad_class, StartKind::None);
                a.add_edge(sk[t % k], pad);
                a.add_edge(m[t % k], pad);
            }
        }
        let m_last = m[k - 1];
        if last_itemset {
            match counter {
                Some((target, mode)) => {
                    let c = a.add_counter(target, mode);
                    a.add_edge(m_last, c);
                    a.set_report(c, code);
                }
                None => a.set_report(m_last, code),
            }
            entry_sources = Vec::new();
        } else {
            // Consume the rest of the transaction, then hand over to the
            // next itemset at the separator.
            let tail = a.add_ste(items_class, StartKind::None);
            let sep_found = a.add_ste(sep_class, StartKind::None);
            a.add_edge(m_last, tail);
            a.add_edge(m_last, sep_found);
            a.add_edge(tail, tail);
            a.add_edge(tail, sep_found);
            entry_sources = vec![sep_found];
        }
    }
}

/// Generates the transaction stream: a leading separator, then
/// `transactions` sorted transactions of 6..=14 distinct items.
pub fn transaction_stream(seed: u64, transactions: usize) -> Vec<u8> {
    let mut r = azoo_workloads::rng(seed);
    let mut out = vec![SEP];
    for _ in 0..transactions {
        let k = r.random_range(6..=14);
        let mut items = std::collections::BTreeSet::new();
        while items.len() < k {
            items.insert(r.random_range(1..=ITEM_MAX));
        }
        out.extend(items);
        out.push(SEP);
    }
    out
}

/// Builds the benchmark: `filters` sequence filters plus the standard
/// transaction stream.
pub fn build(params: &SeqMatchParams) -> (Automaton, Vec<u8>) {
    let mut r = azoo_workloads::rng(params.seed);
    let mut a = Automaton::new();
    let counter = params
        .counters
        .then_some((params.min_support, CounterMode::Latch));
    for i in 0..params.filters {
        let seq = generate_sequence(&mut r, params.itemsets, params.width);
        append_filter(&mut a, &seq, i as u32, counter, params.pad_capacity);
    }
    let input = transaction_stream(params.seed ^ 0x7A57, params.transactions);
    (a, input)
}

/// Embeds `sequence` into a stream: each itemset inside one transaction,
/// in order, `occurrences` times. Used by tests and the Table III
/// harness to guarantee activity.
pub fn stream_with_sequence(seed: u64, sequence: &Sequence, occurrences: usize) -> Vec<u8> {
    let mut r = azoo_workloads::rng(seed);
    let mut out = vec![SEP];
    for _ in 0..occurrences {
        // A couple of distractor transactions.
        for _ in 0..r.random_range(1..3) {
            let mut items = std::collections::BTreeSet::new();
            while items.len() < 8 {
                items.insert(r.random_range(1..=ITEM_MAX));
            }
            out.extend(items);
            out.push(SEP);
        }
        for itemset in sequence {
            let mut items: std::collections::BTreeSet<u8> = itemset.iter().copied().collect();
            while items.len() < itemset.len() + 3 {
                items.insert(r.random_range(1..=ITEM_MAX));
            }
            out.extend(items);
            out.push(SEP);
        }
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use azoo_engines::{CollectSink, CountSink, Engine, NfaEngine};

    fn seq(sets: &[&[u8]]) -> Sequence {
        sets.iter().map(|s| s.to_vec()).collect()
    }

    fn count(a: &Automaton, input: &[u8]) -> u64 {
        let mut engine = NfaEngine::new(a).unwrap();
        let mut sink = CountSink::new();
        engine.scan(input, &mut sink);
        sink.count()
    }

    fn stream(transactions: &[&[u8]]) -> Vec<u8> {
        let mut out = vec![SEP];
        for t in transactions {
            out.extend_from_slice(t);
            out.push(SEP);
        }
        out
    }

    #[test]
    fn matches_itemsets_in_order_across_transactions() {
        let mut a = Automaton::new();
        append_filter(&mut a, &seq(&[&[2, 5], &[3, 7]]), 0, None, None);
        a.validate().unwrap();
        // {2,5} in transaction 1, {3,7} in transaction 2.
        assert!(count(&a, &stream(&[&[1, 2, 5, 9], &[3, 6, 7]])) > 0);
        // Subset semantics: extra items are fine.
        assert!(count(&a, &stream(&[&[2, 4, 5], &[1, 3, 7, 8]])) > 0);
        // Gap transactions between the itemsets are fine.
        assert!(count(&a, &stream(&[&[2, 5], &[40, 41], &[3, 7]])) > 0);
    }

    #[test]
    fn rejects_wrong_order_and_same_transaction() {
        let mut a = Automaton::new();
        append_filter(&mut a, &seq(&[&[2, 5], &[3, 7]]), 0, None, None);
        // Both itemsets in one transaction: no sequence.
        assert_eq!(count(&a, &stream(&[&[2, 3, 5, 7]])), 0);
        // Reversed order.
        assert_eq!(count(&a, &stream(&[&[3, 7], &[2, 5]])), 0);
        // First itemset incomplete.
        assert_eq!(count(&a, &stream(&[&[2, 9], &[3, 7]])), 0);
    }

    #[test]
    fn itemset_requires_all_items() {
        let mut a = Automaton::new();
        append_filter(&mut a, &seq(&[&[2, 5, 9]]), 0, None, None);
        assert!(count(&a, &stream(&[&[2, 5, 9]])) > 0);
        assert!(count(&a, &stream(&[&[1, 2, 3, 5, 8, 9]])) > 0);
        assert_eq!(count(&a, &stream(&[&[2, 5]])), 0);
    }

    #[test]
    fn retry_searches_later_transactions() {
        let mut a = Automaton::new();
        append_filter(&mut a, &seq(&[&[2, 5], &[3, 7]]), 0, None, None);
        // The second itemset only appears three transactions later.
        assert!(count(&a, &stream(&[&[2, 5], &[1, 9], &[10, 11], &[3, 7]])) > 0);
    }

    #[test]
    fn counter_variant_reports_only_at_support() {
        let sequence = seq(&[&[2, 5], &[3, 7]]);
        let mut plain = Automaton::new();
        append_filter(&mut plain, &sequence, 0, None, None);
        let mut counted = Automaton::new();
        append_filter(
            &mut counted,
            &sequence,
            0,
            Some((3, CounterMode::Latch)),
            None,
        );
        let input = stream_with_sequence(1, &sequence, 5);
        let plain_reports = count(&plain, &input);
        let counted_reports = count(&counted, &input);
        assert!(plain_reports >= 5, "plain reports {plain_reports}");
        assert!(
            counted_reports >= 1 && counted_reports < plain_reports,
            "counter should collapse {plain_reports} reports, got {counted_reports}"
        );
        // Below support: silence.
        let short = stream_with_sequence(2, &sequence, 2);
        assert_eq!(count(&counted, &short), 0);
        assert!(count(&plain, &short) >= 2);
    }

    #[test]
    fn padding_adds_states_not_matches() {
        let sequence = seq(&[&[2, 5, 6], &[3, 7]]);
        let mut native = Automaton::new();
        append_filter(&mut native, &sequence, 0, None, None);
        let mut padded = Automaton::new();
        append_filter(&mut padded, &sequence, 0, None, Some(10));
        assert!(padded.state_count() > native.state_count());
        let input = stream_with_sequence(3, &sequence, 4);
        assert_eq!(count(&native, &input), count(&padded, &input));
    }

    #[test]
    fn padded_variant_has_higher_active_set() {
        let mut r = azoo_workloads::rng(5);
        let sequence = generate_sequence(&mut r, 4, 6);
        let mut native = Automaton::new();
        append_filter(&mut native, &sequence, 0, None, None);
        let mut padded = Automaton::new();
        append_filter(&mut padded, &sequence, 0, None, Some(10));
        let input = transaction_stream(9, 300);
        let mut sink = CountSink::new();
        let p_native = NfaEngine::new(&native)
            .unwrap()
            .scan_profiled(&input, &mut sink);
        let p_padded = NfaEngine::new(&padded)
            .unwrap()
            .scan_profiled(&input, &mut sink);
        assert!(
            p_padded.active_set() > p_native.active_set(),
            "padded {} vs native {}",
            p_padded.active_set(),
            p_native.active_set()
        );
    }

    #[test]
    fn benchmark_scales_and_validates() {
        let (a, input) = build(&SeqMatchParams {
            itemsets: 3,
            width: 4,
            counters: true,
            pad_capacity: None,
            filters: 20,
            min_support: 2,
            transactions: 100,
            seed: 1,
        });
        a.validate().unwrap();
        assert_eq!(a.counter_count(), 20);
        assert!(input.len() > 100);
        let mut reports = CollectSink::new();
        NfaEngine::new(&a).unwrap().scan(&input, &mut reports);
        // No assertion on count: random candidates rarely complete.
    }
}

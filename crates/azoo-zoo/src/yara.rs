//! The YARA malware-pattern benchmarks (Section IX-A).
//!
//! YARA hex strings describe patterns at *nibble* (4-bit) granularity:
//! `9C 50 A1 ?? (?A ?? 00 | 66 A9 D?) [2-6] 58 0F 85`. Byte-level
//! automata toolchains cannot consume these directly, so AutomataZoo
//! builds a converter that lifts nibble wildcards into byte character
//! classes, alternation groups into automaton alternation, and `[n-m]`
//! jumps into bounded repetition. The **Wide** variant additionally
//! applies the 16-bit widening transformation (every other input byte
//! zero).

use azoo_core::{Automaton, SymbolClass};
use azoo_passes::widen;
use azoo_regex::{compile_pattern, Ast, Flags, Pattern};
use azoo_workloads::disk::malware_files;
use rand::RngExt;
use rand_chacha::ChaCha8Rng;

/// One YARA string, in any of the language's three pattern classes
/// (Section IX-A: "exact string matches, hexadecimal 4-bit expressions,
/// or regular expressions").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum YaraString {
    /// A hex string with nibble wildcards, jumps, and groups.
    Hex(String),
    /// A text string, optionally case-insensitive (`nocase`).
    Text {
        /// The literal text.
        value: String,
        /// YARA's `nocase` modifier.
        nocase: bool,
    },
    /// A regular expression in `/pattern/flags` notation.
    Regex(String),
}

impl YaraString {
    /// Compiles this string into an (optionally widened) automaton.
    ///
    /// # Errors
    ///
    /// Returns parse/compile errors as strings.
    pub fn compile(&self, code: u32, wide: bool) -> Result<Automaton, String> {
        match self {
            YaraString::Hex(hex) => compile_hex(hex, code, wide),
            YaraString::Text { value, nocase } => {
                let mut escaped = String::new();
                for b in value.bytes() {
                    escaped.push_str(&format!("\\x{b:02x}"));
                }
                let pattern = if *nocase {
                    format!("/{escaped}/i")
                } else {
                    format!("/{escaped}/")
                };
                let a = azoo_regex::compile(&pattern, code).map_err(|e| e.to_string())?;
                if wide {
                    widen(&a).map_err(|e| e.to_string())
                } else {
                    Ok(a)
                }
            }
            YaraString::Regex(pattern) => {
                let a = azoo_regex::compile(pattern, code).map_err(|e| e.to_string())?;
                if wide {
                    widen(&a).map_err(|e| e.to_string())
                } else {
                    Ok(a)
                }
            }
        }
    }
}

/// Parameters for the YARA benchmarks.
#[derive(Debug, Clone, Copy)]
pub struct YaraParams {
    /// Number of rules (AutomataZoo: ~23,500 narrow / 2,620 wide).
    pub rules: usize,
    /// Widen every rule (the YARA Wide variant).
    pub wide: bool,
    /// Input size in bytes (concatenated malware files).
    pub input_len: usize,
    /// Generation seed.
    pub seed: u64,
}

impl YaraParams {
    /// Full-scale parameters.
    pub fn published(wide: bool) -> Self {
        YaraParams {
            rules: if wide { 2620 } else { 23_500 },
            wide,
            input_len: 1 << 20,
            seed: 0x5A8A,
        }
    }
}

/// Parses one hex-string token pair like `9C`, `?A`, `D?` or `??` into
/// the byte class it denotes.
fn nibble_class(hi: u8, lo: u8) -> Result<SymbolClass, String> {
    let nib = |c: u8| -> Result<Option<u8>, String> {
        match c {
            b'?' => Ok(None),
            b'0'..=b'9' => Ok(Some(c - b'0')),
            b'a'..=b'f' => Ok(Some(c - b'a' + 10)),
            b'A'..=b'F' => Ok(Some(c - b'A' + 10)),
            _ => Err(format!("invalid nibble '{}'", c as char)),
        }
    };
    let (h, l) = (nib(hi)?, nib(lo)?);
    let mut class = SymbolClass::new();
    for b in 0..=255u8 {
        let ok_h = h.is_none_or(|v| b >> 4 == v);
        let ok_l = l.is_none_or(|v| b & 0x0f == v);
        if ok_h && ok_l {
            class.insert(b);
        }
    }
    Ok(class)
}

/// Parses a YARA hex string into a pattern syntax tree.
///
/// Supported: hex byte tokens with nibble wildcards, `[n-m]` and `[n]`
/// jumps, and one level of `( alt | alt )` grouping.
///
/// # Errors
///
/// Returns a description of the malformed token.
pub fn hex_to_ast(hex: &str) -> Result<Ast, String> {
    let tokens: Vec<&str> = hex.split_whitespace().collect();
    let mut i = 0;
    parse_seq(&tokens, &mut i, false)
}

fn parse_seq(tokens: &[&str], i: &mut usize, in_group: bool) -> Result<Ast, String> {
    let mut parts = Vec::new();
    while *i < tokens.len() {
        let tok = tokens[*i];
        match tok {
            "(" => {
                *i += 1;
                let mut branches = vec![parse_seq(tokens, i, true)?];
                while tokens.get(*i) == Some(&"|") {
                    *i += 1;
                    branches.push(parse_seq(tokens, i, true)?);
                }
                if tokens.get(*i) != Some(&")") {
                    return Err("unterminated group".into());
                }
                *i += 1;
                parts.push(Ast::Alt(branches));
            }
            "|" | ")" if in_group => break,
            _ if tok.starts_with('[') => {
                let body = tok
                    .strip_prefix('[')
                    .and_then(|s| s.strip_suffix(']'))
                    .ok_or_else(|| format!("malformed jump '{tok}'"))?;
                let (lo, hi) = match body.split_once('-') {
                    Some((l, h)) => (
                        l.parse::<usize>().map_err(|e| e.to_string())?,
                        h.parse::<usize>().map_err(|e| e.to_string())?,
                    ),
                    None => {
                        let n = body.parse::<usize>().map_err(|e| e.to_string())?;
                        (n, n)
                    }
                };
                if hi < lo || hi > 256 {
                    return Err(format!("bad jump bounds [{lo}-{hi}]"));
                }
                let mut jump = vec![Ast::Class(SymbolClass::FULL); lo];
                for _ in lo..hi {
                    jump.push(Ast::Alt(vec![Ast::Empty, Ast::Class(SymbolClass::FULL)]));
                }
                parts.push(Ast::Concat(jump));
                *i += 1;
            }
            _ if tok.len() == 2 => {
                let b = tok.as_bytes();
                parts.push(Ast::Class(nibble_class(b[0], b[1])?));
                *i += 1;
            }
            _ => return Err(format!("unrecognized token '{tok}'")),
        }
    }
    if parts.is_empty() {
        return Err("empty pattern".into());
    }
    Ok(Ast::Concat(parts))
}

/// Compiles a YARA hex string into an (optionally widened) automaton.
///
/// # Errors
///
/// Returns parse errors as strings; compile errors are formatted in.
pub fn compile_hex(hex: &str, code: u32, wide: bool) -> Result<Automaton, String> {
    let ast = hex_to_ast(hex)?;
    let pattern = Pattern {
        ast,
        anchored_start: false,
        anchored_end: false,
        flags: Flags::default(),
    };
    let a = compile_pattern(&pattern, code).map_err(|e| e.to_string())?;
    if wide {
        widen(&a).map_err(|e| e.to_string())
    } else {
        Ok(a)
    }
}

/// Generates one synthetic YARA string of any class: ~70% hex, ~20%
/// text, ~10% regex (the language mix Section IX-A describes).
pub fn generate_string(r: &mut ChaCha8Rng) -> YaraString {
    let roll = r.random_range(0..100);
    if roll < 70 {
        YaraString::Hex(generate_rule(r))
    } else if roll < 90 {
        let len = r.random_range(6..20);
        let value: String = (0..len)
            .map(|_| (b'a' + r.random_range(0..26)) as char)
            .collect();
        YaraString::Text {
            value,
            nocase: r.random_bool(0.4),
        }
    } else {
        let word: String = (0..r.random_range(4..9))
            .map(|_| (b'a' + r.random_range(0..26)) as char)
            .collect();
        YaraString::Regex(match r.random_range(0..3) {
            0 => format!(r"/{word}[0-9a-f]{{4,12}}\.dll/i"),
            1 => format!(r"/\x4d\x5a.{{8,40}}{word}/s"),
            _ => format!(r"/({word}|{word}32)\.(exe|sys)/i"),
        })
    }
}

/// Generates one synthetic YARA hex rule.
pub fn generate_rule(r: &mut ChaCha8Rng) -> String {
    let mut toks: Vec<String> = Vec::new();
    let len = r.random_range(24..60);
    let mut budget = len;
    while budget > 0 {
        let roll = r.random_range(0..100);
        if roll < 70 {
            toks.push(format!("{:02X}", r.random::<u8>()));
            budget -= 1;
        } else if roll < 82 {
            let b: u8 = r.random();
            toks.push(if r.random_bool(0.5) {
                format!("?{:X}", b & 0xf)
            } else {
                format!("{:X}?", b >> 4)
            });
            budget -= 1;
        } else if roll < 90 && budget >= 2 {
            let lo = r.random_range(1..4);
            toks.push(format!("[{}-{}]", lo, lo + r.random_range(0..5)));
            budget -= 2;
        } else if roll < 96 && budget >= 3 {
            let alt1 = format!("{:02X} {:02X}", r.random::<u8>(), r.random::<u8>());
            let alt2 = format!("{:02X} ??", r.random::<u8>());
            toks.push(format!("( {alt1} | {alt2} )"));
            budget -= 3;
        } else {
            toks.push("??".to_owned());
            budget -= 1;
        }
    }
    toks.join(" ")
}

/// Renders one concrete byte instance of a hex rule (wildcards filled,
/// first alternative taken, minimal jumps), for planting true positives.
pub fn instantiate(hex: &str, r: &mut ChaCha8Rng) -> Vec<u8> {
    let ast = hex_to_ast(hex).expect("generated rules are well-formed");
    let mut out = Vec::new();
    instantiate_ast(&ast, r, &mut out);
    out
}

fn instantiate_ast(ast: &Ast, r: &mut ChaCha8Rng, out: &mut Vec<u8>) {
    match ast {
        Ast::Empty => {}
        Ast::Class(c) => {
            let k = r.random_range(0..c.len());
            out.push(c.iter().nth(k as usize).expect("class non-empty"));
        }
        Ast::Concat(v) => v.iter().for_each(|a| instantiate_ast(a, r, out)),
        Ast::Alt(v) => {
            // Prefer a non-empty branch so the instance stays matchable.
            let pick = v.iter().find(|b| !matches!(b, Ast::Empty)).unwrap_or(&v[0]);
            instantiate_ast(pick, r, out);
        }
        Ast::Star(_) => {}
    }
}

/// Builds the benchmark: compiled (and optionally widened) rules plus a
/// malware-file stream with planted instances.
pub fn build(params: &YaraParams) -> (Automaton, Vec<u8>) {
    let mut r = azoo_workloads::rng(params.seed);
    let rules: Vec<YaraString> = (0..params.rules).map(|_| generate_string(&mut r)).collect();
    let mut automaton = Automaton::new();
    for (i, rule) in rules.iter().enumerate() {
        let a = rule
            .compile(i as u32, params.wide)
            .expect("generated rules compile");
        automaton.append(&a);
    }
    let mut planted: Vec<Vec<u8>> = rules
        .iter()
        .take(12)
        .map(|rule| match rule {
            YaraString::Hex(hex) => instantiate(hex, &mut r),
            YaraString::Text { value, .. } => value.clone().into_bytes(),
            // Regex instances are not planted; natural hits only.
            YaraString::Regex(_) => Vec::new(),
        })
        .filter(|p| !p.is_empty())
        .collect();
    if params.wide {
        // Widen the planted instances: interleave zero bytes.
        for p in &mut planted {
            *p = p.iter().flat_map(|&b| [b, 0]).collect();
        }
    }
    let file_len = 16_384;
    let n_files = params.input_len.div_ceil(file_len);
    let files = malware_files(params.seed ^ 0xF11E, n_files, file_len, &planted);
    let mut input: Vec<u8> = files.concat();
    input.truncate(params.input_len);
    (automaton, input)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use azoo_engines::{CollectSink, Engine, NfaEngine};

    fn matches(a: &Automaton, input: &[u8]) -> usize {
        let mut engine = NfaEngine::new(a).unwrap();
        let mut sink = CollectSink::new();
        engine.scan(input, &mut sink);
        sink.reports().len()
    }

    #[test]
    fn nibble_classes() {
        assert_eq!(
            nibble_class(b'9', b'C').unwrap(),
            SymbolClass::from_byte(0x9c)
        );
        let low_wild = nibble_class(b'A', b'?').unwrap();
        assert_eq!(low_wild.len(), 16);
        assert!(low_wild.contains(0xA0) && low_wild.contains(0xAF));
        assert!(!low_wild.contains(0xB0));
        let hi_wild = nibble_class(b'?', b'3').unwrap();
        assert_eq!(hi_wild.len(), 16);
        assert!(hi_wild.contains(0x03) && hi_wild.contains(0xF3));
        assert!(nibble_class(b'G', b'0').is_err());
    }

    #[test]
    fn paper_example_pattern_matches() {
        // The exact example from Section IX-A.
        let hex = "9C 50 A1 ?? ( ?A ?? 00 | 66 A9 D? ) ?? 58 0F 85";
        let a = compile_hex(hex, 7, false).unwrap();
        a.validate().unwrap();
        // First alternative: ?A ?? 00.
        let hit1 = [
            0x9c, 0x50, 0xa1, 0x11, 0x2a, 0x33, 0x00, 0x44, 0x58, 0x0f, 0x85,
        ];
        // Second alternative: 66 A9 D?.
        let hit2 = [
            0x9c, 0x50, 0xa1, 0x99, 0x66, 0xa9, 0xd7, 0x12, 0x58, 0x0f, 0x85,
        ];
        // Wrong: neither alternative.
        let miss = [
            0x9c, 0x50, 0xa1, 0x99, 0x66, 0xa9, 0xc7, 0x12, 0x58, 0x0f, 0x85,
        ];
        assert_eq!(matches(&a, &hit1), 1);
        assert_eq!(matches(&a, &hit2), 1);
        assert_eq!(matches(&a, &miss), 0);
    }

    #[test]
    fn jumps_expand_to_bounded_gaps() {
        let a = compile_hex("AA [1-3] BB", 0, false).unwrap();
        assert_eq!(matches(&a, &[0xaa, 1, 0xbb]), 1);
        assert_eq!(matches(&a, &[0xaa, 1, 2, 3, 0xbb]), 1);
        assert_eq!(matches(&a, &[0xaa, 0xbb]), 0);
        assert_eq!(matches(&a, &[0xaa, 1, 2, 3, 4, 0xbb]), 0);
    }

    #[test]
    fn widened_rules_match_widened_input_only() {
        let a = compile_hex("41 42 43", 0, true).unwrap();
        let wide_input: Vec<u8> = b"ABC".iter().flat_map(|&b| [b, 0]).collect();
        assert_eq!(matches(&a, &wide_input), 1);
        assert_eq!(matches(&a, b"ABC"), 0);
    }

    #[test]
    fn instances_match_their_rules() {
        let mut r = azoo_workloads::rng(8);
        for _ in 0..15 {
            let rule = generate_rule(&mut r);
            let a = compile_hex(&rule, 0, false).unwrap();
            let inst = instantiate(&rule, &mut r);
            assert!(matches(&a, &inst) >= 1, "instance of '{rule}' not matched");
        }
    }

    #[test]
    fn benchmark_finds_planted_malware() {
        let (a, input) = build(&YaraParams {
            rules: 60,
            wide: false,
            input_len: 300_000,
            seed: 3,
        });
        let mut engine = NfaEngine::new(&a).unwrap();
        let mut sink = CollectSink::new();
        engine.scan(&input, &mut sink);
        let codes: std::collections::HashSet<u32> =
            sink.reports().iter().map(|r| r.code.0).collect();
        // 300 kB is ~19 files, so only the first ~7 planted patterns get
        // a carrier (one in every third file).
        let found = (0..7).filter(|c| codes.contains(c)).count();
        assert!(found >= 5, "only {found}/7 planted rules fired");
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod string_class_tests {
    use super::*;
    use azoo_engines::{CollectSink, Engine, NfaEngine};

    fn hits(a: &Automaton, input: &[u8]) -> usize {
        let mut engine = NfaEngine::new(a).unwrap();
        let mut sink = CollectSink::new();
        engine.scan(input, &mut sink);
        sink.reports().len()
    }

    #[test]
    fn text_strings_respect_nocase() {
        let cased = YaraString::Text {
            value: "MalwareSig".into(),
            nocase: false,
        };
        let nocase = YaraString::Text {
            value: "MalwareSig".into(),
            nocase: true,
        };
        let a = cased.compile(0, false).unwrap();
        let b = nocase.compile(0, false).unwrap();
        assert_eq!(hits(&a, b"..MalwareSig.."), 1);
        assert_eq!(hits(&a, b"..MALWARESIG.."), 0);
        assert_eq!(hits(&b, b"..mAlWaReSiG.."), 1);
    }

    #[test]
    fn regex_strings_compile_and_match() {
        let rule = YaraString::Regex(r"/evil[0-9a-f]{4,12}\.dll/i".into());
        let a = rule.compile(3, false).unwrap();
        assert_eq!(hits(&a, b"load EVIL1f2e3d.DLL now"), 1);
        assert_eq!(hits(&a, b"load evil.dll now"), 0);
    }

    #[test]
    fn wide_text_strings_match_utf16le() {
        let rule = YaraString::Text {
            value: "kernel".into(),
            nocase: false,
        };
        let a = rule.compile(0, true).unwrap();
        let wide: Vec<u8> = b"kernel".iter().flat_map(|&b| [b, 0]).collect();
        assert_eq!(hits(&a, &wide), 1);
        assert_eq!(hits(&a, b"kernel"), 0);
    }

    #[test]
    fn generated_strings_cover_all_classes() {
        let mut r = azoo_workloads::rng(42);
        let strings: Vec<YaraString> = (0..300).map(|_| generate_string(&mut r)).collect();
        let hex = strings
            .iter()
            .filter(|s| matches!(s, YaraString::Hex(_)))
            .count();
        let text = strings
            .iter()
            .filter(|s| matches!(s, YaraString::Text { .. }))
            .count();
        let regex = strings
            .iter()
            .filter(|s| matches!(s, YaraString::Regex(_)))
            .count();
        assert!(hex > 150 && text > 30 && regex > 10, "{hex}/{text}/{regex}");
        for (i, s) in strings.iter().enumerate() {
            s.compile(i as u32, false)
                .unwrap_or_else(|e| panic!("{s:?} failed: {e}"));
        }
    }
}

//! The Random Forest benchmarks (variants A, B, C — Table II).
//!
//! Each variant trains a 20-tree forest on the synthetic MNIST stand-in
//! with the paper's hyperparameters, converts it to automata chains, and
//! encodes a test batch as the standard input. Unlike ANMLZoo's pruned
//! model, each benchmark is a *full kernel*: automata classification is
//! exactly the trained model's prediction, enabling the Table IV
//! comparison against native decision-tree inference.

use azoo_ml::{synthetic_mnist, Dataset, Forest, ForestAutomaton, ForestParams};

/// The three published Random Forest variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// 270-feature pool, 400 max leaves (more features → higher accuracy,
    /// longer runtime).
    A,
    /// 200-feature pool, 400 max leaves (the baseline).
    B,
    /// 200-feature pool, 800 max leaves (bigger model → higher accuracy,
    /// 4x the states).
    C,
}

impl Variant {
    /// The paper's hyperparameters for this variant (`seed` and sample
    /// count control the synthetic training run).
    pub fn params(self, trees: usize, seed: u64) -> ForestParams {
        match self {
            Variant::A => ForestParams {
                trees,
                max_leaves: 400,
                feature_pool: 270,
                subspace: 30,
                seed,
            },
            Variant::B => ForestParams {
                trees,
                max_leaves: 400,
                feature_pool: 200,
                subspace: 30,
                seed,
            },
            Variant::C => ForestParams {
                trees,
                max_leaves: 800,
                feature_pool: 200,
                subspace: 61,
                seed,
            },
        }
    }
}

/// Parameters for a Random Forest benchmark build.
#[derive(Debug, Clone, Copy)]
pub struct RandomForestParams {
    /// Which published variant.
    pub variant: Variant,
    /// Number of trees (paper: 20).
    pub trees: usize,
    /// Training samples to synthesize.
    pub train_samples: usize,
    /// Test samples encoded into the input stream.
    pub test_samples: usize,
    /// Seed for data generation and training.
    pub seed: u64,
}

impl RandomForestParams {
    /// Full-scale parameters for a variant.
    pub fn published(variant: Variant) -> Self {
        RandomForestParams {
            variant,
            trees: 20,
            train_samples: 6000,
            test_samples: 500,
            seed: 0x4F0E,
        }
    }
}

/// A built Random Forest benchmark with everything Table II / Table IV
/// needs.
#[derive(Debug, Clone)]
pub struct RandomForestBenchmark {
    /// The trained model.
    pub forest: Forest,
    /// The chain automaton + encoder.
    pub fa: ForestAutomaton,
    /// Held-out test set.
    pub test: Dataset,
    /// Encoded classification stream for the test set.
    pub input: Vec<u8>,
    /// Test accuracy of the model.
    pub accuracy: f64,
}

/// Trains the variant and builds its automata + input stream.
pub fn build(params: &RandomForestParams) -> RandomForestBenchmark {
    let total = params.train_samples + params.test_samples;
    let data = synthetic_mnist(params.seed, total);
    let (train, test) = data.split(params.train_samples as f64 / total as f64);
    let forest = Forest::train(
        &train,
        &params.variant.params(params.trees, params.seed ^ 0xF0),
    );
    let fa = ForestAutomaton::build(&forest);
    let input = fa.encode_batch(&test);
    let accuracy = forest.accuracy(&test);
    RandomForestBenchmark {
        forest,
        fa,
        test,
        input,
        accuracy,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use azoo_engines::{CollectSink, Engine, NfaEngine};

    fn tiny(variant: Variant) -> RandomForestParams {
        RandomForestParams {
            variant,
            trees: 5,
            train_samples: 400,
            test_samples: 60,
            seed: 17,
        }
    }

    #[test]
    fn variant_hyperparameters_match_table_ii() {
        let a = Variant::A.params(20, 0);
        let b = Variant::B.params(20, 0);
        let c = Variant::C.params(20, 0);
        assert_eq!((a.feature_pool, a.max_leaves), (270, 400));
        assert_eq!((b.feature_pool, b.max_leaves), (200, 400));
        assert_eq!((c.feature_pool, c.max_leaves), (200, 800));
        // Chain lengths: 31 for A/B, 62 for C (Table I).
        assert_eq!(a.subspace + 1, 31);
        assert_eq!(c.subspace + 1, 62);
    }

    #[test]
    fn benchmark_classifies_exactly_like_the_model() {
        let bench = build(&tiny(Variant::B));
        let mut engine = NfaEngine::new(&bench.fa.automaton).unwrap();
        let mut sink = CollectSink::new();
        engine.scan(&bench.input, &mut sink);
        let pairs: Vec<(u64, u32)> = sink
            .reports()
            .iter()
            .map(|r| (r.offset, r.code.0))
            .collect();
        let automata = bench.fa.classify(bench.test.len(), &pairs);
        let native = bench.forest.predict_batch(&bench.test);
        assert_eq!(automata, native);
        assert!(bench.accuracy > 0.5);
    }

    #[test]
    fn variant_c_is_roughly_four_times_variant_b() {
        let b = build(&tiny(Variant::B));
        let c = build(&tiny(Variant::C));
        let ratio = c.fa.automaton.state_count() as f64 / b.fa.automaton.state_count() as f64;
        // 2x leaves and 2x chain length give ~4x at full scale; on this
        // tiny training set trees saturate early, so just require a
        // clear size separation (the table1 harness checks full scale).
        assert!(ratio > 1.3, "C/B state ratio only {ratio}");
    }
}

//! The ClamAV virus-detection benchmark.
//!
//! ClamAV signatures are hexadecimal body patterns with `??` wildcard
//! bytes, bounded `{n-m}` jumps, and unbounded `*` jumps. The paper's
//! pipeline converts signatures to regular expressions and compiles them
//! with the open-source front end; the input is a disk image with two
//! embedded virus fragments. The real signature database is not
//! redistributable, so a synthetic database with the same pattern grammar
//! and length statistics is generated.

use azoo_regex::{compile_ruleset, Ruleset};
use azoo_workloads::disk::{disk_image, DiskConfig};
use rand::RngExt;

/// Parameters for the ClamAV benchmark.
#[derive(Debug, Clone, Copy)]
pub struct ClamAvParams {
    /// Number of signatures.
    pub signatures: usize,
    /// Disk-image size in bytes.
    pub input_len: usize,
    /// Generation seed.
    pub seed: u64,
}

impl Default for ClamAvParams {
    fn default() -> Self {
        ClamAvParams {
            signatures: 33_000,
            input_len: 1 << 20,
            seed: 0xC1A3,
        }
    }
}

/// Generates a synthetic hex signature: mostly fixed bytes, occasional
/// `??` wildcards and `{n-m}` jumps.
pub fn generate_signature(r: &mut rand_chacha::ChaCha8Rng) -> String {
    let body_len = r.random_range(40..100);
    let mut sig = String::new();
    let mut i = 0;
    while i < body_len {
        let roll = r.random_range(0..100);
        if roll < 88 {
            sig.push_str(&format!("{:02x}", r.random::<u8>()));
            i += 1;
        } else if roll < 96 {
            sig.push_str("??");
            i += 1;
        } else {
            let lo = r.random_range(1..6);
            let hi = lo + r.random_range(0..8);
            sig.push_str(&format!("{{{lo}-{hi}}}"));
            i += 2;
        }
    }
    sig
}

/// Converts a ClamAV hex signature to a delimited regular expression
/// (`/.../s` — dot must match newline in binary data).
///
/// # Errors
///
/// Returns a description of the malformed token on failure.
pub fn sig_to_regex(sig: &str) -> Result<String, String> {
    let bytes = sig.as_bytes();
    let mut out = String::from("/");
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'?' => {
                if bytes.get(i + 1) == Some(&b'?') {
                    out.push('.');
                    i += 2;
                } else {
                    return Err(format!("lone '?' at {i}"));
                }
            }
            b'*' => {
                out.push_str(".*");
                i += 1;
            }
            b'{' => {
                let end = sig[i..]
                    .find('}')
                    .ok_or_else(|| format!("unterminated jump at {i}"))?
                    + i;
                let body = &sig[i + 1..end];
                let (lo, hi) = body
                    .split_once('-')
                    .ok_or_else(|| format!("malformed jump '{body}'"))?;
                out.push_str(&format!(".{{{lo},{hi}}}"));
                i = end + 1;
            }
            _ => {
                let pair = sig
                    .get(i..i + 2)
                    .ok_or_else(|| format!("dangling nibble at {i}"))?;
                let v = u8::from_str_radix(pair, 16).map_err(|e| format!("bad hex: {e}"))?;
                out.push_str(&format!(r"\x{v:02x}"));
                i += 2;
            }
        }
    }
    out.push_str("/s");
    Ok(out)
}

/// Renders a concrete byte instance of a signature (wildcards filled),
/// used to plant true positives in the disk image.
pub fn instantiate(sig: &str, r: &mut rand_chacha::ChaCha8Rng) -> Vec<u8> {
    let bytes = sig.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'?' => {
                out.push(r.random());
                i += 2;
            }
            b'*' => i += 1,
            b'{' => {
                let end = sig[i..].find('}').expect("validated") + i;
                let body = &sig[i + 1..end];
                let (lo, _) = body.split_once('-').expect("validated");
                for _ in 0..lo.parse::<usize>().expect("validated") {
                    out.push(r.random());
                }
                i = end + 1;
            }
            _ => {
                out.push(u8::from_str_radix(&sig[i..i + 2], 16).expect("validated"));
                i += 2;
            }
        }
    }
    out
}

/// Generates the database and compiles it.
pub fn compile_database(seed: u64, n: usize) -> (Vec<String>, Ruleset) {
    let mut r = azoo_workloads::rng(seed);
    let sigs: Vec<String> = (0..n).map(|_| generate_signature(&mut r)).collect();
    let regexes: Vec<String> = sigs
        .iter()
        .map(|s| sig_to_regex(s).expect("generated signatures are well-formed"))
        .collect();
    let ruleset = compile_ruleset(regexes.iter().map(String::as_str));
    (sigs, ruleset)
}

/// Builds the benchmark: the signature automaton plus a disk image with
/// two planted virus fragments (as the paper does with VirusSign
/// samples).
pub fn build(params: &ClamAvParams) -> (azoo_core::Automaton, Vec<u8>) {
    let (sigs, ruleset) = compile_database(params.seed, params.signatures);
    let mut r = azoo_workloads::rng(params.seed ^ 0x77);
    let planted: Vec<Vec<u8>> = sigs
        .iter()
        .take(2)
        .map(|s| instantiate(s, &mut r))
        .collect();
    let (image, _) = disk_image(
        params.seed ^ 0x99,
        &DiskConfig {
            len: params.input_len,
            planted,
        },
    );
    (ruleset.automaton, image)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use azoo_engines::{CollectSink, Engine, NfaEngine};

    #[test]
    fn sig_to_regex_translates_tokens() {
        assert_eq!(sig_to_regex("9c50").unwrap(), r"/\x9c\x50/s");
        assert_eq!(sig_to_regex("9c??50").unwrap(), r"/\x9c.\x50/s");
        assert_eq!(sig_to_regex("9c{2-5}50").unwrap(), r"/\x9c.{2,5}\x50/s");
        assert_eq!(sig_to_regex("aa*bb").unwrap(), r"/\xaa.*\xbb/s");
        assert!(sig_to_regex("9").is_err());
        assert!(sig_to_regex("9c{2-").is_err());
        assert!(sig_to_regex("zz").is_err());
    }

    #[test]
    fn instance_matches_its_own_signature() {
        let mut r = azoo_workloads::rng(5);
        for _ in 0..10 {
            let sig = generate_signature(&mut r);
            let regex = sig_to_regex(&sig).unwrap();
            let a = azoo_regex::compile(&regex, 0).unwrap();
            let instance = instantiate(&sig, &mut r);
            let mut engine = NfaEngine::new(&a).unwrap();
            let mut sink = CollectSink::new();
            engine.scan(&instance, &mut sink);
            assert!(
                !sink.reports().is_empty(),
                "instance of '{sig}' not matched by its own automaton"
            );
        }
    }

    #[test]
    fn benchmark_detects_planted_viruses() {
        let params = ClamAvParams {
            signatures: 50,
            input_len: 200_000,
            seed: 21,
        };
        let (a, image) = build(&params);
        a.validate().unwrap();
        let mut engine = NfaEngine::new(&a).unwrap();
        let mut sink = CollectSink::new();
        engine.scan(&image, &mut sink);
        // The two planted fragments are instances of signatures 0 and 1.
        let codes: std::collections::HashSet<u32> =
            sink.reports().iter().map(|r| r.code.0).collect();
        assert!(
            codes.contains(&0) && codes.contains(&1),
            "planted fragments not detected: {codes:?}"
        );
    }

    #[test]
    fn database_compiles_fully() {
        let (_, rs) = compile_database(1, 100);
        assert_eq!(rs.compiled, 100);
        assert!(rs.skipped.is_empty());
        let stats = azoo_core::AutomatonStats::compute(&rs.automaton);
        assert_eq!(stats.subgraphs, 100);
        // Signatures average ~40-100 states (paper: 71.6).
        assert!(stats.avg_subgraph_size > 30.0 && stats.avg_subgraph_size < 130.0);
    }
}

//! The Brill part-of-speech-tagging benchmark.
//!
//! Brill tagging patches incorrectly-tagged tokens using contextual
//! rewrite rules learned from a corpus. Each rule's *condition* is a
//! pattern over a window of `word/TAG` tokens, which is what the automata
//! match. AutomataZoo uses 5,000 rules from the open-source BrillPlusPlus
//! generator; this module generates 5,000 rules from the same contextual
//! rule templates over a synthetic tagged corpus.

use azoo_regex::{compile_ruleset, Ruleset};
use azoo_workloads::text::{tagged_corpus, TAGS};
use rand::RngExt;
use rand_chacha::ChaCha8Rng;

/// Parameters for the Brill benchmark.
#[derive(Debug, Clone, Copy)]
pub struct BrillParams {
    /// Number of contextual rules (AutomataZoo: 5,000).
    pub rules: usize,
    /// Input size in tokens.
    pub input_tokens: usize,
    /// Generation seed.
    pub seed: u64,
}

impl Default for BrillParams {
    fn default() -> Self {
        BrillParams {
            rules: 5000,
            input_tokens: 150_000,
            seed: 0xB211,
        }
    }
}

fn tag(r: &mut ChaCha8Rng) -> &'static str {
    TAGS[r.random_range(0..TAGS.len())]
}

/// Generates one contextual rule condition as a regex over the
/// `word/TAG` token stream. The templates mirror Brill's classic
/// transformation templates (previous tag, next tag, surrounding tags,
/// specific word with tag).
pub fn generate_rule(r: &mut ChaCha8Rng) -> String {
    let word = r"[a-z][a-z]*";
    match r.random_range(0..5) {
        // PREVTAG: retag when the previous token has tag T1.
        0 => format!(r"/{word}\/{} {word}\/{}/", tag(r), tag(r)),
        // NEXTTAG: condition on the following token's tag.
        1 => format!(r"/{word}\/{} {word}\/{}/", tag(r), tag(r)),
        // SURROUNDTAG: both neighbours.
        2 => format!(
            r"/{word}\/{} {word}\/{} {word}\/{}/",
            tag(r),
            tag(r),
            tag(r)
        ),
        // CURWORD: a specific word carrying a tag.
        3 => {
            let w = azoo_workloads::text::word(r);
            format!(r"/{w}\/{}/", tag(r))
        }
        // PREVWORD: specific word before a tagged token.
        _ => {
            let w = azoo_workloads::text::word(r);
            format!(r"/{w}\/{} {word}\/{}/", tag(r), tag(r))
        }
    }
}

/// Generates and compiles the full rule list.
pub fn compile_rules(seed: u64, n: usize) -> Ruleset {
    let mut r = azoo_workloads::rng(seed);
    let rules: Vec<String> = (0..n).map(|_| generate_rule(&mut r)).collect();
    compile_ruleset(rules.iter().map(String::as_str))
}

/// Builds the benchmark: rule automata plus a tagged corpus stream.
pub fn build(params: &BrillParams) -> (azoo_core::Automaton, Vec<u8>) {
    let ruleset = compile_rules(params.seed, params.rules);
    let input = tagged_corpus(params.seed ^ 0xB0B, params.input_tokens);
    (ruleset.automaton, input)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use azoo_engines::{CountSink, Engine, NfaEngine};

    #[test]
    fn rules_compile_cleanly() {
        let rs = compile_rules(1, 300);
        assert_eq!(rs.compiled, 300);
        assert!(rs.skipped.is_empty());
        let stats = azoo_core::AutomatonStats::compute(&rs.automaton);
        assert_eq!(stats.subgraphs, 300);
        // Average rule automata are small (paper: 19.4 states).
        assert!(stats.avg_subgraph_size > 5.0 && stats.avg_subgraph_size < 45.0);
    }

    #[test]
    fn rules_fire_on_tagged_text() {
        let (a, input) = build(&BrillParams {
            rules: 400,
            input_tokens: 5_000,
            seed: 2,
        });
        let mut engine = NfaEngine::new(&a).unwrap();
        let mut sink = CountSink::new();
        engine.scan(&input, &mut sink);
        // Tag-context rules over a 12-tag alphabet fire routinely.
        assert!(sink.count() > 10, "only {} reports", sink.count());
    }

    #[test]
    fn deterministic_generation() {
        let a = compile_rules(9, 50);
        let b = compile_rules(9, 50);
        assert_eq!(a.automaton, b.automaton);
    }
}

/// A contextual rule with its rewrite action: when the condition matches,
/// the token ending the matched window is retagged.
#[derive(Debug, Clone)]
pub struct BrillRule {
    /// The condition pattern (a regex over the `word/TAG` stream).
    pub condition: String,
    /// The corrected tag applied to the final token of the match.
    pub new_tag: &'static str,
}

/// Generates `n` full rules (condition + action).
pub fn generate_full_rules(seed: u64, n: usize) -> Vec<BrillRule> {
    let mut r = azoo_workloads::rng(seed);
    (0..n)
        .map(|_| {
            let condition = generate_rule(&mut r);
            let new_tag = tag(&mut r);
            BrillRule { condition, new_tag }
        })
        .collect()
}

/// Applies matched rules to the tagged corpus — the *full Brill kernel*:
/// each report retags the token in which the match ended (first matching
/// rule per token wins, in rule order, as Brill applies its learned rule
/// sequence).
///
/// `reports` are `(offset, rule_index)` pairs from scanning `corpus`
/// with the compiled conditions.
pub fn apply_corrections(corpus: &[u8], reports: &[(u64, u32)], rules: &[BrillRule]) -> Vec<u8> {
    // Token spans: maximal runs of non-whitespace.
    let mut spans: Vec<(usize, usize)> = Vec::new();
    let mut start = None;
    for (i, &b) in corpus.iter().enumerate() {
        let ws = b == b' ' || b == b'\n';
        match (ws, start) {
            (false, None) => start = Some(i),
            (true, Some(s)) => {
                spans.push((s, i));
                start = None;
            }
            _ => {}
        }
    }
    if let Some(s) = start {
        spans.push((s, corpus.len()));
    }
    // Winning rule per token: lowest rule index among reports ending in it.
    let mut winner: Vec<Option<u32>> = vec![None; spans.len()];
    for &(offset, rule) in reports {
        if rule as usize >= rules.len() {
            continue;
        }
        if let Some(tok) = spans
            .iter()
            .position(|&(s, e)| (s..e).contains(&(offset as usize)))
        {
            let w = &mut winner[tok];
            if w.is_none() || rule < w.expect("checked") {
                *w = Some(rule);
            }
        }
    }
    // Rewrite tags.
    let mut out = Vec::with_capacity(corpus.len());
    let mut pos = 0;
    for (tok, &(s, e)) in spans.iter().enumerate() {
        out.extend_from_slice(&corpus[pos..s]);
        let token = &corpus[s..e];
        match winner[tok] {
            Some(rule) => {
                let slash = token.iter().rposition(|&b| b == b'/');
                match slash {
                    Some(cut) => {
                        out.extend_from_slice(&token[..=cut]);
                        out.extend_from_slice(rules[rule as usize].new_tag.as_bytes());
                    }
                    None => out.extend_from_slice(token),
                }
            }
            None => out.extend_from_slice(token),
        }
        pos = e;
    }
    out.extend_from_slice(&corpus[pos..]);
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod kernel_tests {
    use super::*;
    use azoo_engines::{CollectSink, Engine, NfaEngine};

    #[test]
    fn corrections_retag_the_matched_token() {
        let rules = vec![BrillRule {
            condition: r"/[a-z][a-z]*\/DT [a-z][a-z]*\/VB/".into(),
            new_tag: "NN",
        }];
        let ruleset = azoo_regex::compile_ruleset(rules.iter().map(|r| r.condition.as_str()));
        assert_eq!(ruleset.compiled, 1);
        let corpus = b"the/DT run/VB fast/RB".to_vec();
        let mut engine = NfaEngine::new(&ruleset.automaton).unwrap();
        let mut sink = CollectSink::new();
        engine.scan(&corpus, &mut sink);
        assert!(!sink.reports().is_empty(), "condition must match");
        let pairs: Vec<(u64, u32)> = sink
            .reports()
            .iter()
            .map(|r| (r.offset, r.code.0))
            .collect();
        let corrected = apply_corrections(&corpus, &pairs, &rules);
        assert_eq!(
            String::from_utf8(corrected).unwrap(),
            "the/DT run/NN fast/RB",
            "VB after DT is retagged to NN"
        );
    }

    #[test]
    fn lowest_rule_index_wins() {
        let rules = vec![
            BrillRule {
                condition: "x".into(),
                new_tag: "AA",
            },
            BrillRule {
                condition: "x".into(),
                new_tag: "BB",
            },
        ];
        let corpus = b"wx/CC".to_vec();
        // Both rules "match" at offset 1 (inside the token).
        let corrected = apply_corrections(&corpus, &[(1, 1), (1, 0)], &rules);
        assert_eq!(String::from_utf8(corrected).unwrap(), "wx/AA");
    }

    #[test]
    fn unmatched_tokens_are_untouched() {
        let rules = generate_full_rules(1, 5);
        let corpus = b"alpha/NN beta/VB\ngamma/JJ".to_vec();
        let same = apply_corrections(&corpus, &[], &rules);
        assert_eq!(same, corpus);
    }

    #[test]
    fn full_kernel_runs_end_to_end() {
        let rules = generate_full_rules(3, 200);
        let ruleset = azoo_regex::compile_ruleset(rules.iter().map(|r| r.condition.as_str()));
        let corpus = azoo_workloads::text::tagged_corpus(9, 2000);
        let mut engine = NfaEngine::new(&ruleset.automaton).unwrap();
        let mut sink = CollectSink::new();
        engine.scan(&corpus, &mut sink);
        let pairs: Vec<(u64, u32)> = sink
            .reports()
            .iter()
            .map(|r| (r.offset, r.code.0))
            .collect();
        let corrected = apply_corrections(&corpus, &pairs, &rules);
        // Some corrections should actually land on a 2,000-token corpus.
        assert_ne!(corrected, corpus, "no rule ever fired");
        // Token count unchanged.
        let count = |c: &[u8]| c.split(|&b| b == b' ' || b == b'\n').count();
        assert_eq!(count(&corrected), count(&corpus));
    }
}

//! Dead-state elimination.

use azoo_core::{stats::reachable_from_starts, Automaton};

/// Removes states that are unreachable from every start state, or that can
/// never influence a report (no forward path to a reporting element).
///
/// Returns the pruned automaton; ids are remapped densely.
///
/// # Example
///
/// ```
/// use azoo_core::{Automaton, StartKind, SymbolClass};
/// use azoo_passes::remove_dead;
///
/// let mut a = Automaton::new();
/// let s = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::AllInput);
/// let t = a.add_ste(SymbolClass::from_byte(b'b'), StartKind::None);
/// a.add_edge(s, t);
/// a.set_report(t, 0);
/// // An orphan that matches but never reports:
/// a.add_ste(SymbolClass::from_byte(b'z'), StartKind::AllInput);
/// let pruned = remove_dead(&a);
/// assert_eq!(pruned.state_count(), 2);
/// ```
pub fn remove_dead(a: &Automaton) -> Automaton {
    let forward = reachable_from_starts(a);
    // Backward reachability from reporting elements.
    let pred = a.predecessors();
    let mut useful = vec![false; a.state_count()];
    let mut stack = Vec::new();
    for (id, e) in a.iter() {
        if e.report.is_some() {
            useful[id.index()] = true;
            stack.push(id);
        }
    }
    while let Some(s) = stack.pop() {
        for &(p, _) in &pred[s.index()] {
            if !useful[p.index()] {
                useful[p.index()] = true;
                stack.push(p);
            }
        }
    }
    a.retain_states(|id| forward[id.index()] && useful[id.index()])
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use azoo_core::{StartKind, SymbolClass};

    #[test]
    fn keeps_live_chain_intact() {
        let mut a = Automaton::new();
        let (_, last) = a.add_chain(&[SymbolClass::from_byte(b'k'); 5], StartKind::AllInput);
        a.set_report(last, 0);
        let pruned = remove_dead(&a);
        assert_eq!(pruned.state_count(), 5);
        assert_eq!(pruned.edge_count(), 4);
    }

    #[test]
    fn drops_unreachable_reporter() {
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::AllInput);
        a.set_report(s, 0);
        // Reporter with no path from a start state.
        let orphan = a.add_ste(SymbolClass::from_byte(b'b'), StartKind::None);
        a.set_report(orphan, 1);
        let pruned = remove_dead(&a);
        assert_eq!(pruned.state_count(), 1);
    }

    #[test]
    fn drops_non_reporting_tail() {
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::AllInput);
        a.set_report(s, 0);
        let tail = a.add_ste(SymbolClass::from_byte(b'b'), StartKind::None);
        a.add_edge(s, tail); // tail never reports
        let pruned = remove_dead(&a);
        assert_eq!(pruned.state_count(), 1);
        assert_eq!(pruned.edge_count(), 0);
    }

    #[test]
    fn counter_paths_survive() {
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::from_byte(b'c'), StartKind::AllInput);
        let c = a.add_counter(2, azoo_core::CounterMode::Latch);
        a.add_edge(s, c);
        a.set_report(c, 0);
        let pruned = remove_dead(&a);
        assert_eq!(pruned.state_count(), 2);
    }

    #[test]
    fn empty_automaton_is_noop() {
        let pruned = remove_dead(&Automaton::new());
        assert_eq!(pruned.state_count(), 0);
    }
}

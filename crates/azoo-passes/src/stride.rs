//! 8-striding of bit-level automata (Section IX-B of the AutomataZoo
//! paper).
//!
//! Bit-level automata (alphabet `{0, 1}`, one transition per input bit) are
//! the natural medium for file-metadata patterns with sub-byte and
//! cross-byte bit-fields. Striding converts them to ordinary byte-level
//! automata that consume 8 bits per symbol, executable by any automata
//! engine.
//!
//! The construction:
//!
//! 1. For every *boundary state* `s` (a bit state that can be enabled at a
//!    byte boundary) and every byte `b`, simulate the 8 bit-steps of `b`
//!    (MSB first) from `{s}`. This yields the byte-transition relation
//!    `T(s, b)` and the byte-report relation `R(s, code, b)`.
//! 2. Build a homogeneous byte automaton: one state per distinct
//!    `(target, label)` pair, whose class is the label (the set of bytes
//!    that reach the target), plus one *report companion* state per
//!    `(state, code)` whose class is the set of bytes on which the code
//!    fires.
//!
//! Bit-level start states are interpreted as **byte-aligned**: an
//! `AllInput` bit start may begin matching at any byte boundary (not any
//! bit). Reports that fire mid-byte are attributed to the byte containing
//! them.

use std::collections::HashMap;

use azoo_core::{Automaton, ElementKind, StartKind, StateId, SymbolClass};

use crate::PassError;

/// Converts a bit-level automaton into a byte-level automaton consuming
/// 8 bits per symbol. Equivalent to [`stride_bits`] with `k = 8`.
///
/// # Errors
///
/// * [`PassError::NotBitLevel`] if any symbol class contains a symbol
///   other than `0` or `1`.
/// * [`PassError::CountersUnsupported`] if the automaton has counters.
///
/// # Example
///
/// ```
/// use azoo_core::{Automaton, StartKind, SymbolClass};
/// use azoo_passes::stride8;
///
/// // Bit-level pattern for the single byte 0x41 ('A'), MSB first.
/// let mut bits = Automaton::new();
/// let classes: Vec<SymbolClass> = (0..8)
///     .map(|i| SymbolClass::from_byte((0x41 >> (7 - i)) & 1))
///     .collect();
/// let (_, last) = bits.add_chain(&classes, StartKind::AllInput);
/// bits.set_report(last, 7);
/// let bytes = stride8(&bits)?;
/// assert_eq!(bytes.state_count(), 1);
/// let report = bytes.element(bytes.report_states()[0]);
/// assert!(report.class().unwrap().contains(0x41));
/// assert_eq!(report.class().unwrap().len(), 1);
/// # Ok::<(), azoo_passes::PassError>(())
/// ```
pub fn stride8(a: &Automaton) -> Result<Automaton, PassError> {
    stride_bits(a, 8)
}

/// Converts a bit-level automaton into a `k`-bit-strided automaton: each
/// output symbol packs `k` input bits, MSB first, into the low bits of a
/// byte (alphabet `0..2^k`). `k = 8` is the byte-striding of Section
/// IX-B; smaller strides let architects trade alphabet width for state
/// count (Becchi's general striding transformation).
///
/// # Panics
///
/// Panics unless `k` is 1, 2, 4, or 8.
///
/// # Errors
///
/// As [`stride8`].
pub fn stride_bits(a: &Automaton, k: usize) -> Result<Automaton, PassError> {
    assert!(matches!(k, 1 | 2 | 4 | 8), "stride must be 1, 2, 4, or 8");
    let bit_alphabet = SymbolClass::from_bytes(&[0, 1]);
    for (id, e) in a.iter() {
        match &e.kind {
            ElementKind::Counter { .. } => return Err(PassError::CountersUnsupported(id)),
            ElementKind::Ste { class, .. } => {
                if !class.intersect(&bit_alphabet.complement()).is_empty() {
                    return Err(PassError::NotBitLevel(id));
                }
            }
        }
    }

    // Phase 1: byte-level relation from each boundary state.
    // labels[s] : target -> byte label; reports[s] : code -> byte label.
    let mut labels: HashMap<u32, HashMap<u32, SymbolClass>> = HashMap::new();
    let mut reports: HashMap<u32, HashMap<u32, SymbolClass>> = HashMap::new();
    let starts: Vec<(StateId, StartKind)> = a
        .iter()
        .filter(|(_, e)| e.start_kind() != StartKind::None)
        .map(|(id, e)| (id, e.start_kind()))
        .collect();
    let mut worklist: Vec<u32> = starts.iter().map(|(id, _)| id.index() as u32).collect();
    worklist.sort_unstable();
    worklist.dedup();
    let mut visited: std::collections::HashSet<u32> = worklist.iter().copied().collect();

    while let Some(s) = worklist.pop() {
        let entry = labels.entry(s).or_default();
        let rentry = reports.entry(s).or_default();
        let mut new_targets = Vec::new();
        for byte in 0..(1u16 << k) {
            let byte = byte as u8;
            let mut enabled: Vec<u32> = vec![s];
            for step in 0..k {
                let bit = (byte >> (k - 1 - step)) & 1;
                let mut next: Vec<u32> = Vec::new();
                for &x in &enabled {
                    let xe = a.element(StateId::new(x as usize));
                    let class = xe.class().expect("counters rejected above");
                    if class.contains(bit) {
                        if let Some(code) = xe.report {
                            rentry.entry(code.0).or_default().insert(byte);
                        }
                        for edge in a.successors(StateId::new(x as usize)) {
                            next.push(edge.to.index() as u32);
                        }
                    }
                }
                next.sort_unstable();
                next.dedup();
                enabled = next;
                if enabled.is_empty() && step + 1 < k {
                    break;
                }
            }
            for &t in &enabled {
                entry.entry(t).or_default().insert(byte);
                if !visited.contains(&t) {
                    new_targets.push(t);
                }
            }
        }
        for t in new_targets {
            if visited.insert(t) {
                worklist.push(t);
            }
        }
    }

    // Phase 2: homogenize. One state per distinct (target, label); one
    // report companion per (boundary state, code).
    let mut out = Automaton::new();
    let mut state_of: HashMap<(u32, SymbolClass), StateId> = HashMap::new();
    let mut rep_of: HashMap<(u32, u32), StateId> = HashMap::new();

    // Create (target, label) states and report companions.
    for (&s, targets) in &labels {
        let _ = s;
        for (&t, label) in targets {
            state_of
                .entry((t, *label))
                .or_insert_with(|| out.add_ste(*label, StartKind::None));
        }
    }
    for (&s, codes) in &reports {
        for (&code, label) in codes {
            let id = *rep_of
                .entry((s, code))
                .or_insert_with(|| out.add_ste(*label, StartKind::None));
            out.set_report(id, code);
        }
    }

    // Wire edges. A homogeneous copy (s, K) matching the current byte
    // means "s is byte-enabled for the next byte", so each copy of s
    // activates (t, L) for every byte-edge (s, L, t) and arms s's own
    // report companions for the next byte.
    let mut edge_seen = std::collections::HashSet::new();
    for (&s, targets) in &labels {
        // All homogeneous copies of s.
        let copies: Vec<StateId> = state_of
            .iter()
            .filter(|((t, _), _)| *t == s)
            .map(|(_, &id)| id)
            .collect();
        for (&t, label) in targets {
            let to = state_of[&(t, *label)];
            for &from in &copies {
                if edge_seen.insert((from, to)) {
                    out.add_edge(from, to);
                }
            }
        }
        if let Some(codes) = reports.get(&s) {
            for &code in codes.keys() {
                let rep = rep_of[&(s, code)];
                for &from in &copies {
                    if edge_seen.insert((from, rep)) {
                        out.add_edge(from, rep);
                    }
                }
            }
        }
    }

    // Start handling: targets of bit-start s0 become byte starts of s0's
    // kind; report companions of s0 are starts too.
    for (s0, kind) in &starts {
        let s = s0.index() as u32;
        if let Some(targets) = labels.get(&s) {
            for (&t, label) in targets {
                let id = state_of[&(t, *label)];
                promote_start(&mut out, id, *kind);
            }
        }
        if let Some(codes) = reports.get(&s) {
            for &code in codes.keys() {
                let id = rep_of[&(s, code)];
                promote_start(&mut out, id, *kind);
            }
        }
    }

    Ok(out)
}

fn promote_start(a: &mut Automaton, id: StateId, kind: StartKind) {
    let e = a.element_mut(id);
    if let ElementKind::Ste { start, .. } = &mut e.kind {
        *start = match (*start, kind) {
            (StartKind::AllInput, _) | (_, StartKind::AllInput) => StartKind::AllInput,
            (StartKind::StartOfData, _) | (_, StartKind::StartOfData) => StartKind::StartOfData,
            (StartKind::None, StartKind::None) => StartKind::None,
        };
    }
}

/// Builds a bit-level chain automaton from a pattern of bits, where `None`
/// is a wildcard bit. Bits are MSB-first within each byte. The final state
/// reports with `code`. Useful for constructing file-format bit patterns.
pub fn bit_pattern_chain(bits: &[Option<bool>], code: u32, start: StartKind) -> Automaton {
    let zero_one = SymbolClass::from_bytes(&[0, 1]);
    let classes: Vec<SymbolClass> = bits
        .iter()
        .map(|b| match b {
            Some(true) => SymbolClass::from_byte(1),
            Some(false) => SymbolClass::from_byte(0),
            None => zero_one,
        })
        .collect();
    let mut a = Automaton::new();
    let (_, last) = a.add_chain(&classes, start);
    a.set_report(last, code);
    a
}

/// Expands bytes into MSB-first fixed bits for [`bit_pattern_chain`].
pub fn bits_of_bytes(bytes: &[u8]) -> Vec<Option<bool>> {
    let mut out = Vec::with_capacity(bytes.len() * 8);
    for &b in bytes {
        for i in 0..8 {
            out.push(Some((b >> (7 - i)) & 1 == 1));
        }
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn single_byte_pattern_becomes_single_state() {
        let bits = bit_pattern_chain(&bits_of_bytes(&[0x41]), 5, StartKind::AllInput);
        let b = stride8(&bits).unwrap();
        assert_eq!(b.state_count(), 1);
        let rep = b.element(b.report_states()[0]);
        assert_eq!(rep.class().unwrap().len(), 1);
        assert!(rep.class().unwrap().contains(0x41));
        assert_eq!(rep.start_kind(), StartKind::AllInput);
        b.validate().unwrap();
    }

    #[test]
    fn two_byte_pattern_becomes_two_state_chain() {
        let bits = bit_pattern_chain(&bits_of_bytes(b"AB"), 1, StartKind::AllInput);
        let b = stride8(&bits).unwrap();
        assert_eq!(b.state_count(), 2);
        assert_eq!(b.edge_count(), 1);
        let starts = b.start_states();
        assert_eq!(starts.len(), 1);
        assert!(b.element(starts[0]).class().unwrap().contains(b'A'));
        let reps = b.report_states();
        assert_eq!(reps.len(), 1);
        assert!(b.element(reps[0]).class().unwrap().contains(b'B'));
        b.validate().unwrap();
    }

    #[test]
    fn low_nibble_wildcard_expands_to_sixteen_bytes() {
        // 0100 ???? : matches 0x40..=0x4f.
        let mut bits: Vec<Option<bool>> = vec![Some(false), Some(true), Some(false), Some(false)];
        bits.extend([None; 4]);
        let a = bit_pattern_chain(&bits, 0, StartKind::AllInput);
        let b = stride8(&a).unwrap();
        assert_eq!(b.state_count(), 1);
        let class = b.element(b.report_states()[0]).class().unwrap();
        assert_eq!(*class, SymbolClass::from_range(0x40, 0x4f));
    }

    #[test]
    fn cross_byte_bitfield_splits_targets() {
        // 16 bits: byte 0 fixed 0x12, then 3 wildcard bits, then fixed
        // 10110 — a field crossing the byte boundary... here the wildcards
        // are entirely in byte 1; use a pattern whose byte-1 constraint
        // depends on byte-0 wildcards instead:
        // bits: 4 fixed (0001), 8 wildcard, 4 fixed (0010) — the wildcard
        // run straddles the byte 0 / byte 1 boundary.
        let mut bits: Vec<Option<bool>> = vec![Some(false), Some(false), Some(false), Some(true)];
        bits.extend([None; 8]);
        bits.extend([Some(false), Some(false), Some(true), Some(false)]);
        let a = bit_pattern_chain(&bits, 9, StartKind::StartOfData);
        let b = stride8(&a).unwrap();
        b.validate().unwrap();
        // Byte 0 must be 0x10..=0x1f; byte 1 must be ????0010 = 0x02 mod 16.
        assert!(!b.report_states().is_empty());
        let starts = b.start_states();
        assert!(!starts.is_empty());
        for s in starts {
            let class = b.element(s).class().unwrap();
            for byte in class.iter() {
                assert_eq!(byte >> 4, 0x1);
            }
            assert_eq!(b.element(s).start_kind(), StartKind::StartOfData);
        }
        for r in b.report_states() {
            let class = b.element(r).class().unwrap();
            for byte in class.iter() {
                assert_eq!(byte & 0x0f, 0x2);
            }
        }
    }

    #[test]
    fn rejects_non_bit_alphabet() {
        let mut a = Automaton::new();
        a.add_ste(SymbolClass::from_byte(b'a'), StartKind::AllInput);
        assert!(matches!(stride8(&a), Err(PassError::NotBitLevel(_))));
    }

    #[test]
    fn rejects_counters() {
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::from_byte(1), StartKind::AllInput);
        let c = a.add_counter(2, azoo_core::CounterMode::Latch);
        a.add_edge(s, c);
        assert!(matches!(
            stride8(&a),
            Err(PassError::CountersUnsupported(_))
        ));
    }

    #[test]
    fn stride_bits_nibble_matches_bit_simulation() {
        use azoo_engines::{CollectSink, Engine, NfaEngine};
        // Pattern: the 12 bits 0xAB 0b1100 (one and a half bytes), with a
        // couple of wildcards.
        let mut bits = bits_of_bytes(&[0xAB]);
        bits.extend([Some(true), Some(true), None, Some(false)]);
        let bit_nfa = bit_pattern_chain(&bits, 4, StartKind::AllInput);
        let nib_nfa = stride_bits(&bit_nfa, 4).unwrap();
        nib_nfa.validate().unwrap();
        // Nibble stream: symbols 0..16, e.g. the pattern A B C/D 4..7 etc.
        let nib_input: Vec<u8> = vec![0x1, 0xA, 0xB, 0xC, 0x4, 0x9, 0xA, 0xB, 0xD, 0x6];
        let bit_input: Vec<u8> = nib_input
            .iter()
            .flat_map(|&n| (0..4).map(move |i| (n >> (3 - i)) & 1))
            .collect();
        let run = |a: &Automaton, input: &[u8]| -> Vec<u64> {
            let mut engine = NfaEngine::new(a).unwrap();
            let mut sink = CollectSink::new();
            engine.scan(input, &mut sink);
            sink.reports().iter().map(|r| r.offset).collect()
        };
        // Bit matches must start nibble-aligned to compare.
        let bit_hits: Vec<u64> = run(&bit_nfa, &bit_input)
            .into_iter()
            .filter(|o| (o + 1) % 4 == 0)
            .map(|o| o / 4)
            .collect();
        let nib_hits = run(&nib_nfa, &nib_input);
        assert_eq!(bit_hits, nib_hits);
        assert!(!nib_hits.is_empty(), "pattern should occur in the stream");
    }

    #[test]
    fn stride_one_is_identity_language() {
        use azoo_engines::{CollectSink, Engine, NfaEngine};
        let a = bit_pattern_chain(
            &[Some(true), Some(false), Some(true)],
            0,
            StartKind::AllInput,
        );
        let b = stride_bits(&a, 1).unwrap();
        let input = [1u8, 0, 1, 1, 0, 1, 0, 1];
        let run = |a: &Automaton| -> Vec<u64> {
            let mut engine = NfaEngine::new(a).unwrap();
            let mut sink = CollectSink::new();
            engine.scan(&input, &mut sink);
            sink.reports().iter().map(|r| r.offset).collect()
        };
        assert_eq!(run(&a), run(&b));
    }

    #[test]
    fn wider_strides_trade_states_for_alphabet() {
        let bits = bit_pattern_chain(&bits_of_bytes(b"PK"), 0, StartKind::AllInput);
        let s2 = stride_bits(&bits, 2).unwrap();
        let s4 = stride_bits(&bits, 4).unwrap();
        let s8 = stride_bits(&bits, 8).unwrap();
        assert!(s2.state_count() > s4.state_count());
        assert!(s4.state_count() > s8.state_count());
    }

    #[test]
    #[should_panic(expected = "stride must be")]
    fn stride_three_rejected() {
        let a = bit_pattern_chain(&[Some(true)], 0, StartKind::AllInput);
        let _ = stride_bits(&a, 3);
    }

    #[test]
    fn bits_of_bytes_is_msb_first() {
        let bits = bits_of_bytes(&[0b1000_0001]);
        assert_eq!(bits[0], Some(true));
        assert_eq!(bits[7], Some(true));
        assert!(bits[1..7].iter().all(|b| *b == Some(false)));
    }
}

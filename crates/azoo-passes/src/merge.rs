//! Prefix and suffix state-merging optimizations.
//!
//! Two STEs are *left-equivalent* when they have the same symbol class,
//! the same start kind, the same report behaviour, and identical
//! predecessor sets (treating a self-loop as a reference to "myself").
//! Left-equivalent states are always enabled together and match together,
//! so they can be merged, unioning their successor lists. Iterating to a
//! fixpoint collapses common prefixes of the automaton — VASim's standard
//! optimization, and the source of the "Compressed states" column in
//! AutomataZoo's Table I.
//!
//! Suffix merging is the dual: states with identical class, start kind,
//! report behaviour, and successor sets produce indistinguishable futures
//! and can be merged, unioning their predecessor edges.

use std::collections::HashMap;

use azoo_core::{Automaton, ElementKind, Port, StateId};

/// Result of a merge pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeStats {
    /// State count before merging.
    pub states_before: usize,
    /// State count after merging.
    pub states_after: usize,
    /// Number of fixpoint rounds executed.
    pub rounds: usize,
}

impl MergeStats {
    /// Fraction of states removed (the paper's "Compr. factor").
    pub fn compression_factor(&self) -> f64 {
        if self.states_before == 0 {
            0.0
        } else {
            1.0 - self.states_after as f64 / self.states_before as f64
        }
    }
}

/// Self-loop-normalized adjacency signature entry.
const SELF: u32 = u32::MAX;

fn normalize(list: &mut Vec<(u32, Port)>, me: u32) {
    for e in list.iter_mut() {
        if e.0 == me {
            e.0 = SELF;
        }
    }
    list.sort_unstable();
    list.dedup();
}

/// Merges left-equivalent states to a fixpoint. Returns the optimized
/// automaton and statistics.
///
/// Counters are never merged, but their edges participate in signatures.
///
/// # Example
///
/// ```
/// use azoo_core::{Automaton, StartKind, SymbolClass};
/// use azoo_passes::merge_prefixes;
///
/// // Two patterns sharing the prefix "ab": "abc" and "abd".
/// let mut a = Automaton::new();
/// for last in [b'c', b'd'] {
///     let (_, end) = a.add_chain(
///         &[
///             SymbolClass::from_byte(b'a'),
///             SymbolClass::from_byte(b'b'),
///             SymbolClass::from_byte(last),
///         ],
///         StartKind::AllInput,
///     );
///     a.set_report(end, last as u32);
/// }
/// let (merged, stats) = merge_prefixes(&a);
/// assert_eq!(stats.states_before, 6);
/// assert_eq!(merged.state_count(), 4); // a, b shared; c, d distinct
/// ```
pub fn merge_prefixes(a: &Automaton) -> (Automaton, MergeStats) {
    merge(a, Direction::Prefix)
}

/// Merges right-equivalent states to a fixpoint (suffix collapse).
pub fn merge_suffixes(a: &Automaton) -> (Automaton, MergeStats) {
    merge(a, Direction::Suffix)
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Direction {
    Prefix,
    Suffix,
}

fn merge(a: &Automaton, dir: Direction) -> (Automaton, MergeStats) {
    let states_before = a.state_count();
    let mut current = a.clone();
    let mut rounds = 0;
    loop {
        rounds += 1;
        let (next, changed) = merge_round(&current, dir);
        current = next;
        if !changed {
            break;
        }
    }
    let stats = MergeStats {
        states_before,
        states_after: current.state_count(),
        rounds,
    };
    (current, stats)
}

fn merge_round(a: &Automaton, dir: Direction) -> (Automaton, bool) {
    let n = a.state_count();
    // The adjacency side that must match for equivalence.
    let mut sig_adj: Vec<Vec<(u32, Port)>> = vec![Vec::new(); n];
    match dir {
        Direction::Prefix => {
            for (id, _) in a.iter() {
                for e in a.successors(id) {
                    sig_adj[e.to.index()].push((id.index() as u32, e.port));
                }
            }
        }
        Direction::Suffix => {
            for (id, _) in a.iter() {
                sig_adj[id.index()] = a
                    .successors(id)
                    .iter()
                    .map(|e| (e.to.index() as u32, e.port))
                    .collect();
            }
        }
    }
    for (i, list) in sig_adj.iter_mut().enumerate() {
        normalize(list, i as u32);
    }

    // Group mergeable states by signature. `leader[i]` is the state i is
    // merged into (identity when unmerged).
    #[derive(Hash, PartialEq, Eq)]
    struct Sig<'a> {
        element: &'a azoo_core::Element,
        adj: &'a [(u32, Port)],
    }
    let mut leader: Vec<u32> = (0..n as u32).collect();
    let mut groups: HashMap<Sig<'_>, u32> = HashMap::new();
    let mut changed = false;
    for (id, e) in a.iter() {
        if matches!(e.kind, ElementKind::Counter { .. }) {
            continue; // counters carry hidden state; never merge
        }
        let sig = Sig {
            element: e,
            adj: &sig_adj[id.index()],
        };
        match groups.entry(sig) {
            std::collections::hash_map::Entry::Occupied(o) => {
                leader[id.index()] = *o.get();
                changed = true;
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(id.index() as u32);
            }
        }
    }
    if !changed {
        return (a.clone(), false);
    }

    // Rebuild: keep only leaders, redirect edges through `leader`, and
    // union adjacency of merged states.
    let mut remap = vec![u32::MAX; n];
    let mut out = Automaton::with_capacity(n);
    for (id, e) in a.iter() {
        if leader[id.index()] == id.index() as u32 {
            let new_id = out.add_element(e.clone());
            remap[id.index()] = new_id.index() as u32;
        }
    }
    let mut seen: HashMap<(u32, u32, Port), ()> = HashMap::new();
    for (id, _) in a.iter() {
        let from = remap[leader[id.index()] as usize];
        for e in a.successors(id) {
            let to = remap[leader[e.to.index()] as usize];
            if seen.insert((from, to, e.port), ()).is_none() {
                let f = StateId::new(from as usize);
                let t = StateId::new(to as usize);
                match e.port {
                    Port::Activate => out.add_edge(f, t),
                    Port::Reset => out.add_reset_edge(f, t),
                }
            }
        }
    }
    (out, true)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use azoo_core::{StartKind, SymbolClass};

    fn literal_set(words: &[&str]) -> Automaton {
        let mut a = Automaton::new();
        for (i, w) in words.iter().enumerate() {
            let classes: Vec<SymbolClass> = w.bytes().map(SymbolClass::from_byte).collect();
            let (_, last) = a.add_chain(&classes, StartKind::AllInput);
            a.set_report(last, i as u32);
        }
        a
    }

    #[test]
    fn shared_prefix_collapses() {
        let a = literal_set(&["hello", "help", "hero"]);
        let (m, stats) = merge_prefixes(&a);
        // "he" shared by all three (2 states), "l" shared by hello/help
        // (1 state), then tails "lo", "p", "ro" (5 states).
        assert_eq!(stats.states_before, 5 + 4 + 4);
        assert_eq!(m.state_count(), 2 + 1 + 5);
        m.validate().unwrap();
    }

    #[test]
    fn different_reports_do_not_merge() {
        // Identical single-state patterns with different report codes must
        // stay distinct.
        let mut a = Automaton::new();
        for code in 0..2 {
            let s = a.add_ste(SymbolClass::from_byte(b'x'), StartKind::AllInput);
            a.set_report(s, code);
        }
        let (m, _) = merge_prefixes(&a);
        assert_eq!(m.state_count(), 2);
    }

    #[test]
    fn identical_reports_merge() {
        let mut a = Automaton::new();
        for _ in 0..3 {
            let s = a.add_ste(SymbolClass::from_byte(b'x'), StartKind::AllInput);
            a.set_report(s, 7);
        }
        let (m, stats) = merge_prefixes(&a);
        assert_eq!(m.state_count(), 1);
        assert!((stats.compression_factor() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn self_loops_merge_when_symmetric() {
        let mut a = Automaton::new();
        for _ in 0..2 {
            let s = a.add_ste(SymbolClass::from_byte(b'q'), StartKind::AllInput);
            a.add_edge(s, s);
        }
        let (m, _) = merge_prefixes(&a);
        assert_eq!(m.state_count(), 1);
        assert_eq!(m.edge_count(), 1);
    }

    #[test]
    fn suffix_merge_collapses_shared_tails() {
        // "xab" and "yab" share the suffix "ab" plus the same report code.
        let mut a = Automaton::new();
        for first in [b'x', b'y'] {
            let (_, last) = a.add_chain(
                &[
                    SymbolClass::from_byte(first),
                    SymbolClass::from_byte(b'a'),
                    SymbolClass::from_byte(b'b'),
                ],
                StartKind::AllInput,
            );
            a.set_report(last, 1);
        }
        let (m, _) = merge_suffixes(&a);
        assert_eq!(m.state_count(), 4);
        m.validate().unwrap();
    }

    #[test]
    fn counters_are_never_merged() {
        let mut a = Automaton::new();
        for _ in 0..2 {
            let s = a.add_ste(SymbolClass::from_byte(b'c'), StartKind::AllInput);
            let c = a.add_counter(3, azoo_core::CounterMode::Latch);
            a.add_edge(s, c);
            a.set_report(c, 0);
        }
        let (m, _) = merge_prefixes(&a);
        // The two STEs differ in successor counters, which never merge.
        assert_eq!(m.counter_count(), 2);
    }

    #[test]
    fn merge_is_idempotent() {
        let a = literal_set(&["abc", "abd", "abe", "xyz"]);
        let (m1, _) = merge_prefixes(&a);
        let (m2, s2) = merge_prefixes(&m1);
        assert_eq!(m1.state_count(), m2.state_count());
        assert_eq!(s2.compression_factor(), 0.0);
    }

    #[test]
    fn start_kinds_distinguish() {
        let mut a = Automaton::new();
        a.add_ste(SymbolClass::from_byte(b'z'), StartKind::AllInput);
        a.add_ste(SymbolClass::from_byte(b'z'), StartKind::StartOfData);
        let (m, _) = merge_prefixes(&a);
        assert_eq!(m.state_count(), 2);
    }
}

//! Literal-prefilter planning.
//!
//! Turns [`azoo_core::stats::prefilter_analysis`] into an executable
//! plan: the automaton is split, component by component, into
//!
//! * **prefilterable components** — counter-free, unanchored, acyclic
//!   from their starts, every reachable report state covered by a
//!   required literal. These are only ever simulated inside a bounded
//!   window before a literal occurrence;
//! * a **fallback remainder** — the union of all components the
//!   analysis rejects, which must be fully simulated;
//! * **dropped components** — components with no reachable reporting
//!   element; they can never produce observable output and need no
//!   scanning at all.
//!
//! The split is a single pass over the states (not one
//! [`Automaton::retain_states`] per component, which would be
//! quadratic in the suite size).

use azoo_core::stats::{prefilter_analysis, ComponentPrefilter, RequiredLiteral};
use azoo_core::{stats::component_labels, Automaton, Port};

/// Shortest required factor worth triggering on. Shorter factors hit so
/// often that windowed simulation costs more than fully simulating the
/// component in the fallback remainder — unless the factor is the
/// component's *entire* match (single factor, `before == after == 0`,
/// spanning the longest path, one non-eod report state), in which case
/// trigger hits are reports and cost nothing beyond the scan.
pub const MIN_STRONG_LITERAL: usize = 4;

/// One prefilterable component, detached into its own automaton.
#[derive(Debug, Clone)]
pub struct PrefilterComponent {
    /// The component's states, re-indexed from zero.
    pub automaton: Automaton,
    /// Longest start-rooted path in states: a match reported at offset
    /// `p` began no earlier than `p - (window - 1)`.
    pub window: usize,
    /// Required factors; every match of this component contains one of
    /// them, located by the factor's `before`/`after` span geometry.
    pub literals: Vec<RequiredLiteral>,
}

/// The full prefilter plan for an automaton.
#[derive(Debug, Clone)]
pub struct PrefilterPlan {
    /// Components eligible for windowed, literal-triggered simulation.
    pub components: Vec<PrefilterComponent>,
    /// Union of the rejected components; `None` when every component is
    /// either prefilterable or dropped.
    pub fallback: Option<Automaton>,
    /// Per-component analysis verdicts (prefilterable, dropped, and
    /// rejected alike), as produced by `prefilter_analysis`.
    pub analysis: Vec<ComponentPrefilter>,
    /// States covered by `components`.
    pub prefiltered_states: usize,
    /// States in the fallback remainder.
    pub fallback_states: usize,
    /// States in dropped (never-reporting) components.
    pub dropped_states: usize,
    /// Components the analysis passed but the plan demoted to the
    /// fallback because their factors are too short to trigger on
    /// (their states are included in `fallback_states`).
    pub demoted_components: usize,
    /// States in demoted components.
    pub demoted_states: usize,
}

impl PrefilterPlan {
    /// Fraction of states the prefilter spares from full simulation
    /// (prefiltered plus dropped over total). `1.0` for an empty
    /// automaton.
    pub fn coverage(&self) -> f64 {
        let total = self.prefiltered_states + self.fallback_states + self.dropped_states;
        if total == 0 {
            1.0
        } else {
            (self.prefiltered_states + self.dropped_states) as f64 / total as f64
        }
    }
}

/// Destination of a component's states in the split.
#[derive(Clone, Copy)]
enum Bucket {
    Component(usize),
    Fallback,
    Dropped,
}

/// Computes the prefilter plan for `a`.
pub fn prefilter_plan(a: &Automaton) -> PrefilterPlan {
    let analysis = prefilter_analysis(a);
    let labels = component_labels(a);

    // Per-component report shape, for the exact-match carve-out of the
    // short-factor demotion rule (component index == label).
    let mut rep_count = vec![0usize; analysis.len()];
    let mut rep_eod = vec![false; analysis.len()];
    for (id, e) in a.iter() {
        if e.report.is_some() {
            rep_count[labels[id.index()]] += 1;
            rep_eod[labels[id.index()]] |= e.report_eod_only;
        }
    }

    let mut bucket_of = Vec::with_capacity(analysis.len());
    let mut components = Vec::new();
    let mut prefiltered_states = 0usize;
    let mut fallback_states = 0usize;
    let mut dropped_states = 0usize;
    let mut demoted_components = 0usize;
    let mut demoted_states = 0usize;
    for (ci, cp) in analysis.iter().enumerate() {
        match &cp.literals {
            Some(lits) if !cp.reporting => {
                debug_assert!(lits.is_empty());
                bucket_of.push(Bucket::Dropped);
                dropped_states += cp.states;
            }
            Some(lits) => {
                let window = cp.window.unwrap_or(0);
                let exact = matches!(
                    lits.as_slice(),
                    [l] if l.before == 0 && l.after == 0 && l.bytes.len() == window
                ) && rep_count[ci] == 1
                    && !rep_eod[ci];
                let min_len = lits.iter().map(|l| l.bytes.len()).min().unwrap_or(0);
                if !exact && min_len < MIN_STRONG_LITERAL {
                    bucket_of.push(Bucket::Fallback);
                    fallback_states += cp.states;
                    demoted_components += 1;
                    demoted_states += cp.states;
                } else {
                    bucket_of.push(Bucket::Component(components.len()));
                    prefiltered_states += cp.states;
                    components.push(PrefilterComponent {
                        automaton: Automaton::new(),
                        window,
                        literals: lits.clone(),
                    });
                }
            }
            None => {
                bucket_of.push(Bucket::Fallback);
                fallback_states += cp.states;
            }
        }
    }

    // Single pass: place every state, remembering its new id, then wire
    // the edges (endpoints of an edge always share a component, hence a
    // bucket).
    let mut fallback = Automaton::new();
    let mut remap = vec![azoo_core::StateId::new(0); a.state_count()];
    for (id, e) in a.iter() {
        let dst = match bucket_of[labels[id.index()]] {
            Bucket::Component(ci) => &mut components[ci].automaton,
            Bucket::Fallback => &mut fallback,
            Bucket::Dropped => continue,
        };
        remap[id.index()] = dst.add_element(e.clone());
    }
    for (id, _) in a.iter() {
        let dst = match bucket_of[labels[id.index()]] {
            Bucket::Component(ci) => &mut components[ci].automaton,
            Bucket::Fallback => &mut fallback,
            Bucket::Dropped => continue,
        };
        for edge in a.successors(id) {
            let (from, to) = (remap[id.index()], remap[edge.to.index()]);
            match edge.port {
                Port::Activate => dst.add_edge(from, to),
                Port::Reset => dst.add_reset_edge(from, to),
            }
        }
    }

    PrefilterPlan {
        components,
        fallback: if fallback.state_count() > 0 {
            Some(fallback)
        } else {
            None
        },
        analysis,
        prefiltered_states,
        fallback_states,
        dropped_states,
        demoted_components,
        demoted_states,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use azoo_core::{CounterMode, StartKind, SymbolClass};

    fn word(a: &mut Automaton, w: &[u8], code: u32) {
        let classes: Vec<SymbolClass> = w.iter().map(|&b| SymbolClass::from_byte(b)).collect();
        let (_, last) = a.add_chain(&classes, StartKind::AllInput);
        a.set_report(last, code);
    }

    #[test]
    fn splits_literals_from_fallback() {
        let mut a = Automaton::new();
        word(&mut a, b"admin", 0);
        word(&mut a, b"shell", 1);
        // A cyclic component that must fall back.
        let s = a.add_ste(SymbolClass::from_byte(b'x'), StartKind::AllInput);
        let l = a.add_ste(SymbolClass::from_byte(b'y'), StartKind::None);
        a.add_edge(s, l);
        a.add_edge(l, l);
        a.set_report(l, 2);
        let plan = prefilter_plan(&a);
        assert_eq!(plan.components.len(), 2);
        assert_eq!(plan.prefiltered_states, 10);
        assert_eq!(plan.fallback_states, 2);
        let fb = plan.fallback.as_ref().unwrap();
        assert_eq!(fb.state_count(), 2);
        fb.validate().unwrap();
        for c in &plan.components {
            c.automaton.validate().unwrap();
            assert_eq!(c.window, 5);
            assert_eq!(c.literals.len(), 1);
        }
        assert!((plan.coverage() - 10.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn reportless_components_are_dropped() {
        let mut a = Automaton::new();
        word(&mut a, b"keep", 0);
        a.add_chain(&[SymbolClass::from_byte(b'n'); 3], StartKind::AllInput);
        let plan = prefilter_plan(&a);
        assert_eq!(plan.components.len(), 1);
        assert!(plan.fallback.is_none());
        assert_eq!(plan.dropped_states, 3);
        assert_eq!(plan.coverage(), 1.0);
    }

    #[test]
    fn counters_and_reset_edges_survive_in_fallback() {
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::from_byte(b'k'), StartKind::AllInput);
        let r = a.add_ste(SymbolClass::from_byte(b'z'), StartKind::AllInput);
        let c = a.add_counter(3, CounterMode::Latch);
        a.add_edge(s, c);
        a.add_reset_edge(r, c);
        a.set_report(c, 9);
        let plan = prefilter_plan(&a);
        assert!(plan.components.is_empty());
        let fb = plan.fallback.unwrap();
        assert_eq!(fb.state_count(), 3);
        assert_eq!(fb.counter_count(), 1);
        fb.validate().unwrap();
    }

    #[test]
    fn empty_automaton_has_empty_plan() {
        let plan = prefilter_plan(&Automaton::new());
        assert!(plan.components.is_empty());
        assert!(plan.fallback.is_none());
        assert_eq!(plan.coverage(), 1.0);
    }
}

//! Input/offset relations across rescaling passes.
//!
//! A semantics-preserving pass either leaves the input language alone
//! (merging, dead-state removal) or *rescales* it: [`stride8`](crate::stride8)
//! turns a bit-level machine into a byte-level one, [`widen`](crate::widen)
//! turns a byte-level machine into one consuming zero-interleaved 16-bit
//! symbols. Comparing report streams across such a pass needs three
//! pieces of bookkeeping — how a byte sample expands for the *pre*-pass
//! machine, how it expands for the *post*-pass machine, and how a
//! pre-pass report offset maps to a post-pass one. [`InputMap`] bundles
//! all three so the pass verifier (`azoo-analyze`) and the differential
//! oracle (`azoo-oracle`) agree on the conventions.
//!
//! Offset conventions:
//!
//! * [`InputMap::Stride8`] — the pre-pass automaton is bit-level (one
//!   symbol per bit, MSB first); sampled bytes are expanded 8:1 for it.
//!   Only byte-aligned matches survive striding, so pre-pass reports are
//!   filtered to offsets with `(o + 1) % 8 == 0` and mapped to `o / 8`.
//!   This is exact for whole-byte patterns (the only shape `stride8`
//!   accepts from `bit_pattern_chain`-built machines).
//! * [`InputMap::Widen`] — the post-pass automaton consumes
//!   zero-interleaved input (`b` → `b, 0`); a pre-pass report at `o`
//!   maps to `2 * o + 1` (the pad state reports). Samples must be
//!   NUL-free so pad positions never alias alphabet bytes (see
//!   [`InputMap::allows_byte`]).

/// How sampled input and report offsets relate across a pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputMap {
    /// Input and offsets are unchanged (merging, dead-state removal).
    Identity,
    /// Pre-pass machine is bit-level, post-pass machine is byte-level.
    Stride8,
    /// Post-pass machine consumes zero-interleaved (16-bit padded) input.
    Widen,
}

impl InputMap {
    /// Expands a byte sample into the input the *pre*-pass machine
    /// consumes: 8 bits MSB-first per byte for [`InputMap::Stride8`],
    /// the bytes themselves otherwise.
    pub fn pre_input(self, sample: &[u8]) -> Vec<u8> {
        match self {
            InputMap::Stride8 => sample
                .iter()
                .flat_map(|&b| (0..8).map(move |j| (b >> (7 - j)) & 1))
                .collect(),
            InputMap::Identity | InputMap::Widen => sample.to_vec(),
        }
    }

    /// Expands a byte sample into the input the *post*-pass machine
    /// consumes: zero-interleaved for [`InputMap::Widen`], the bytes
    /// themselves otherwise.
    pub fn post_input(self, sample: &[u8]) -> Vec<u8> {
        match self {
            InputMap::Widen => sample.iter().flat_map(|&b| [b, 0]).collect(),
            InputMap::Identity | InputMap::Stride8 => sample.to_vec(),
        }
    }

    /// Maps a pre-pass report offset to the post-pass offset, or `None`
    /// if the report has no post-pass counterpart (non-byte-aligned
    /// offsets under [`InputMap::Stride8`]).
    pub fn map_offset(self, offset: u64) -> Option<u64> {
        match self {
            InputMap::Identity => Some(offset),
            InputMap::Stride8 => (offset + 1).is_multiple_of(8).then_some(offset / 8),
            InputMap::Widen => Some(2 * offset + 1),
        }
    }

    /// Whether `b` may appear in a sampled input under this map.
    /// [`InputMap::Widen`] forbids NUL (the pad symbol).
    pub fn allows_byte(self, b: u8) -> bool {
        !(self == InputMap::Widen && b == 0)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn stride8_expands_msb_first() {
        assert_eq!(
            InputMap::Stride8.pre_input(&[0b1010_0001]),
            vec![1, 0, 1, 0, 0, 0, 0, 1]
        );
        assert_eq!(InputMap::Stride8.post_input(&[0xAB]), vec![0xAB]);
    }

    #[test]
    fn widen_interleaves_zero() {
        assert_eq!(InputMap::Widen.post_input(b"ab"), vec![b'a', 0, b'b', 0]);
        assert_eq!(InputMap::Widen.pre_input(b"ab"), b"ab".to_vec());
    }

    #[test]
    fn offset_maps_follow_conventions() {
        assert_eq!(InputMap::Identity.map_offset(5), Some(5));
        assert_eq!(InputMap::Stride8.map_offset(7), Some(0));
        assert_eq!(InputMap::Stride8.map_offset(15), Some(1));
        assert_eq!(InputMap::Stride8.map_offset(8), None);
        assert_eq!(InputMap::Widen.map_offset(0), Some(1));
        assert_eq!(InputMap::Widen.map_offset(3), Some(7));
    }

    #[test]
    fn widen_forbids_nul() {
        assert!(!InputMap::Widen.allows_byte(0));
        assert!(InputMap::Widen.allows_byte(1));
        assert!(InputMap::Identity.allows_byte(0));
        assert!(InputMap::Stride8.allows_byte(0));
    }
}

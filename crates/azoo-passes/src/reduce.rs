//! The reduction tier: simulation-based state merging.
//!
//! Two passes built on the same forward-simulation machinery:
//!
//! * [`quotient_simulation`] — computes the coarsest forward bisimulation
//!   on the homogeneous NFA by partition refinement and merges each
//!   equivalence class into one state. Unlike [`merge_suffixes`], whose
//!   signatures name concrete successor ids (and therefore only converge
//!   on DAGs), the partition refines over *blocks*, so cyclically
//!   duplicated subgraphs collapse too.
//! * [`residual_merge`] — folds a state `p` away when another state `q`
//!   *covers* it: `q` is enabled whenever `p` is, fires on every symbol
//!   `p` fires on, reports everything `p` reports, and right-simulates
//!   `p`'s futures. Containment (rather than equality) is what the
//!   quotient cannot see — e.g. a literal chain shadowed by a
//!   wider-class chain with the same report code.
//!
//! [`reduce`] iterates both to a fixpoint; engines and azoo-serve apply
//! it behind their `--reduce` flags.
//!
//! # Why merging is sound here
//!
//! The engine semantics make two guarantees that carry the whole
//! argument (see `azoo-engines`' NFA doc): reports are canonical — at
//! most one report per `(offset, code)` pair even when several states
//! holding the same code fire together — and a counter samples its
//! enable/reset lines as a per-symbol OR over incoming pulses. Both
//! effects of a state (reports, pulses) are therefore *idempotent per
//! cycle*, so replacing a set of states that always fire with identical
//! observable effect by a single representative changes nothing
//! downstream. The merged state's enabling is the union of its members'
//! enabling: predecessor edges are unioned, and start kinds join in the
//! enabling lattice `None < StartOfData < AllInput` (enabling sets
//! `∅ ⊂ {0} ⊂ all offsets`).
//!
//! # Refusal matrix
//!
//! The conservative policy for the constructs whose state is not purely
//! positional:
//!
//! | construct               | quotient                  | residual          |
//! |-------------------------|---------------------------|-------------------|
//! | counter element         | pinned (singleton block)  | component refused |
//! | `StartOfData` STE       | pinned (singleton block)  | component refused |
//! | component > [`RESIDUAL_COMPONENT_CAP`] | allowed    | component refused |
//!
//! Counters carry hidden state, so they are never merged; plain STEs
//! *adjacent* to counters may still merge under the quotient because
//! identical counter attachments are part of the refinement signature
//! (counters are singleton blocks, so "same counter" means "same
//! element") and pulse lines OR per cycle. The residual pass deletes
//! states outright, which perturbs pulse *timing* rather than just
//! fan-in, so it refuses any component holding a counter or a
//! `StartOfData` anchor entirely.

use std::collections::HashMap;

use azoo_core::stats::{component_labels, component_profiles};
use azoo_core::{
    Automaton, Element, ElementKind, Port, ReportCode, StartKind, StateId, SymbolClass,
};

use crate::merge::MergeStats;

/// Residual simulation is quadratic per component; components larger
/// than this are refused (recorded in [`ReduceStats::refused_components`]).
/// Benchmark components are per-pattern and far smaller.
pub const RESIDUAL_COMPONENT_CAP: usize = 512;

/// Result of the combined [`reduce`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReduceStats {
    /// State count before reduction.
    pub states_before: usize,
    /// Edge count before reduction.
    pub edges_before: usize,
    /// State count after reduction.
    pub states_after: usize,
    /// Edge count after reduction.
    pub edges_after: usize,
    /// States removed by bisimulation quotienting.
    pub quotient_removed: usize,
    /// States removed by residual coverage folds.
    pub residual_removed: usize,
    /// Quotient+residual rounds executed.
    pub rounds: usize,
    /// Components the residual pass refused (counter / anchor / size).
    pub refused_components: usize,
}

impl ReduceStats {
    /// Fraction of states removed.
    pub fn compression_factor(&self) -> f64 {
        if self.states_before == 0 {
            0.0
        } else {
            1.0 - self.states_after as f64 / self.states_before as f64
        }
    }
}

/// Join in the start-kind enabling lattice: `None` (never
/// start-enabled) `< StartOfData` (offset 0) `< AllInput` (every
/// offset). A merged state is enabled when any member was, so its start
/// kind is the join of the members'.
fn start_join(a: StartKind, b: StartKind) -> StartKind {
    match (a, b) {
        (StartKind::AllInput, _) | (_, StartKind::AllInput) => StartKind::AllInput,
        (StartKind::StartOfData, _) | (_, StartKind::StartOfData) => StartKind::StartOfData,
        _ => StartKind::None,
    }
}

/// `sub ⊆ sup` on symbol classes.
fn class_subset(sub: &SymbolClass, sup: &SymbolClass) -> bool {
    sub.as_words()
        .iter()
        .zip(sup.as_words())
        .all(|(s, p)| s & !p == 0)
}

/// Computes the coarsest forward bisimulation of `a` as a dense block
/// assignment (block ids ordered by smallest member state).
///
/// Two states land in one block iff they have the same symbol class,
/// the same report behaviour (code and `$`-anchoring), and, for every
/// block `B` and port `π`, an edge into `B` on `π` either from both or
/// from neither. Start kind is deliberately *not* part of the
/// signature: enabling is a left-side property, and the quotient
/// rebuilds it as the join over each block (see the module doc).
///
/// Counter elements and `StartOfData` STEs are pinned to singleton
/// blocks (the refusal matrix), so "same counter successor" in a
/// signature means "the same counter element".
pub fn simulation_partition(a: &Automaton) -> Vec<u32> {
    let n = a.state_count();
    // Initial partition: local observables only. Pinned states get a
    // unique key so refinement can never merge them.
    #[derive(Hash, PartialEq, Eq)]
    enum InitKey {
        Pinned(u32),
        Ste {
            class: [u64; 4],
            report: Option<ReportCode>,
            eod: bool,
        },
    }
    let mut block = vec![0u32; n];
    let mut blocks = 0u32;
    let mut table: HashMap<InitKey, u32> = HashMap::new();
    for (id, e) in a.iter() {
        let key = match &e.kind {
            ElementKind::Counter { .. } => InitKey::Pinned(id.index() as u32),
            ElementKind::Ste { class, start } => {
                if *start == StartKind::StartOfData {
                    InitKey::Pinned(id.index() as u32)
                } else {
                    InitKey::Ste {
                        class: *class.as_words(),
                        report: e.report,
                        // The anchor flag only matters on reporting states.
                        eod: e.report.is_some() && e.report_eod_only,
                    }
                }
            }
        };
        block[id.index()] = *table.entry(key).or_insert_with(|| {
            blocks += 1;
            blocks - 1
        });
    }
    // Refine by successor-block signatures until stable. Successor sets
    // are deduplicated: multiple edges into one block are a single OR
    // contribution, matching the engines' per-cycle pulse semantics.
    loop {
        let mut table: HashMap<(u32, Vec<(u32, Port)>), u32> = HashMap::new();
        let mut next = vec![0u32; n];
        let mut count = 0u32;
        for (id, _) in a.iter() {
            let mut sig: Vec<(u32, Port)> = a
                .successors(id)
                .iter()
                .map(|e| (block[e.to.index()], e.port))
                .collect();
            sig.sort_unstable();
            sig.dedup();
            next[id.index()] = *table.entry((block[id.index()], sig)).or_insert_with(|| {
                count += 1;
                count - 1
            });
        }
        if count == blocks {
            return block;
        }
        block = next;
        blocks = count;
    }
}

/// Merges forward-bisimilar states (see [`simulation_partition`]).
/// Returns the quotient automaton and statistics; `rounds` counts
/// refinement iterations implicitly as 1 (the partition is computed to
/// its fixpoint in one call).
pub fn quotient_simulation(a: &Automaton) -> (Automaton, MergeStats) {
    let n = a.state_count();
    let block = simulation_partition(a);
    let blocks = block.iter().copied().max().map_or(0, |m| m as usize + 1);
    let stats = MergeStats {
        states_before: n,
        states_after: blocks,
        rounds: 1,
    };
    if blocks == n {
        return (a.clone(), stats);
    }
    // One representative element per block, cloned from the smallest
    // member; start kind is the join over the block.
    let mut out = Automaton::with_capacity(blocks);
    let mut rep: Vec<Option<StateId>> = vec![None; blocks];
    for (id, e) in a.iter() {
        let b = block[id.index()] as usize;
        match rep[b] {
            None => rep[b] = Some(out.add_element(e.clone())),
            Some(r) => {
                let joined = start_join(out.element(r).start_kind(), e.start_kind());
                if let ElementKind::Ste { start, .. } = &mut out.element_mut(r).kind {
                    *start = joined;
                }
            }
        }
    }
    let mut seen: std::collections::HashSet<(u32, u32, Port)> = std::collections::HashSet::new();
    for (id, _) in a.iter() {
        let from = block[id.index()];
        for e in a.successors(id) {
            let to = block[e.to.index()];
            if seen.insert((from, to, e.port)) {
                let f = StateId::new(from as usize);
                let t = StateId::new(to as usize);
                match e.port {
                    Port::Activate => out.add_edge(f, t),
                    Port::Reset => out.add_reset_edge(f, t),
                }
            }
        }
    }
    (out, stats)
}

/// Right-simulation local compatibility: can `q` possibly cover `p`'s
/// immediate observables?
fn covers_locally(p: &Element, q: &Element) -> bool {
    let (Some(pc), Some(qc)) = (p.class(), q.class()) else {
        return false; // counters never participate (refused components)
    };
    if !class_subset(pc, qc) {
        return false;
    }
    match p.report {
        None => true,
        // q must report the same code, at least as often: if q is
        // `$`-anchored, p must be too.
        Some(code) => q.report == Some(code) && (!q.report_eod_only || p.report_eod_only),
    }
}

/// Computes the right-simulation preorder within one component as a
/// boolean matrix over `states` (local indexing): `rel[p][q]` means `q`
/// simulates every future of `p`. Greatest fixpoint: start from local
/// compatibility and strike pairs whose successor obligation fails.
fn component_preorder(a: &Automaton, states: &[StateId]) -> Vec<Vec<bool>> {
    let k = states.len();
    let mut local = HashMap::with_capacity(k);
    for (i, &s) in states.iter().enumerate() {
        local.insert(s, i);
    }
    let succs: Vec<Vec<usize>> = states
        .iter()
        .map(|&s| a.successors(s).iter().map(|e| local[&e.to]).collect())
        .collect();
    let mut rel = vec![vec![false; k]; k];
    for p in 0..k {
        for q in 0..k {
            rel[p][q] = p == q || covers_locally(a.element(states[p]), a.element(states[q]));
        }
    }
    loop {
        let mut changed = false;
        for p in 0..k {
            for q in 0..k {
                if !rel[p][q] || p == q {
                    continue;
                }
                let ok = succs[p]
                    .iter()
                    .all(|&s| succs[q].iter().any(|&t| rel[s][t]));
                if !ok {
                    rel[p][q] = false;
                    changed = true;
                }
            }
        }
        if !changed {
            return rel;
        }
    }
}

/// Folds away states whose right language is contained in a covering
/// state's, per the simulation preorder. Returns the folded automaton
/// and statistics (`rounds` is the number of components folded in).
///
/// A state `p` is deleted when some surviving witness `q ≠ p` satisfies:
///
/// * `p ≼ q` in the component's right-simulation preorder (class
///   containment, report containment, successor obligations — so every
///   report `p`'s future produces, `q`'s future produces at the same
///   offset);
/// * `start(p) ≤ start(q)` in the enabling lattice and every non-self
///   predecessor of `p` is a predecessor of `q` — so `q` is enabled,
///   and therefore fires, whenever `p` does.
///
/// Witnesses must be unfolded *at decision time*; since `≼` is
/// transitive and fold times strictly increase along witness chains,
/// every deleted state resolves to a surviving cover and no cycle of
/// mutually-covering states can vanish entirely. Components bearing
/// counters or `StartOfData` anchors are refused outright (deletion
/// perturbs pulse timing and position anchoring; see the module doc).
pub fn residual_merge(a: &Automaton) -> (Automaton, MergeStats) {
    let n = a.state_count();
    let labels = component_labels(a);
    let profiles = component_profiles(a);
    let mut members: Vec<Vec<StateId>> = vec![Vec::new(); profiles.len()];
    for (id, _) in a.iter() {
        members[labels[id.index()]].push(id);
    }
    let preds = a.predecessors();
    let mut folded = vec![false; n];
    let mut rounds = 0;
    for profile in &profiles {
        if profile.has_counter
            || profile.has_start_of_data
            || profile.states < 2
            || profile.states > RESIDUAL_COMPONENT_CAP
        {
            continue;
        }
        let states = &members[profile.component];
        let rel = component_preorder(a, states);
        let mut comp_folded = false;
        for (p, &ps) in states.iter().enumerate() {
            'witness: for (q, &qs) in states.iter().enumerate() {
                if p == q || folded[qs.index()] || !rel[p][q] {
                    continue;
                }
                let (pe, qe) = (a.element(ps), a.element(qs));
                if start_join(pe.start_kind(), qe.start_kind()) != qe.start_kind() {
                    continue;
                }
                for &(r, port) in &preds[ps.index()] {
                    if r != ps && !preds[qs.index()].contains(&(r, port)) {
                        continue 'witness;
                    }
                }
                folded[ps.index()] = true;
                comp_folded = true;
                break;
            }
        }
        if comp_folded {
            rounds += 1;
        }
    }
    let removed = folded.iter().filter(|&&f| f).count();
    let stats = MergeStats {
        states_before: n,
        states_after: n - removed,
        rounds,
    };
    if removed == 0 {
        return (a.clone(), stats);
    }
    (a.retain_states(|id| !folded[id.index()]), stats)
}

/// The full reduction tier: alternates [`quotient_simulation`] and
/// [`residual_merge`] until neither removes a state (folding can expose
/// new bisimilarities and vice versa). Semantics-preserving under the
/// identity input map; state and edge counts never grow.
pub fn reduce(a: &Automaton) -> (Automaton, ReduceStats) {
    let mut stats = ReduceStats {
        states_before: a.state_count(),
        edges_before: a.edge_count(),
        states_after: 0,
        edges_after: 0,
        quotient_removed: 0,
        residual_removed: 0,
        rounds: 0,
        refused_components: 0,
    };
    let mut cur = a.clone();
    loop {
        stats.rounds += 1;
        let before = cur.state_count();
        let (q, qs) = quotient_simulation(&cur);
        stats.quotient_removed += qs.states_before - qs.states_after;
        let (r, rs) = residual_merge(&q);
        stats.residual_removed += rs.states_before - rs.states_after;
        cur = r;
        if cur.state_count() == before {
            break;
        }
    }
    stats.refused_components = component_profiles(&cur)
        .iter()
        .filter(|p| p.has_counter || p.has_start_of_data || p.states > RESIDUAL_COMPONENT_CAP)
        .count();
    stats.states_after = cur.state_count();
    stats.edges_after = cur.edge_count();
    (cur, stats)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use azoo_core::{CounterMode, SymbolClass};

    fn byte(b: u8) -> SymbolClass {
        SymbolClass::from_byte(b)
    }

    /// A cyclically duplicated pattern the suffix merge cannot collapse:
    /// two copies of `a(ba)*` reporting code 9.
    fn duplicated_cycle() -> Automaton {
        let mut a = Automaton::new();
        for _ in 0..2 {
            let s = a.add_ste(byte(b'a'), StartKind::AllInput);
            let t = a.add_ste(byte(b'b'), StartKind::None);
            a.add_edge(s, t);
            a.add_edge(t, s);
            a.set_report(s, 9);
        }
        a
    }

    #[test]
    fn quotient_collapses_duplicated_cycles() {
        let a = duplicated_cycle();
        let (m, _) = crate::merge_suffixes(&a);
        assert_eq!(m.state_count(), 4, "suffix merge is blind to cycles");
        let (q, stats) = quotient_simulation(&a);
        assert_eq!(q.state_count(), 2);
        assert_eq!(stats.states_before, 4);
        q.validate().unwrap();
    }

    #[test]
    fn quotient_joins_start_kinds() {
        // Bisimilar states differing only in start kind merge to the join.
        let mut a = Automaton::new();
        let p = a.add_ste(byte(b'x'), StartKind::AllInput);
        let q = a.add_ste(byte(b'x'), StartKind::None);
        a.set_report(p, 1);
        a.set_report(q, 1);
        let (m, _) = quotient_simulation(&a);
        assert_eq!(m.state_count(), 1);
        assert_eq!(m.element(StateId::new(0)).start_kind(), StartKind::AllInput);
    }

    #[test]
    fn quotient_pins_anchors_and_counters() {
        let mut a = Automaton::new();
        for _ in 0..2 {
            let s = a.add_ste(byte(b'k'), StartKind::StartOfData);
            a.set_report(s, 3);
        }
        for _ in 0..2 {
            let c = a.add_counter(4, CounterMode::Latch);
            a.set_report(c, 5);
        }
        // A start so validation passes after nothing merges.
        let (m, _) = quotient_simulation(&a);
        assert_eq!(m.state_count(), 4);
    }

    #[test]
    fn quotient_distinguishes_eod_anchoring() {
        let mut a = Automaton::new();
        let p = a.add_ste(byte(b'x'), StartKind::AllInput);
        let q = a.add_ste(byte(b'x'), StartKind::AllInput);
        a.set_report(p, 1);
        a.set_report(q, 1);
        a.set_report_eod_only(q, true);
        let (m, _) = quotient_simulation(&a);
        assert_eq!(m.state_count(), 2);
    }

    #[test]
    fn quotient_merges_ste_feeding_a_shared_counter() {
        // Two identical STEs pulsing the *same* counter merge; pulse
        // lines OR per cycle so counts are unchanged.
        let mut a = Automaton::new();
        let c = a.add_counter(2, CounterMode::Latch);
        a.set_report(c, 7);
        for _ in 0..2 {
            let s = a.add_ste(byte(b'v'), StartKind::AllInput);
            a.add_edge(s, c);
        }
        let (m, _) = quotient_simulation(&a);
        assert_eq!(m.state_count(), 2);
        assert_eq!(m.counter_count(), 1);
    }

    #[test]
    fn quotient_keeps_stes_feeding_different_counters_apart() {
        let mut a = Automaton::new();
        for _ in 0..2 {
            let c = a.add_counter(2, CounterMode::Latch);
            a.set_report(c, 7);
            let s = a.add_ste(byte(b'v'), StartKind::AllInput);
            a.add_edge(s, c);
        }
        let (m, _) = quotient_simulation(&a);
        assert_eq!(m.state_count(), 4, "distinct counters pin their feeders");
    }

    #[test]
    fn residual_folds_contained_chain() {
        // "ab" (code 1) is shadowed by "[ab]b" → join into a shared
        // reporter; the narrow prefix state folds into the wide one.
        let mut a = Automaton::new();
        let narrow = a.add_ste(byte(b'a'), StartKind::AllInput);
        let mut wide_class = byte(b'a');
        wide_class.insert(b'b');
        let wide = a.add_ste(wide_class, StartKind::AllInput);
        let tail = a.add_ste(byte(b'b'), StartKind::None);
        a.add_edge(narrow, tail);
        a.add_edge(wide, tail);
        a.set_report(tail, 1);
        let (m, stats) = residual_merge(&a);
        assert_eq!(m.state_count(), 2);
        assert_eq!(stats.states_before - stats.states_after, 1);
        m.validate().unwrap();
    }

    #[test]
    fn residual_requires_predecessor_coverage() {
        // Same shape, but the narrow chain has a private predecessor:
        // the fold must refuse (the wide state is not always enabled
        // when the narrow one is).
        let mut a = Automaton::new();
        let feeder = a.add_ste(byte(b'z'), StartKind::AllInput);
        let narrow = a.add_ste(byte(b'a'), StartKind::None);
        let mut wide_class = byte(b'a');
        wide_class.insert(b'b');
        let wide = a.add_ste(wide_class, StartKind::AllInput);
        a.add_edge(feeder, narrow);
        a.set_report(narrow, 1);
        a.set_report(wide, 1);
        let (m, _) = residual_merge(&a);
        assert_eq!(m.state_count(), 3);
    }

    #[test]
    fn residual_keeps_one_of_mutual_covers() {
        // Two identical self-looping reporters in one component (joined
        // through a shared tail) cover each other; exactly one
        // representative must survive.
        let mut a = Automaton::new();
        let tail = a.add_ste(byte(b'b'), StartKind::None);
        for _ in 0..2 {
            let s = a.add_ste(byte(b'q'), StartKind::AllInput);
            a.add_edge(s, s);
            a.add_edge(s, tail);
            a.set_report(s, 2);
        }
        let (m, _) = residual_merge(&a);
        assert_eq!(m.state_count(), 2);
        assert_eq!(m.start_states().len(), 1);
        m.validate().unwrap();
    }

    #[test]
    fn residual_refuses_counter_and_anchor_components() {
        let mut a = Automaton::new();
        // Counter component with two coverable STEs.
        let c = a.add_counter(2, CounterMode::Latch);
        a.set_report(c, 7);
        for _ in 0..2 {
            let s = a.add_ste(byte(b'v'), StartKind::AllInput);
            a.add_edge(s, c);
        }
        // Anchored component with two coverable STEs.
        let anchor = a.add_ste(byte(b'h'), StartKind::StartOfData);
        let dup = a.add_ste(byte(b'h'), StartKind::StartOfData);
        a.set_report(anchor, 8);
        a.set_report(dup, 8);
        a.add_edge(anchor, dup);
        let (m, stats) = residual_merge(&a);
        assert_eq!(m.state_count(), a.state_count());
        assert_eq!(stats.rounds, 0);
    }

    #[test]
    fn residual_never_drops_every_start() {
        let mut a = Automaton::new();
        let p = a.add_ste(byte(b'x'), StartKind::None);
        let q = a.add_ste(byte(b'x'), StartKind::AllInput);
        a.set_report(p, 1);
        a.set_report(q, 1);
        a.add_edge(q, p);
        let (m, _) = residual_merge(&a);
        // p (never enabled except via q... still covered) may fold;
        // the AllInput state must survive.
        assert!(!m.start_states().is_empty());
        m.validate().unwrap();
    }

    #[test]
    fn reduce_combines_both_passes() {
        // Duplicated cycles (quotient work) plus a contained chain
        // (residual work) in one machine.
        let mut a = duplicated_cycle();
        let narrow = a.add_ste(byte(b'n'), StartKind::AllInput);
        let mut wide = byte(b'n');
        wide.insert(b'm');
        let w = a.add_ste(wide, StartKind::AllInput);
        let tail = a.add_ste(byte(b'm'), StartKind::None);
        a.add_edge(narrow, tail);
        a.add_edge(w, tail);
        a.set_report(tail, 4);
        let (r, stats) = reduce(&a);
        assert!(stats.quotient_removed >= 2, "{stats:?}");
        assert!(stats.residual_removed >= 1, "{stats:?}");
        assert_eq!(stats.states_after, r.state_count());
        assert!(r.state_count() < a.state_count());
        assert!(r.edge_count() <= a.edge_count());
        r.validate().unwrap();
    }

    #[test]
    fn reduce_is_idempotent() {
        let a = duplicated_cycle();
        let (r1, _) = reduce(&a);
        let (r2, s2) = reduce(&r1);
        assert_eq!(r1, r2);
        assert_eq!(s2.compression_factor(), 0.0);
    }

    #[test]
    fn reduce_of_empty_automaton_is_empty() {
        let (r, stats) = reduce(&Automaton::new());
        assert_eq!(r.state_count(), 0);
        assert_eq!(stats.states_before, 0);
    }
}

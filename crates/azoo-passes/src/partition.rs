//! Capacity partitioning for spatial architectures.
//!
//! AutomataZoo's free-form methodology produces benchmarks larger than
//! any one chip: "if benchmarks are too large to fit into the resources
//! of a target spatial architecture, researchers must develop ways to
//! evaluate sequential runs of the partitioned benchmark" (Section III).
//! This pass performs that partitioning: connected components (which can
//! never be split across chips — they share routing) are bin-packed into
//! partitions of at most `capacity` states, first-fit decreasing.

use azoo_core::{stats::component_labels, Automaton, StateId};

use crate::PassError;

/// Splits `a` into partitions of at most `capacity` states, never
/// splitting a connected component. Returns one automaton per partition;
/// report codes and per-component structure are preserved exactly, so
/// scanning every partition over the same input yields the union of the
/// original report stream.
///
/// Uses first-fit-decreasing bin packing, which is within 22% of the
/// optimal partition count.
///
/// # Errors
///
/// Returns [`PassError::ComponentTooLarge`] if a single component
/// exceeds `capacity`.
///
/// # Example
///
/// ```
/// use azoo_core::{Automaton, StartKind, SymbolClass};
/// use azoo_passes::partition;
///
/// let mut a = Automaton::new();
/// for code in 0..10 {
///     let s = a.add_ste(SymbolClass::from_byte(b'a' + code as u8), StartKind::AllInput);
///     a.set_report(s, code);
/// }
/// let parts = partition(&a, 3)?;
/// assert_eq!(parts.len(), 4); // 10 single-state components into bins of 3
/// assert!(parts.iter().all(|p| p.state_count() <= 3));
/// # Ok::<(), azoo_passes::PassError>(())
/// ```
pub fn partition(a: &Automaton, capacity: usize) -> Result<Vec<Automaton>, PassError> {
    assert!(capacity > 0, "capacity must be positive");
    let labels = component_labels(a);
    let n_components = labels.iter().copied().max().map_or(0, |m| m + 1);
    if n_components == 0 {
        return Ok(Vec::new());
    }
    let mut sizes = vec![0usize; n_components];
    for &l in &labels {
        sizes[l] += 1;
    }
    if let Some(too_big) = sizes.iter().position(|&s| s > capacity) {
        // Report via the first state of the offending component.
        let state = labels
            .iter()
            .position(|&l| l == too_big)
            .expect("component has states");
        return Err(PassError::ComponentTooLarge {
            state: StateId::new(state),
            size: sizes[too_big],
            capacity,
        });
    }
    // First-fit decreasing.
    let mut order: Vec<usize> = (0..n_components).collect();
    order.sort_by(|&x, &y| sizes[y].cmp(&sizes[x]).then(x.cmp(&y)));
    let mut bin_of = vec![usize::MAX; n_components];
    let mut bin_load: Vec<usize> = Vec::new();
    for &comp in &order {
        match bin_load
            .iter()
            .position(|&load| load + sizes[comp] <= capacity)
        {
            Some(b) => {
                bin_of[comp] = b;
                bin_load[b] += sizes[comp];
            }
            None => {
                bin_of[comp] = bin_load.len();
                bin_load.push(sizes[comp]);
            }
        }
    }
    let partitions = (0..bin_load.len())
        .map(|b| a.retain_states(|id| bin_of[labels[id.index()]] == b))
        .collect();
    Ok(partitions)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use azoo_core::{StartKind, SymbolClass};

    fn chains(lens: &[usize]) -> Automaton {
        let mut a = Automaton::new();
        for (i, &len) in lens.iter().enumerate() {
            let (_, last) = a.add_chain(
                &vec![SymbolClass::from_byte(b'a' + (i % 26) as u8); len],
                StartKind::AllInput,
            );
            a.set_report(last, i as u32);
        }
        a
    }

    #[test]
    fn packs_components_without_splitting() {
        let a = chains(&[5, 4, 3, 3, 2, 1]);
        let parts = partition(&a, 6).unwrap();
        let total: usize = parts.iter().map(Automaton::state_count).sum();
        assert_eq!(total, 18);
        assert!(parts.iter().all(|p| p.state_count() <= 6));
        assert_eq!(parts.len(), 3); // 5+1, 4+2, 3+3 is optimal
        for p in &parts {
            p.validate().unwrap();
        }
    }

    #[test]
    fn oversized_component_is_an_error() {
        let a = chains(&[10, 2]);
        assert!(matches!(
            partition(&a, 8),
            Err(PassError::ComponentTooLarge { size: 10, .. })
        ));
    }

    #[test]
    fn report_union_is_preserved() {
        use azoo_engines::{CollectSink, Engine, NfaEngine, Report};
        let a = chains(&[3, 2, 4, 1]);
        let input = b"aaaabbbbccccdddd";
        let mut sink = CollectSink::new();
        NfaEngine::new(&a).unwrap().scan(input, &mut sink);
        let mut whole = sink.sorted_reports();
        let mut parts_reports: Vec<Report> = Vec::new();
        for p in partition(&a, 5).unwrap() {
            let mut sink = CollectSink::new();
            NfaEngine::new(&p).unwrap().scan(input, &mut sink);
            parts_reports.extend(sink.reports());
        }
        parts_reports.sort_unstable();
        whole.sort_unstable();
        assert_eq!(whole, parts_reports);
    }

    #[test]
    fn empty_automaton_yields_no_partitions() {
        assert!(partition(&Automaton::new(), 4).unwrap().is_empty());
    }

    #[test]
    fn exact_fit_uses_one_bin() {
        let a = chains(&[3, 3]);
        let parts = partition(&a, 6).unwrap();
        assert_eq!(parts.len(), 1);
    }
}

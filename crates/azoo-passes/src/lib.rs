//! Optimization and transformation passes over homogeneous automata.
//!
//! These are the VASim-style graph passes the AutomataZoo methodology
//! depends on:
//!
//! * [`merge_prefixes`] — the standard prefix-collapse optimization; its
//!   output size is the "Compressed states" column of the paper's Table I.
//! * [`merge_suffixes`] — the dual suffix collapse.
//! * [`remove_dead`] — drops states unreachable from a start state or
//!   unable to influence a report.
//! * [`stride8`] — converts a bit-level automaton (alphabet `{0, 1}`) into
//!   a byte-level automaton consuming 8 bits per symbol (Section IX-B of
//!   the paper; used by the File Carving benchmark).
//! * [`widen`] — pads an automaton with zero-matching states so it
//!   processes 16-bit-widened input (Section IX-A; the YARA Wide variant).
//! * [`prefilter_plan`] — required-literal prefilter planning: splits the
//!   automaton into components a literal matcher can gate (simulated only
//!   in a bounded window around candidate hits) and a full-simulation
//!   fallback remainder.
//! * [`quotient_simulation`] / [`residual_merge`] / [`reduce`] — the
//!   simulation-based reduction tier: bisimulation quotienting plus
//!   residual coverage folds, both semantics-preserving under the
//!   identity input map (see the `reduce` module doc for the soundness
//!   argument and refusal matrix).
//!
//! [`InputMap`] records the input/offset conventions of the rescaling
//! passes so differential checkers (`azoo-analyze`'s pass verifier, the
//! `azoo-oracle` cross-engine oracle) can compare report streams across
//! a pass.

#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]
mod dead;
mod input_map;
mod merge;
mod partition;
mod prefilter;
mod reduce;
mod stride;
mod widen;

pub use dead::remove_dead;
pub use input_map::InputMap;
pub use merge::{merge_prefixes, merge_suffixes, MergeStats};
pub use partition::partition;
pub use prefilter::{prefilter_plan, PrefilterComponent, PrefilterPlan, MIN_STRONG_LITERAL};
pub use reduce::{
    quotient_simulation, reduce, residual_merge, simulation_partition, ReduceStats,
    RESIDUAL_COMPONENT_CAP,
};
pub use stride::{bit_pattern_chain, bits_of_bytes, stride8, stride_bits};
pub use widen::widen;

use azoo_core::StateId;

/// Errors raised by transformation passes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PassError {
    /// `stride8` requires every symbol class to be a subset of `{0, 1}`.
    NotBitLevel(StateId),
    /// The pass does not support counter elements.
    CountersUnsupported(StateId),
    /// A connected component exceeds the partition capacity.
    ComponentTooLarge {
        /// A state of the offending component.
        state: StateId,
        /// The component's size in states.
        size: usize,
        /// The requested per-partition capacity.
        capacity: usize,
    },
}

impl std::fmt::Display for PassError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PassError::NotBitLevel(id) => {
                write!(f, "state {id:?} matches symbols outside {{0, 1}}")
            }
            PassError::CountersUnsupported(id) => {
                write!(f, "pass does not support counter element {id:?}")
            }
            PassError::ComponentTooLarge {
                state,
                size,
                capacity,
            } => write!(
                f,
                "component containing {state:?} has {size} states, over the capacity {capacity}"
            ),
        }
    }
}

impl std::error::Error for PassError {}

//! 16-bit widening (Section IX-A of the AutomataZoo paper).
//!
//! Widened rules read two bytes per logical symbol, where every other input
//! byte is zero (the little-endian UTF-16 encoding of ASCII text, common in
//! Windows malware). Widening an automaton interleaves a `\0`-matching
//! state after every original STE, so the widened automaton accepts exactly
//! the widened encodings of the strings the original accepted.

use azoo_core::{Automaton, ElementKind, StartKind, SymbolClass};

use crate::PassError;

/// Widens `a` for zero-interleaved 16-bit input.
///
/// After every STE `s`, a new state matching only `0x00` is inserted; the
/// original out-edges of `s` are moved onto the new state, and reports move
/// with them (a widened match is observed on the trailing zero byte).
///
/// # Errors
///
/// Returns [`PassError::CountersUnsupported`] if `a` contains counters.
///
/// # Example
///
/// ```
/// use azoo_core::{Automaton, StartKind, SymbolClass};
/// use azoo_passes::widen;
///
/// let mut a = Automaton::new();
/// let (_, last) = a.add_chain(
///     &[SymbolClass::from_byte(b'h'), SymbolClass::from_byte(b'i')],
///     StartKind::AllInput,
/// );
/// a.set_report(last, 0);
/// let wide = widen(&a)?;
/// assert_eq!(wide.state_count(), 4); // h, \0, i, \0
/// # Ok::<(), azoo_passes::PassError>(())
/// ```
pub fn widen(a: &Automaton) -> Result<Automaton, PassError> {
    for (id, e) in a.iter() {
        if e.is_counter() {
            return Err(PassError::CountersUnsupported(id));
        }
    }
    let n = a.state_count();
    let mut out = Automaton::with_capacity(2 * n);
    let zero = SymbolClass::from_byte(0);
    // Element layout: original state i -> 2i, its pad state -> 2i + 1.
    for (_, e) in a.iter() {
        let ElementKind::Ste { class, start } = e.kind else {
            unreachable!("counters rejected above")
        };
        let s = out.add_ste(class, start);
        let z = out.add_ste(zero, StartKind::None);
        out.add_edge(s, z);
        if let Some(code) = e.report {
            out.set_report(z, code.0);
            out.set_report_eod_only(z, e.report_eod_only);
        }
    }
    for (id, _) in a.iter() {
        let pad = azoo_core::StateId::new(2 * id.index() + 1);
        for edge in a.successors(id) {
            out.add_edge(pad, azoo_core::StateId::new(2 * edge.to.index()));
        }
    }
    Ok(out)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn widened_chain_doubles_states_and_moves_report() {
        let mut a = Automaton::new();
        let (_, last) = a.add_chain(
            &[SymbolClass::from_byte(b'a'), SymbolClass::from_byte(b'b')],
            StartKind::AllInput,
        );
        a.set_report(last, 3);
        let w = widen(&a).unwrap();
        assert_eq!(w.state_count(), 4);
        assert_eq!(w.edge_count(), 3);
        // Reports live on pad states only.
        for (id, e) in w.iter() {
            if e.report.is_some() {
                assert_eq!(id.index() % 2, 1);
            }
        }
        w.validate().unwrap();
    }

    #[test]
    fn self_loop_routes_through_pad() {
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::from_byte(b'x'), StartKind::AllInput);
        a.add_edge(s, s);
        a.set_report(s, 0);
        let w = widen(&a).unwrap();
        // s -> pad -> s
        assert_eq!(w.state_count(), 2);
        assert_eq!(w.edge_count(), 2);
        let pad = azoo_core::StateId::new(1);
        assert_eq!(w.successors(pad)[0].to.index(), 0);
    }

    #[test]
    fn counters_are_rejected() {
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::FULL, StartKind::AllInput);
        let c = a.add_counter(2, azoo_core::CounterMode::Latch);
        a.add_edge(s, c);
        assert!(matches!(widen(&a), Err(PassError::CountersUnsupported(_))));
    }
}

//! Deterministic model checks over the service's three racy protocols.
//!
//! Each test enumerates *every* interleaving of the `sched::point`
//! hooks compiled into azoo-serve (see `azoo_sync::sched` for how the
//! schedule-permutation harness works and why it stands in for loom),
//! asserting the protocol's invariants after each schedule:
//!
//! 1. close/feed race — a feed racing a close gets a typed error or a
//!    clean scan, and either way every gauge returns to zero and the
//!    executor lands back in the pool.
//! 2. `DbCache::get_or_load` concurrent miss/tamper — a tampered
//!    artifact never gets served or cached, no matter how its load
//!    interleaves with the genuine artifact's.
//! 3. quota reserve-verify-rollback — concurrent opens over a quota of
//!    one admit exactly one session in every interleaving, and the
//!    loser's rollback leaks nothing.

#![allow(clippy::unwrap_used)]

use std::sync::mpsc;
use std::sync::Arc;

use azoo_core::{Automaton, StartKind, SymbolClass};
use azoo_serve::{Db, DbCache, DbConfig, DbError, ScanService, ServeError, ServeLimits};
use azoo_sync::sched;

fn ab_db() -> Arc<Db> {
    let mut a = Automaton::new();
    let s = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::AllInput);
    let t = a.add_ste(SymbolClass::from_byte(b'b'), StartKind::None);
    a.add_edge(s, t);
    a.set_report(t, 42);
    Db::compile(a, DbConfig::default()).expect("compile")
}

/// Model 1: a feed and a close race over one open session. The feed
/// must resolve to a clean scan or a typed terminal error — never a
/// panic, never a leaked gauge — and the close always wins the session.
#[test]
fn model_close_feed_race() {
    let db = ab_db();
    let stats = sched::model(|| {
        let svc = ScanService::new(ServeLimits::default());
        let sid = svc.open("t", &db).expect("open");
        let (tx, rx) = mpsc::channel();

        let (svc_f, db_f) = (svc.clone(), db.clone());
        let feeder = sched::thread(move || {
            let _ = &db_f;
            tx.send(svc_f.feed(sid, b"xabxab", false)).unwrap();
        });
        let svc_c = svc.clone();
        let closer = sched::thread(move || {
            svc_c.close(sid).expect("close must win the session");
        });
        sched::run(vec![feeder, closer]);

        match rx.recv().unwrap() {
            Ok(_)
            | Err(ServeError::UnknownSession(_))
            | Err(ServeError::StreamFinished(_))
            | Err(ServeError::Cancelled(_)) => {}
            Err(other) => panic!("feed must fail typed, got {other:?}"),
        }
        assert_eq!(svc.session_count(), 0, "close released the session");
        assert_eq!(svc.bytes_in_flight(), 0, "feed released its reservation");
        assert_eq!(svc.tenant_count(), 0, "tenant state died with the session");
        assert_eq!(db.pooled(), 1, "the executor returned to the pool");
    });
    assert!(stats.complete, "interleaving space must be exhausted");
    assert!(stats.schedules > 1, "the race must actually branch");
}

/// Model 2: a genuine artifact and a tampered one (same cache key —
/// the header is untouched) race through `DbCache::get_or_load`. In
/// every interleaving the tampered bytes die on verification and the
/// cache ends up serving only the verified artifact.
#[test]
fn model_cache_concurrent_miss_and_tamper() {
    let good = ab_db().serialize();
    let mut bad = good.clone();
    let last = bad.len() - 1;
    bad[last] ^= 0x01; // payload flip under a genuine header

    let stats = sched::model(|| {
        let cache = Arc::new(DbCache::new());
        let (tx_g, rx_g) = mpsc::channel();
        let (tx_b, rx_b) = mpsc::channel();

        let (cache_g, bytes_g) = (cache.clone(), good.clone());
        let loader = sched::thread(move || {
            tx_g.send(
                cache_g
                    .get_or_load(&bytes_g)
                    .map(|(db, hit)| (db.content_hash(), hit)),
            )
            .unwrap();
        });
        let (cache_b, bytes_b) = (cache.clone(), bad.clone());
        let tamperer = sched::thread(move || {
            tx_b.send(
                cache_b
                    .get_or_load(&bytes_b)
                    .map(|(db, hit)| (db.content_hash(), hit)),
            )
            .unwrap();
        });
        sched::run(vec![loader, tamperer]);

        rx_g.recv().unwrap().expect("genuine artifact always loads");
        match rx_b.recv().unwrap() {
            // Depending on which byte the flip lands on, verification
            // kills the artifact at JSON decode or at the hash check —
            // either way it dies in the full load path, never the cache.
            Err(DbError::HashMismatch { .. }) | Err(DbError::Core(_)) => {}
            Err(other) => panic!("tamper must die in verification, got {other:?}"),
            Ok(_) => panic!("tampered artifact must never be served"),
        }
        // Whatever the interleaving left behind, the genuine bytes are
        // what the cache serves — and they hit, so the entry's
        // fingerprint is the verified one, not the tamperer's.
        let (_, hit) = cache.get_or_load(&good).expect("post-state load");
        assert!(hit, "the cache must end up keyed to the verified bytes");
        assert_eq!(cache.len(), 1);
    });
    assert!(stats.complete, "interleaving space must be exhausted");
    assert!(stats.schedules > 1, "the race must actually branch");
}

/// Model 3: two opens race a quota of one. Exactly one wins in every
/// interleaving, the loser's reserve-verify-rollback leaves every gauge
/// untouched, and closing the winner returns the service to zero.
#[test]
fn model_quota_reserve_verify_rollback() {
    let db = ab_db();
    // Global cap and per-tenant cap exercise the two rollback paths
    // (Overloaded rolls back before tenant state exists; QuotaExceeded
    // rolls back both the global gauge and the tenant entry).
    type LoserCheck = fn(&ServeError) -> bool;
    let variants: [(ServeLimits, LoserCheck); 2] = [
        (
            ServeLimits {
                max_sessions: 1,
                ..ServeLimits::default()
            },
            |e| {
                matches!(
                    e,
                    ServeError::Overloaded {
                        resource: "sessions"
                    }
                )
            },
        ),
        (
            ServeLimits {
                max_sessions_per_tenant: 1,
                ..ServeLimits::default()
            },
            |e| {
                matches!(
                    e,
                    ServeError::QuotaExceeded {
                        resource: "sessions",
                        ..
                    }
                )
            },
        ),
    ];
    for (limits, loser_ok) in variants {
        let stats = sched::model(|| {
            let svc = ScanService::new(limits);
            let (tx, rx) = mpsc::channel();
            let openers: Vec<_> = (0..2)
                .map(|_| {
                    let (svc, db, tx) = (svc.clone(), db.clone(), tx.clone());
                    sched::thread(move || {
                        tx.send(svc.open("t", &db)).unwrap();
                    })
                })
                .collect();
            sched::run(openers);

            let results = [rx.recv().unwrap(), rx.recv().unwrap()];
            let winners: Vec<_> = results.iter().filter_map(|r| r.as_ref().ok()).collect();
            assert_eq!(winners.len(), 1, "exactly one open wins: {results:?}");
            for r in &results {
                if let Err(e) = r {
                    assert!(loser_ok(e), "loser must see the quota error, got {e:?}");
                }
            }
            assert_eq!(svc.session_count(), 1);
            svc.close(*winners[0]).expect("close the winner");
            assert_eq!(svc.session_count(), 0, "rollback leaked a session slot");
            assert_eq!(svc.tenant_count(), 0, "rollback leaked tenant state");
            assert_eq!(svc.bytes_in_flight(), 0);
        });
        assert!(stats.complete, "interleaving space must be exhausted");
        assert!(stats.schedules > 1, "the race must actually branch");
    }
}

//! Compiled-database artifacts and the shared in-memory cache.
//!
//! A [`Db`] is the unit a serving deployment distributes: one automaton,
//! compiled once through the engine portfolio, plus the configuration
//! that fixes how client bytes reach it (worker threads, input map). Its
//! serialized form is versioned and self-verifying:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "AZDB"
//! 4       4     format version (u32 LE) — DB_FORMAT_VERSION
//! 8       4     content-hash scheme version (u32 LE) — HASH_VERSION
//! 12      8     automaton content hash (u64 LE)
//! 20      1     input map (0 identity, 1 stride8, 2 widen)
//! 21      1     flags (bit 0: compiled with the reduction tier)
//! 22      2     engine worker threads (u16 LE)
//! 24      4     payload length (u32 LE)
//! 28      n     payload: MNRL JSON of the automaton
//! ```
//!
//! When [`DbConfig::reduce`] is set, [`Db::compile`] runs the
//! reduction tier (`azoo_passes::reduce`) *before* hashing and
//! serializing, so the stored content hash and payload describe the
//! machine that actually serves traffic — a reduced artifact is
//! self-contained and [`Db::deserialize`] never re-reduces. The flags
//! byte records the provenance and keeps the cache key distinct from
//! an unreduced compile of the same source automaton.
//!
//! Load rules, in check order: wrong magic → [`DbError::BadMagic`];
//! any header or payload shorter than declared → [`DbError::Truncated`];
//! other format or hash-scheme version → [`DbError::VersionMismatch`]
//! (old artifacts are *misses*, recompile and re-publish); stored
//! content hash ≠ hash recomputed over the decoded automaton →
//! [`DbError::HashMismatch`] (corruption or tampering — never served).
//! Every error is typed; no load path panics. The [`DbCache`] hit path
//! upholds the same guarantee by fingerprinting the raw artifact bytes:
//! bytes that differ from the verified artifact take the full load path
//! and fail its checks rather than being answered from the cache.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use azoo_core::{content_hash, mnrl, Automaton, CoreError, HASH_VERSION};
use azoo_engines::{
    select_session_engine, select_session_engine_threaded, EngineChoice, EngineError, SessionEngine,
};
use azoo_passes::InputMap;
use azoo_sync::{ranks, sched, OrderedMutex};

/// Current artifact format version.
pub const DB_FORMAT_VERSION: u32 = 2;

const DB_MAGIC: [u8; 4] = *b"AZDB";
const HEADER_LEN: usize = 28;

/// Header flag bit: the payload was compiled with the reduction tier.
const FLAG_REDUCED: u8 = 0x01;

/// Recycled engines kept per database; checkouts past this bound fall
/// back to cloning the prototype (bounded memory beats unbounded reuse).
const POOL_CAP: usize = 1024;

/// How a [`Db`] presents input to its machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DbConfig {
    /// Input expansion applied to client bytes before they reach the
    /// (post-pass) machine; report offsets are in post-map coordinates.
    pub input_map: InputMap,
    /// Engine worker threads; >1 selects the parallel scanner.
    pub threads: usize,
    /// Run the reduction tier (`azoo_passes::reduce`) at compile time.
    /// The artifact then stores the *reduced* machine — hash, payload
    /// and flags byte all describe post-reduction state.
    pub reduce: bool,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            input_map: InputMap::Identity,
            threads: 1,
            reduce: false,
        }
    }
}

/// Typed artifact-load and compile failures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DbError {
    /// The artifact does not begin with the `AZDB` magic.
    BadMagic,
    /// The artifact is shorter than its headers declare.
    Truncated,
    /// Format or hash-scheme version differs from this build's.
    VersionMismatch {
        /// Version stored in the artifact.
        found: u32,
        /// Version this build writes.
        expected: u32,
    },
    /// Stored content hash does not match the decoded payload.
    HashMismatch {
        /// Hash stored in the artifact header.
        stored: u64,
        /// Hash recomputed from the decoded automaton.
        computed: u64,
    },
    /// Unknown input-map tag byte.
    BadInputMap(u8),
    /// Unknown bits set in the header flags byte.
    BadFlags(u8),
    /// No cached database under this key.
    UnknownKey(u64),
    /// The payload failed MNRL parsing.
    Core(CoreError),
    /// The automaton failed engine compilation or validation.
    Engine(EngineError),
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::BadMagic => write!(f, "artifact is not an AZDB database"),
            DbError::Truncated => write!(f, "artifact truncated"),
            DbError::VersionMismatch { found, expected } => {
                write!(f, "artifact version {found}, this build reads {expected}")
            }
            DbError::HashMismatch { stored, computed } => write!(
                f,
                "content hash mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            DbError::BadInputMap(tag) => write!(f, "unknown input-map tag {tag}"),
            DbError::BadFlags(flags) => write!(f, "unknown header flag bits {flags:#04x}"),
            DbError::UnknownKey(key) => write!(f, "no cached database under key {key:#018x}"),
            DbError::Core(e) => write!(f, "payload error: {e}"),
            DbError::Engine(e) => write!(f, "compile error: {e}"),
        }
    }
}

impl std::error::Error for DbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DbError::Core(e) => Some(e),
            DbError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for DbError {
    fn from(e: CoreError) -> Self {
        DbError::Core(e)
    }
}

impl From<EngineError> for DbError {
    fn from(e: EngineError) -> Self {
        DbError::Engine(e)
    }
}

/// A compiled, shareable scan database.
///
/// `Arc<Db>`-shared across sessions: the automaton, its artifact bytes
/// and the engine prototype are compiled once; each session checks a
/// pooled executor out of the free list ([`Db::checkout`]) and returns
/// it quiesced on close ([`Db::checkin`]), so steady-state session churn
/// performs no compilation and no allocation.
pub struct Db {
    automaton: Automaton,
    config: DbConfig,
    hash: u64,
    choice: EngineChoice,
    /// Free list of recycled per-session executors (all quiesced).
    /// Rank DB_POOL: acquired while a session lock is held (close and
    /// feed-timeout check-in), never while holding anything higher.
    pool: OrderedMutex<Vec<Box<dyn SessionEngine>>>,
    /// Pristine executor the pool grows from; never circulated.
    /// Rank DB_PROTO: leaf lock, acquires nothing.
    proto: OrderedMutex<Box<dyn SessionEngine>>,
}

impl std::fmt::Debug for Db {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Db")
            .field("hash", &format_args!("{:#018x}", self.hash))
            .field("choice", &self.choice)
            .field("config", &self.config)
            .field("states", &self.automaton.state_count())
            .finish()
    }
}

impl Db {
    /// Compiles `automaton` under `config` through the streaming engine
    /// portfolio. With [`DbConfig::reduce`] set, the reduction tier runs
    /// first and the database (hash, payload, engine) is built from the
    /// reduced machine.
    ///
    /// # Errors
    ///
    /// [`DbError::Engine`] when validation or compilation fails.
    pub fn compile(automaton: Automaton, config: DbConfig) -> Result<Arc<Db>, DbError> {
        let automaton = if config.reduce {
            // Validate before transforming: the reduction passes assume
            // a well-formed machine, and a broken input should surface
            // as the usual typed error, not a pass artifact.
            automaton.validate()?;
            azoo_passes::reduce(&automaton).0
        } else {
            automaton
        };
        Self::finish(automaton, config)
    }

    /// Builds the database around `automaton` as-is — shared tail of
    /// [`Db::compile`] (post-reduction) and [`Db::deserialize`] (whose
    /// payload already is the served machine; re-reducing would break
    /// the stored hash's bond with the payload).
    fn finish(automaton: Automaton, config: DbConfig) -> Result<Arc<Db>, DbError> {
        let hash = content_hash(&automaton);
        let (choice, proto) = if config.threads > 1 {
            select_session_engine_threaded(&automaton, config.threads)?
        } else {
            select_session_engine(&automaton)?
        };
        Ok(Arc::new(Db {
            automaton,
            config,
            hash,
            choice,
            pool: OrderedMutex::new(ranks::DB_POOL, Vec::new()),
            proto: OrderedMutex::new(ranks::DB_PROTO, proto),
        }))
    }

    /// The automaton's stable content hash (see
    /// [`azoo_core::content_hash`]).
    pub fn content_hash(&self) -> u64 {
        self.hash
    }

    /// Cache key: content hash mixed with the serving configuration, so
    /// the same machine under a different input map or thread count is a
    /// distinct cache entry.
    pub fn cache_key(&self) -> u64 {
        Self::mix_key(self.hash, self.config)
    }

    fn mix_key(hash: u64, config: DbConfig) -> u64 {
        let tag = (u64::from(flags_byte(config)) << 40)
            | (u64::from(input_map_tag(config.input_map)) << 32)
            | config.threads as u64;
        // splitmix64-style finalizer, matching azoo-core's mixer.
        let mut x = hash ^ tag.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        x
    }

    /// Which portfolio tier the compile selected.
    pub fn engine_choice(&self) -> EngineChoice {
        self.choice
    }

    /// The serving configuration.
    pub fn config(&self) -> DbConfig {
        self.config
    }

    /// The wrapped automaton.
    pub fn automaton(&self) -> &Automaton {
        &self.automaton
    }

    /// Serializes the database to the versioned artifact format
    /// described in the module docs.
    pub fn serialize(&self) -> Vec<u8> {
        let payload = mnrl::to_json(&self.automaton, "azoo-serve-db");
        let payload = payload.as_bytes();
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&DB_MAGIC);
        out.extend_from_slice(&DB_FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&HASH_VERSION.to_le_bytes());
        out.extend_from_slice(&self.hash.to_le_bytes());
        out.push(input_map_tag(self.config.input_map));
        out.push(flags_byte(self.config));
        out.extend_from_slice(&(self.config.threads.min(u16::MAX as usize) as u16).to_le_bytes());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(payload);
        out
    }

    /// Reads the cache key from an artifact header without decoding or
    /// compiling the payload, so a cache hit skips the expensive path.
    /// Performs the same magic/version checks as a full load.
    ///
    /// # Errors
    ///
    /// [`DbError::BadMagic`], [`DbError::Truncated`],
    /// [`DbError::VersionMismatch`], or [`DbError::BadInputMap`].
    pub fn peek_key(bytes: &[u8]) -> Result<u64, DbError> {
        let (hash, config, _) = parse_header(bytes)?;
        Ok(Self::mix_key(hash, config))
    }

    /// Loads an artifact produced by [`Db::serialize`], verifying magic,
    /// versions and content hash before compiling. See the module docs
    /// for the check order.
    ///
    /// # Errors
    ///
    /// Any [`DbError`]; never panics or yields a partially-built `Db`.
    pub fn deserialize(bytes: &[u8]) -> Result<Arc<Db>, DbError> {
        let (stored_hash, config, payload) = parse_header(bytes)?;
        let text = std::str::from_utf8(payload)
            .map_err(|_| DbError::Core(CoreError::Format("payload is not UTF-8".into())))?;
        let automaton = mnrl::from_json(text)?;
        let computed = content_hash(&automaton);
        if computed != stored_hash {
            return Err(DbError::HashMismatch {
                stored: stored_hash,
                computed,
            });
        }
        // The payload *is* the serving machine: for a reduced artifact,
        // reduction already ran at compile time. Going through `finish`
        // (not `compile`) keeps the load path from reducing again, which
        // would desynchronize the verified hash from the served states.
        Self::finish(automaton, config)
    }

    /// Checks a quiesced executor out of the free list, cloning the
    /// prototype's compiled tables when the list is empty.
    pub fn checkout(&self) -> Box<dyn SessionEngine> {
        if let Some(engine) = self.pool.lock().pop() {
            return engine;
        }
        self.proto.lock().clone_session()
    }

    /// Returns an executor to the free list, resetting it first (with
    /// the debug-build quiesced assertion) so the next checkout starts
    /// from a provably clean stream state.
    pub fn checkin(&self, mut engine: Box<dyn SessionEngine>) {
        engine.reset();
        let mut pool = self.pool.lock();
        if pool.len() < POOL_CAP {
            pool.push(engine);
        }
    }

    /// Executors currently parked on the free list.
    pub fn pooled(&self) -> usize {
        self.pool.lock().len()
    }
}

fn flags_byte(config: DbConfig) -> u8 {
    if config.reduce {
        FLAG_REDUCED
    } else {
        0
    }
}

fn input_map_tag(map: InputMap) -> u8 {
    match map {
        InputMap::Identity => 0,
        InputMap::Stride8 => 1,
        InputMap::Widen => 2,
    }
}

fn input_map_from_tag(tag: u8) -> Result<InputMap, DbError> {
    match tag {
        0 => Ok(InputMap::Identity),
        1 => Ok(InputMap::Stride8),
        2 => Ok(InputMap::Widen),
        other => Err(DbError::BadInputMap(other)),
    }
}

/// Parses and checks the fixed header; returns (content hash, config,
/// payload slice).
fn parse_header(bytes: &[u8]) -> Result<(u64, DbConfig, &[u8]), DbError> {
    if bytes.len() < 4 {
        return Err(if DB_MAGIC.starts_with(bytes) {
            DbError::Truncated
        } else {
            DbError::BadMagic
        });
    }
    if bytes[0..4] != DB_MAGIC {
        return Err(DbError::BadMagic);
    }
    if bytes.len() < HEADER_LEN {
        return Err(DbError::Truncated);
    }
    let le32 =
        |at: usize| u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]]);
    let version = le32(4);
    if version != DB_FORMAT_VERSION {
        return Err(DbError::VersionMismatch {
            found: version,
            expected: DB_FORMAT_VERSION,
        });
    }
    let hash_version = le32(8);
    if hash_version != HASH_VERSION {
        return Err(DbError::VersionMismatch {
            found: hash_version,
            expected: HASH_VERSION,
        });
    }
    let mut hash_bytes = [0u8; 8];
    hash_bytes.copy_from_slice(&bytes[12..20]);
    let hash = u64::from_le_bytes(hash_bytes);
    let input_map = input_map_from_tag(bytes[20])?;
    let flags = bytes[21];
    if flags & !FLAG_REDUCED != 0 {
        return Err(DbError::BadFlags(flags));
    }
    let threads = u16::from_le_bytes([bytes[22], bytes[23]]) as usize;
    let payload_len = le32(24) as usize;
    let payload = bytes
        .get(HEADER_LEN..HEADER_LEN + payload_len)
        .ok_or(DbError::Truncated)?;
    Ok((
        hash,
        DbConfig {
            input_map,
            threads: threads.max(1),
            reduce: flags & FLAG_REDUCED != 0,
        },
        payload,
    ))
}

/// Shared in-memory database cache, keyed by [`Db::cache_key`].
///
/// N sessions opening the same artifact share one `Arc<Db>` — one
/// compiled machine, one engine pool. Hit/miss counts are plain atomics;
/// the map lock is held only for a hash-map operation.
///
/// The artifact hit path ([`DbCache::get_or_load`]) is only allowed to
/// skip the decode when the presented bytes fingerprint-match the bytes
/// the cached entry was verified against — a tampered payload under a
/// genuine header falls through to the full load and dies on its
/// [`DbError::HashMismatch`] (or parse error) instead of silently
/// borrowing the cached database's credibility.
pub struct DbCache {
    /// Rank DB_CACHE: lowest rank in the workspace — the cache map may
    /// be consulted on any path, so nothing may be held across it.
    map: OrderedMutex<HashMap<u64, CacheEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for DbCache {
    fn default() -> Self {
        DbCache {
            map: OrderedMutex::new(ranks::DB_CACHE, HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

/// One cached database plus the fingerprint of the exact artifact bytes
/// it was verified against (`None` until an artifact load verified it).
struct CacheEntry {
    db: Arc<Db>,
    artifact_fp: Option<u64>,
}

/// FNV-1a over the raw artifact bytes: cheap relative to a scan feed,
/// and enough to keep a corrupted payload from riding a cached header.
fn artifact_fingerprint(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl DbCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a database by cache key, counting a hit or miss.
    pub fn get(&self, key: u64) -> Option<Arc<Db>> {
        let found = self.map.lock().get(&key).map(|e| e.db.clone());
        match found {
            Some(db) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(db)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or replaces) a database; returns its cache key. The
    /// entry is fingerprinted against the database's own serialization,
    /// so the canonical artifact hits [`DbCache::get_or_load`] directly.
    pub fn insert(&self, db: Arc<Db>) -> u64 {
        let key = db.cache_key();
        let fp = artifact_fingerprint(&db.serialize());
        self.map.lock().insert(
            key,
            CacheEntry {
                db,
                artifact_fp: Some(fp),
            },
        );
        key
    }

    /// Resolves an artifact through the cache: header-only key peek plus
    /// a fingerprint of the raw bytes, then a full verify-and-compile on
    /// a miss *or* whenever the bytes differ from what the cached entry
    /// was verified against. Returns the database and whether this was a
    /// hit.
    ///
    /// # Errors
    ///
    /// Any [`DbError`] from header parsing or the verify-and-compile
    /// path — in particular, a payload that does not match its header's
    /// content hash is [`DbError::HashMismatch`] even when a database
    /// under the same key is already cached.
    pub fn get_or_load(&self, bytes: &[u8]) -> Result<(Arc<Db>, bool), DbError> {
        let key = Db::peek_key(bytes)?;
        let fp = artifact_fingerprint(bytes);
        sched::point("cache:lookup");
        if let Some(entry) = self.map.lock().get(&key) {
            if entry.artifact_fp == Some(fp) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok((entry.db.clone(), true));
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let db = Db::deserialize(bytes)?;
        sched::point("cache:loaded");
        self.map.lock().insert(
            key,
            CacheEntry {
                db: db.clone(),
                artifact_fp: Some(fp),
            },
        );
        Ok((db, false))
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of cached databases.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use azoo_core::{StartKind, SymbolClass};

    fn cat() -> Automaton {
        let mut a = Automaton::new();
        let c = a.add_ste(SymbolClass::from_byte(b'c'), StartKind::AllInput);
        let s1 = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::None);
        let s2 = a.add_ste(SymbolClass::from_byte(b't'), StartKind::None);
        a.add_edge(c, s1);
        a.add_edge(s1, s2);
        a.set_report(s2, 0);
        a
    }

    #[test]
    fn round_trip_preserves_hash_and_choice() {
        let db = Db::compile(cat(), DbConfig::default()).expect("compile");
        let bytes = db.serialize();
        let back = Db::deserialize(&bytes).expect("load");
        assert_eq!(back.content_hash(), db.content_hash());
        assert_eq!(back.cache_key(), db.cache_key());
        assert_eq!(back.engine_choice(), db.engine_choice());
        assert_eq!(Db::peek_key(&bytes).expect("peek"), db.cache_key());
    }

    #[test]
    fn typed_load_errors() {
        let db = Db::compile(cat(), DbConfig::default()).expect("compile");
        let good = db.serialize();

        let mut bad = good.clone();
        bad[0] = b'X';
        assert_eq!(Db::deserialize(&bad).unwrap_err(), DbError::BadMagic);

        let mut bad = good.clone();
        bad[4] = 0xFF;
        assert!(matches!(
            Db::deserialize(&bad),
            Err(DbError::VersionMismatch { .. })
        ));

        let mut bad = good.clone();
        bad[12] ^= 0x01; // stored content hash
        assert!(matches!(
            Db::deserialize(&bad),
            Err(DbError::HashMismatch { .. })
        ));

        let mut bad = good.clone();
        bad[20] = 9;
        assert_eq!(Db::deserialize(&bad).unwrap_err(), DbError::BadInputMap(9));

        let mut bad = good.clone();
        bad[21] = 0xFE; // unknown flag bits
        assert_eq!(Db::deserialize(&bad).unwrap_err(), DbError::BadFlags(0xFE));

        assert_eq!(
            Db::deserialize(&good[..10]).unwrap_err(),
            DbError::Truncated
        );
        assert_eq!(
            Db::deserialize(&good[..good.len() - 1]).unwrap_err(),
            DbError::Truncated
        );
        assert_eq!(Db::deserialize(b"AZ").unwrap_err(), DbError::Truncated);
        assert_eq!(Db::deserialize(b"nope").unwrap_err(), DbError::BadMagic);
    }

    /// Two identical report chains — the reduction tier folds them.
    fn double_cat() -> Automaton {
        let mut a = Automaton::new();
        for _ in 0..2 {
            let (_, last) = a.add_chain(
                &[
                    SymbolClass::from_byte(b'c'),
                    SymbolClass::from_byte(b'a'),
                    SymbolClass::from_byte(b't'),
                ],
                StartKind::AllInput,
            );
            a.set_report(last, 0);
        }
        a
    }

    #[test]
    fn reduced_compile_stores_the_reduced_machine() {
        let plain = Db::compile(double_cat(), DbConfig::default()).expect("compile");
        let reduced = Db::compile(
            double_cat(),
            DbConfig {
                reduce: true,
                ..DbConfig::default()
            },
        )
        .expect("compile reduced");

        assert!(
            reduced.automaton().state_count() < plain.automaton().state_count(),
            "reduction must shrink the duplicated machine"
        );
        // The hash covers the machine that serves traffic, so the
        // reduced artifact hashes differently and caches separately.
        assert_ne!(reduced.content_hash(), plain.content_hash());
        assert_ne!(reduced.cache_key(), plain.cache_key());

        // Round trip: the payload already is the reduced machine, and
        // the load path must accept it verbatim (no re-reduction).
        let bytes = reduced.serialize();
        let back = Db::deserialize(&bytes).expect("load reduced artifact");
        assert!(back.config().reduce);
        assert_eq!(back.content_hash(), reduced.content_hash());
        assert_eq!(back.cache_key(), reduced.cache_key());
        assert_eq!(
            back.automaton().state_count(),
            reduced.automaton().state_count()
        );
    }

    #[test]
    fn pool_recycles_engines() {
        let db = Db::compile(cat(), DbConfig::default()).expect("compile");
        assert_eq!(db.pooled(), 0);
        let e1 = db.checkout();
        let e2 = db.checkout();
        db.checkin(e1);
        db.checkin(e2);
        assert_eq!(db.pooled(), 2);
        let _e = db.checkout();
        assert_eq!(db.pooled(), 1);
    }

    #[test]
    fn tampered_payload_never_served_from_cache() {
        let cache = DbCache::new();
        let good = Db::compile(cat(), DbConfig::default())
            .expect("compile")
            .serialize();
        cache.get_or_load(&good).expect("load");

        // Same (valid) header, flipped payload byte: the cache key
        // matches a verified entry, but the bytes do not — the full
        // load path must run and reject the artifact.
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert!(
            cache.get_or_load(&bad).is_err(),
            "tampered payload must not ride the cached header"
        );

        // The genuine artifact still hits.
        let (_, hit) = cache.get_or_load(&good).expect("load");
        assert!(hit);
    }

    #[test]
    fn registered_db_hits_on_its_canonical_artifact() {
        let cache = DbCache::new();
        let db = Db::compile(cat(), DbConfig::default()).expect("compile");
        let bytes = db.serialize();
        cache.insert(db.clone());
        let (found, hit) = cache.get_or_load(&bytes).expect("load");
        assert!(hit, "canonical serialization of an inserted db is a hit");
        assert!(Arc::ptr_eq(&found, &db));
    }

    #[test]
    fn cache_shares_one_db() {
        let cache = DbCache::new();
        let bytes = Db::compile(cat(), DbConfig::default())
            .expect("compile")
            .serialize();
        let (db1, hit1) = cache.get_or_load(&bytes).expect("load");
        let (db2, hit2) = cache.get_or_load(&bytes).expect("load");
        assert!(!hit1);
        assert!(hit2);
        assert!(Arc::ptr_eq(&db1, &db2));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }
}

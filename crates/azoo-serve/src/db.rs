//! Compiled-database artifacts and the shared in-memory cache.
//!
//! A [`Db`] is the unit a serving deployment distributes: one automaton,
//! compiled once through the engine portfolio, plus the configuration
//! that fixes how client bytes reach it (worker threads, input map). Its
//! serialized form is versioned and self-verifying:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "AZDB"
//! 4       4     format version (u32 LE) — DB_FORMAT_VERSION
//! 8       4     content-hash scheme version (u32 LE) — HASH_VERSION
//! 12      8     automaton content hash (u64 LE)
//! 20      1     input map (0 identity, 1 stride8, 2 widen)
//! 21      1     flags (bit 0: reduced; bit 1: fuzzy; bits 4-5: edits)
//! 22      2     engine worker threads (u16 LE)
//! 24      4     payload length (u32 LE)
//! 28      n     payload: MNRL JSON of the automaton
//! ```
//!
//! When [`DbConfig::reduce`] is set, [`Db::compile`] runs the
//! reduction tier (`azoo_passes::reduce`) *before* hashing and
//! serializing, so the stored content hash and payload describe the
//! machine that actually serves traffic — a reduced artifact is
//! self-contained and [`Db::deserialize`] never re-reduces. The flags
//! byte records the provenance and keeps the cache key distinct from
//! an unreduced compile of the same source automaton.
//!
//! [`DbConfig::max_edits`] works the same way for approximate matching:
//! a non-zero edit budget makes `compile` replace each literal chain of
//! the source machine with its Levenshtein mesh (`azoo_fuzzy::fuzzify`,
//! under the protocol's pinned [`EditProfile::LEVENSHTEIN`] cost model)
//! before any reduction, hashing or serialization. The artifact stores
//! the *mesh*; the flags byte sets [`FLAG_FUZZY`] and carries the edit
//! budget in bits 4-5, and a header whose fuzzy bit and edit field
//! disagree (fuzzy with zero edits, or edits without the bit) is
//! [`DbError::BadFlags`] — the same typed rejection as unknown bits.
//!
//! Load rules, in check order: wrong magic → [`DbError::BadMagic`];
//! any header or payload shorter than declared → [`DbError::Truncated`];
//! other format or hash-scheme version → [`DbError::VersionMismatch`]
//! (old artifacts are *misses*, recompile and re-publish); stored
//! content hash ≠ hash recomputed over the decoded automaton →
//! [`DbError::HashMismatch`] (corruption or tampering — never served).
//! Every error is typed; no load path panics. The [`DbCache`] hit path
//! upholds the same guarantee by fingerprinting the raw artifact bytes:
//! bytes that differ from the verified artifact take the full load path
//! and fail its checks rather than being answered from the cache.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use azoo_core::{content_hash, mnrl, Automaton, CoreError, HASH_VERSION};
use azoo_engines::{
    select_session_engine, select_session_engine_threaded, EngineChoice, EngineError, SessionEngine,
};
use azoo_fuzzy::{fuzzify, EditProfile, FuzzyError, MAX_EDITS};
use azoo_passes::InputMap;
use azoo_sync::{ranks, sched, OrderedMutex};

/// Current artifact format version. Version 3 added the fuzzy flag bits
/// (bit 1 + edit budget in bits 4-5); version-2 artifacts are typed
/// misses, recompile and re-publish.
pub const DB_FORMAT_VERSION: u32 = 3;

const DB_MAGIC: [u8; 4] = *b"AZDB";
const HEADER_LEN: usize = 28;

/// Header flag bit: the payload was compiled with the reduction tier.
const FLAG_REDUCED: u8 = 0x01;

/// Header flag bit: the payload is a Levenshtein mesh compiled with a
/// non-zero [`DbConfig::max_edits`]; the budget lives in bits 4-5.
const FLAG_FUZZY: u8 = 0x02;

/// Bit position of the edit budget inside the flags byte.
const FLAG_EDITS_SHIFT: u32 = 4;

/// Mask of the edit-budget field (two bits hold `MAX_EDITS = 3`).
const FLAG_EDITS_MASK: u8 = 0x30;

/// Recycled engines kept per database; checkouts past this bound fall
/// back to cloning the prototype (bounded memory beats unbounded reuse).
const POOL_CAP: usize = 1024;

/// How a [`Db`] presents input to its machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DbConfig {
    /// Input expansion applied to client bytes before they reach the
    /// (post-pass) machine; report offsets are in post-map coordinates.
    pub input_map: InputMap,
    /// Engine worker threads; >1 selects the parallel scanner.
    pub threads: usize,
    /// Run the reduction tier (`azoo_passes::reduce`) at compile time.
    /// The artifact then stores the *reduced* machine — hash, payload
    /// and flags byte all describe post-reduction state.
    pub reduce: bool,
    /// Approximate-matching edit budget, `0..=MAX_EDITS`. Non-zero makes
    /// [`Db::compile`] fuzzify every literal chain of the source machine
    /// into its Levenshtein mesh before reduction; the artifact stores
    /// the mesh and flags its provenance, so loading never re-fuzzifies.
    pub max_edits: u8,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            input_map: InputMap::Identity,
            threads: 1,
            reduce: false,
            max_edits: 0,
        }
    }
}

/// Typed artifact-load and compile failures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DbError {
    /// The artifact does not begin with the `AZDB` magic.
    BadMagic,
    /// The artifact is shorter than its headers declare.
    Truncated,
    /// Format or hash-scheme version differs from this build's.
    VersionMismatch {
        /// Version stored in the artifact.
        found: u32,
        /// Version this build writes.
        expected: u32,
    },
    /// Stored content hash does not match the decoded payload.
    HashMismatch {
        /// Hash stored in the artifact header.
        stored: u64,
        /// Hash recomputed from the decoded automaton.
        computed: u64,
    },
    /// Unknown input-map tag byte.
    BadInputMap(u8),
    /// Unknown bits set in the header flags byte, or the fuzzy bit and
    /// the edit-budget field disagree.
    BadFlags(u8),
    /// Requested edit budget above [`azoo_fuzzy::MAX_EDITS`].
    BadEdits(u8),
    /// No cached database under this key.
    UnknownKey(u64),
    /// The payload failed MNRL parsing.
    Core(CoreError),
    /// The automaton failed engine compilation or validation.
    Engine(EngineError),
    /// The source machine could not be fuzzified at the requested edit
    /// budget (not chain-shaped, chain shorter than the budget, ...).
    Fuzzy(FuzzyError),
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::BadMagic => write!(f, "artifact is not an AZDB database"),
            DbError::Truncated => write!(f, "artifact truncated"),
            DbError::VersionMismatch { found, expected } => {
                write!(f, "artifact version {found}, this build reads {expected}")
            }
            DbError::HashMismatch { stored, computed } => write!(
                f,
                "content hash mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            DbError::BadInputMap(tag) => write!(f, "unknown input-map tag {tag}"),
            DbError::BadFlags(flags) => write!(f, "bad header flag bits {flags:#04x}"),
            DbError::BadEdits(edits) => {
                write!(f, "edit budget {edits} exceeds the maximum of {MAX_EDITS}")
            }
            DbError::UnknownKey(key) => write!(f, "no cached database under key {key:#018x}"),
            DbError::Core(e) => write!(f, "payload error: {e}"),
            DbError::Engine(e) => write!(f, "compile error: {e}"),
            DbError::Fuzzy(e) => write!(f, "fuzzify error: {e}"),
        }
    }
}

impl std::error::Error for DbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DbError::Core(e) => Some(e),
            DbError::Engine(e) => Some(e),
            DbError::Fuzzy(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for DbError {
    fn from(e: CoreError) -> Self {
        DbError::Core(e)
    }
}

impl From<EngineError> for DbError {
    fn from(e: EngineError) -> Self {
        DbError::Engine(e)
    }
}

impl From<FuzzyError> for DbError {
    fn from(e: FuzzyError) -> Self {
        DbError::Fuzzy(e)
    }
}

/// A compiled, shareable scan database.
///
/// `Arc<Db>`-shared across sessions: the automaton, its artifact bytes
/// and the engine prototype are compiled once; each session checks a
/// pooled executor out of the free list ([`Db::checkout`]) and returns
/// it quiesced on close ([`Db::checkin`]), so steady-state session churn
/// performs no compilation and no allocation.
pub struct Db {
    automaton: Automaton,
    config: DbConfig,
    hash: u64,
    choice: EngineChoice,
    /// Free list of recycled per-session executors (all quiesced).
    /// Rank DB_POOL: acquired while a session lock is held (close and
    /// feed-timeout check-in), never while holding anything higher.
    pool: OrderedMutex<Vec<Box<dyn SessionEngine>>>,
    /// Pristine executor the pool grows from; never circulated.
    /// Rank DB_PROTO: leaf lock, acquires nothing.
    proto: OrderedMutex<Box<dyn SessionEngine>>,
}

impl std::fmt::Debug for Db {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Db")
            .field("hash", &format_args!("{:#018x}", self.hash))
            .field("choice", &self.choice)
            .field("config", &self.config)
            .field("states", &self.automaton.state_count())
            .finish()
    }
}

impl Db {
    /// Compiles `automaton` under `config` through the streaming engine
    /// portfolio. With [`DbConfig::max_edits`] non-zero, the machine's
    /// literal chains are fuzzified into Levenshtein meshes first; with
    /// [`DbConfig::reduce`] set, the reduction tier then runs, and the
    /// database (hash, payload, engine) is built from the transformed
    /// machine.
    ///
    /// # Errors
    ///
    /// [`DbError::Engine`] when validation or compilation fails,
    /// [`DbError::BadEdits`] for a budget above the flag encoding's
    /// [`MAX_EDITS`], [`DbError::Fuzzy`] when the machine cannot be
    /// fuzzified.
    pub fn compile(automaton: Automaton, config: DbConfig) -> Result<Arc<Db>, DbError> {
        if config.max_edits > MAX_EDITS {
            return Err(DbError::BadEdits(config.max_edits));
        }
        let automaton = if config.max_edits > 0 || config.reduce {
            // Validate before transforming: the passes assume a
            // well-formed machine, and a broken input should surface
            // as the usual typed error, not a pass artifact.
            automaton.validate()?;
            let fuzzed = if config.max_edits > 0 {
                // Fuzzify before reducing: chain extraction needs the
                // published literal chains, not their reduced quotient.
                fuzzify(
                    &automaton,
                    config.max_edits as usize,
                    EditProfile::LEVENSHTEIN,
                )?
                .0
            } else {
                automaton
            };
            if config.reduce {
                azoo_passes::reduce(&fuzzed).0
            } else {
                fuzzed
            }
        } else {
            automaton
        };
        Self::finish(automaton, config)
    }

    /// Builds the database around `automaton` as-is — shared tail of
    /// [`Db::compile`] (post-reduction) and [`Db::deserialize`] (whose
    /// payload already is the served machine; re-reducing would break
    /// the stored hash's bond with the payload).
    fn finish(automaton: Automaton, config: DbConfig) -> Result<Arc<Db>, DbError> {
        let hash = content_hash(&automaton);
        let (choice, proto) = if config.threads > 1 {
            select_session_engine_threaded(&automaton, config.threads)?
        } else {
            select_session_engine(&automaton)?
        };
        Ok(Arc::new(Db {
            automaton,
            config,
            hash,
            choice,
            pool: OrderedMutex::new(ranks::DB_POOL, Vec::new()),
            proto: OrderedMutex::new(ranks::DB_PROTO, proto),
        }))
    }

    /// The automaton's stable content hash (see
    /// [`azoo_core::content_hash`]).
    pub fn content_hash(&self) -> u64 {
        self.hash
    }

    /// Cache key: content hash mixed with the serving configuration, so
    /// the same machine under a different input map or thread count is a
    /// distinct cache entry.
    pub fn cache_key(&self) -> u64 {
        Self::mix_key(self.hash, self.config)
    }

    fn mix_key(hash: u64, config: DbConfig) -> u64 {
        let tag = (u64::from(flags_byte(config)) << 40)
            | (u64::from(input_map_tag(config.input_map)) << 32)
            | config.threads as u64;
        // splitmix64-style finalizer, matching azoo-core's mixer.
        let mut x = hash ^ tag.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        x
    }

    /// Which portfolio tier the compile selected.
    pub fn engine_choice(&self) -> EngineChoice {
        self.choice
    }

    /// The serving configuration.
    pub fn config(&self) -> DbConfig {
        self.config
    }

    /// The wrapped automaton.
    pub fn automaton(&self) -> &Automaton {
        &self.automaton
    }

    /// Serializes the database to the versioned artifact format
    /// described in the module docs.
    pub fn serialize(&self) -> Vec<u8> {
        let payload = mnrl::to_json(&self.automaton, "azoo-serve-db");
        let payload = payload.as_bytes();
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&DB_MAGIC);
        out.extend_from_slice(&DB_FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&HASH_VERSION.to_le_bytes());
        out.extend_from_slice(&self.hash.to_le_bytes());
        out.push(input_map_tag(self.config.input_map));
        out.push(flags_byte(self.config));
        out.extend_from_slice(&(self.config.threads.min(u16::MAX as usize) as u16).to_le_bytes());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(payload);
        out
    }

    /// Reads the cache key from an artifact header without decoding or
    /// compiling the payload, so a cache hit skips the expensive path.
    /// Performs the same magic/version checks as a full load.
    ///
    /// # Errors
    ///
    /// [`DbError::BadMagic`], [`DbError::Truncated`],
    /// [`DbError::VersionMismatch`], or [`DbError::BadInputMap`].
    pub fn peek_key(bytes: &[u8]) -> Result<u64, DbError> {
        let (hash, config, _) = parse_header(bytes)?;
        Ok(Self::mix_key(hash, config))
    }

    /// Loads an artifact produced by [`Db::serialize`], verifying magic,
    /// versions and content hash before compiling. See the module docs
    /// for the check order.
    ///
    /// # Errors
    ///
    /// Any [`DbError`]; never panics or yields a partially-built `Db`.
    pub fn deserialize(bytes: &[u8]) -> Result<Arc<Db>, DbError> {
        let (stored_hash, config, payload) = parse_header(bytes)?;
        let text = std::str::from_utf8(payload)
            .map_err(|_| DbError::Core(CoreError::Format("payload is not UTF-8".into())))?;
        let automaton = mnrl::from_json(text)?;
        let computed = content_hash(&automaton);
        if computed != stored_hash {
            return Err(DbError::HashMismatch {
                stored: stored_hash,
                computed,
            });
        }
        // The payload *is* the serving machine: for a reduced artifact,
        // reduction already ran at compile time. Going through `finish`
        // (not `compile`) keeps the load path from reducing again, which
        // would desynchronize the verified hash from the served states.
        Self::finish(automaton, config)
    }

    /// Checks a quiesced executor out of the free list, cloning the
    /// prototype's compiled tables when the list is empty.
    pub fn checkout(&self) -> Box<dyn SessionEngine> {
        if let Some(engine) = self.pool.lock().pop() {
            return engine;
        }
        self.proto.lock().clone_session()
    }

    /// Returns an executor to the free list, resetting it first (with
    /// the debug-build quiesced assertion) so the next checkout starts
    /// from a provably clean stream state.
    pub fn checkin(&self, mut engine: Box<dyn SessionEngine>) {
        engine.reset();
        let mut pool = self.pool.lock();
        if pool.len() < POOL_CAP {
            pool.push(engine);
        }
    }

    /// Executors currently parked on the free list.
    pub fn pooled(&self) -> usize {
        self.pool.lock().len()
    }
}

fn flags_byte(config: DbConfig) -> u8 {
    let mut flags = 0;
    if config.reduce {
        flags |= FLAG_REDUCED;
    }
    if config.max_edits > 0 {
        flags |= FLAG_FUZZY | ((config.max_edits << FLAG_EDITS_SHIFT) & FLAG_EDITS_MASK);
    }
    flags
}

fn input_map_tag(map: InputMap) -> u8 {
    match map {
        InputMap::Identity => 0,
        InputMap::Stride8 => 1,
        InputMap::Widen => 2,
    }
}

fn input_map_from_tag(tag: u8) -> Result<InputMap, DbError> {
    match tag {
        0 => Ok(InputMap::Identity),
        1 => Ok(InputMap::Stride8),
        2 => Ok(InputMap::Widen),
        other => Err(DbError::BadInputMap(other)),
    }
}

/// Parses and checks the fixed header; returns (content hash, config,
/// payload slice).
fn parse_header(bytes: &[u8]) -> Result<(u64, DbConfig, &[u8]), DbError> {
    if bytes.len() < 4 {
        return Err(if DB_MAGIC.starts_with(bytes) {
            DbError::Truncated
        } else {
            DbError::BadMagic
        });
    }
    if bytes[0..4] != DB_MAGIC {
        return Err(DbError::BadMagic);
    }
    if bytes.len() < HEADER_LEN {
        return Err(DbError::Truncated);
    }
    let le32 =
        |at: usize| u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]]);
    let version = le32(4);
    if version != DB_FORMAT_VERSION {
        return Err(DbError::VersionMismatch {
            found: version,
            expected: DB_FORMAT_VERSION,
        });
    }
    let hash_version = le32(8);
    if hash_version != HASH_VERSION {
        return Err(DbError::VersionMismatch {
            found: hash_version,
            expected: HASH_VERSION,
        });
    }
    let mut hash_bytes = [0u8; 8];
    hash_bytes.copy_from_slice(&bytes[12..20]);
    let hash = u64::from_le_bytes(hash_bytes);
    let input_map = input_map_from_tag(bytes[20])?;
    let flags = bytes[21];
    if flags & !(FLAG_REDUCED | FLAG_FUZZY | FLAG_EDITS_MASK) != 0 {
        return Err(DbError::BadFlags(flags));
    }
    let max_edits = (flags & FLAG_EDITS_MASK) >> FLAG_EDITS_SHIFT;
    // The fuzzy bit and the edit field encode one fact twice; an
    // artifact where they disagree was not written by this serializer.
    if (flags & FLAG_FUZZY != 0) != (max_edits > 0) {
        return Err(DbError::BadFlags(flags));
    }
    let threads = u16::from_le_bytes([bytes[22], bytes[23]]) as usize;
    let payload_len = le32(24) as usize;
    let payload = bytes
        .get(HEADER_LEN..HEADER_LEN + payload_len)
        .ok_or(DbError::Truncated)?;
    Ok((
        hash,
        DbConfig {
            input_map,
            threads: threads.max(1),
            reduce: flags & FLAG_REDUCED != 0,
            max_edits,
        },
        payload,
    ))
}

/// Shared in-memory database cache, keyed by [`Db::cache_key`].
///
/// N sessions opening the same artifact share one `Arc<Db>` — one
/// compiled machine, one engine pool. Hit/miss counts are plain atomics;
/// the map lock is held only for a hash-map operation.
///
/// The artifact hit path ([`DbCache::get_or_load`]) is only allowed to
/// skip the decode when the presented bytes fingerprint-match the bytes
/// the cached entry was verified against — a tampered payload under a
/// genuine header falls through to the full load and dies on its
/// [`DbError::HashMismatch`] (or parse error) instead of silently
/// borrowing the cached database's credibility.
pub struct DbCache {
    /// Rank DB_CACHE: lowest rank in the workspace — the cache map may
    /// be consulted on any path, so nothing may be held across it.
    map: OrderedMutex<HashMap<u64, CacheEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for DbCache {
    fn default() -> Self {
        DbCache {
            map: OrderedMutex::new(ranks::DB_CACHE, HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

/// One cached database plus the fingerprint of the exact artifact bytes
/// it was verified against (`None` until an artifact load verified it).
struct CacheEntry {
    db: Arc<Db>,
    artifact_fp: Option<u64>,
}

/// FNV-1a over the raw artifact bytes: cheap relative to a scan feed,
/// and enough to keep a corrupted payload from riding a cached header.
fn artifact_fingerprint(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl DbCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a database by cache key, counting a hit or miss.
    pub fn get(&self, key: u64) -> Option<Arc<Db>> {
        let found = self.map.lock().get(&key).map(|e| e.db.clone());
        match found {
            Some(db) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(db)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or replaces) a database under a caller-chosen key —
    /// used for server-derived variants (per-session fuzzy compiles)
    /// whose key is a function of the *base* database, not of their own
    /// artifact. No fingerprint is stored, so these entries only answer
    /// [`DbCache::get`], never [`DbCache::get_or_load`].
    pub fn insert_under(&self, key: u64, db: Arc<Db>) {
        self.map.lock().insert(
            key,
            CacheEntry {
                db,
                artifact_fp: None,
            },
        );
    }

    /// Inserts (or replaces) a database; returns its cache key. The
    /// entry is fingerprinted against the database's own serialization,
    /// so the canonical artifact hits [`DbCache::get_or_load`] directly.
    pub fn insert(&self, db: Arc<Db>) -> u64 {
        let key = db.cache_key();
        let fp = artifact_fingerprint(&db.serialize());
        self.map.lock().insert(
            key,
            CacheEntry {
                db,
                artifact_fp: Some(fp),
            },
        );
        key
    }

    /// Resolves an artifact through the cache: header-only key peek plus
    /// a fingerprint of the raw bytes, then a full verify-and-compile on
    /// a miss *or* whenever the bytes differ from what the cached entry
    /// was verified against. Returns the database and whether this was a
    /// hit.
    ///
    /// # Errors
    ///
    /// Any [`DbError`] from header parsing or the verify-and-compile
    /// path — in particular, a payload that does not match its header's
    /// content hash is [`DbError::HashMismatch`] even when a database
    /// under the same key is already cached.
    pub fn get_or_load(&self, bytes: &[u8]) -> Result<(Arc<Db>, bool), DbError> {
        let key = Db::peek_key(bytes)?;
        let fp = artifact_fingerprint(bytes);
        sched::point("cache:lookup");
        if let Some(entry) = self.map.lock().get(&key) {
            if entry.artifact_fp == Some(fp) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok((entry.db.clone(), true));
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let db = Db::deserialize(bytes)?;
        sched::point("cache:loaded");
        self.map.lock().insert(
            key,
            CacheEntry {
                db: db.clone(),
                artifact_fp: Some(fp),
            },
        );
        Ok((db, false))
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of cached databases.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use azoo_core::{StartKind, SymbolClass};

    fn cat() -> Automaton {
        let mut a = Automaton::new();
        let c = a.add_ste(SymbolClass::from_byte(b'c'), StartKind::AllInput);
        let s1 = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::None);
        let s2 = a.add_ste(SymbolClass::from_byte(b't'), StartKind::None);
        a.add_edge(c, s1);
        a.add_edge(s1, s2);
        a.set_report(s2, 0);
        a
    }

    #[test]
    fn round_trip_preserves_hash_and_choice() {
        let db = Db::compile(cat(), DbConfig::default()).expect("compile");
        let bytes = db.serialize();
        let back = Db::deserialize(&bytes).expect("load");
        assert_eq!(back.content_hash(), db.content_hash());
        assert_eq!(back.cache_key(), db.cache_key());
        assert_eq!(back.engine_choice(), db.engine_choice());
        assert_eq!(Db::peek_key(&bytes).expect("peek"), db.cache_key());
    }

    #[test]
    fn typed_load_errors() {
        let db = Db::compile(cat(), DbConfig::default()).expect("compile");
        let good = db.serialize();

        let mut bad = good.clone();
        bad[0] = b'X';
        assert_eq!(Db::deserialize(&bad).unwrap_err(), DbError::BadMagic);

        let mut bad = good.clone();
        bad[4] = 0xFF;
        assert!(matches!(
            Db::deserialize(&bad),
            Err(DbError::VersionMismatch { .. })
        ));

        let mut bad = good.clone();
        bad[12] ^= 0x01; // stored content hash
        assert!(matches!(
            Db::deserialize(&bad),
            Err(DbError::HashMismatch { .. })
        ));

        let mut bad = good.clone();
        bad[20] = 9;
        assert_eq!(Db::deserialize(&bad).unwrap_err(), DbError::BadInputMap(9));

        let mut bad = good.clone();
        bad[21] = 0xCE; // unknown flag bits
        assert_eq!(Db::deserialize(&bad).unwrap_err(), DbError::BadFlags(0xCE));

        // Internally inconsistent fuzzy flags: the fuzzy bit without an
        // edit budget, and an edit budget without the bit.
        let mut bad = good.clone();
        bad[21] = 0x02;
        assert_eq!(Db::deserialize(&bad).unwrap_err(), DbError::BadFlags(0x02));
        let mut bad = good.clone();
        bad[21] = 0x10;
        assert_eq!(Db::deserialize(&bad).unwrap_err(), DbError::BadFlags(0x10));

        assert_eq!(
            Db::deserialize(&good[..10]).unwrap_err(),
            DbError::Truncated
        );
        assert_eq!(
            Db::deserialize(&good[..good.len() - 1]).unwrap_err(),
            DbError::Truncated
        );
        assert_eq!(Db::deserialize(b"AZ").unwrap_err(), DbError::Truncated);
        assert_eq!(Db::deserialize(b"nope").unwrap_err(), DbError::BadMagic);
    }

    /// Two identical report chains — the reduction tier folds them.
    fn double_cat() -> Automaton {
        let mut a = Automaton::new();
        for _ in 0..2 {
            let (_, last) = a.add_chain(
                &[
                    SymbolClass::from_byte(b'c'),
                    SymbolClass::from_byte(b'a'),
                    SymbolClass::from_byte(b't'),
                ],
                StartKind::AllInput,
            );
            a.set_report(last, 0);
        }
        a
    }

    #[test]
    fn reduced_compile_stores_the_reduced_machine() {
        let plain = Db::compile(double_cat(), DbConfig::default()).expect("compile");
        let reduced = Db::compile(
            double_cat(),
            DbConfig {
                reduce: true,
                ..DbConfig::default()
            },
        )
        .expect("compile reduced");

        assert!(
            reduced.automaton().state_count() < plain.automaton().state_count(),
            "reduction must shrink the duplicated machine"
        );
        // The hash covers the machine that serves traffic, so the
        // reduced artifact hashes differently and caches separately.
        assert_ne!(reduced.content_hash(), plain.content_hash());
        assert_ne!(reduced.cache_key(), plain.cache_key());

        // Round trip: the payload already is the reduced machine, and
        // the load path must accept it verbatim (no re-reduction).
        let bytes = reduced.serialize();
        let back = Db::deserialize(&bytes).expect("load reduced artifact");
        assert!(back.config().reduce);
        assert_eq!(back.content_hash(), reduced.content_hash());
        assert_eq!(back.cache_key(), reduced.cache_key());
        assert_eq!(
            back.automaton().state_count(),
            reduced.automaton().state_count()
        );
    }

    #[test]
    fn fuzzy_compile_stores_the_mesh_and_round_trips() {
        let plain = Db::compile(cat(), DbConfig::default()).expect("compile");
        let fuzzy = Db::compile(
            cat(),
            DbConfig {
                max_edits: 1,
                ..DbConfig::default()
            },
        )
        .expect("compile fuzzy");

        assert!(
            fuzzy.automaton().state_count() > plain.automaton().state_count(),
            "the mesh must add an error layer"
        );
        assert_ne!(fuzzy.content_hash(), plain.content_hash());
        assert_ne!(fuzzy.cache_key(), plain.cache_key());

        // "cut" is within distance 1 of "cat"; the exact machine misses
        // it, the mesh reports it.
        let scan = |db: &Db| {
            let mut engine = db.checkout();
            let mut sink = azoo_engines::CollectSink::new();
            engine.feed(b"a cut here", true, &mut sink);
            sink.reports().len()
        };
        assert_eq!(scan(&plain), 0);
        assert!(scan(&fuzzy) > 0);

        // The payload already is the mesh: the load path must accept it
        // verbatim, never re-fuzzify, and keep the provenance flags.
        let bytes = fuzzy.serialize();
        assert_eq!(bytes[21], FLAG_FUZZY | (1 << FLAG_EDITS_SHIFT));
        let back = Db::deserialize(&bytes).expect("load fuzzy artifact");
        assert_eq!(back.config().max_edits, 1);
        assert_eq!(back.content_hash(), fuzzy.content_hash());
        assert_eq!(back.cache_key(), fuzzy.cache_key());
        assert_eq!(
            back.automaton().state_count(),
            fuzzy.automaton().state_count()
        );

        // Every budget is a distinct artifact and a distinct cache key.
        let deeper = Db::compile(
            cat(),
            DbConfig {
                max_edits: 2,
                ..DbConfig::default()
            },
        )
        .expect("compile k=2");
        assert_ne!(deeper.cache_key(), fuzzy.cache_key());
    }

    #[test]
    fn fuzzy_compile_failures_are_typed() {
        assert_eq!(
            Db::compile(
                cat(),
                DbConfig {
                    max_edits: MAX_EDITS + 1,
                    ..DbConfig::default()
                }
            )
            .unwrap_err(),
            DbError::BadEdits(MAX_EDITS + 1)
        );

        // A machine with fan-out is not a literal chain set; the
        // fuzzify rejection surfaces as the typed DbError.
        let mut branchy = Automaton::new();
        let s = branchy.add_ste(SymbolClass::from_byte(b'c'), StartKind::AllInput);
        for b in [b'a', b'o'] {
            let t = branchy.add_ste(SymbolClass::from_byte(b), StartKind::None);
            branchy.add_edge(s, t);
            branchy.set_report(t, 0);
        }
        assert!(matches!(
            Db::compile(
                branchy,
                DbConfig {
                    max_edits: 1,
                    ..DbConfig::default()
                }
            ),
            Err(DbError::Fuzzy(_))
        ));
    }

    #[test]
    fn pool_recycles_engines() {
        let db = Db::compile(cat(), DbConfig::default()).expect("compile");
        assert_eq!(db.pooled(), 0);
        let e1 = db.checkout();
        let e2 = db.checkout();
        db.checkin(e1);
        db.checkin(e2);
        assert_eq!(db.pooled(), 2);
        let _e = db.checkout();
        assert_eq!(db.pooled(), 1);
    }

    #[test]
    fn tampered_payload_never_served_from_cache() {
        let cache = DbCache::new();
        let good = Db::compile(cat(), DbConfig::default())
            .expect("compile")
            .serialize();
        cache.get_or_load(&good).expect("load");

        // Same (valid) header, flipped payload byte: the cache key
        // matches a verified entry, but the bytes do not — the full
        // load path must run and reject the artifact.
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert!(
            cache.get_or_load(&bad).is_err(),
            "tampered payload must not ride the cached header"
        );

        // The genuine artifact still hits.
        let (_, hit) = cache.get_or_load(&good).expect("load");
        assert!(hit);
    }

    #[test]
    fn registered_db_hits_on_its_canonical_artifact() {
        let cache = DbCache::new();
        let db = Db::compile(cat(), DbConfig::default()).expect("compile");
        let bytes = db.serialize();
        cache.insert(db.clone());
        let (found, hit) = cache.get_or_load(&bytes).expect("load");
        assert!(hit, "canonical serialization of an inserted db is a hit");
        assert!(Arc::ptr_eq(&found, &db));
    }

    #[test]
    fn cache_shares_one_db() {
        let cache = DbCache::new();
        let bytes = Db::compile(cat(), DbConfig::default())
            .expect("compile")
            .serialize();
        let (db1, hit1) = cache.get_or_load(&bytes).expect("load");
        let (db2, hit2) = cache.get_or_load(&bytes).expect("load");
        assert!(!hit1);
        assert!(hit2);
        assert!(Arc::ptr_eq(&db1, &db2));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }
}

//! Framed wire protocol for the scan service.
//!
//! Every frame is a little-endian `u32` payload length followed by the
//! payload; the first payload byte is the opcode. The codec is
//! transport-agnostic (`std::io::Read`/`Write`), so it runs unchanged
//! over TCP, Unix sockets and in-memory pipes in tests.
//!
//! # Frames
//!
//! | opcode | frame                 | body                                            |
//! |--------|-----------------------|-------------------------------------------------|
//! | 1      | `OPEN`                | tenant (u16 len + utf8), db-ref, max_edits u8   |
//! | 2      | `FEED`                | sid u64, eod u8, chunk bytes                    |
//! | 3      | `CLOSE`               | sid u64                                         |
//! | 4      | `METRICS`             | —                                               |
//! | 5      | `SHUTDOWN`            | —                                               |
//! | 128    | `OPENED`              | sid u64                                         |
//! | 129    | `REPORTS`             | sid u64, count u32, count × (offset u64, code u32) |
//! | 130    | `CLOSED`              | sid u64, fed_bytes u64                          |
//! | 131    | `METRICS_JSON`        | utf8 JSON                                       |
//! | 132    | `SHUTTING_DOWN`       | —                                               |
//! | 133    | `ERROR`               | code u16, utf8 message                          |
//!
//! A db-ref is a `u8` tag: `0` + `u64` for a cached database key,
//! `1` + `u32` length + bytes for an inline serialized artifact.
//! `max_edits` is the session's approximate-matching budget: `0` scans
//! the referenced database exactly; `1..=3` has the server derive (and
//! cache) the Levenshtein mesh of that database's literal chains at the
//! requested distance, answering with a typed `ERROR` when the machine
//! cannot be fuzzified.
//!
//! `FEED` with `eod = 1` finishes the stream (an empty chunk is the
//! explicit end-of-data marker). The server replies to every `FEED`
//! with a `REPORTS` frame draining what that feed produced, and to
//! `CLOSE` with a final `REPORTS` (anything still buffered) then
//! `CLOSED`. `ERROR` replies carry the typed [`ServeError`] category in
//! the code field; the session-feed errors are deterministic, so a
//! client can retry or drop deterministically too.

use std::io::{Read, Write};

use crate::service::ServeError;

/// Hard cap on a single frame's payload, guarding both sides against a
/// corrupt or hostile length prefix.
pub const MAX_FRAME: usize = 64 << 20;

/// Typed wire-level failures.
#[derive(Debug)]
pub enum ProtoError {
    /// Underlying transport failure.
    Io(std::io::Error),
    /// The peer closed the connection between frames (clean EOF).
    Closed,
    /// A length prefix exceeded [`MAX_FRAME`].
    FrameTooLarge(usize),
    /// The payload ended before its body did.
    Truncated,
    /// An unknown opcode or tag byte.
    BadOpcode(u8),
    /// A string field was not UTF-8.
    BadUtf8,
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "transport error: {e}"),
            ProtoError::Closed => write!(f, "peer closed the connection"),
            ProtoError::FrameTooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME}-byte cap")
            }
            ProtoError::Truncated => write!(f, "frame payload truncated"),
            ProtoError::BadOpcode(op) => write!(f, "unknown opcode or tag {op:#04x}"),
            ProtoError::BadUtf8 => write!(f, "string field is not UTF-8"),
        }
    }
}

impl std::error::Error for ProtoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// Reference to the database a session should scan with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbRef {
    /// A key previously returned by registering or loading a database.
    ByKey(u64),
    /// A serialized artifact, resolved through the server's cache.
    Artifact(Vec<u8>),
}

/// Client-to-server frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Open a session for `tenant` over `db`.
    Open {
        /// Tenant name for quota accounting.
        tenant: String,
        /// Database to scan with.
        db: DbRef,
        /// Approximate-matching edit budget for this session; `0` scans
        /// exactly, `1..=3` scans the server-derived Levenshtein mesh.
        max_edits: u8,
    },
    /// Feed one chunk; `eod` finishes the stream.
    Feed {
        /// Session to feed.
        sid: u64,
        /// Whether this chunk ends the stream.
        eod: bool,
        /// The chunk itself (may be empty with `eod`).
        data: Vec<u8>,
    },
    /// Close a session.
    Close {
        /// Session to close.
        sid: u64,
    },
    /// Request a metrics snapshot.
    Metrics,
    /// Ask the server to exit after draining connections.
    Shutdown,
}

/// Server-to-client frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The session is open.
    Opened {
        /// Its id, used in every later frame.
        sid: u64,
    },
    /// Reports drained from a session, in emission order.
    Reports {
        /// The session they came from.
        sid: u64,
        /// `(offset, code)` pairs.
        reports: Vec<(u64, u32)>,
    },
    /// The session is closed.
    Closed {
        /// The closed session.
        sid: u64,
        /// Raw bytes it was fed over its lifetime.
        fed_bytes: u64,
    },
    /// A metrics snapshot in the `azoo-serve-metrics-v1` schema.
    MetricsJson(String),
    /// The server acknowledged `SHUTDOWN` and is exiting.
    ShuttingDown,
    /// A typed rejection or failure; the connection stays usable.
    Error {
        /// Category code (see [`error_code`]).
        code: u16,
        /// Human-readable description.
        message: String,
    },
}

/// Stable wire code for each [`ServeError`] category.
pub fn error_code(e: &ServeError) -> u16 {
    match e {
        ServeError::Overloaded { .. } => 1,
        ServeError::QuotaExceeded { .. } => 2,
        ServeError::TimedOut => 3,
        ServeError::UnknownSession(_) => 4,
        ServeError::StreamFinished(_) => 5,
        ServeError::Cancelled(_) => 6,
        ServeError::Db(_) => 7,
    }
}

impl Request {
    /// Serializes the request into one frame payload (without the
    /// length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Open {
                tenant,
                db,
                max_edits,
            } => {
                out.push(1);
                out.extend_from_slice(&(tenant.len() as u16).to_le_bytes());
                out.extend_from_slice(tenant.as_bytes());
                match db {
                    DbRef::ByKey(key) => {
                        out.push(0);
                        out.extend_from_slice(&key.to_le_bytes());
                    }
                    DbRef::Artifact(bytes) => {
                        out.push(1);
                        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                        out.extend_from_slice(bytes);
                    }
                }
                out.push(*max_edits);
            }
            Request::Feed { sid, eod, data } => {
                out.push(2);
                out.extend_from_slice(&sid.to_le_bytes());
                out.push(u8::from(*eod));
                out.extend_from_slice(data);
            }
            Request::Close { sid } => {
                out.push(3);
                out.extend_from_slice(&sid.to_le_bytes());
            }
            Request::Metrics => out.push(4),
            Request::Shutdown => out.push(5),
        }
        out
    }

    /// Parses one frame payload.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Truncated`], [`ProtoError::BadOpcode`] or
    /// [`ProtoError::BadUtf8`].
    pub fn decode(payload: &[u8]) -> Result<Request, ProtoError> {
        let mut r = Cursor::new(payload);
        let req = match r.u8()? {
            1 => {
                let tlen = r.u16()? as usize;
                let tenant =
                    String::from_utf8(r.bytes(tlen)?.to_vec()).map_err(|_| ProtoError::BadUtf8)?;
                let db = match r.u8()? {
                    0 => DbRef::ByKey(r.u64()?),
                    1 => {
                        let len = r.u32()? as usize;
                        DbRef::Artifact(r.bytes(len)?.to_vec())
                    }
                    tag => return Err(ProtoError::BadOpcode(tag)),
                };
                let max_edits = r.u8()?;
                Request::Open {
                    tenant,
                    db,
                    max_edits,
                }
            }
            2 => Request::Feed {
                sid: r.u64()?,
                eod: r.u8()? != 0,
                data: r.rest().to_vec(),
            },
            3 => Request::Close { sid: r.u64()? },
            4 => Request::Metrics,
            5 => Request::Shutdown,
            op => return Err(ProtoError::BadOpcode(op)),
        };
        Ok(req)
    }
}

impl Response {
    /// Serializes the response into one frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Opened { sid } => {
                out.push(128);
                out.extend_from_slice(&sid.to_le_bytes());
            }
            Response::Reports { sid, reports } => {
                out.push(129);
                out.extend_from_slice(&sid.to_le_bytes());
                out.extend_from_slice(&(reports.len() as u32).to_le_bytes());
                for (offset, code) in reports {
                    out.extend_from_slice(&offset.to_le_bytes());
                    out.extend_from_slice(&code.to_le_bytes());
                }
            }
            Response::Closed { sid, fed_bytes } => {
                out.push(130);
                out.extend_from_slice(&sid.to_le_bytes());
                out.extend_from_slice(&fed_bytes.to_le_bytes());
            }
            Response::MetricsJson(json) => {
                out.push(131);
                out.extend_from_slice(json.as_bytes());
            }
            Response::ShuttingDown => out.push(132),
            Response::Error { code, message } => {
                out.push(133);
                out.extend_from_slice(&code.to_le_bytes());
                out.extend_from_slice(message.as_bytes());
            }
        }
        out
    }

    /// Parses one frame payload.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Truncated`], [`ProtoError::BadOpcode`] or
    /// [`ProtoError::BadUtf8`].
    pub fn decode(payload: &[u8]) -> Result<Response, ProtoError> {
        let mut r = Cursor::new(payload);
        let resp = match r.u8()? {
            128 => Response::Opened { sid: r.u64()? },
            129 => {
                let sid = r.u64()?;
                let count = r.u32()? as usize;
                let mut reports = Vec::with_capacity(count.min(1 << 16));
                for _ in 0..count {
                    reports.push((r.u64()?, r.u32()?));
                }
                Response::Reports { sid, reports }
            }
            130 => Response::Closed {
                sid: r.u64()?,
                fed_bytes: r.u64()?,
            },
            131 => Response::MetricsJson(
                String::from_utf8(r.rest().to_vec()).map_err(|_| ProtoError::BadUtf8)?,
            ),
            132 => Response::ShuttingDown,
            133 => Response::Error {
                code: r.u16()?,
                message: String::from_utf8(r.rest().to_vec()).map_err(|_| ProtoError::BadUtf8)?,
            },
            op => return Err(ProtoError::BadOpcode(op)),
        };
        Ok(resp)
    }
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// [`ProtoError::FrameTooLarge`] or [`ProtoError::Io`].
pub fn write_frame(w: &mut dyn Write, payload: &[u8]) -> Result<(), ProtoError> {
    if payload.len() > MAX_FRAME {
        return Err(ProtoError::FrameTooLarge(payload.len()));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame payload.
///
/// # Errors
///
/// [`ProtoError::Closed`] on clean EOF between frames,
/// [`ProtoError::FrameTooLarge`] or [`ProtoError::Io`].
pub fn read_frame(r: &mut dyn Read) -> Result<Vec<u8>, ProtoError> {
    let mut len = [0u8; 4];
    let mut filled = 0;
    while filled < len.len() {
        match r.read(&mut len[filled..])? {
            0 if filled == 0 => return Err(ProtoError::Closed),
            0 => return Err(ProtoError::Truncated),
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(ProtoError::FrameTooLarge(len));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            ProtoError::Truncated
        } else {
            ProtoError::Io(e)
        }
    })?;
    Ok(payload)
}

/// Convenience: encode + frame a request.
///
/// # Errors
///
/// See [`write_frame`].
pub fn send_request(w: &mut dyn Write, req: &Request) -> Result<(), ProtoError> {
    write_frame(w, &req.encode())
}

/// Convenience: read + decode one response frame.
///
/// # Errors
///
/// See [`read_frame`] and [`Response::decode`].
pub fn recv_response(r: &mut dyn Read) -> Result<Response, ProtoError> {
    Response::decode(&read_frame(r)?)
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self.pos.checked_add(n).ok_or(ProtoError::Truncated)?;
        let s = self.buf.get(self.pos..end).ok_or(ProtoError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(
            self.bytes(2)?.try_into().expect("len 2"),
        ))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(
            self.bytes(4)?.try_into().expect("len 4"),
        ))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(
            self.bytes(8)?.try_into().expect("len 8"),
        ))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let cases = vec![
            Request::Open {
                tenant: "snort".into(),
                db: DbRef::ByKey(0xDEAD_BEEF),
                max_edits: 0,
            },
            Request::Open {
                tenant: "".into(),
                db: DbRef::Artifact(vec![1, 2, 3]),
                max_edits: 3,
            },
            Request::Feed {
                sid: 7,
                eod: true,
                data: b"payload".to_vec(),
            },
            Request::Feed {
                sid: u64::MAX,
                eod: false,
                data: Vec::new(),
            },
            Request::Close { sid: 9 },
            Request::Metrics,
            Request::Shutdown,
        ];
        for req in cases {
            let decoded = Request::decode(&req.encode()).expect("decode");
            assert_eq!(decoded, req);
        }
    }

    #[test]
    fn response_round_trips() {
        let cases = vec![
            Response::Opened { sid: 3 },
            Response::Reports {
                sid: 3,
                reports: vec![(0, 1), (u64::MAX, u32::MAX)],
            },
            Response::Reports {
                sid: 4,
                reports: Vec::new(),
            },
            Response::Closed {
                sid: 3,
                fed_bytes: 1 << 40,
            },
            Response::MetricsJson("{\"schema\":\"azoo-serve-metrics-v1\"}".into()),
            Response::ShuttingDown,
            Response::Error {
                code: 2,
                message: "quota".into(),
            },
        ];
        for resp in cases {
            let decoded = Response::decode(&resp.encode()).expect("decode");
            assert_eq!(decoded, resp);
        }
    }

    #[test]
    fn framing_round_trips_over_a_buffer() {
        let mut wire = Vec::new();
        let req = Request::Feed {
            sid: 1,
            eod: false,
            data: b"abc".to_vec(),
        };
        send_request(&mut wire, &req).expect("send");
        let mut reader: &[u8] = &wire;
        let payload = read_frame(&mut reader).expect("frame");
        assert_eq!(Request::decode(&payload).expect("decode"), req);
        // Clean EOF after the frame is a typed Closed, not an Io error.
        assert!(matches!(read_frame(&mut reader), Err(ProtoError::Closed)));
    }

    #[test]
    fn malformed_frames_are_typed() {
        // Truncated length prefix.
        let mut reader: &[u8] = &[1, 0];
        assert!(matches!(
            read_frame(&mut reader),
            Err(ProtoError::Truncated)
        ));
        // Length prefix beyond the cap.
        let huge = ((MAX_FRAME + 1) as u32).to_le_bytes();
        let mut reader: &[u8] = &huge;
        assert!(matches!(
            read_frame(&mut reader),
            Err(ProtoError::FrameTooLarge(_))
        ));
        // Payload shorter than the prefix promises.
        let mut wire = 10u32.to_le_bytes().to_vec();
        wire.extend_from_slice(&[2, 0, 0]);
        let mut reader: &[u8] = &wire;
        assert!(matches!(
            read_frame(&mut reader),
            Err(ProtoError::Truncated)
        ));
        // Unknown opcode.
        assert!(matches!(
            Request::decode(&[99]),
            Err(ProtoError::BadOpcode(99))
        ));
        // Body truncated mid-field.
        assert!(matches!(
            Request::decode(&[3, 1, 2]),
            Err(ProtoError::Truncated)
        ));
        // OPEN missing its trailing max_edits byte.
        let open = Request::Open {
            tenant: "t".into(),
            db: DbRef::ByKey(1),
            max_edits: 2,
        }
        .encode();
        assert!(matches!(
            Request::decode(&open[..open.len() - 1]),
            Err(ProtoError::Truncated)
        ));
        // Non-UTF-8 tenant.
        assert!(matches!(
            Request::decode(&[1, 2, 0, 0xFF, 0xFE, 0, 0, 0, 0, 0, 0, 0, 0, 0]),
            Err(ProtoError::BadUtf8)
        ));
    }

    #[test]
    fn error_codes_are_stable() {
        assert_eq!(error_code(&ServeError::Overloaded { resource: "bytes" }), 1);
        assert_eq!(
            error_code(&ServeError::QuotaExceeded {
                tenant: "t".into(),
                resource: "bytes",
            }),
            2
        );
        assert_eq!(error_code(&ServeError::TimedOut), 3);
        assert_eq!(error_code(&ServeError::UnknownSession(1)), 4);
        assert_eq!(error_code(&ServeError::StreamFinished(1)), 5);
        assert_eq!(error_code(&ServeError::Cancelled(1)), 6);
    }
}

//! Blocking socket server over [`ScanService`].
//!
//! One acceptor loop (non-blocking accept + shutdown flag) and one
//! thread per connection. Each connection speaks the framed protocol
//! from [`crate::proto`], owns the sessions it opened — they are
//! auto-closed when the peer disconnects, so a crashed client never
//! leaks quota — and drains reports back to the client after every
//! feed. Ownership is enforced, not just tracked: `FEED`/`CLOSE` for a
//! sid this connection did not open is answered with `UnknownSession`,
//! so one tenant can never feed, drain or close another's stream.
//!
//! `SHUTDOWN` flips a shared flag: the acceptor stops, `run` returns,
//! and the hosting binary prints the final metrics snapshot. The
//! container environment has no signal-handling crate, so the frame is
//! the graceful-exit path a signal handler would normally provide;
//! connections still open at shutdown are detached, not drained.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::os::unix::net::UnixListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::proto::{error_code, read_frame, write_frame, DbRef, Request, Response};
use crate::service::{ScanService, ServeError};

/// Transport the server listens on.
pub enum Listener {
    /// TCP, e.g. `127.0.0.1:7700`.
    Tcp(TcpListener),
    /// Unix domain socket.
    Unix(UnixListener),
}

trait Conn: Read + Write + Send {}
impl<T: Read + Write + Send> Conn for T {}

impl Listener {
    /// Binds a TCP listener.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind_tcp(addr: &str) -> std::io::Result<Listener> {
        Ok(Listener::Tcp(TcpListener::bind(addr)?))
    }

    /// Binds a Unix-socket listener, replacing a stale socket file.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind_unix(path: &std::path::Path) -> std::io::Result<Listener> {
        let _ = std::fs::remove_file(path);
        Ok(Listener::Unix(UnixListener::bind(path)?))
    }

    /// The bound TCP address, if this is a TCP listener.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        match self {
            Listener::Tcp(l) => l.local_addr().ok(),
            Listener::Unix(_) => None,
        }
    }

    fn set_nonblocking(&self, nb: bool) -> std::io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nb),
            Listener::Unix(l) => l.set_nonblocking(nb),
        }
    }

    fn accept(&self) -> std::io::Result<Option<Box<dyn Conn>>> {
        match self {
            Listener::Tcp(l) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false)?;
                    s.set_nodelay(true)?;
                    Ok(Some(Box::new(s)))
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
            Listener::Unix(l) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false)?;
                    Ok(Some(Box::new(s)))
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
        }
    }
}

/// The socket front-end for one [`ScanService`].
pub struct Server {
    svc: Arc<ScanService>,
    listener: Listener,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Serves `svc` on `listener`.
    pub fn new(svc: Arc<ScanService>, listener: Listener) -> Server {
        Server {
            svc,
            listener,
            shutdown: Arc::new(AtomicBool::new(false)),
        }
    }

    /// A flag that, once set, stops the accept loop (the `SHUTDOWN`
    /// frame sets it too).
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        self.shutdown.clone()
    }

    /// The bound TCP address, if listening on TCP.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts and serves connections until the shutdown flag is set.
    ///
    /// Accept failures (e.g. fd exhaustion under a connection flood)
    /// shed that one connection attempt — logged, brief pause, keep
    /// accepting — they never take the server down.
    ///
    /// # Errors
    ///
    /// Propagates the initial listener setup failure only.
    pub fn run(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        while !self.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok(Some(conn)) => {
                    let svc = self.svc.clone();
                    let shutdown = self.shutdown.clone();
                    // Detached: a connection still open at shutdown is
                    // abandoned, not drained (see the module docs).
                    std::thread::spawn(move || serve_connection(&svc, conn, &shutdown));
                }
                Ok(None) => std::thread::sleep(Duration::from_millis(2)),
                Err(e) => {
                    eprintln!("azoo-serve: accept failed, shedding connection: {e}");
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
        Ok(())
    }
}

fn serve_connection(svc: &ScanService, mut conn: Box<dyn Conn>, shutdown: &AtomicBool) {
    // Sessions this connection opened; auto-closed on disconnect.
    let mut owned: Vec<u64> = Vec::new();
    while let Ok(payload) = read_frame(&mut *conn) {
        let req = match Request::decode(&payload) {
            Ok(r) => r,
            Err(e) => {
                // Framing is intact, the body is not: report and keep
                // the connection.
                let resp = Response::Error {
                    code: 0,
                    message: e.to_string(),
                };
                if write_frame(&mut *conn, &resp.encode()).is_err() {
                    break;
                }
                continue;
            }
        };
        let mut stop = false;
        let responses = handle(svc, req, &mut owned, &mut stop, shutdown);
        for resp in responses {
            if write_frame(&mut *conn, &resp.encode()).is_err() {
                stop = true;
                break;
            }
        }
        if stop {
            break;
        }
    }
    for sid in owned {
        let _ = svc.close(sid);
    }
}

fn handle(
    svc: &ScanService,
    req: Request,
    owned: &mut Vec<u64>,
    stop: &mut bool,
    shutdown: &AtomicBool,
) -> Vec<Response> {
    match req {
        Request::Open {
            tenant,
            db,
            max_edits,
        } => {
            let resolved = match db {
                DbRef::ByKey(key) => svc
                    .db_by_key(key)
                    .ok_or(ServeError::Db(crate::db::DbError::UnknownKey(key))),
                DbRef::Artifact(bytes) => svc.db_from_artifact(&bytes),
            };
            match resolved
                .and_then(|db| svc.db_at_distance(&db, max_edits))
                .and_then(|db| svc.open(&tenant, &db))
            {
                Ok(sid) => {
                    owned.push(sid);
                    vec![Response::Opened { sid }]
                }
                Err(e) => vec![error_response(&e)],
            }
        }
        Request::Feed { sid, eod, data } => {
            // Ownership check: a sid opened by another connection is
            // *unknown* here, whatever the session map says — otherwise
            // any client could feed, drain or cancel another tenant's
            // stream by guessing sids.
            if !owned.contains(&sid) {
                return vec![error_response(&ServeError::UnknownSession(sid))];
            }
            match svc.feed(sid, &data, eod) {
                Ok(_) => drain_response(svc, sid),
                Err(e) => vec![error_response(&e)],
            }
        }
        Request::Close { sid } => {
            if !owned.contains(&sid) {
                return vec![error_response(&ServeError::UnknownSession(sid))];
            }
            // Final drain first so buffered reports are not lost.
            let mut out = drain_response(svc, sid);
            match svc.close(sid) {
                Ok(stats) => {
                    owned.retain(|&s| s != sid);
                    out.push(Response::Closed {
                        sid,
                        fed_bytes: stats.fed_bytes,
                    });
                }
                Err(e) => out = vec![error_response(&e)],
            }
            out
        }
        Request::Metrics => vec![Response::MetricsJson(svc.metrics().to_json_string())],
        Request::Shutdown => {
            shutdown.store(true, Ordering::SeqCst);
            *stop = true;
            vec![Response::ShuttingDown]
        }
    }
}

fn drain_response(svc: &ScanService, sid: u64) -> Vec<Response> {
    match svc.drain(sid) {
        Ok(reports) => vec![Response::Reports {
            sid,
            reports: reports.iter().map(|r| (r.offset, r.code.0)).collect(),
        }],
        Err(e) => vec![error_response(&e)],
    }
}

fn error_response(e: &ServeError) -> Response {
    Response::Error {
        code: error_code(e),
        message: e.to_string(),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::db::{Db, DbConfig};
    use crate::proto::{recv_response, send_request};
    use crate::service::ServeLimits;
    use azoo_core::{Automaton, StartKind, SymbolClass};
    use std::net::TcpStream;

    fn ab_artifact() -> Vec<u8> {
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::AllInput);
        let t = a.add_ste(SymbolClass::from_byte(b'b'), StartKind::None);
        a.add_edge(s, t);
        a.set_report(t, 7);
        Db::compile(a, DbConfig::default())
            .expect("compile")
            .serialize()
    }

    #[test]
    fn tcp_end_to_end() {
        let svc = ScanService::new(ServeLimits::default());
        let listener = Listener::bind_tcp("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let metrics = svc.metrics().clone();
        let server = Server::new(svc, listener);
        let handle = std::thread::spawn(move || server.run().expect("run"));

        let mut conn = TcpStream::connect(addr).expect("connect");
        send_request(
            &mut conn,
            &Request::Open {
                tenant: "t".into(),
                db: DbRef::Artifact(ab_artifact()),
                max_edits: 0,
            },
        )
        .expect("send");
        let sid = match recv_response(&mut conn).expect("recv") {
            Response::Opened { sid } => sid,
            other => panic!("expected Opened, got {other:?}"),
        };

        send_request(
            &mut conn,
            &Request::Feed {
                sid,
                eod: false,
                data: b"xab".to_vec(),
            },
        )
        .expect("send");
        match recv_response(&mut conn).expect("recv") {
            Response::Reports { reports, .. } => assert_eq!(reports, vec![(2, 7)]),
            other => panic!("expected Reports, got {other:?}"),
        }

        // Feeding an unknown session is a typed error, not a hangup.
        send_request(
            &mut conn,
            &Request::Feed {
                sid: 999,
                eod: false,
                data: b"x".to_vec(),
            },
        )
        .expect("send");
        match recv_response(&mut conn).expect("recv") {
            Response::Error { code, .. } => assert_eq!(code, 4),
            other => panic!("expected Error, got {other:?}"),
        }

        send_request(&mut conn, &Request::Close { sid }).expect("send");
        match recv_response(&mut conn).expect("recv") {
            Response::Reports { reports, .. } => assert!(reports.is_empty()),
            other => panic!("expected final Reports, got {other:?}"),
        }
        match recv_response(&mut conn).expect("recv") {
            Response::Closed { fed_bytes, .. } => assert_eq!(fed_bytes, 3),
            other => panic!("expected Closed, got {other:?}"),
        }

        send_request(&mut conn, &Request::Metrics).expect("send");
        match recv_response(&mut conn).expect("recv") {
            Response::MetricsJson(json) => {
                let parsed = azoo_core::json::parse(&json).expect("valid JSON");
                assert_eq!(parsed.get("feeds_total").and_then(|j| j.as_i64()), Some(1));
            }
            other => panic!("expected MetricsJson, got {other:?}"),
        }

        send_request(&mut conn, &Request::Shutdown).expect("send");
        match recv_response(&mut conn).expect("recv") {
            Response::ShuttingDown => {}
            other => panic!("expected ShuttingDown, got {other:?}"),
        }
        handle.join().expect("server thread");
        assert_eq!(metrics.snapshot().sessions_open, 0);
    }

    #[test]
    fn foreign_sids_are_rejected_across_connections() {
        let svc = ScanService::new(ServeLimits::default());
        let listener = Listener::bind_tcp("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let svc2 = svc.clone();
        let server = Server::new(svc, listener);
        let flag = server.shutdown_flag();
        let handle = std::thread::spawn(move || server.run().expect("run"));

        let mut victim = TcpStream::connect(addr).expect("connect");
        send_request(
            &mut victim,
            &Request::Open {
                tenant: "victim".into(),
                db: DbRef::Artifact(ab_artifact()),
                max_edits: 0,
            },
        )
        .expect("send");
        let sid = match recv_response(&mut victim).expect("recv") {
            Response::Opened { sid } => sid,
            other => panic!("expected Opened, got {other:?}"),
        };

        // A second connection must not be able to feed or close the
        // victim's session, even knowing its sid exactly.
        let mut attacker = TcpStream::connect(addr).expect("connect");
        for req in [
            Request::Feed {
                sid,
                eod: false,
                data: b"ab".to_vec(),
            },
            Request::Close { sid },
        ] {
            send_request(&mut attacker, &req).expect("send");
            match recv_response(&mut attacker).expect("recv") {
                Response::Error { code, .. } => assert_eq!(code, 4, "UnknownSession"),
                other => panic!("expected Error, got {other:?}"),
            }
        }
        assert_eq!(svc2.session_count(), 1, "victim session untouched");

        // The victim's own stream still works and kept its reports.
        send_request(
            &mut victim,
            &Request::Feed {
                sid,
                eod: true,
                data: b"xab".to_vec(),
            },
        )
        .expect("send");
        match recv_response(&mut victim).expect("recv") {
            Response::Reports { reports, .. } => assert_eq!(reports, vec![(2, 7)]),
            other => panic!("expected Reports, got {other:?}"),
        }

        flag.store(true, Ordering::SeqCst);
        drop(victim);
        drop(attacker);
        handle.join().expect("server thread");
    }

    #[test]
    fn disconnect_auto_closes_sessions() {
        let svc = ScanService::new(ServeLimits::default());
        let listener = Listener::bind_tcp("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let svc2 = svc.clone();
        let server = Server::new(svc, listener);
        let flag = server.shutdown_flag();
        let handle = std::thread::spawn(move || server.run().expect("run"));

        {
            let mut conn = TcpStream::connect(addr).expect("connect");
            send_request(
                &mut conn,
                &Request::Open {
                    tenant: "t".into(),
                    db: DbRef::Artifact(ab_artifact()),
                    max_edits: 0,
                },
            )
            .expect("send");
            assert!(matches!(
                recv_response(&mut conn).expect("recv"),
                Response::Opened { .. }
            ));
            assert_eq!(svc2.session_count(), 1);
        } // dropped: connection closes without CLOSE

        // The handler notices EOF and releases the session.
        for _ in 0..500 {
            if svc2.session_count() == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(svc2.session_count(), 0, "disconnect must close sessions");
        flag.store(true, Ordering::SeqCst);
        handle.join().expect("server thread");
    }
}

//! The multi-tenant scan service: session pool + admission control.
//!
//! # Session lifecycle
//!
//! ```text
//!            open ──────► Streaming ──feed(eod)──► Finished
//!                             │                        │
//!                       deadline hit                 close
//!                             ▼                        │
//!                         Cancelled ───────close───────┘
//! ```
//!
//! * `open` checks the global and per-tenant session quotas, checks an
//!   executor out of the database's free list and registers the session.
//! * `feed` runs admission control (bytes-in-flight quotas, report
//!   buffer backpressure, deadline), scans the chunk and buffers the
//!   reports; `eod = true` finishes the stream.
//! * `drain` hands the buffered reports to the caller and frees the
//!   buffer (the backpressure release valve).
//! * `close` unregisters the session and returns its executor to the
//!   free list (quiesced via [`SessionEngine`]'s `reset`).
//!
//! # Backpressure policy
//!
//! Admission is fail-fast and typed — a rejected call changes *nothing*
//! except a metrics counter, and never touches another session:
//!
//! | pressure                    | bound                            | rejection            |
//! |-----------------------------|----------------------------------|----------------------|
//! | total open sessions         | `max_sessions`                   | `Overloaded`         |
//! | tenant open sessions        | `max_sessions_per_tenant`        | `QuotaExceeded`      |
//! | total scan bytes in flight  | `max_bytes_in_flight`            | `Overloaded`         |
//! | tenant scan bytes in flight | `max_bytes_in_flight_per_tenant` | `QuotaExceeded`      |
//! | undrained session reports   | `max_buffered_reports`           | `QuotaExceeded`      |
//! | lock wait before a feed     | `feed_deadline`                  | `TimedOut` + cancel  |
//!
//! The deadline is the one non-local policy: a session whose feed waited
//! past the deadline is *cancelled* (its stream cannot be trusted to
//! resume mid-chunk), its executor is recycled, and every later feed
//! gets the deterministic [`ServeError::Cancelled`]. Other sessions are
//! untouched.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use azoo_core::ReportCode;
use azoo_engines::{Report, ReportSink, SessionEngine};
use azoo_sync::{ranks, sched, OrderedMutex};

use crate::db::{Db, DbCache, DbConfig, DbError};
use crate::metrics::MetricsRegistry;

/// Session identifier handed out by [`ScanService::open`].
pub type SessionId = u64;

/// Session-map shards; bounds lock contention with thousands of
/// sessions while keeping lookup O(1).
const SHARDS: usize = 16;

/// Admission-control quotas. `Default` is sized for a test-scale
/// deployment; servers configure explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeLimits {
    /// Open sessions across all tenants.
    pub max_sessions: usize,
    /// Open sessions per tenant.
    pub max_sessions_per_tenant: usize,
    /// Scan bytes admitted but not yet scanned, across all tenants.
    pub max_bytes_in_flight: u64,
    /// Scan bytes in flight per tenant.
    pub max_bytes_in_flight_per_tenant: u64,
    /// Undrained reports a session may buffer before feeds are refused.
    pub max_buffered_reports: usize,
    /// How long a feed may wait for its session before the session is
    /// cancelled; `None` disables the deadline.
    pub feed_deadline: Option<Duration>,
}

impl Default for ServeLimits {
    fn default() -> Self {
        ServeLimits {
            max_sessions: 4096,
            max_sessions_per_tenant: 1024,
            max_bytes_in_flight: 64 << 20,
            max_bytes_in_flight_per_tenant: 16 << 20,
            max_buffered_reports: 1 << 20,
            feed_deadline: None,
        }
    }
}

/// Typed, deterministic service rejections and failures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// A global capacity bound was hit; retry after load drops.
    Overloaded {
        /// Which bound: `"sessions"` or `"bytes"`.
        resource: &'static str,
    },
    /// A per-tenant or per-session bound was hit.
    QuotaExceeded {
        /// The tenant whose quota was exhausted.
        tenant: String,
        /// Which bound: `"sessions"`, `"bytes"` or `"report-buffer"`.
        resource: &'static str,
    },
    /// The feed waited past the deadline; the session is now cancelled.
    TimedOut,
    /// No session with this id is open.
    UnknownSession(SessionId),
    /// The stream already saw `eod`; only `drain` and `close` remain.
    StreamFinished(SessionId),
    /// The session was cancelled by a deadline; only `drain` and
    /// `close` remain.
    Cancelled(SessionId),
    /// Database resolution failed.
    Db(DbError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { resource } => write!(f, "service overloaded ({resource})"),
            ServeError::QuotaExceeded { tenant, resource } => {
                write!(f, "tenant {tenant:?} exceeded its {resource} quota")
            }
            ServeError::TimedOut => write!(f, "feed deadline exceeded; session cancelled"),
            ServeError::UnknownSession(sid) => write!(f, "unknown session {sid}"),
            ServeError::StreamFinished(sid) => write!(f, "session {sid} already saw end-of-data"),
            ServeError::Cancelled(sid) => write!(f, "session {sid} was cancelled"),
            ServeError::Db(e) => write!(f, "database error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Db(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DbError> for ServeError {
    fn from(e: DbError) -> Self {
        ServeError::Db(e)
    }
}

/// Per-tenant admission gauges, shared by all of the tenant's sessions.
#[derive(Default)]
struct TenantState {
    open_sessions: AtomicU64,
    bytes_in_flight: AtomicU64,
}

enum Phase {
    Streaming,
    Finished,
    Cancelled,
}

/// Per-stream state: an executor on loan from the database pool plus
/// the undrained report buffer.
struct SessionInner {
    tenant_name: String,
    tenant: Arc<TenantState>,
    db: Arc<Db>,
    engine: Option<Box<dyn SessionEngine>>,
    reports: Vec<Report>,
    phase: Phase,
    fed_bytes: u64,
    /// Reusable input-map expansion buffer (unused under `Identity`).
    map_buf: Vec<u8>,
}

/// Rank SERVE_SESSION: held across the scan and across engine check-in
/// (→ DB_POOL) and tenant release (→ SERVE_TENANTS) — the only two
/// nested acquisitions in the service.
type SessionHandle = Arc<OrderedMutex<SessionInner>>;

/// Summary returned by [`ScanService::close`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionStats {
    /// Raw client bytes fed over the session's lifetime.
    pub fed_bytes: u64,
    /// Reports left undrained at close (discarded).
    pub undrained_reports: usize,
}

struct VecSink<'a>(&'a mut Vec<Report>);

impl ReportSink for VecSink<'_> {
    fn report(&mut self, offset: u64, code: ReportCode) {
        self.0.push(Report { offset, code });
    }
}

/// The embeddable scan service. See the module docs for lifecycle and
/// backpressure semantics.
pub struct ScanService {
    limits: ServeLimits,
    metrics: Arc<MetricsRegistry>,
    cache: DbCache,
    /// Rank SERVE_SHARD, shared by all 16 shards: no path may hold two
    /// shards at once, and the equal-rank check enforces exactly that.
    shards: Vec<OrderedMutex<HashMap<SessionId, SessionHandle>>>,
    next_sid: AtomicU64,
    /// Key for the sid bijection: sids must be unique like a counter but
    /// not enumerable across connections (defense-in-depth under the
    /// server's per-connection ownership check).
    sid_seed: u64,
    open_sessions: AtomicU64,
    bytes_in_flight: AtomicU64,
    /// Rank SERVE_TENANTS: acquired bare (open path) or while a session
    /// lock is held (close path); acquires nothing itself.
    tenants: OrderedMutex<HashMap<String, Arc<TenantState>>>,
}

impl ScanService {
    /// A service with the given quotas and a fresh metrics registry.
    pub fn new(limits: ServeLimits) -> Arc<ScanService> {
        // No RNG crate in the tree: mix clock nanos with an ASLR-shifted
        // stack address. Weak as a cryptographic seed, but sids only need
        // to be non-enumerable, and the server enforces ownership anyway.
        let clock = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        let stack = std::ptr::addr_of!(limits) as u64;
        Arc::new(ScanService {
            limits,
            metrics: Arc::new(MetricsRegistry::new()),
            cache: DbCache::new(),
            shards: (0..SHARDS)
                .map(|_| OrderedMutex::new(ranks::SERVE_SHARD, HashMap::new()))
                .collect(),
            next_sid: AtomicU64::new(1),
            sid_seed: splitmix64(clock ^ stack.rotate_left(32)),
            open_sessions: AtomicU64::new(0),
            bytes_in_flight: AtomicU64::new(0),
            tenants: OrderedMutex::new(ranks::SERVE_TENANTS, HashMap::new()),
        })
    }

    /// The service's metrics registry.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// The configured quotas.
    pub fn limits(&self) -> &ServeLimits {
        &self.limits
    }

    /// Registers a compiled database in the cache; returns its key.
    pub fn register_db(&self, db: Arc<Db>) -> u64 {
        self.cache.insert(db)
    }

    /// Looks up a cached database by key, counting a hit or miss.
    pub fn db_by_key(&self, key: u64) -> Option<Arc<Db>> {
        let found = self.cache.get(key);
        match &found {
            Some(_) => self.metrics.record_cache_hit(),
            None => self.metrics.record_cache_miss(),
        }
        found
    }

    /// Resolves a serialized artifact through the cache (header-keyed
    /// and byte-fingerprinted; full verify-and-compile whenever the
    /// bytes are not the ones the cached entry was verified against).
    ///
    /// # Errors
    ///
    /// [`ServeError::Db`] for any artifact or compile failure.
    pub fn db_from_artifact(&self, bytes: &[u8]) -> Result<Arc<Db>, ServeError> {
        let (db, hit) = self.cache.get_or_load(bytes)?;
        if hit {
            self.metrics.record_cache_hit();
        } else {
            self.metrics.record_cache_miss();
        }
        Ok(db)
    }

    /// Resolves the per-session edit-distance variant of `db`: with
    /// `max_edits == 0` the base database serves as-is; otherwise its
    /// source machine is fuzzified at that distance (the protocol pins
    /// the Levenshtein cost model) and compiled once, with the derived
    /// database cached so every later open at the same distance shares
    /// one mesh and one engine pool.
    ///
    /// # Errors
    ///
    /// [`ServeError::Db`] when the distance exceeds the encodable
    /// maximum or the base machine cannot be fuzzified (already a mesh,
    /// fan-out, chains shorter than the budget, ...).
    pub fn db_at_distance(&self, db: &Arc<Db>, max_edits: u8) -> Result<Arc<Db>, ServeError> {
        if max_edits == 0 {
            return Ok(db.clone());
        }
        // Keyed off the *base* database: the derived machine's own
        // content hash is unknown until it is built, and rebuilding it
        // just to compute a key would defeat the cache.
        let key = splitmix64(db.cache_key() ^ ((u64::from(max_edits) << 56) | 0xF022));
        if let Some(found) = self.cache.get(key) {
            self.metrics.record_cache_hit();
            return Ok(found);
        }
        self.metrics.record_cache_miss();
        let config = DbConfig {
            max_edits,
            // The base automaton is already post-reduction if the base
            // artifact was; re-running the tier here would make the
            // derived machine depend on load order.
            reduce: false,
            ..db.config()
        };
        let derived = Db::compile(db.automaton().clone(), config)?;
        self.cache.insert_under(key, derived.clone());
        Ok(derived)
    }

    /// Opens a session for `tenant` over `db`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] at the global session cap,
    /// [`ServeError::QuotaExceeded`] at the tenant's.
    pub fn open(&self, tenant: &str, db: &Arc<Db>) -> Result<SessionId, ServeError> {
        // Global gauge first: reserve, verify, roll back on failure.
        let now = self.open_sessions.fetch_add(1, Ordering::SeqCst) + 1;
        if now as usize > self.limits.max_sessions {
            sched::point("open:rollback");
            self.open_sessions.fetch_sub(1, Ordering::SeqCst);
            self.metrics.record_rejected_open();
            return Err(ServeError::Overloaded {
                resource: "sessions",
            });
        }
        sched::point("open:reserved");
        let tstate = match self.tenant_acquire(tenant) {
            Ok(t) => t,
            Err(e) => {
                sched::point("open:rollback");
                self.open_sessions.fetch_sub(1, Ordering::SeqCst);
                self.metrics.record_rejected_open();
                return Err(e);
            }
        };

        let mut engine = db.checkout();
        engine.reset_stream();
        // A keyed bijection over the counter: as collision-free as the
        // counter itself, but sids are not guessable from one another.
        let sid = splitmix64(self.next_sid.fetch_add(1, Ordering::Relaxed) ^ self.sid_seed);
        let inner = Arc::new(OrderedMutex::new(
            ranks::SERVE_SESSION,
            SessionInner {
                tenant_name: tenant.into(),
                tenant: tstate,
                db: db.clone(),
                engine: Some(engine),
                reports: Vec::new(),
                phase: Phase::Streaming,
                fed_bytes: 0,
                map_buf: Vec::new(),
            },
        ));
        self.shards[shard_of(sid)].lock().insert(sid, inner);
        self.metrics.record_session_open();
        Ok(sid)
    }

    /// Feeds one chunk into a session; `eod` finishes the stream (an
    /// empty `eod` chunk is the explicit end-of-data marker). Returns
    /// the number of reports this feed appended to the session buffer.
    ///
    /// # Errors
    ///
    /// Any [`ServeError`]; rejections leave the session untouched
    /// except [`ServeError::TimedOut`], which cancels it.
    pub fn feed(&self, sid: SessionId, chunk: &[u8], eod: bool) -> Result<usize, ServeError> {
        let len = chunk.len() as u64;
        // Global bytes-in-flight: reserve, verify, roll back.
        let now = self.bytes_in_flight.fetch_add(len, Ordering::SeqCst) + len;
        if now > self.limits.max_bytes_in_flight {
            self.bytes_in_flight.fetch_sub(len, Ordering::SeqCst);
            self.metrics.record_rejected_feed();
            return Err(ServeError::Overloaded { resource: "bytes" });
        }
        let release_global = || {
            self.bytes_in_flight.fetch_sub(len, Ordering::SeqCst);
        };
        sched::point("feed:reserved");

        let handle = match self.session(sid) {
            Some(h) => h,
            None => {
                release_global();
                return Err(ServeError::UnknownSession(sid));
            }
        };
        sched::point("feed:lock");

        let wait_start = Instant::now();
        let mut inner = handle.lock();
        match inner.phase {
            Phase::Streaming => {}
            Phase::Finished => {
                release_global();
                return Err(ServeError::StreamFinished(sid));
            }
            Phase::Cancelled => {
                release_global();
                return Err(ServeError::Cancelled(sid));
            }
        }
        if let Some(deadline) = self.limits.feed_deadline {
            if wait_start.elapsed() > deadline {
                // The caller's feed window is gone; the stream cannot be
                // trusted to resume, so cancel deterministically. The
                // executor goes back to the pool quiesced.
                inner.phase = Phase::Cancelled;
                if let Some(engine) = inner.engine.take() {
                    inner.db.checkin(engine);
                }
                release_global();
                self.metrics.record_timeout();
                return Err(ServeError::TimedOut);
            }
        }
        // Tenant bytes-in-flight quota.
        let tnow = inner
            .tenant
            .bytes_in_flight
            .fetch_add(len, Ordering::SeqCst)
            + len;
        if tnow > self.limits.max_bytes_in_flight_per_tenant {
            inner
                .tenant
                .bytes_in_flight
                .fetch_sub(len, Ordering::SeqCst);
            release_global();
            self.metrics.record_rejected_feed();
            return Err(ServeError::QuotaExceeded {
                tenant: inner.tenant_name.clone(),
                resource: "bytes",
            });
        }
        let release_tenant = |inner: &SessionInner| {
            inner
                .tenant
                .bytes_in_flight
                .fetch_sub(len, Ordering::SeqCst);
        };
        // Report-buffer backpressure: refuse new work until drained.
        if inner.reports.len() >= self.limits.max_buffered_reports {
            release_tenant(&inner);
            release_global();
            self.metrics.record_rejected_feed();
            return Err(ServeError::QuotaExceeded {
                tenant: inner.tenant_name.clone(),
                resource: "report-buffer",
            });
        }

        // Admitted: expand through the input map and scan.
        let inner = &mut *inner;
        let map = inner.db.config().input_map;
        let bytes: &[u8] = if matches!(map, azoo_passes::InputMap::Identity) {
            chunk
        } else {
            inner.map_buf.clear();
            inner.map_buf.extend_from_slice(&map.post_input(chunk));
            &inner.map_buf
        };
        let before = inner.reports.len();
        let t0 = Instant::now();
        let Some(engine) = inner.engine.as_mut() else {
            // Terminal phases are caught above and every path that takes
            // the engine sets one first, so this cannot happen — but a
            // panic here would leak the in-flight gauges and the caller's
            // session quota, so degrade to the typed error instead.
            release_tenant(inner);
            release_global();
            return Err(ServeError::Cancelled(sid));
        };
        engine.feed(bytes, eod, &mut VecSink(&mut inner.reports));
        let nanos = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let emitted = inner.reports.len() - before;
        inner.fed_bytes += len;
        if eod {
            inner.phase = Phase::Finished;
        }
        inner
            .tenant
            .bytes_in_flight
            .fetch_sub(len, Ordering::SeqCst);
        release_global();
        self.metrics.record_feed(len, emitted as u64, nanos);
        Ok(emitted)
    }

    /// Drains the session's buffered reports (in emission order),
    /// releasing report-buffer backpressure.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`].
    pub fn drain(&self, sid: SessionId) -> Result<Vec<Report>, ServeError> {
        let handle = self.session(sid).ok_or(ServeError::UnknownSession(sid))?;
        let mut inner = handle.lock();
        Ok(std::mem::take(&mut inner.reports))
    }

    /// Closes a session, returning its executor to the database pool.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`].
    pub fn close(&self, sid: SessionId) -> Result<SessionStats, ServeError> {
        sched::point("close:remove");
        let handle = self.shards[shard_of(sid)]
            .lock()
            .remove(&sid)
            .ok_or(ServeError::UnknownSession(sid))?;
        sched::point("close:lock");
        let mut inner = handle.lock();
        // A feed that cloned the handle before the map removal is waiting
        // on this lock: it must see a terminal phase, not a Streaming
        // session with its engine missing.
        inner.phase = Phase::Finished;
        if let Some(engine) = inner.engine.take() {
            inner.db.checkin(engine);
        }
        self.tenant_release(&inner.tenant_name);
        self.open_sessions.fetch_sub(1, Ordering::SeqCst);
        self.metrics.record_session_close();
        Ok(SessionStats {
            fed_bytes: inner.fed_bytes,
            undrained_reports: inner.reports.len(),
        })
    }

    /// Sessions currently open.
    pub fn session_count(&self) -> usize {
        self.open_sessions.load(Ordering::SeqCst) as usize
    }

    /// Scan bytes currently admitted but not yet scanned (0 when idle —
    /// the overload test asserts rejections leak nothing).
    pub fn bytes_in_flight(&self) -> u64 {
        self.bytes_in_flight.load(Ordering::SeqCst)
    }

    /// Tenants with admission state right now (0 when idle — tenant
    /// names are attacker-chosen, so the map must not outlive the
    /// sessions that justify its entries).
    pub fn tenant_count(&self) -> usize {
        self.tenants.lock().len()
    }

    /// Registers one more open session for `tenant`, creating its state
    /// on first use. Session-count mutations happen only under the
    /// tenants lock so [`Self::tenant_release`] can drop a tenant's
    /// entry exactly when its last session closes.
    fn tenant_acquire(&self, tenant: &str) -> Result<Arc<TenantState>, ServeError> {
        let mut tenants = self.tenants.lock();
        let state = tenants.entry(tenant.to_string()).or_default().clone();
        let tnow = state.open_sessions.fetch_add(1, Ordering::SeqCst) + 1;
        if tnow as usize > self.limits.max_sessions_per_tenant {
            state.open_sessions.fetch_sub(1, Ordering::SeqCst);
            if state.open_sessions.load(Ordering::SeqCst) == 0 {
                tenants.remove(tenant);
            }
            return Err(ServeError::QuotaExceeded {
                tenant: tenant.into(),
                resource: "sessions",
            });
        }
        Ok(state)
    }

    /// Releases one open session for `tenant`, dropping its admission
    /// state when the count returns to zero so attacker-chosen tenant
    /// names cannot grow the map without bound.
    fn tenant_release(&self, tenant: &str) {
        let mut tenants = self.tenants.lock();
        if let Some(state) = tenants.get(tenant) {
            if state.open_sessions.fetch_sub(1, Ordering::SeqCst) == 1 {
                tenants.remove(tenant);
            }
        }
    }

    fn session(&self, sid: SessionId) -> Option<SessionHandle> {
        self.shards[shard_of(sid)].lock().get(&sid).cloned()
    }
}

/// The splitmix64 finalizer: a bijection on `u64`, used to key sids.
fn splitmix64(seed: u64) -> u64 {
    let mut x = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn shard_of(sid: SessionId) -> usize {
    (sid as usize) % SHARDS
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::db::DbConfig;
    use azoo_core::{Automaton, StartKind, SymbolClass};

    fn ab_db() -> Arc<Db> {
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::AllInput);
        let t = a.add_ste(SymbolClass::from_byte(b'b'), StartKind::None);
        a.add_edge(s, t);
        a.set_report(t, 42);
        Db::compile(a, DbConfig::default()).expect("compile")
    }

    #[test]
    fn open_feed_drain_close() {
        let svc = ScanService::new(ServeLimits::default());
        let db = ab_db();
        let sid = svc.open("t1", &db).expect("open");
        assert_eq!(svc.feed(sid, b"xabxab", false).expect("feed"), 2);
        assert_eq!(svc.feed(sid, b"", true).expect("eod"), 0);
        let reports = svc.drain(sid).expect("drain");
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].offset, 2);
        assert_eq!(reports[1].offset, 5);
        let stats = svc.close(sid).expect("close");
        assert_eq!(stats.fed_bytes, 6);
        assert_eq!(stats.undrained_reports, 0);
        assert_eq!(svc.session_count(), 0);
        assert_eq!(svc.bytes_in_flight(), 0);
        assert_eq!(db.pooled(), 1, "executor returned to the free list");
    }

    #[test]
    fn feed_after_eod_is_typed() {
        let svc = ScanService::new(ServeLimits::default());
        let db = ab_db();
        let sid = svc.open("t1", &db).expect("open");
        svc.feed(sid, b"ab", true).expect("feed");
        assert_eq!(
            svc.feed(sid, b"ab", false),
            Err(ServeError::StreamFinished(sid))
        );
        // Drain and close still work.
        assert_eq!(svc.drain(sid).expect("drain").len(), 1);
        svc.close(sid).expect("close");
    }

    #[test]
    fn unknown_session_is_typed() {
        let svc = ScanService::new(ServeLimits::default());
        assert_eq!(
            svc.feed(99, b"x", false),
            Err(ServeError::UnknownSession(99))
        );
        assert_eq!(svc.drain(99).unwrap_err(), ServeError::UnknownSession(99));
        assert_eq!(svc.close(99).unwrap_err(), ServeError::UnknownSession(99));
        assert_eq!(svc.bytes_in_flight(), 0);
    }

    #[test]
    fn tenant_state_is_dropped_with_its_last_session() {
        let svc = ScanService::new(ServeLimits::default());
        let db = ab_db();
        // Attacker-style: every open uses a fresh tenant name.
        for i in 0..64 {
            let sid = svc.open(&format!("tenant-{i}"), &db).expect("open");
            svc.close(sid).expect("close");
        }
        assert_eq!(
            svc.tenant_count(),
            0,
            "idle service must hold no tenant state"
        );
        // Two sessions, one tenant: the entry lives until the *last* close.
        let s1 = svc.open("t", &db).expect("open");
        let s2 = svc.open("t", &db).expect("open");
        assert_eq!(svc.tenant_count(), 1);
        svc.close(s1).expect("close");
        assert_eq!(svc.tenant_count(), 1);
        svc.close(s2).expect("close");
        assert_eq!(svc.tenant_count(), 0);
        // A rejected open of a brand-new tenant must not leave an entry.
        let limits = ServeLimits {
            max_sessions_per_tenant: 0,
            ..ServeLimits::default()
        };
        let svc = ScanService::new(limits);
        assert!(matches!(
            svc.open("fresh", &db),
            Err(ServeError::QuotaExceeded { .. })
        ));
        assert_eq!(svc.tenant_count(), 0);
    }

    #[test]
    fn concurrent_close_and_feed_leak_nothing() {
        // The close/feed race: a feed that grabbed the session handle
        // right before close removed it must get a typed error, never
        // panic, and must release every in-flight gauge.
        let svc = ScanService::new(ServeLimits::default());
        let db = ab_db();
        for _ in 0..200 {
            let sid = svc.open("t", &db).expect("open");
            let svc2 = svc.clone();
            let feeder = std::thread::spawn(move || match svc2.feed(sid, b"xabxab", false) {
                Ok(_) | Err(ServeError::UnknownSession(_)) | Err(ServeError::StreamFinished(_)) => {
                }
                Err(other) => panic!("unexpected feed error: {other:?}"),
            });
            svc.close(sid).expect("close");
            feeder.join().expect("feeder thread must not panic");
        }
        assert_eq!(svc.session_count(), 0);
        assert_eq!(svc.bytes_in_flight(), 0);
        assert_eq!(svc.tenant_count(), 0);
    }

    #[test]
    fn sessions_share_one_pool() {
        let svc = ScanService::new(ServeLimits::default());
        let db = ab_db();
        let s1 = svc.open("t1", &db).expect("open");
        let s2 = svc.open("t2", &db).expect("open");
        svc.feed(s1, b"ab", true).expect("feed");
        svc.feed(s2, b"xxab", true).expect("feed");
        assert_eq!(svc.drain(s1).expect("drain")[0].offset, 1);
        assert_eq!(svc.drain(s2).expect("drain")[0].offset, 3);
        svc.close(s1).expect("close");
        svc.close(s2).expect("close");
        assert_eq!(db.pooled(), 2);
        // Reopening reuses a pooled executor rather than cloning.
        let s3 = svc.open("t1", &db).expect("open");
        assert_eq!(db.pooled(), 1);
        svc.close(s3).expect("close");
    }
}

//! Lock-cheap service metrics.
//!
//! Every counter is a relaxed atomic: the hot path (one `feed`) performs
//! a handful of `fetch_add`s and one histogram-bucket increment, no
//! locks, no allocation. Latencies land in 64 power-of-two nanosecond
//! buckets; quantiles are read back by locating the bucket containing
//! the requested rank and interpolating linearly within it, alongside
//! an honestly-named `*_upper_bound` field carrying the raw bucket
//! edge (the guaranteed ceiling) — the right fidelity for an overload
//! dashboard, at the cost of three words per recorded feed.
//!
//! [`MetricsRegistry::to_json`] exports the registry in a stable schema
//! (`azoo-serve-metrics-v1`) shared by the server binary, `azoo-loadgen`
//! and the `--metrics-json` flag on the single-shot harness bins, so one
//! set of tooling reads them all.

use std::sync::atomic::{AtomicU64, Ordering};

use azoo_core::json::Json;

const BUCKETS: usize = 64;

/// Schema identifier embedded in every export.
pub const METRICS_SCHEMA: &str = "azoo-serve-metrics-v1";

/// Atomic counters for one service (or one harness run).
pub struct MetricsRegistry {
    bytes_scanned: AtomicU64,
    reports_emitted: AtomicU64,
    feeds_total: AtomicU64,
    rejected_feeds: AtomicU64,
    timed_out_feeds: AtomicU64,
    rejected_opens: AtomicU64,
    sessions_opened: AtomicU64,
    sessions_closed: AtomicU64,
    sessions_open: AtomicU64,
    sessions_peak: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    /// `latency[i]` counts feeds taking `[2^i, 2^{i+1})` ns.
    latency: [AtomicU64; BUCKETS],
}

/// A point-in-time copy of every counter, with derived quantiles.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Input bytes scanned by successful feeds.
    pub bytes_scanned: u64,
    /// Reports emitted into session buffers.
    pub reports_emitted: u64,
    /// Feeds accepted (admission passed and the scan ran).
    pub feeds_total: u64,
    /// Feeds rejected by admission control (quota or overload).
    pub rejected_feeds: u64,
    /// Feeds cancelled by the deadline.
    pub timed_out_feeds: u64,
    /// Session opens rejected by admission control.
    pub rejected_opens: u64,
    /// Sessions ever opened.
    pub sessions_opened: u64,
    /// Sessions closed.
    pub sessions_closed: u64,
    /// Sessions open right now.
    pub sessions_open: u64,
    /// High-water mark of concurrently open sessions.
    pub sessions_peak: u64,
    /// Database cache hits.
    pub cache_hits: u64,
    /// Database cache misses.
    pub cache_misses: u64,
    /// Feeds recorded in the latency histogram.
    pub latency_count: u64,
    /// Median per-feed latency, microseconds, interpolated linearly
    /// within the power-of-two bucket holding the rank.
    pub p50_us: f64,
    /// Upper bound of the bucket holding the median rank, microseconds
    /// — the guaranteed ceiling on the true p50.
    pub p50_us_upper_bound: f64,
    /// 99th-percentile per-feed latency, microseconds, interpolated.
    pub p99_us: f64,
    /// Upper bound of the bucket holding the p99 rank, microseconds —
    /// the guaranteed ceiling on the true p99.
    pub p99_us_upper_bound: f64,
    /// Largest recorded latency bucket upper bound, microseconds.
    pub max_us: f64,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry {
            bytes_scanned: AtomicU64::new(0),
            reports_emitted: AtomicU64::new(0),
            feeds_total: AtomicU64::new(0),
            rejected_feeds: AtomicU64::new(0),
            timed_out_feeds: AtomicU64::new(0),
            rejected_opens: AtomicU64::new(0),
            sessions_opened: AtomicU64::new(0),
            sessions_closed: AtomicU64::new(0),
            sessions_open: AtomicU64::new(0),
            sessions_peak: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            latency: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl MetricsRegistry {
    /// A zeroed registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one accepted feed: `bytes` scanned, `reports` emitted,
    /// `nanos` spent in the engine.
    pub fn record_feed(&self, bytes: u64, reports: u64, nanos: u64) {
        self.feeds_total.fetch_add(1, Ordering::Relaxed);
        self.bytes_scanned.fetch_add(bytes, Ordering::Relaxed);
        self.reports_emitted.fetch_add(reports, Ordering::Relaxed);
        let bucket = (63 - nanos.max(1).leading_zeros()) as usize;
        self.latency[bucket.min(BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a feed rejected by admission control.
    pub fn record_rejected_feed(&self) {
        self.rejected_feeds.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a feed cancelled by its deadline.
    pub fn record_timeout(&self) {
        self.timed_out_feeds.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a session open rejected by admission control.
    pub fn record_rejected_open(&self) {
        self.rejected_opens.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a session opening, maintaining the open gauge and peak.
    pub fn record_session_open(&self) {
        self.sessions_opened.fetch_add(1, Ordering::Relaxed);
        let now = self.sessions_open.fetch_add(1, Ordering::Relaxed) + 1;
        self.sessions_peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Records a session closing.
    pub fn record_session_close(&self) {
        self.sessions_closed.fetch_add(1, Ordering::Relaxed);
        self.sessions_open.fetch_sub(1, Ordering::Relaxed);
    }

    /// Records a database cache hit.
    pub fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a database cache miss.
    pub fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies every counter and derives the latency quantiles.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let buckets: Vec<u64> = self
            .latency
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = buckets.iter().sum();
        let p50 = quantile_us(&buckets, count, 0.50);
        let p99 = quantile_us(&buckets, count, 0.99);
        MetricsSnapshot {
            bytes_scanned: self.bytes_scanned.load(Ordering::Relaxed),
            reports_emitted: self.reports_emitted.load(Ordering::Relaxed),
            feeds_total: self.feeds_total.load(Ordering::Relaxed),
            rejected_feeds: self.rejected_feeds.load(Ordering::Relaxed),
            timed_out_feeds: self.timed_out_feeds.load(Ordering::Relaxed),
            rejected_opens: self.rejected_opens.load(Ordering::Relaxed),
            sessions_opened: self.sessions_opened.load(Ordering::Relaxed),
            sessions_closed: self.sessions_closed.load(Ordering::Relaxed),
            sessions_open: self.sessions_open.load(Ordering::Relaxed),
            sessions_peak: self.sessions_peak.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            latency_count: count,
            p50_us: p50.estimate_us,
            p50_us_upper_bound: p50.upper_bound_us,
            p99_us: p99.estimate_us,
            p99_us_upper_bound: p99.upper_bound_us,
            max_us: max_us(&buckets),
        }
    }

    /// Exports the registry as a [`Json`] object in the
    /// [`METRICS_SCHEMA`] layout.
    pub fn to_json(&self) -> Json {
        self.snapshot().to_json()
    }

    /// Pretty-printed [`MetricsRegistry::to_json`].
    pub fn to_json_string(&self) -> String {
        self.to_json().pretty()
    }
}

impl MetricsSnapshot {
    /// Exports the snapshot as a [`Json`] object.
    pub fn to_json(&self) -> Json {
        let int = |v: u64| Json::Int(v as i64);
        Json::Obj(vec![
            ("schema".into(), Json::Str(METRICS_SCHEMA.into())),
            ("bytes_scanned".into(), int(self.bytes_scanned)),
            ("reports_emitted".into(), int(self.reports_emitted)),
            ("feeds_total".into(), int(self.feeds_total)),
            ("rejected_feeds".into(), int(self.rejected_feeds)),
            ("timed_out_feeds".into(), int(self.timed_out_feeds)),
            ("rejected_opens".into(), int(self.rejected_opens)),
            ("sessions_opened".into(), int(self.sessions_opened)),
            ("sessions_closed".into(), int(self.sessions_closed)),
            ("sessions_open".into(), int(self.sessions_open)),
            ("sessions_peak".into(), int(self.sessions_peak)),
            ("cache_hits".into(), int(self.cache_hits)),
            ("cache_misses".into(), int(self.cache_misses)),
            (
                "feed_latency_us".into(),
                Json::Obj(vec![
                    ("count".into(), int(self.latency_count)),
                    ("p50".into(), Json::Float(self.p50_us)),
                    (
                        "p50_upper_bound".into(),
                        Json::Float(self.p50_us_upper_bound),
                    ),
                    ("p99".into(), Json::Float(self.p99_us)),
                    (
                        "p99_upper_bound".into(),
                        Json::Float(self.p99_us_upper_bound),
                    ),
                    ("max".into(), Json::Float(self.max_us)),
                ]),
            ),
        ])
    }
}

/// A quantile read out of the power-of-two histogram: a linearly
/// interpolated point estimate plus the raw bucket edge it cannot
/// exceed. The histogram only knows which bucket each sample landed
/// in, so the estimate assumes samples spread uniformly within the
/// bucket; the upper bound is the only *guaranteed* statement.
struct Quantile {
    estimate_us: f64,
    upper_bound_us: f64,
}

/// Locates the bucket holding the `q`-quantile rank and interpolates
/// within it: rank r of the `b` samples in bucket i (with `before`
/// samples below) sits at `lower + (r - before) / b` of the bucket's
/// `[2^i, 2^{i+1})` ns span.
fn quantile_us(buckets: &[u64], count: u64, q: f64) -> Quantile {
    if count == 0 {
        return Quantile {
            estimate_us: 0.0,
            upper_bound_us: 0.0,
        };
    }
    let rank = ((count as f64 * q).ceil() as u64).clamp(1, count);
    let mut seen = 0u64;
    for (i, &b) in buckets.iter().enumerate() {
        let before = seen;
        seen += b;
        if seen >= rank {
            let lower = bucket_lower_us(i);
            let upper = bucket_upper_us(i);
            let frac = (rank - before) as f64 / b as f64;
            return Quantile {
                estimate_us: lower + frac * (upper - lower),
                upper_bound_us: upper,
            };
        }
    }
    let last = buckets.len() - 1;
    Quantile {
        estimate_us: bucket_upper_us(last),
        upper_bound_us: bucket_upper_us(last),
    }
}

fn max_us(buckets: &[u64]) -> f64 {
    buckets
        .iter()
        .rposition(|&b| b > 0)
        .map(bucket_upper_us)
        .unwrap_or(0.0)
}

fn bucket_upper_us(bucket: usize) -> f64 {
    // Bucket i covers [2^i, 2^{i+1}) ns.
    (1u128 << (bucket + 1)) as f64 / 1_000.0
}

fn bucket_lower_us(bucket: usize) -> f64 {
    (1u128 << bucket) as f64 / 1_000.0
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn feed_accounting() {
        let m = MetricsRegistry::new();
        m.record_feed(100, 3, 1_500); // bucket 10: (1024, 2048] ns
        m.record_feed(50, 0, 1_500);
        m.record_feed(50, 0, 2_000_000); // ~2 ms
        let s = m.snapshot();
        assert_eq!(s.bytes_scanned, 200);
        assert_eq!(s.reports_emitted, 3);
        assert_eq!(s.feeds_total, 3);
        assert_eq!(s.latency_count, 3);
        assert!(s.p50_us <= 4.1, "p50 {} µs", s.p50_us);
        assert!(s.p99_us >= 1_048.0, "p99 {} µs", s.p99_us);
        assert!(s.max_us >= s.p99_us);
        assert!(s.p50_us <= s.p50_us_upper_bound);
        assert!(s.p99_us <= s.p99_us_upper_bound);
    }

    /// Pins the within-bucket rounding: four samples in bucket 10
    /// ([1.024, 2.048) µs) put the p50 rank (2 of 4) exactly half-way
    /// through the bucket, and p99 (rank 4) at the top. The old code
    /// reported the raw bucket edge (2.048) for *both* — the bug that
    /// made BENCH_serve.json's p99 a power-of-two artifact.
    #[test]
    fn quantiles_interpolate_within_the_bucket() {
        let m = MetricsRegistry::new();
        for _ in 0..4 {
            m.record_feed(1, 0, 1_500); // bucket 10: [1024, 2048) ns
        }
        let s = m.snapshot();
        let lower = 1024.0 / 1_000.0;
        let upper = 2048.0 / 1_000.0;
        // rank 2 of 4 → 2/4 of the way through the bucket.
        assert!((s.p50_us - (lower + 0.5 * (upper - lower))).abs() < 1e-12);
        assert_eq!(s.p50_us_upper_bound, upper);
        // rank 4 of 4 → the bucket's top; the estimate meets the bound.
        assert!((s.p99_us - upper).abs() < 1e-12);
        assert_eq!(s.p99_us_upper_bound, upper);
        assert_eq!(s.max_us, upper);
    }

    /// A mid-bucket rank must report strictly below the bucket edge —
    /// the estimate and the upper bound are different numbers.
    #[test]
    fn mid_bucket_rank_stays_below_the_edge() {
        let m = MetricsRegistry::new();
        for _ in 0..100 {
            m.record_feed(1, 0, 1_500); // bucket 10
        }
        m.record_feed(1, 0, 2_000_000); // bucket 20, the tail
        let s = m.snapshot();
        // p99 rank = 100 of 101 → still inside bucket 10, at 100/100.
        assert!(s.p99_us < s.max_us);
        assert!(s.p99_us <= s.p99_us_upper_bound);
        // p50 rank = 51 of 101 → 51% through bucket 10.
        let lower = 1024.0 / 1_000.0;
        let upper = 2048.0 / 1_000.0;
        assert!((s.p50_us - (lower + 0.51 * (upper - lower))).abs() < 1e-12);
        assert!(s.p50_us < upper, "estimate must not sit on the edge");
    }

    #[test]
    fn session_gauge_and_peak() {
        let m = MetricsRegistry::new();
        m.record_session_open();
        m.record_session_open();
        m.record_session_close();
        m.record_session_open();
        let s = m.snapshot();
        assert_eq!(s.sessions_open, 2);
        assert_eq!(s.sessions_peak, 2);
        assert_eq!(s.sessions_opened, 3);
        assert_eq!(s.sessions_closed, 1);
    }

    #[test]
    fn json_round_trips_through_core_parser() {
        let m = MetricsRegistry::new();
        m.record_feed(10, 1, 100);
        m.record_rejected_feed();
        let text = m.to_json_string();
        let parsed = azoo_core::json::parse(&text).expect("valid JSON");
        assert_eq!(
            parsed.get("schema").and_then(|j| j.as_str()),
            Some(METRICS_SCHEMA)
        );
        assert_eq!(
            parsed.get("rejected_feeds").and_then(|j| j.as_i64()),
            Some(1)
        );
        assert_eq!(
            parsed
                .get("feed_latency_us")
                .and_then(|j| j.get("count"))
                .and_then(|j| j.as_i64()),
            Some(1)
        );
    }

    #[test]
    fn empty_registry_has_zero_quantiles() {
        let s = MetricsRegistry::new().snapshot();
        assert_eq!(s.p50_us, 0.0);
        assert_eq!(s.p99_us, 0.0);
        assert_eq!(s.max_us, 0.0);
    }
}

//! Lock-cheap service metrics.
//!
//! Every counter is a relaxed atomic: the hot path (one `feed`) performs
//! a handful of `fetch_add`s and one histogram-bucket increment, no
//! locks, no allocation. Latencies land in 64 power-of-two nanosecond
//! buckets; quantiles are read back as the upper bound of the bucket
//! containing the requested rank, which is exact to within 2x — the
//! right fidelity for an overload dashboard, at the cost of three words
//! per recorded feed.
//!
//! [`MetricsRegistry::to_json`] exports the registry in a stable schema
//! (`azoo-serve-metrics-v1`) shared by the server binary, `azoo-loadgen`
//! and the `--metrics-json` flag on the single-shot harness bins, so one
//! set of tooling reads them all.

use std::sync::atomic::{AtomicU64, Ordering};

use azoo_core::json::Json;

const BUCKETS: usize = 64;

/// Schema identifier embedded in every export.
pub const METRICS_SCHEMA: &str = "azoo-serve-metrics-v1";

/// Atomic counters for one service (or one harness run).
pub struct MetricsRegistry {
    bytes_scanned: AtomicU64,
    reports_emitted: AtomicU64,
    feeds_total: AtomicU64,
    rejected_feeds: AtomicU64,
    timed_out_feeds: AtomicU64,
    rejected_opens: AtomicU64,
    sessions_opened: AtomicU64,
    sessions_closed: AtomicU64,
    sessions_open: AtomicU64,
    sessions_peak: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    /// `latency[i]` counts feeds taking `[2^i, 2^{i+1})` ns.
    latency: [AtomicU64; BUCKETS],
}

/// A point-in-time copy of every counter, with derived quantiles.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Input bytes scanned by successful feeds.
    pub bytes_scanned: u64,
    /// Reports emitted into session buffers.
    pub reports_emitted: u64,
    /// Feeds accepted (admission passed and the scan ran).
    pub feeds_total: u64,
    /// Feeds rejected by admission control (quota or overload).
    pub rejected_feeds: u64,
    /// Feeds cancelled by the deadline.
    pub timed_out_feeds: u64,
    /// Session opens rejected by admission control.
    pub rejected_opens: u64,
    /// Sessions ever opened.
    pub sessions_opened: u64,
    /// Sessions closed.
    pub sessions_closed: u64,
    /// Sessions open right now.
    pub sessions_open: u64,
    /// High-water mark of concurrently open sessions.
    pub sessions_peak: u64,
    /// Database cache hits.
    pub cache_hits: u64,
    /// Database cache misses.
    pub cache_misses: u64,
    /// Feeds recorded in the latency histogram.
    pub latency_count: u64,
    /// Median per-feed latency, microseconds (bucket upper bound).
    pub p50_us: f64,
    /// 99th-percentile per-feed latency, microseconds.
    pub p99_us: f64,
    /// Largest recorded latency bucket upper bound, microseconds.
    pub max_us: f64,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry {
            bytes_scanned: AtomicU64::new(0),
            reports_emitted: AtomicU64::new(0),
            feeds_total: AtomicU64::new(0),
            rejected_feeds: AtomicU64::new(0),
            timed_out_feeds: AtomicU64::new(0),
            rejected_opens: AtomicU64::new(0),
            sessions_opened: AtomicU64::new(0),
            sessions_closed: AtomicU64::new(0),
            sessions_open: AtomicU64::new(0),
            sessions_peak: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            latency: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl MetricsRegistry {
    /// A zeroed registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one accepted feed: `bytes` scanned, `reports` emitted,
    /// `nanos` spent in the engine.
    pub fn record_feed(&self, bytes: u64, reports: u64, nanos: u64) {
        self.feeds_total.fetch_add(1, Ordering::Relaxed);
        self.bytes_scanned.fetch_add(bytes, Ordering::Relaxed);
        self.reports_emitted.fetch_add(reports, Ordering::Relaxed);
        let bucket = (63 - nanos.max(1).leading_zeros()) as usize;
        self.latency[bucket.min(BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a feed rejected by admission control.
    pub fn record_rejected_feed(&self) {
        self.rejected_feeds.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a feed cancelled by its deadline.
    pub fn record_timeout(&self) {
        self.timed_out_feeds.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a session open rejected by admission control.
    pub fn record_rejected_open(&self) {
        self.rejected_opens.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a session opening, maintaining the open gauge and peak.
    pub fn record_session_open(&self) {
        self.sessions_opened.fetch_add(1, Ordering::Relaxed);
        let now = self.sessions_open.fetch_add(1, Ordering::Relaxed) + 1;
        self.sessions_peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Records a session closing.
    pub fn record_session_close(&self) {
        self.sessions_closed.fetch_add(1, Ordering::Relaxed);
        self.sessions_open.fetch_sub(1, Ordering::Relaxed);
    }

    /// Records a database cache hit.
    pub fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a database cache miss.
    pub fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies every counter and derives the latency quantiles.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let buckets: Vec<u64> = self
            .latency
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = buckets.iter().sum();
        MetricsSnapshot {
            bytes_scanned: self.bytes_scanned.load(Ordering::Relaxed),
            reports_emitted: self.reports_emitted.load(Ordering::Relaxed),
            feeds_total: self.feeds_total.load(Ordering::Relaxed),
            rejected_feeds: self.rejected_feeds.load(Ordering::Relaxed),
            timed_out_feeds: self.timed_out_feeds.load(Ordering::Relaxed),
            rejected_opens: self.rejected_opens.load(Ordering::Relaxed),
            sessions_opened: self.sessions_opened.load(Ordering::Relaxed),
            sessions_closed: self.sessions_closed.load(Ordering::Relaxed),
            sessions_open: self.sessions_open.load(Ordering::Relaxed),
            sessions_peak: self.sessions_peak.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            latency_count: count,
            p50_us: quantile_us(&buckets, count, 0.50),
            p99_us: quantile_us(&buckets, count, 0.99),
            max_us: max_us(&buckets),
        }
    }

    /// Exports the registry as a [`Json`] object in the
    /// [`METRICS_SCHEMA`] layout.
    pub fn to_json(&self) -> Json {
        self.snapshot().to_json()
    }

    /// Pretty-printed [`MetricsRegistry::to_json`].
    pub fn to_json_string(&self) -> String {
        self.to_json().pretty()
    }
}

impl MetricsSnapshot {
    /// Exports the snapshot as a [`Json`] object.
    pub fn to_json(&self) -> Json {
        let int = |v: u64| Json::Int(v as i64);
        Json::Obj(vec![
            ("schema".into(), Json::Str(METRICS_SCHEMA.into())),
            ("bytes_scanned".into(), int(self.bytes_scanned)),
            ("reports_emitted".into(), int(self.reports_emitted)),
            ("feeds_total".into(), int(self.feeds_total)),
            ("rejected_feeds".into(), int(self.rejected_feeds)),
            ("timed_out_feeds".into(), int(self.timed_out_feeds)),
            ("rejected_opens".into(), int(self.rejected_opens)),
            ("sessions_opened".into(), int(self.sessions_opened)),
            ("sessions_closed".into(), int(self.sessions_closed)),
            ("sessions_open".into(), int(self.sessions_open)),
            ("sessions_peak".into(), int(self.sessions_peak)),
            ("cache_hits".into(), int(self.cache_hits)),
            ("cache_misses".into(), int(self.cache_misses)),
            (
                "feed_latency_us".into(),
                Json::Obj(vec![
                    ("count".into(), int(self.latency_count)),
                    ("p50".into(), Json::Float(self.p50_us)),
                    ("p99".into(), Json::Float(self.p99_us)),
                    ("max".into(), Json::Float(self.max_us)),
                ]),
            ),
        ])
    }
}

/// Upper bound (µs) of the bucket holding the `q`-quantile rank.
fn quantile_us(buckets: &[u64], count: u64, q: f64) -> f64 {
    if count == 0 {
        return 0.0;
    }
    let rank = ((count as f64 * q).ceil() as u64).clamp(1, count);
    let mut seen = 0u64;
    for (i, &b) in buckets.iter().enumerate() {
        seen += b;
        if seen >= rank {
            return bucket_upper_us(i);
        }
    }
    bucket_upper_us(buckets.len() - 1)
}

fn max_us(buckets: &[u64]) -> f64 {
    buckets
        .iter()
        .rposition(|&b| b > 0)
        .map(bucket_upper_us)
        .unwrap_or(0.0)
}

fn bucket_upper_us(bucket: usize) -> f64 {
    // Bucket i covers [2^i, 2^{i+1}) ns.
    (1u128 << (bucket + 1)) as f64 / 1_000.0
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn feed_accounting() {
        let m = MetricsRegistry::new();
        m.record_feed(100, 3, 1_500); // bucket 10: (1024, 2048] ns
        m.record_feed(50, 0, 1_500);
        m.record_feed(50, 0, 2_000_000); // ~2 ms
        let s = m.snapshot();
        assert_eq!(s.bytes_scanned, 200);
        assert_eq!(s.reports_emitted, 3);
        assert_eq!(s.feeds_total, 3);
        assert_eq!(s.latency_count, 3);
        assert!(s.p50_us <= 4.1, "p50 {} µs", s.p50_us);
        assert!(s.p99_us >= 2_000.0, "p99 {} µs", s.p99_us);
        assert!(s.max_us >= s.p99_us);
    }

    #[test]
    fn session_gauge_and_peak() {
        let m = MetricsRegistry::new();
        m.record_session_open();
        m.record_session_open();
        m.record_session_close();
        m.record_session_open();
        let s = m.snapshot();
        assert_eq!(s.sessions_open, 2);
        assert_eq!(s.sessions_peak, 2);
        assert_eq!(s.sessions_opened, 3);
        assert_eq!(s.sessions_closed, 1);
    }

    #[test]
    fn json_round_trips_through_core_parser() {
        let m = MetricsRegistry::new();
        m.record_feed(10, 1, 100);
        m.record_rejected_feed();
        let text = m.to_json_string();
        let parsed = azoo_core::json::parse(&text).expect("valid JSON");
        assert_eq!(
            parsed.get("schema").and_then(|j| j.as_str()),
            Some(METRICS_SCHEMA)
        );
        assert_eq!(
            parsed.get("rejected_feeds").and_then(|j| j.as_i64()),
            Some(1)
        );
        assert_eq!(
            parsed
                .get("feed_latency_us")
                .and_then(|j| j.get("count"))
                .and_then(|j| j.as_i64()),
            Some(1)
        );
    }

    #[test]
    fn empty_registry_has_zero_quantiles() {
        let s = MetricsRegistry::new().snapshot();
        assert_eq!(s.p50_us, 0.0);
        assert_eq!(s.p99_us, 0.0);
        assert_eq!(s.max_us, 0.0);
    }
}

//! azoo-serve: a multi-tenant streaming scan service runtime.
//!
//! The AutomataZoo engines answer "how fast does one scan run?"; this
//! crate answers "how do thousands of concurrent scans share one
//! machine?" — the deployment shape of an IDS or AV scanner built on
//! the suite. It stacks four layers, each usable on its own:
//!
//! * **[`db`]** — compiled-database artifacts: a versioned,
//!   content-hash-verified serialization of an automaton plus its
//!   serving configuration, and an in-memory cache that shares one
//!   compiled [`Db`] (and one engine pool) across every session that
//!   opens it.
//! * **[`service`]** — the session layer: [`ScanService`] multiplexes
//!   thin per-stream sessions over shared databases with pooled
//!   executor reuse, bounded per-tenant admission control
//!   ([`ServeLimits`]) and typed, deterministic rejections
//!   ([`ServeError`]).
//! * **[`metrics`]** — a lock-cheap atomic [`MetricsRegistry`]
//!   (throughput, sessions, cache, rejection counters, per-feed latency
//!   histogram) exported as stable-schema JSON.
//! * **[`proto`]**/**[`server`]** — a length-prefixed framed protocol
//!   and a blocking TCP/Unix-socket [`Server`] front-end; the
//!   `azoo-serve` and `azoo-loadgen` harness binaries are thin shells
//!   over these.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod db;
pub mod metrics;
pub mod proto;
pub mod server;
pub mod service;

pub use db::{Db, DbCache, DbConfig, DbError, DB_FORMAT_VERSION};
pub use metrics::{MetricsRegistry, MetricsSnapshot, METRICS_SCHEMA};
pub use proto::{DbRef, ProtoError, Request, Response, MAX_FRAME};
pub use server::{Listener, Server};
pub use service::{ScanService, ServeError, ServeLimits, SessionId, SessionStats};

//! Report-stream analytics: per-rule report counts, rates, and outlier
//! identification — the measurements behind the paper's Section V
//! (reporting-rate) methodology and its output-bottleneck discussion.

use azoo_core::ReportCode;

use crate::sink::Report;

/// Aggregate statistics over a report stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReportStats {
    total: u64,
    symbols: u64,
    per_code: std::collections::HashMap<u32, u64>,
    reporting_symbols: u64,
    engine_tier: Option<String>,
    tier_reason: Option<String>,
}

impl ReportStats {
    /// Computes statistics for `reports` gathered over `symbols` input
    /// symbols.
    pub fn compute(reports: &[Report], symbols: u64) -> ReportStats {
        let mut per_code = std::collections::HashMap::new();
        let mut offsets: Vec<u64> = Vec::with_capacity(reports.len());
        for r in reports {
            *per_code.entry(r.code.0).or_insert(0u64) += 1;
            offsets.push(r.offset);
        }
        offsets.sort_unstable();
        offsets.dedup();
        ReportStats {
            total: reports.len() as u64,
            symbols,
            per_code,
            reporting_symbols: offsets.len() as u64,
            engine_tier: None,
            tier_reason: None,
        }
    }

    /// Annotates the stream with the engine tier that produced it and
    /// the selection reason (from
    /// [`select_session_engine_explained`](crate::select_session_engine_explained)),
    /// so bench rows built from these stats are self-explaining.
    pub fn set_engine_tier(&mut self, tier: impl Into<String>, reason: impl Into<String>) {
        self.engine_tier = Some(tier.into());
        self.tier_reason = Some(reason.into());
    }

    /// The annotated engine tier, if [`set_engine_tier`](Self::set_engine_tier)
    /// was called.
    pub fn engine_tier(&self) -> Option<&str> {
        self.engine_tier.as_deref()
    }

    /// The annotated selection reason, if any.
    pub fn tier_reason(&self) -> Option<&str> {
        self.tier_reason.as_deref()
    }

    /// Total reports.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Reports per input symbol.
    pub fn rate(&self) -> f64 {
        if self.symbols == 0 {
            0.0
        } else {
            self.total as f64 / self.symbols as f64
        }
    }

    /// Fraction of input symbols on which at least one report fired —
    /// the paper's "matched patterns on 99.5% of all input bytes" metric.
    pub fn reporting_symbol_fraction(&self) -> f64 {
        if self.symbols == 0 {
            0.0
        } else {
            self.reporting_symbols as f64 / self.symbols as f64
        }
    }

    /// Number of distinct rules that reported.
    pub fn distinct_codes(&self) -> usize {
        self.per_code.len()
    }

    /// Reports attributed to `code`.
    pub fn count_for(&self, code: ReportCode) -> u64 {
        self.per_code.get(&code.0).copied().unwrap_or(0)
    }

    /// The loudest rule and its share of all reports, if any fired.
    /// Ties go to the lowest code so the answer is deterministic.
    pub fn outlier(&self) -> Option<(ReportCode, f64)> {
        self.per_code
            .iter()
            .max_by_key(|&(&code, &c)| (c, std::cmp::Reverse(code)))
            .map(|(&code, &count)| (ReportCode(code), count as f64 / self.total.max(1) as f64))
    }

    /// The `k` loudest rules, descending by count.
    pub fn top_k(&self, k: usize) -> Vec<(ReportCode, u64)> {
        let mut v: Vec<(ReportCode, u64)> = self
            .per_code
            .iter()
            .map(|(&code, &count)| (ReportCode(code), count))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn report(offset: u64, code: u32) -> Report {
        Report {
            offset,
            code: ReportCode(code),
        }
    }

    #[test]
    fn computes_counts_and_rates() {
        let reports = vec![report(0, 1), report(0, 2), report(5, 1), report(9, 1)];
        let stats = ReportStats::compute(&reports, 10);
        assert_eq!(stats.total(), 4);
        assert_eq!(stats.rate(), 0.4);
        assert_eq!(stats.distinct_codes(), 2);
        assert_eq!(stats.count_for(ReportCode(1)), 3);
        assert_eq!(stats.count_for(ReportCode(7)), 0);
        // Offsets 0, 5, 9 reported: 30% of symbols.
        assert!((stats.reporting_symbol_fraction() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn outlier_and_top_k() {
        let mut reports = vec![report(1, 9)];
        for i in 0..7 {
            reports.push(report(i, 3));
        }
        let stats = ReportStats::compute(&reports, 100);
        let (code, share) = stats.outlier().expect("has reports");
        assert_eq!(code, ReportCode(3));
        assert!((share - 7.0 / 8.0).abs() < 1e-12);
        let top = stats.top_k(5);
        assert_eq!(top[0], (ReportCode(3), 7));
        assert_eq!(top[1], (ReportCode(9), 1));
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn tier_annotation_round_trips() {
        let mut stats = ReportStats::compute(&[], 0);
        assert!(stats.engine_tier().is_none() && stats.tier_reason().is_none());
        stats.set_engine_tier("sheng", "fits the 16-state budget");
        assert_eq!(stats.engine_tier(), Some("sheng"));
        assert_eq!(stats.tier_reason(), Some("fits the 16-state budget"));
    }

    #[test]
    fn empty_stream() {
        let stats = ReportStats::compute(&[], 0);
        assert_eq!(stats.total(), 0);
        assert_eq!(stats.rate(), 0.0);
        assert!(stats.outlier().is_none());
    }
}

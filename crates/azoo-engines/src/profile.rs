//! Dynamic activity profiling (the paper's *active set* metric).

/// Aggregated per-symbol activity statistics collected by
/// [`NfaEngine::scan_profiled`](crate::NfaEngine::scan_profiled).
///
/// AutomataZoo defines *active set* as "the average number of states that
/// compute (attempt a match) per input symbol" — the enabled-state count,
/// which dominates the runtime of sequential memory-based engines.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Profile {
    /// Input symbols processed.
    pub symbols: u64,
    /// Sum over symbols of the number of enabled states.
    pub total_enabled: u64,
    /// Sum over symbols of the number of states that matched.
    pub total_matched: u64,
    /// Total reports emitted.
    pub total_reports: u64,
}

impl Profile {
    /// Mean enabled states per symbol — the paper's "Active Set" column.
    pub fn active_set(&self) -> f64 {
        if self.symbols == 0 {
            0.0
        } else {
            self.total_enabled as f64 / self.symbols as f64
        }
    }

    /// Mean matching states per symbol.
    pub fn match_rate(&self) -> f64 {
        if self.symbols == 0 {
            0.0
        } else {
            self.total_matched as f64 / self.symbols as f64
        }
    }

    /// Reports per million input symbols (the Figure-1 metric).
    pub fn reports_per_million(&self) -> f64 {
        if self.symbols == 0 {
            0.0
        } else {
            self.total_reports as f64 * 1.0e6 / self.symbols as f64
        }
    }

    /// Merges another profile into this one (for multi-trial averaging).
    pub fn merge(&mut self, other: &Profile) {
        self.symbols += other.symbols;
        self.total_enabled += other.total_enabled;
        self.total_matched += other.total_matched;
        self.total_reports += other.total_reports;
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_symbols() {
        let p = Profile::default();
        assert_eq!(p.active_set(), 0.0);
        assert_eq!(p.reports_per_million(), 0.0);
    }

    #[test]
    fn rates_compute() {
        let p = Profile {
            symbols: 1_000_000,
            total_enabled: 5_000_000,
            total_matched: 2_000_000,
            total_reports: 3,
        };
        assert_eq!(p.active_set(), 5.0);
        assert_eq!(p.match_rate(), 2.0);
        assert_eq!(p.reports_per_million(), 3.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Profile {
            symbols: 10,
            total_enabled: 20,
            total_matched: 5,
            total_reports: 1,
        };
        a.merge(&a.clone());
        assert_eq!(a.symbols, 20);
        assert_eq!(a.total_enabled, 40);
    }
}

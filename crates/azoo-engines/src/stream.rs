//! Streaming (chunked) scanning.
//!
//! Real deployments of automata processing — deep packet inspection,
//! virus scanning — receive input in chunks, not as one block. The
//! [`StreamingEngine`] trait extends [`Engine`](crate::Engine) with a
//! reset/feed protocol whose cumulative report stream is identical to a
//! single [`Engine::scan`](crate::Engine::scan) over the concatenation
//! (which the property tests verify for every engine).

use crate::sink::ReportSink;

/// An engine that can consume input incrementally.
///
/// Protocol: call [`reset_stream`](StreamingEngine::reset_stream), then
/// [`feed`](StreamingEngine::feed) once per chunk, passing `eod = true`
/// on the final chunk (end-of-data-anchored reports are suppressed until
/// then). Report offsets are cumulative across chunks.
pub trait StreamingEngine {
    /// Restores the engine's initial stream state.
    fn reset_stream(&mut self);

    /// Recycles the engine for a new stream without recompiling or
    /// reallocating: [`reset_stream`](StreamingEngine::reset_stream)
    /// plus, in debug builds, an assertion that the mutable stream state
    /// really returned to its freshly-compiled shape
    /// ([`stream_quiesced`](StreamingEngine::stream_quiesced)). Session
    /// pools call this before parking an engine on the free list, so a
    /// reset that leaks state across streams trips in development
    /// instead of corrupting a later tenant's scan.
    fn reset(&mut self) {
        self.reset_stream();
        debug_assert!(
            self.stream_quiesced(),
            "stream state not quiesced after reset"
        );
    }

    /// Whether the engine's mutable stream state (active sets, counter
    /// values, held-back end-of-data reports, stream offset) equals the
    /// freshly-reset state. Engines override this; the default `true`
    /// keeps the check advisory for wrappers without inspectable state.
    fn stream_quiesced(&self) -> bool {
        true
    }

    /// Consumes one chunk. `eod` marks the final chunk of the stream.
    ///
    /// End-of-data-anchored (`$`) reports fire on the last symbol of the
    /// stream. When that symbol was consumed by an earlier feed (the
    /// `eod` chunk is empty), engines emit the reports they held back
    /// for it, so an empty final chunk matches block-mode output exactly.
    fn feed(&mut self, chunk: &[u8], eod: bool, sink: &mut dyn ReportSink);

    /// Convenience: scans a full stream given as chunks, passing
    /// `eod = true` on the last chunk (empty chunks included — `feed`
    /// handles an empty end-of-data chunk exactly).
    fn scan_chunks<'a, I>(&mut self, chunks: I, sink: &mut dyn ReportSink)
    where
        I: IntoIterator<Item = &'a [u8]>,
        Self: Sized,
    {
        self.reset_stream();
        let mut iter = chunks.into_iter().peekable();
        while let Some(chunk) = iter.next() {
            let eod = iter.peek().is_none();
            self.feed(chunk, eod, sink);
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::sink::CollectSink;
    use crate::{BitParallelEngine, Engine, LazyDfaEngine, NfaEngine};
    use azoo_core::{Automaton, StartKind, SymbolClass};

    fn pattern() -> Automaton {
        let mut a = Automaton::new();
        let classes: Vec<SymbolClass> = b"abc".iter().map(|&b| SymbolClass::from_byte(b)).collect();
        let (_, last) = a.add_chain(&classes, StartKind::AllInput);
        a.set_report(last, 0);
        // A second, $-anchored pattern.
        let s = a.add_ste(SymbolClass::from_byte(b'z'), StartKind::AllInput);
        a.set_report(s, 1);
        a.set_report_eod_only(s, true);
        a
    }

    fn whole(engine: &mut dyn Engine, input: &[u8]) -> Vec<crate::Report> {
        let mut sink = CollectSink::new();
        engine.scan(input, &mut sink);
        sink.sorted_reports()
    }

    fn chunked<E: StreamingEngine>(engine: &mut E, input: &[u8], at: usize) -> Vec<crate::Report> {
        let mut sink = CollectSink::new();
        let at = at.min(input.len());
        engine.scan_chunks([&input[..at], &input[at..]], &mut sink);
        sink.sorted_reports()
    }

    #[test]
    fn chunked_equals_whole_for_all_engines() {
        let a = pattern();
        let input = b"xxabcxxabcxz";
        for cut in 0..=input.len() {
            let mut nfa = NfaEngine::new(&a).unwrap();
            assert_eq!(
                whole(&mut nfa, input),
                chunked(&mut NfaEngine::new(&a).unwrap(), input, cut),
                "nfa cut {cut}"
            );
            let mut dfa = LazyDfaEngine::new(&a).unwrap();
            assert_eq!(
                whole(&mut dfa, input),
                chunked(&mut LazyDfaEngine::new(&a).unwrap(), input, cut),
                "dfa cut {cut}"
            );
            let mut bp = BitParallelEngine::new(&a).unwrap();
            assert_eq!(
                whole(&mut bp, input),
                chunked(&mut BitParallelEngine::new(&a).unwrap(), input, cut),
                "bitpar cut {cut}"
            );
            let mut sheng = crate::ShengEngine::new(&a).unwrap();
            assert_eq!(
                whole(&mut sheng, input),
                chunked(&mut crate::ShengEngine::new(&a).unwrap(), input, cut),
                "sheng cut {cut}"
            );
        }
    }

    #[test]
    fn matches_spanning_chunk_boundaries_survive() {
        let a = pattern();
        let mut sink = CollectSink::new();
        let mut engine = NfaEngine::new(&a).unwrap();
        engine.scan_chunks([&b"xa"[..], &b"b"[..], &b"cx"[..]], &mut sink);
        assert_eq!(sink.reports().len(), 1);
        assert_eq!(sink.reports()[0].offset, 3);
    }

    #[test]
    fn eod_report_waits_for_final_chunk() {
        let a = pattern();
        let mut engine = NfaEngine::new(&a).unwrap();
        let mut sink = CollectSink::new();
        engine.reset_stream();
        engine.feed(b"z", false, &mut sink);
        assert!(sink.reports().is_empty(), "z mid-stream must not report");
        engine.feed(b"z", true, &mut sink);
        assert_eq!(sink.reports().len(), 1);
        assert_eq!(sink.reports()[0].offset, 1);
    }

    #[test]
    fn reset_recycles_every_engine() {
        use crate::{ParallelScanner, PrefilterEngine};
        let a = pattern();
        let input = b"xxabcxxabcxz";

        fn check<E: StreamingEngine + Engine>(mut engine: E, input: &[u8]) {
            let name = engine.name();
            let expected = whole(&mut engine, input);
            // Dirty the stream state: a partial feed with pending work.
            engine.reset_stream();
            engine.feed(&input[..input.len() / 2], false, &mut CollectSink::new());
            // Recycle and rescan: the report stream must match a fresh
            // engine's block scan exactly.
            engine.reset();
            assert!(engine.stream_quiesced(), "{name}: not quiesced after reset");
            let mut sink = CollectSink::new();
            engine.feed(input, true, &mut sink);
            assert_eq!(sink.sorted_reports(), expected, "{name}: reuse diverged");
        }

        check(NfaEngine::new(&a).unwrap(), input);
        check(LazyDfaEngine::new(&a).unwrap(), input);
        check(crate::ShengEngine::new(&a).unwrap(), input);
        check(PrefilterEngine::new(&a).unwrap(), input);
        check(ParallelScanner::new(&a, 2).unwrap(), input);
        // Bit-parallel needs a chain shape; counters need the NFA.
        let mut chain = Automaton::new();
        let (_, last) = chain.add_chain(
            &[
                SymbolClass::from_byte(b'a'),
                SymbolClass::from_byte(b'b'),
                SymbolClass::from_byte(b'c'),
            ],
            StartKind::AllInput,
        );
        chain.set_report(last, 0);
        check(BitParallelEngine::new(&chain).unwrap(), input);
        let mut counted = Automaton::new();
        let s = counted.add_ste(SymbolClass::from_byte(b'a'), StartKind::AllInput);
        let c = counted.add_counter(2, azoo_core::CounterMode::Latch);
        counted.add_edge(s, c);
        counted.set_report(c, 3);
        check(NfaEngine::new(&counted).unwrap(), b"xaxaxa");
    }

    #[test]
    fn start_of_data_not_rearmed_by_later_chunks() {
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::from_byte(b'q'), StartKind::StartOfData);
        a.set_report(s, 0);
        let mut engine = NfaEngine::new(&a).unwrap();
        let mut sink = CollectSink::new();
        engine.scan_chunks([&b"q"[..], &b"q"[..]], &mut sink);
        assert_eq!(sink.reports().len(), 1);
    }
}

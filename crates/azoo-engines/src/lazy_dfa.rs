//! A Hyperscan/RE2-style lazy-DFA engine.
//!
//! Subset construction is performed on the fly: each distinct set of
//! dynamically enabled NFA states becomes a DFA state, and transitions are
//! built (and cached) the first time they are taken. Throughput is then
//! one table lookup per input symbol, independent of the NFA active set —
//! the property that makes DFA-based engines like Intel Hyperscan fast on
//! CPUs. A bounded state cache with RE2-style full flushes keeps memory
//! finite on automata that determinize badly.

use std::collections::HashMap;

use azoo_core::{Automaton, ElementKind, StartKind, SymbolClass};

use crate::sink::ReportSink;
use crate::stream::StreamingEngine;
use crate::{Engine, EngineError};

const UNBUILT: u32 = u32::MAX;

/// Lazily determinized automaton executor.
///
/// Does not support counter elements (extended automata are outside the
/// DFA model, as they are for production regex engines).
#[derive(Debug, Clone)]
pub struct LazyDfaEngine {
    // NFA side.
    classes: Vec<SymbolClass>,
    report_code: Vec<u32>,
    // A separate mask, not a code sentinel: u32::MAX is a legal code.
    has_report: Vec<bool>,
    report_eod: Vec<bool>,
    is_always: Vec<bool>,
    succ_off: Vec<u32>,
    succ_tgt: Vec<u32>,
    always: Vec<u32>,
    start_key: Box<[u32]>,

    // Alphabet compression.
    byte_class: [u16; 256],
    class_rep: Vec<u8>,
    n_classes: usize,

    // DFA cache.
    max_states: usize,
    states: Vec<Box<[u32]>>,
    intern: HashMap<Box<[u32]>, u32>,
    trans: Vec<u32>,
    trans_rep: Vec<u32>,
    rep_lists: Vec<Vec<(u32, bool)>>,
    rep_intern: HashMap<Vec<(u32, bool)>, u32>,
    flushes: u64,
    stream_cur: u32,
    stream_offset: u64,
    /// End-of-data reports held back on the final symbol of a non-`eod`
    /// feed; an empty `eod` feed emits them, new data discards them.
    pending_eod: Vec<(u64, u32)>,
}

impl LazyDfaEngine {
    /// Default bound on cached DFA states before a full flush.
    pub const DEFAULT_MAX_STATES: usize = 1 << 15;

    /// Compiles `a` with the default cache bound.
    ///
    /// # Errors
    ///
    /// [`EngineError::CountersUnsupported`] if `a` has counters, or
    /// [`EngineError::Invalid`] if it fails validation.
    pub fn new(a: &Automaton) -> Result<Self, EngineError> {
        Self::with_max_states(a, Self::DEFAULT_MAX_STATES)
    }

    /// Compiles `a` with an explicit DFA-state cache bound.
    ///
    /// # Errors
    ///
    /// See [`LazyDfaEngine::new`].
    pub fn with_max_states(a: &Automaton, max_states: usize) -> Result<Self, EngineError> {
        a.validate()?;
        let n = a.state_count();
        let mut classes = vec![SymbolClass::EMPTY; n];
        let mut report_code = vec![0u32; n];
        let mut has_report = vec![false; n];
        let mut report_eod = vec![false; n];
        let mut is_always = vec![false; n];
        let mut always = Vec::new();
        let mut sod = Vec::new();
        for (id, e) in a.iter() {
            let i = id.index();
            match &e.kind {
                ElementKind::Counter { .. } => {
                    return Err(EngineError::CountersUnsupported(id));
                }
                ElementKind::Ste { class, start } => {
                    classes[i] = *class;
                    match start {
                        StartKind::None => {}
                        StartKind::StartOfData => sod.push(i as u32),
                        StartKind::AllInput => {
                            is_always[i] = true;
                            always.push(i as u32);
                        }
                    }
                }
            }
            if let Some(code) = e.report {
                report_code[i] = code.0;
                has_report[i] = true;
            }
            report_eod[i] = e.report_eod_only;
        }
        let mut succ_off = Vec::with_capacity(n + 1);
        let mut succ_tgt = Vec::with_capacity(a.edge_count());
        succ_off.push(0);
        for (id, _) in a.iter() {
            for edge in a.successors(id) {
                succ_tgt.push(edge.to.index() as u32);
            }
            succ_off.push(succ_tgt.len() as u32);
        }
        sod.sort_unstable();
        sod.dedup();

        // Alphabet compression: bytes indistinguishable by every symbol
        // class share a DFA column.
        let mut distinct: Vec<SymbolClass> = Vec::new();
        {
            let mut seen = std::collections::HashSet::new();
            for c in &classes {
                if seen.insert(*c.as_words()) {
                    distinct.push(*c);
                }
            }
        }
        let mut byte_class = [0u16; 256];
        let mut n_classes = 1usize;
        for c in &distinct {
            let mut remap: HashMap<(u16, bool), u16> = HashMap::new();
            let mut next = 0u16;
            let mut new_class = [0u16; 256];
            for b in 0..256usize {
                let key = (byte_class[b], c.contains(b as u8));
                let id = *remap.entry(key).or_insert_with(|| {
                    let v = next;
                    next += 1;
                    v
                });
                new_class[b] = id;
            }
            byte_class = new_class;
            n_classes = next as usize;
        }
        let mut class_rep = vec![0u8; n_classes];
        for b in (0..256usize).rev() {
            class_rep[byte_class[b] as usize] = b as u8;
        }

        let mut engine = LazyDfaEngine {
            classes,
            report_code,
            has_report,
            report_eod,
            is_always,
            succ_off,
            succ_tgt,
            always,
            start_key: sod.into_boxed_slice(),
            byte_class,
            class_rep,
            n_classes,
            max_states: max_states.max(2),
            states: Vec::new(),
            intern: HashMap::new(),
            trans: Vec::new(),
            trans_rep: Vec::new(),
            rep_lists: vec![Vec::new()],
            rep_intern: HashMap::new(),
            flushes: 0,
            stream_cur: 0,
            stream_offset: 0,
            pending_eod: Vec::new(),
        };
        engine.rep_intern.insert(Vec::new(), 0);
        let start = engine.start_key.clone();
        engine.intern_state(start);
        Ok(engine)
    }

    /// Number of DFA states currently cached.
    pub fn cached_states(&self) -> usize {
        self.states.len()
    }

    /// Number of cache flushes performed so far.
    pub fn flush_count(&self) -> u64 {
        self.flushes
    }

    /// Number of compressed alphabet classes.
    pub fn alphabet_classes(&self) -> usize {
        self.n_classes
    }

    fn flush(&mut self) {
        self.flushes += 1;
        self.states.clear();
        self.intern.clear();
        self.trans.clear();
        self.trans_rep.clear();
        let start = self.start_key.clone();
        self.push_state(start);
    }

    fn push_state(&mut self, key: Box<[u32]>) -> u32 {
        let id = self.states.len() as u32;
        self.intern.insert(key.clone(), id);
        self.states.push(key);
        self.trans
            .extend(std::iter::repeat_n(UNBUILT, self.n_classes));
        self.trans_rep
            .extend(std::iter::repeat_n(0, self.n_classes));
        id
    }

    /// Interns a state key, flushing the cache if full. Returns the id.
    fn intern_state(&mut self, key: Box<[u32]>) -> u32 {
        if let Some(&id) = self.intern.get(&key) {
            return id;
        }
        if self.states.len() >= self.max_states {
            self.flush();
            if let Some(&id) = self.intern.get(&key) {
                return id; // key was the start state
            }
        }
        self.push_state(key)
    }

    /// Computes (and caches when possible) the transition out of `cur` on
    /// alphabet class `k`. Returns `(next_state, report_list)`.
    fn take_transition(&mut self, cur: u32, k: usize) -> (u32, u32) {
        let idx = cur as usize * self.n_classes + k;
        if self.trans[idx] != UNBUILT {
            return (self.trans[idx], self.trans_rep[idx]);
        }
        let byte = self.class_rep[k];
        let mut next: Vec<u32> = Vec::new();
        let mut reports: Vec<(u32, bool)> = Vec::new();
        let key = std::mem::take(&mut self.states[cur as usize]);
        let always = std::mem::take(&mut self.always);
        for &s in key.iter().chain(always.iter()) {
            let si = s as usize;
            if !self.classes[si].contains(byte) {
                continue;
            }
            if self.has_report[si] {
                reports.push((self.report_code[si], self.report_eod[si]));
            }
            let lo = self.succ_off[si] as usize;
            let hi = self.succ_off[si + 1] as usize;
            for &t in &self.succ_tgt[lo..hi] {
                if !self.is_always[t as usize] {
                    next.push(t);
                }
            }
        }
        self.states[cur as usize] = key;
        self.always = always;
        next.sort_unstable();
        next.dedup();
        reports.sort_unstable();
        reports.dedup();
        // An unconditional report subsumes an end-of-data-gated one with
        // the same code: keeping both would emit a duplicate
        // `(offset, code)` pair on the stream's last symbol, where the
        // NFA's per-cycle code dedup emits exactly one. Sorted order puts
        // `(code, false)` first, so keep the first entry per code.
        reports.dedup_by_key(|&mut (code, _)| code);
        let rep_id = if reports.is_empty() {
            0
        } else {
            match self.rep_intern.get(&reports) {
                Some(&id) => id,
                None => {
                    let id = self.rep_lists.len() as u32;
                    self.rep_intern.insert(reports.clone(), id);
                    self.rep_lists.push(reports);
                    id
                }
            }
        };
        let flushes_before = self.flushes;
        let next_id = self.intern_state(next.into_boxed_slice());
        if self.flushes == flushes_before {
            let idx = cur as usize * self.n_classes + k;
            self.trans[idx] = next_id;
            self.trans_rep[idx] = rep_id;
        }
        (next_id, rep_id)
    }
}

impl LazyDfaEngine {
    /// Runs `input` from DFA state `cur`; returns the final state.
    fn process(
        &mut self,
        mut cur: u32,
        input: &[u8],
        base: u64,
        eod: bool,
        sink: &mut dyn ReportSink,
    ) -> u32 {
        let len = input.len();
        // New symbols invalidate held-back end-of-data candidates.
        if len > 0 {
            self.pending_eod.clear();
        }
        for (pos, &b) in input.iter().enumerate() {
            let k = self.byte_class[b as usize] as usize;
            let (next, rep) = self.take_transition(cur, k);
            if rep != 0 {
                let last = eod && pos + 1 == len;
                let maybe_last = !eod && pos + 1 == len;
                // Clone is cheap: report lists are tiny and rare.
                let list = self.rep_lists[rep as usize].clone();
                for (code, eod_only) in list {
                    if !eod_only || last {
                        sink.report(base + pos as u64, azoo_core::ReportCode(code));
                    } else if maybe_last {
                        // The list is deduped per code with the
                        // unconditional variant winning, so this code was
                        // not otherwise reported this cycle.
                        self.pending_eod.push((base + pos as u64, code));
                    }
                }
            }
            cur = next;
        }
        cur
    }
}

impl StreamingEngine for LazyDfaEngine {
    fn reset_stream(&mut self) {
        self.stream_cur = self.intern_state(self.start_key.clone());
        self.stream_offset = 0;
        self.pending_eod.clear();
    }

    fn stream_quiesced(&self) -> bool {
        self.stream_offset == 0
            && self.pending_eod.is_empty()
            && self
                .states
                .get(self.stream_cur as usize)
                .is_some_and(|key| **key == *self.start_key)
    }

    fn feed(&mut self, chunk: &[u8], eod: bool, sink: &mut dyn ReportSink) {
        let base = self.stream_offset;
        self.stream_cur = self.process(self.stream_cur, chunk, base, eod, sink);
        self.stream_offset = base + chunk.len() as u64;
        if eod {
            for i in 0..self.pending_eod.len() {
                let (off, code) = self.pending_eod[i];
                sink.report(off, azoo_core::ReportCode(code));
            }
            self.pending_eod.clear();
        }
    }
}

impl Engine for LazyDfaEngine {
    fn scan(&mut self, input: &[u8], sink: &mut dyn ReportSink) {
        let start = self.intern_state(self.start_key.clone());
        self.process(start, input, 0, true, sink);
    }

    fn name(&self) -> &'static str {
        "lazy-dfa"
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::sink::CollectSink;

    fn abc() -> Automaton {
        let mut a = Automaton::new();
        let classes: Vec<SymbolClass> = b"abc".iter().map(|&b| SymbolClass::from_byte(b)).collect();
        let (_, last) = a.add_chain(&classes, StartKind::AllInput);
        a.set_report(last, 0);
        a
    }

    #[test]
    fn alphabet_compression_groups_bytes() {
        let engine = LazyDfaEngine::new(&abc()).unwrap();
        // Classes: {a}, {b}, {c}, everything-else.
        assert_eq!(engine.alphabet_classes(), 4);
    }

    #[test]
    fn cache_grows_lazily() {
        let mut engine = LazyDfaEngine::new(&abc()).unwrap();
        assert_eq!(engine.cached_states(), 1); // just the start state
        let mut sink = CollectSink::new();
        engine.scan(b"ababcxyz", &mut sink);
        assert!(engine.cached_states() > 1);
        assert_eq!(engine.flush_count(), 0);
        assert_eq!(sink.reports().len(), 1);
    }

    #[test]
    fn tiny_cache_flushes_but_stays_correct() {
        let mut engine = LazyDfaEngine::with_max_states(&abc(), 2).unwrap();
        let mut sink = CollectSink::new();
        engine.scan(b"abcabcabc", &mut sink);
        assert_eq!(sink.reports().len(), 3);
        assert!(engine.flush_count() > 0);
    }

    #[test]
    fn full_class_automaton_compresses_to_one_class() {
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::FULL, StartKind::AllInput);
        a.set_report(s, 0);
        let engine = LazyDfaEngine::new(&a).unwrap();
        assert_eq!(engine.alphabet_classes(), 1);
    }
}

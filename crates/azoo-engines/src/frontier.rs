//! SFA-style speculative chunk scanning for hard shards.
//!
//! [`ParallelScanner`](crate::ParallelScanner) chunks the input for
//! counter-free, acyclic, unanchored shards by re-scanning a bounded
//! overlap window. The remaining shards — counters, cycles,
//! `StartOfData` anchors — used to degrade to one whole-input job. This
//! module removes that fallback with the construction of *simultaneous
//! finite automata* (Sin'ya & Matsuzaki): a worker scans its chunk
//! **speculatively from every reachable entry configuration at once**
//! and records a transfer summary — which exit configuration, which
//! reports and which counter pulses each entry would produce — and
//! summaries compose left-to-right, so the true entry configuration
//! (known only once the previous chunk resolves) selects the real
//! outcome without rescanning.
//!
//! Rather than one scan per entry state, [`FrontierScanner::summarize`]
//! runs a single *tagged* sparse simulation: each state carries a small
//! bitmask recording which entry states would have activated it. Bit 0
//! is the *base* tag — activity every entry shares, namely whatever the
//! `AllInput` start states generate — and each *frontier* state (a
//! possible chunk-entry state: a `StartOfData` seed or any state with an
//! incoming activate edge) owns one further bit. NFA activation is a
//! union-linear function of the entry set, so OR-ing masks along
//! activations is exact. That linearity breaks only if a counter's
//! *output* feeds back into the state layer — whether a counter fires
//! depends non-linearly on the whole pulse history — so this module
//! requires every counter to be *terminal* (report-only, no successors);
//! [`ParallelScanner`](crate::ParallelScanner) routes components with
//! non-terminal counters to a whole-input fallback sub-shard instead.
//!
//! Counter soundness across seams: with terminal counters, every
//! enable/reset pulse is produced and consumed within one symbol cycle,
//! so no pulse straddles a chunk boundary. A summary therefore records,
//! per cycle and counter, the masked enable and reset lines; the stitch
//! replays the pulse sequence against the counter's true running value
//! (reset wins, one count per cycle, latch/pulse/roll fire semantics)
//! and resolves counter reports only then.
//!
//! Tags live in per-*component* spaces that share the same mask words:
//! edges never cross weakly-connected components, so a bit position can
//! be reused by every component simultaneously and the stitch selector
//! is built per component. Masks are capped at [`MAX_TAG_WORDS`] words;
//! a component with more frontier states than tag bits is *sampled*
//! (its lowest-numbered frontier states get tags) and any chunk whose
//! true entry contains an untagged state of that component is verified
//! by an exact re-scan of just that component during the stitch —
//! speculation with a verified fallback, never an approximation.
//!
//! Report streams here are *not* deduplicated per cycle (unlike
//! [`NfaEngine`](crate::NfaEngine)); callers sort and dedup the merged
//! stream, which restores the canonical one-report-per-`(offset, code)`
//! form.

use azoo_core::stats::{component_labels, reachable_from_starts};
use azoo_core::{Automaton, CounterMode, ElementKind, ReportCode, StartKind, SymbolClass};

use azoo_simd::ByteFinder;

use crate::sink::Report;
use crate::EngineError;

const PORT_BIT: u32 = 1 << 31;
const TAG_NONE: u32 = u32::MAX;
/// Mask words per state are capped at 4 (255 frontier tags plus the
/// base bit); larger frontiers are sampled and verified on stitch.
const MAX_TAG_WORDS: usize = 4;

#[derive(Debug, Clone)]
struct CounterDef {
    target: u32,
    mode: CounterMode,
}

/// Compiled speculative scanner for one shard's taggable components.
///
/// Immutable after construction: workers summarize chunks against it
/// concurrently, each with its own [`FrontierScratch`]; all mutable
/// stream state lives in [`SpecConfig`] values owned by the caller.
#[derive(Debug, Clone)]
pub(crate) struct FrontierScanner {
    n: usize,
    /// Mask words per state (1..=[`MAX_TAG_WORDS`]).
    w: usize,
    n_comps: usize,
    classes: Vec<SymbolClass>,
    report_code: Vec<u32>,
    has_report: Vec<bool>,
    report_eod: Vec<bool>,
    is_always: Vec<bool>,
    is_counter: Vec<bool>,
    counter_idx: Vec<u32>,
    // CSR adjacency; top bit of a target marks the reset port.
    succ_off: Vec<u32>,
    succ_tgt: Vec<u32>,
    sod_list: Vec<u32>,
    // CSR of `AllInput` states matching each byte value.
    always_off: Vec<u32>,
    always_dat: Vec<u32>,
    /// `AllInput` states per component, for component-filtered re-scans.
    comp_always: Vec<Vec<u32>>,
    counters: Vec<CounterDef>,
    counter_elem_ids: Vec<u32>,
    comp_of: Vec<u32>,
    /// Tag index per state (1-based within its component's tag space);
    /// [`TAG_NONE`] for states that can never be a chunk entry, and for
    /// unsampled frontier states of oversized components.
    tag_of: Vec<u32>,
    /// All tagged states, in seeding order.
    frontier: Vec<u32>,
    /// Components whose frontier overflowed the tag space.
    sampled: Vec<bool>,
    wake: ByteFinder,
}

/// A resolved stream configuration: the true active set and counter
/// state at a chunk boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SpecConfig {
    /// Dynamically active states, sorted and deduplicated.
    pub(crate) active: Vec<u32>,
    pub(crate) counts: Vec<u32>,
    pub(crate) latched: Vec<bool>,
}

#[derive(Debug, Clone)]
struct SumReport {
    cycle: u32,
    comp: u32,
    code: u32,
}

#[derive(Debug, Clone)]
struct SumCand {
    comp: u32,
    code: u32,
}

#[derive(Debug, Clone)]
struct SumPulse {
    cycle: u32,
    ci: u32,
}

/// One chunk's transfer summary: entry-conditional exit configuration,
/// report events, held-back end-of-data candidates, and counter pulses.
/// Masks are arenas with stride `w` (`2 * w` for pulses: enable then
/// reset).
#[derive(Debug, Clone)]
pub(crate) struct ChunkSummary {
    len: usize,
    last: bool,
    maybe_last: bool,
    exit_states: Vec<u32>,
    exit_masks: Vec<u64>,
    reports: Vec<SumReport>,
    report_masks: Vec<u64>,
    cands: Vec<SumCand>,
    cand_masks: Vec<u64>,
    pulses: Vec<SumPulse>,
    pulse_masks: Vec<u64>,
}

/// Reusable per-worker runtime state for [`FrontierScanner`] passes.
#[derive(Debug, Clone)]
pub(crate) struct FrontierScratch {
    cur: Vec<u32>,
    next: Vec<u32>,
    stamp: Vec<u32>,
    generation: u32,
    cur_masks: Vec<u64>,
    next_masks: Vec<u64>,
    cnt_enable_mask: Vec<u64>,
    cnt_reset_mask: Vec<u64>,
    cnt_enable: Vec<bool>,
    cnt_reset: Vec<bool>,
    cnt_touched: Vec<bool>,
    touched: Vec<u32>,
    // Stitch-phase selector state.
    sigma: Vec<u64>,
    rescan: Vec<bool>,
}

impl FrontierScratch {
    fn begin(&mut self) {
        self.cur.clear();
        self.next.clear();
        debug_assert!(self.touched.is_empty());
        debug_assert!(!self.cnt_touched.iter().any(|&t| t));
    }

    fn bump_generation(&mut self) -> u32 {
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            self.stamp.fill(u32::MAX);
            self.generation = 1;
        }
        self.generation
    }
}

fn or_into(dst: &mut [u64], src: &[u64]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d |= s;
    }
}

fn intersects(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).any(|(x, y)| x & y != 0)
}

impl FrontierScanner {
    /// Compiles the speculative sub-automaton `a` (every counter must be
    /// terminal — checked by the caller, asserted here in debug builds).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Invalid`] if `a` fails
    /// [`Automaton::validate`].
    pub(crate) fn new(a: &Automaton) -> Result<Self, EngineError> {
        a.validate()?;
        let n = a.state_count();
        let mut classes = vec![SymbolClass::EMPTY; n];
        let mut report_code = vec![0u32; n];
        let mut has_report = vec![false; n];
        let mut report_eod = vec![false; n];
        let mut is_always = vec![false; n];
        let mut is_counter = vec![false; n];
        let mut counter_idx = vec![u32::MAX; n];
        let mut sod_list = Vec::new();
        let mut counters = Vec::new();
        let mut counter_elem_ids = Vec::new();
        let mut always = Vec::new();
        for (id, e) in a.iter() {
            let i = id.index();
            if let Some(code) = e.report {
                report_code[i] = code.0;
                has_report[i] = true;
            }
            report_eod[i] = e.report_eod_only;
            match &e.kind {
                ElementKind::Ste { class, start } => {
                    classes[i] = *class;
                    match start {
                        StartKind::None => {}
                        StartKind::StartOfData => sod_list.push(i as u32),
                        StartKind::AllInput => {
                            is_always[i] = true;
                            always.push(i as u32);
                        }
                    }
                }
                ElementKind::Counter { target, mode } => {
                    debug_assert!(
                        a.successors(id).is_empty(),
                        "speculative scanning requires terminal counters"
                    );
                    is_counter[i] = true;
                    counter_idx[i] = counters.len() as u32;
                    counter_elem_ids.push(i as u32);
                    counters.push(CounterDef {
                        target: *target,
                        mode: *mode,
                    });
                }
            }
        }
        let mut succ_off = Vec::with_capacity(n + 1);
        let mut succ_tgt = Vec::with_capacity(a.edge_count());
        succ_off.push(0);
        for (id, _) in a.iter() {
            for edge in a.successors(id) {
                let mut t = edge.to.index() as u32;
                if edge.port == azoo_core::Port::Reset {
                    t |= PORT_BIT;
                }
                succ_tgt.push(t);
            }
            succ_off.push(succ_tgt.len() as u32);
        }
        let mut always_off = Vec::with_capacity(257);
        let mut always_dat = Vec::new();
        let mut wake = SymbolClass::EMPTY;
        always_off.push(0);
        for b in 0..=255u8 {
            for &s in &always {
                if classes[s as usize].contains(b) {
                    always_dat.push(s);
                }
            }
            always_off.push(always_dat.len() as u32);
        }
        for &s in &always {
            wake = wake.union(&classes[s as usize]);
        }

        // Dense component ids.
        let labels = component_labels(a);
        let mut distinct: Vec<usize> = labels.clone();
        distinct.sort_unstable();
        distinct.dedup();
        let n_comps = distinct.len();
        let comp_of: Vec<u32> = labels
            .iter()
            .map(|l| distinct.binary_search(l).map_or(0, |i| i as u32))
            .collect();
        let mut comp_always = vec![Vec::new(); n_comps];
        for &s in &always {
            comp_always[comp_of[s as usize] as usize].push(s);
        }

        // Frontier: states that can appear in a chunk-entry active set —
        // `StartOfData` seeds plus any non-always, non-counter state
        // with an incoming activate edge — restricted to states
        // reachable from a start (unreachable ones are never entered, so
        // tagging them would waste bits and seed dead work).
        let reach = reachable_from_starts(a);
        let mut activatable = vec![false; n];
        for (id, _) in a.iter() {
            for edge in a.successors(id) {
                let t = edge.to.index();
                if edge.port == azoo_core::Port::Activate && !is_counter[t] && !is_always[t] {
                    activatable[t] = true;
                }
            }
        }
        for &s in &sod_list {
            activatable[s as usize] = true;
        }
        let mut per_comp: Vec<Vec<u32>> = vec![Vec::new(); n_comps];
        for s in 0..n {
            if activatable[s] && reach[s] {
                per_comp[comp_of[s] as usize].push(s as u32);
            }
        }
        let max_f = per_comp.iter().map(Vec::len).max().unwrap_or(0);
        let w = (max_f.min(MAX_TAG_WORDS * 64 - 1) + 1).div_ceil(64).max(1);
        let max_tags = w * 64 - 1;
        let mut tag_of = vec![TAG_NONE; n];
        let mut frontier = Vec::new();
        let mut sampled = vec![false; n_comps];
        for (c, states) in per_comp.iter().enumerate() {
            sampled[c] = states.len() > max_tags;
            for (j, &s) in states.iter().take(max_tags).enumerate() {
                tag_of[s as usize] = (j + 1) as u32;
                frontier.push(s);
            }
        }

        Ok(FrontierScanner {
            n,
            w,
            n_comps,
            classes,
            report_code,
            has_report,
            report_eod,
            is_always,
            is_counter,
            counter_idx,
            succ_off,
            succ_tgt,
            sod_list,
            always_off,
            always_dat,
            comp_always,
            counters,
            counter_elem_ids,
            comp_of,
            tag_of,
            frontier,
            sampled,
            wake: ByteFinder::from_bytes(&wake.iter().collect::<Vec<u8>>()),
        })
    }

    /// Components whose frontier overflowed the tag space (their chunks
    /// may need verified re-scans during the stitch).
    pub(crate) fn sampled_comp_count(&self) -> usize {
        self.sampled.iter().filter(|&&s| s).count()
    }

    /// The stream-start configuration: `StartOfData` seeds active,
    /// every counter at zero.
    pub(crate) fn initial_config(&self) -> SpecConfig {
        SpecConfig {
            active: self.sod_list.clone(),
            counts: vec![0; self.counters.len()],
            latched: vec![false; self.counters.len()],
        }
    }

    /// Whether `cfg` equals the freshly-reset stream configuration.
    pub(crate) fn quiesced(&self, cfg: &SpecConfig) -> bool {
        cfg.active == self.sod_list
            && cfg.counts.iter().all(|&c| c == 0)
            && !cfg.latched.iter().any(|&l| l)
    }

    /// Runs the tagged speculative pass over `chunk`, producing its
    /// transfer summary. `last` marks the final subchunk of an
    /// end-of-data feed, `maybe_last` the final subchunk of a non-eod
    /// feed (both gate end-of-data reports at the chunk's last cycle).
    pub(crate) fn summarize(
        &self,
        scratch: &mut FrontierScratch,
        chunk: &[u8],
        last: bool,
        maybe_last: bool,
    ) -> ChunkSummary {
        debug_assert!(chunk.len() < u32::MAX as usize);
        let w = self.w;
        let len = chunk.len();
        let mut sum = ChunkSummary {
            len,
            last,
            maybe_last,
            exit_states: Vec::new(),
            exit_masks: Vec::new(),
            reports: Vec::new(),
            report_masks: Vec::new(),
            cands: Vec::new(),
            cand_masks: Vec::new(),
            pulses: Vec::new(),
            pulse_masks: Vec::new(),
        };
        scratch.begin();
        // Seed every tagged frontier state with its own tag: the pass
        // simulates all entry hypotheses at once.
        for &q in &self.frontier {
            scratch.cur.push(q);
            let m = &mut scratch.cur_masks[q as usize * w..][..w];
            m.fill(0);
            let t = self.tag_of[q as usize] as usize;
            m[t / 64] |= 1u64 << (t % 64);
        }
        let mut pos = 0usize;
        while pos < len {
            // Quiescent skip: counters here are terminal, so a latch
            // cannot create activity; with the dynamic set empty only an
            // `AllInput` start can matter, and only on a wake byte.
            if scratch.cur.is_empty() {
                let skipped = self.wake.find(&chunk[pos..]).unwrap_or(len - pos);
                pos += skipped;
                if pos == len {
                    break;
                }
            }
            let c = chunk[pos];
            let last_sym = last && pos + 1 == len;
            let maybe_sym = maybe_last && pos + 1 == len;
            let gen = scratch.bump_generation();
            let cycle_start = sum.reports.len();
            let mut m = [0u64; MAX_TAG_WORDS];
            for i in 0..scratch.cur.len() {
                let s = scratch.cur[i] as usize;
                if !self.classes[s].contains(c) {
                    continue;
                }
                m[..w].copy_from_slice(&scratch.cur_masks[s * w..][..w]);
                if self.has_report[s] {
                    self.record_summary_report(
                        s,
                        &m[..w],
                        pos as u32,
                        last_sym,
                        maybe_sym,
                        cycle_start,
                        &mut sum,
                    );
                }
                self.activate_masked(scratch, s, &m[..w], gen);
            }
            // Always-enabled start states carry the base tag alone.
            m = [0u64; MAX_TAG_WORDS];
            m[0] = 1;
            let lo = self.always_off[c as usize] as usize;
            let hi = self.always_off[c as usize + 1] as usize;
            for ai in lo..hi {
                let s = self.always_dat[ai] as usize;
                if self.has_report[s] {
                    self.record_summary_report(
                        s,
                        &m[..w],
                        pos as u32,
                        last_sym,
                        maybe_sym,
                        cycle_start,
                        &mut sum,
                    );
                }
                self.activate_masked(scratch, s, &m[..w], gen);
            }
            // Drain counter pulses: one event per touched counter per
            // cycle (terminal counters settle within the cycle, so no
            // pulse ever crosses a chunk seam).
            for ti in 0..scratch.touched.len() {
                let ci = scratch.touched[ti] as usize;
                sum.pulses.push(SumPulse {
                    cycle: pos as u32,
                    ci: ci as u32,
                });
                sum.pulse_masks
                    .extend_from_slice(&scratch.cnt_enable_mask[ci * w..][..w]);
                sum.pulse_masks
                    .extend_from_slice(&scratch.cnt_reset_mask[ci * w..][..w]);
                scratch.cnt_enable_mask[ci * w..][..w].fill(0);
                scratch.cnt_reset_mask[ci * w..][..w].fill(0);
                scratch.cnt_touched[ci] = false;
            }
            scratch.touched.clear();
            std::mem::swap(&mut scratch.cur, &mut scratch.next);
            std::mem::swap(&mut scratch.cur_masks, &mut scratch.next_masks);
            scratch.next.clear();
            pos += 1;
        }
        for &s in &scratch.cur {
            sum.exit_states.push(s);
            sum.exit_masks
                .extend_from_slice(&scratch.cur_masks[s as usize * w..][..w]);
        }
        scratch.cur.clear();
        sum
    }

    #[allow(clippy::too_many_arguments)]
    fn record_summary_report(
        &self,
        s: usize,
        mask: &[u64],
        cycle: u32,
        last_sym: bool,
        maybe_sym: bool,
        cycle_start: usize,
        sum: &mut ChunkSummary,
    ) {
        let w = self.w;
        let code = self.report_code[s];
        let comp = self.comp_of[s];
        if self.report_eod[s] && !last_sym {
            if maybe_sym {
                for (i, cd) in sum.cands.iter().enumerate() {
                    if cd.comp == comp && cd.code == code {
                        or_into(&mut sum.cand_masks[i * w..][..w], mask);
                        return;
                    }
                }
                sum.cands.push(SumCand { comp, code });
                sum.cand_masks.extend_from_slice(mask);
            }
            return;
        }
        // Merge same-(component, code) events within a cycle so a
        // report is emitted once no matter how many tagged states claim
        // it; cross-component duplicates collapse in the final dedup.
        for i in cycle_start..sum.reports.len() {
            if sum.reports[i].comp == comp && sum.reports[i].code == code {
                or_into(&mut sum.report_masks[i * w..][..w], mask);
                return;
            }
        }
        sum.reports.push(SumReport { cycle, comp, code });
        sum.report_masks.extend_from_slice(mask);
    }

    fn activate_masked(&self, scratch: &mut FrontierScratch, s: usize, m: &[u64], gen: u32) {
        let w = self.w;
        let lo = self.succ_off[s] as usize;
        let hi = self.succ_off[s + 1] as usize;
        for ei in lo..hi {
            let raw = self.succ_tgt[ei];
            let reset = raw & PORT_BIT != 0;
            let t = (raw & !PORT_BIT) as usize;
            if self.is_counter[t] {
                let ci = self.counter_idx[t] as usize;
                if !scratch.cnt_touched[ci] {
                    scratch.cnt_touched[ci] = true;
                    scratch.touched.push(ci as u32);
                }
                if reset {
                    or_into(&mut scratch.cnt_reset_mask[ci * w..][..w], m);
                } else {
                    or_into(&mut scratch.cnt_enable_mask[ci * w..][..w], m);
                }
            } else if !self.is_always[t] {
                if scratch.stamp[t] != gen {
                    scratch.stamp[t] = gen;
                    scratch.next.push(t as u32);
                    scratch.next_masks[t * w..][..w].copy_from_slice(m);
                } else {
                    or_into(&mut scratch.next_masks[t * w..][..w], m);
                }
            }
        }
    }

    /// One counter cycle against concrete state: reset wins, a counter
    /// counts at most once per cycle, and firing follows the mode
    /// (latch holds, pulse saturates, roll wraps). Returns whether the
    /// counter fired. Mirrors `NfaEngine::settle_counters` minus the
    /// successor drive (counters here are terminal).
    fn step_counter(
        &self,
        ci: usize,
        enable: bool,
        reset: bool,
        counts: &mut [u32],
        latched: &mut [bool],
    ) -> bool {
        let target = self.counters[ci].target;
        if reset {
            counts[ci] = 0;
            latched[ci] = false;
            return false;
        }
        if enable && counts[ci] < target {
            counts[ci] += 1;
            if counts[ci] == target {
                match self.counters[ci].mode {
                    CounterMode::Latch => latched[ci] = true,
                    CounterMode::Pulse => {}
                    CounterMode::Roll => counts[ci] = 0,
                }
                return true;
            }
        }
        false
    }

    fn emit(
        &self,
        s: usize,
        apos: u64,
        last_sym: bool,
        maybe_sym: bool,
        out: &mut Vec<Report>,
        pending: &mut Vec<(u64, u32)>,
    ) {
        let code = self.report_code[s];
        if self.report_eod[s] && !last_sym {
            if maybe_sym {
                pending.push((apos, code));
            }
            return;
        }
        out.push(Report {
            offset: apos,
            code: ReportCode(code),
        });
    }

    /// Exact concrete simulation of `chunk` from a known entry: used for
    /// the first subchunk of every feed (whose entry configuration *is*
    /// known) and for stitch-time verification of sampled components.
    /// With `comp = Some(c)` only component `c` is simulated (the entry
    /// must be restricted to it).
    ///
    /// Reports land in `out` with absolute offsets (`base` + cycle),
    /// held-back end-of-data candidates in `pending`, and the exit
    /// active set is appended to `exit_active` (unsorted). Counter state
    /// is updated in place.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_exact(
        &self,
        scratch: &mut FrontierScratch,
        comp: Option<u32>,
        entry: &[u32],
        counts: &mut [u32],
        latched: &mut [bool],
        chunk: &[u8],
        base: u64,
        last: bool,
        maybe_last: bool,
        out: &mut Vec<Report>,
        pending: &mut Vec<(u64, u32)>,
        exit_active: &mut Vec<u32>,
    ) {
        scratch.begin();
        scratch.cur.extend_from_slice(entry);
        let len = chunk.len();
        let mut pos = 0usize;
        while pos < len {
            if scratch.cur.is_empty() {
                // The global wake set is a superset of any component's,
                // so the skip stays exact under a component filter.
                let skipped = self.wake.find(&chunk[pos..]).unwrap_or(len - pos);
                pos += skipped;
                if pos == len {
                    break;
                }
            }
            let c = chunk[pos];
            let apos = base + pos as u64;
            let last_sym = last && pos + 1 == len;
            let maybe_sym = maybe_last && pos + 1 == len;
            let gen = scratch.bump_generation();
            for i in 0..scratch.cur.len() {
                let s = scratch.cur[i] as usize;
                if !self.classes[s].contains(c) {
                    continue;
                }
                if self.has_report[s] {
                    self.emit(s, apos, last_sym, maybe_sym, out, pending);
                }
                self.activate_concrete(scratch, s, gen);
            }
            match comp {
                None => {
                    let lo = self.always_off[c as usize] as usize;
                    let hi = self.always_off[c as usize + 1] as usize;
                    for ai in lo..hi {
                        let s = self.always_dat[ai] as usize;
                        if self.has_report[s] {
                            self.emit(s, apos, last_sym, maybe_sym, out, pending);
                        }
                        self.activate_concrete(scratch, s, gen);
                    }
                }
                Some(cid) => {
                    for &s in &self.comp_always[cid as usize] {
                        let s = s as usize;
                        if !self.classes[s].contains(c) {
                            continue;
                        }
                        if self.has_report[s] {
                            self.emit(s, apos, last_sym, maybe_sym, out, pending);
                        }
                        self.activate_concrete(scratch, s, gen);
                    }
                }
            }
            for ti in 0..scratch.touched.len() {
                let ci = scratch.touched[ti] as usize;
                let en = scratch.cnt_enable[ci];
                let rs = scratch.cnt_reset[ci];
                scratch.cnt_enable[ci] = false;
                scratch.cnt_reset[ci] = false;
                scratch.cnt_touched[ci] = false;
                if self.step_counter(ci, en, rs, counts, latched) {
                    let elem = self.counter_elem_ids[ci] as usize;
                    if self.has_report[elem] {
                        self.emit(elem, apos, last_sym, maybe_sym, out, pending);
                    }
                }
            }
            scratch.touched.clear();
            std::mem::swap(&mut scratch.cur, &mut scratch.next);
            scratch.next.clear();
            pos += 1;
        }
        exit_active.extend_from_slice(&scratch.cur);
        scratch.cur.clear();
    }

    fn activate_concrete(&self, scratch: &mut FrontierScratch, s: usize, gen: u32) {
        let lo = self.succ_off[s] as usize;
        let hi = self.succ_off[s + 1] as usize;
        for ei in lo..hi {
            let raw = self.succ_tgt[ei];
            let reset = raw & PORT_BIT != 0;
            let t = (raw & !PORT_BIT) as usize;
            if self.is_counter[t] {
                let ci = self.counter_idx[t] as usize;
                if !scratch.cnt_touched[ci] {
                    scratch.cnt_touched[ci] = true;
                    scratch.touched.push(ci as u32);
                }
                if reset {
                    scratch.cnt_reset[ci] = true;
                } else {
                    scratch.cnt_enable[ci] = true;
                }
            } else if !self.is_always[t] && scratch.stamp[t] != gen {
                scratch.stamp[t] = gen;
                scratch.next.push(t as u32);
            }
        }
    }

    /// Composes one chunk onto the stream: the true entry configuration
    /// `cfg` selects the real outcome from `sum`, emitting resolved
    /// reports into `out` (absolute offsets via `base`), held-back
    /// end-of-data candidates into `pending`, replaying counter pulses
    /// against the true counter state, and advancing `cfg` to the
    /// chunk's exit configuration. Components whose entry contains an
    /// untagged (sampled-out) state are verified by an exact re-scan of
    /// `chunk` restricted to that component.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn stitch(
        &self,
        scratch: &mut FrontierScratch,
        cfg: &mut SpecConfig,
        sum: &ChunkSummary,
        chunk: &[u8],
        base: u64,
        out: &mut Vec<Report>,
        pending: &mut Vec<(u64, u32)>,
    ) {
        debug_assert_eq!(chunk.len(), sum.len);
        let w = self.w;
        // Selector: base bit for every component, plus the tags of the
        // true entry states.
        scratch.sigma.fill(0);
        scratch.rescan.fill(false);
        for comp in 0..self.n_comps {
            scratch.sigma[comp * w] |= 1;
        }
        let mut rescan_comps: Vec<u32> = Vec::new();
        for &s in &cfg.active {
            let comp = self.comp_of[s as usize] as usize;
            let t = self.tag_of[s as usize];
            if t == TAG_NONE {
                if !scratch.rescan[comp] {
                    scratch.rescan[comp] = true;
                    rescan_comps.push(comp as u32);
                }
            } else {
                let t = t as usize;
                scratch.sigma[comp * w + t / 64] |= 1u64 << (t % 64);
            }
        }
        let mut new_active: Vec<u32> = Vec::new();
        // Verified fallback for sampled components.
        for &comp in &rescan_comps {
            let entry: Vec<u32> = cfg
                .active
                .iter()
                .copied()
                .filter(|&s| self.comp_of[s as usize] == comp)
                .collect();
            self.run_exact(
                scratch,
                Some(comp),
                &entry,
                &mut cfg.counts,
                &mut cfg.latched,
                chunk,
                base,
                sum.last,
                sum.maybe_last,
                out,
                pending,
                &mut new_active,
            );
        }
        // Resolve speculative report events.
        for (i, r) in sum.reports.iter().enumerate() {
            let comp = r.comp as usize;
            if scratch.rescan[comp] {
                continue;
            }
            if intersects(
                &sum.report_masks[i * w..][..w],
                &scratch.sigma[comp * w..][..w],
            ) {
                out.push(Report {
                    offset: base + r.cycle as u64,
                    code: ReportCode(r.code),
                });
            }
        }
        // Replay counter pulses (already in cycle order) against the
        // true counter state; counter reports resolve only here.
        for (i, p) in sum.pulses.iter().enumerate() {
            let ci = p.ci as usize;
            let elem = self.counter_elem_ids[ci] as usize;
            let comp = self.comp_of[elem] as usize;
            if scratch.rescan[comp] {
                continue;
            }
            let masks = &sum.pulse_masks[i * 2 * w..][..2 * w];
            let sg = &scratch.sigma[comp * w..][..w];
            let en = intersects(&masks[..w], sg);
            let rs = intersects(&masks[w..], sg);
            if !en && !rs {
                continue;
            }
            if self.step_counter(ci, en, rs, &mut cfg.counts, &mut cfg.latched)
                && self.has_report[elem]
            {
                let cycle = p.cycle as usize;
                let apos = base + p.cycle as u64;
                let last_sym = sum.last && cycle + 1 == sum.len;
                let maybe_sym = sum.maybe_last && cycle + 1 == sum.len;
                if self.report_eod[elem] && !last_sym {
                    if maybe_sym {
                        pending.push((apos, self.report_code[elem]));
                    }
                } else {
                    out.push(Report {
                        offset: apos,
                        code: ReportCode(self.report_code[elem]),
                    });
                }
            }
        }
        // Resolve held-back end-of-data candidates.
        for (i, cd) in sum.cands.iter().enumerate() {
            let comp = cd.comp as usize;
            if scratch.rescan[comp] {
                continue;
            }
            if intersects(
                &sum.cand_masks[i * w..][..w],
                &scratch.sigma[comp * w..][..w],
            ) {
                pending.push((base + (sum.len - 1) as u64, cd.code));
            }
        }
        // Resolve the exit configuration.
        for (i, &s) in sum.exit_states.iter().enumerate() {
            let comp = self.comp_of[s as usize] as usize;
            if scratch.rescan[comp] {
                continue;
            }
            if intersects(
                &sum.exit_masks[i * w..][..w],
                &scratch.sigma[comp * w..][..w],
            ) {
                new_active.push(s);
            }
        }
        new_active.sort_unstable();
        new_active.dedup();
        cfg.active = new_active;
    }

    /// Fresh runtime scratch sized for this scanner.
    pub(crate) fn new_scratch(&self) -> FrontierScratch {
        let nc = self.counters.len();
        FrontierScratch {
            cur: Vec::new(),
            next: Vec::new(),
            stamp: vec![0; self.n],
            generation: 0,
            cur_masks: vec![0; self.n * self.w],
            next_masks: vec![0; self.n * self.w],
            cnt_enable_mask: vec![0; nc * self.w],
            cnt_reset_mask: vec![0; nc * self.w],
            cnt_enable: vec![false; nc],
            cnt_reset: vec![false; nc],
            cnt_touched: vec![false; nc],
            touched: Vec::new(),
            sigma: vec![0; self.n_comps * self.w],
            rescan: vec![false; self.n_comps],
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::sink::CollectSink;
    use crate::{Engine, NfaEngine, StreamingEngine};
    use azoo_core::Port;

    fn nfa_scan(a: &Automaton, input: &[u8]) -> Vec<(u64, u32)> {
        let mut e = NfaEngine::new(a).unwrap();
        let mut sink = CollectSink::new();
        e.scan(input, &mut sink);
        sink.sorted_reports()
            .into_iter()
            .map(|r| (r.offset, r.code.0))
            .collect()
    }

    fn nfa_feed(a: &Automaton, feeds: &[&[u8]]) -> Vec<(u64, u32)> {
        let mut e = NfaEngine::new(a).unwrap();
        let mut sink = CollectSink::new();
        e.reset_stream();
        for (i, chunk) in feeds.iter().enumerate() {
            e.feed(chunk, i + 1 == feeds.len(), &mut sink);
        }
        sink.sorted_reports()
            .into_iter()
            .map(|r| (r.offset, r.code.0))
            .collect()
    }

    /// Test-local mirror of the scanner-side stitching protocol: exact
    /// first subchunk, speculative rest, cross-feed pending handling via
    /// the tail filter.
    struct Harness {
        fs: FrontierScanner,
        scratch: FrontierScratch,
        cfg: SpecConfig,
        pending: Vec<(u64, u32)>,
        tail: Vec<(u64, u32)>,
        offset: u64,
    }

    impl Harness {
        fn new(a: &Automaton) -> Harness {
            let fs = FrontierScanner::new(a).unwrap();
            let scratch = fs.new_scratch();
            let cfg = fs.initial_config();
            Harness {
                fs,
                scratch,
                cfg,
                pending: Vec::new(),
                tail: Vec::new(),
                offset: 0,
            }
        }

        fn feed(&mut self, chunk: &[u8], k: usize, eod: bool) -> Vec<(u64, u32)> {
            let mut out: Vec<Report> = Vec::new();
            if chunk.is_empty() {
                if eod {
                    let mut flushed: Vec<(u64, u32)> = self
                        .pending
                        .drain(..)
                        .filter(|p| !self.tail.contains(p))
                        .collect();
                    flushed.sort_unstable();
                    flushed.dedup();
                    return flushed;
                }
                return Vec::new();
            }
            self.pending.clear();
            let k = k.clamp(1, chunk.len());
            let step = chunk.len().div_ceil(k);
            let bounds: Vec<(usize, usize)> = (0..chunk.len())
                .step_by(step)
                .map(|s| (s, (s + step).min(chunk.len())))
                .collect();
            let n_sub = bounds.len();
            // Speculate on every subchunk but the first, whose entry is
            // already known.
            let sums: Vec<Option<ChunkSummary>> = bounds
                .iter()
                .enumerate()
                .map(|(i, &(s, e))| {
                    if i == 0 {
                        None
                    } else {
                        let last = eod && i + 1 == n_sub;
                        let maybe = !eod && i + 1 == n_sub;
                        Some(
                            self.fs
                                .summarize(&mut self.scratch, &chunk[s..e], last, maybe),
                        )
                    }
                })
                .collect();
            for (i, &(s, e)) in bounds.iter().enumerate() {
                let base = self.offset + s as u64;
                let last = eod && i + 1 == n_sub;
                let maybe = !eod && i + 1 == n_sub;
                match &sums[i] {
                    None => {
                        let entry = std::mem::take(&mut self.cfg.active);
                        let mut exits = Vec::new();
                        self.fs.run_exact(
                            &mut self.scratch,
                            None,
                            &entry,
                            &mut self.cfg.counts,
                            &mut self.cfg.latched,
                            &chunk[s..e],
                            base,
                            last,
                            maybe,
                            &mut out,
                            &mut self.pending,
                            &mut exits,
                        );
                        exits.sort_unstable();
                        exits.dedup();
                        self.cfg.active = exits;
                    }
                    Some(sum) => {
                        self.fs.stitch(
                            &mut self.scratch,
                            &mut self.cfg,
                            sum,
                            &chunk[s..e],
                            base,
                            &mut out,
                            &mut self.pending,
                        );
                    }
                }
            }
            self.offset += chunk.len() as u64;
            let mut reps: Vec<(u64, u32)> = out.iter().map(|r| (r.offset, r.code.0)).collect();
            reps.sort_unstable();
            reps.dedup();
            self.tail = reps
                .iter()
                .copied()
                .filter(|&(o, _)| o + 1 == self.offset)
                .collect();
            self.pending.sort_unstable();
            self.pending.dedup();
            reps
        }
    }

    fn spec_scan(a: &Automaton, input: &[u8], k: usize) -> Vec<(u64, u32)> {
        let mut h = Harness::new(a);
        h.feed(input, k, true)
    }

    fn spec_feed(a: &Automaton, feeds: &[&[u8]], k: usize) -> Vec<(u64, u32)> {
        let mut h = Harness::new(a);
        let mut all = Vec::new();
        for (i, chunk) in feeds.iter().enumerate() {
            all.extend(h.feed(chunk, k, i + 1 == feeds.len()));
        }
        all.sort_unstable();
        all
    }

    fn lcg_input(len: usize, alphabet: &[u8], seed: u64) -> Vec<u8> {
        let mut x = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..len)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                alphabet[(x >> 33) as usize % alphabet.len()]
            })
            .collect()
    }

    /// `ab` chain feeding a terminal latch counter (SPM shape), with a
    /// reset line driven by `z`.
    fn counter_machine(mode: CounterMode) -> Automaton {
        let mut a = Automaton::new();
        let classes: Vec<SymbolClass> = b"ab".iter().map(|&b| SymbolClass::from_byte(b)).collect();
        let (_, last) = a.add_chain(&classes, StartKind::AllInput);
        let c = a.add_counter(3, mode);
        a.add_edge(last, c);
        a.set_report(c, 7);
        let z = a.add_ste(SymbolClass::from_byte(b'z'), StartKind::AllInput);
        a.add_reset_edge(z, c);
        a
    }

    /// `a (b)* c` — the cyclic fallback shape from the parallel tests.
    fn cycle_machine() -> Automaton {
        let mut a = Automaton::new();
        let s0 = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::AllInput);
        let s1 = a.add_ste(SymbolClass::from_byte(b'b'), StartKind::None);
        let s2 = a.add_ste(SymbolClass::from_byte(b'c'), StartKind::None);
        a.add_edge(s0, s1);
        a.add_edge(s1, s1);
        a.add_edge(s0, s2);
        a.add_edge(s1, s2);
        a.set_report(s2, 4);
        a
    }

    /// Anchored `qr` — the `StartOfData` fallback shape.
    fn sod_machine() -> Automaton {
        let mut a = Automaton::new();
        let classes: Vec<SymbolClass> = b"qr".iter().map(|&b| SymbolClass::from_byte(b)).collect();
        let (_, last) = a.add_chain(&classes, StartKind::StartOfData);
        a.set_report(last, 2);
        a
    }

    #[test]
    fn counter_chunks_match_nfa() {
        for mode in [CounterMode::Latch, CounterMode::Pulse, CounterMode::Roll] {
            let a = counter_machine(mode);
            let input = lcg_input(997, b"abzx", 1);
            let expected = nfa_scan(&a, &input);
            assert!(!expected.is_empty(), "{mode:?} vacuous");
            for k in [1, 2, 3, 5, 8, 16] {
                assert_eq!(spec_scan(&a, &input, k), expected, "{mode:?} k={k}");
            }
        }
    }

    #[test]
    fn cycle_chunks_match_nfa() {
        let a = cycle_machine();
        let input = lcg_input(512, b"abcx", 2);
        let expected = nfa_scan(&a, &input);
        assert!(!expected.is_empty());
        for k in [1, 2, 4, 7, 32] {
            assert_eq!(spec_scan(&a, &input, k), expected, "k={k}");
        }
    }

    #[test]
    fn anchored_chunks_match_nfa() {
        let a = sod_machine();
        for input in [&b"qrqrqr"[..], &b"xqr"[..], &b"qr"[..], &b"q"[..]] {
            let expected = nfa_scan(&a, input);
            for k in [1, 2, 3] {
                assert_eq!(spec_scan(&a, input, k), expected, "k={k} input={input:?}");
            }
        }
    }

    #[test]
    fn eod_anchored_reports_resolve_across_feeds() {
        let mut a = cycle_machine();
        for (id, _) in a.clone().iter() {
            a.set_report_eod_only(id, true);
        }
        let input = lcg_input(301, b"abcx", 3);
        let expected = nfa_scan(&a, &input);
        for k in [1, 2, 4] {
            assert_eq!(spec_scan(&a, &input, k), expected, "block k={k}");
        }
        // Streaming: candidates held at a feed seam must flush on an
        // empty eod feed and cancel on a later non-empty feed.
        let (h1, h2) = input.split_at(150);
        for k in [1, 3] {
            assert_eq!(
                spec_feed(&a, &[h1, h2], k),
                nfa_feed(&a, &[h1, h2]),
                "two feeds k={k}"
            );
            assert_eq!(
                spec_feed(&a, &[&input, b""], k),
                nfa_feed(&a, &[&input, b""]),
                "empty eod flush k={k}"
            );
        }
    }

    #[test]
    fn streaming_feeds_match_nfa() {
        for a in [
            counter_machine(CounterMode::Latch),
            cycle_machine(),
            sod_machine(),
        ] {
            let input = lcg_input(300, b"abczqrx", 5);
            let mut feeds: Vec<&[u8]> = vec![&input[..1], b"", &input[1..2]];
            feeds.push(&input[2..150]);
            feeds.push(&input[150..]);
            feeds.push(b"");
            for k in [1, 2, 4] {
                assert_eq!(spec_feed(&a, &feeds, k), nfa_feed(&a, &feeds), "k={k}");
            }
        }
    }

    #[test]
    fn oversized_component_samples_and_verifies() {
        // A 300-state cycle: frontier exceeds the 255-tag budget, so the
        // component is sampled and stitches through verified re-scans.
        let mut a = Automaton::new();
        let head = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::AllInput);
        let mut prev = head;
        for _ in 0..299 {
            let s = a.add_ste(SymbolClass::from_bytes(b"ab"), StartKind::None);
            a.add_edge(prev, s);
            prev = s;
        }
        a.add_edge(prev, head);
        a.set_report(prev, 9);
        let fs = FrontierScanner::new(&a).unwrap();
        assert_eq!(fs.sampled_comp_count(), 1);
        let input = lcg_input(2048, b"ab", 11);
        let expected = nfa_scan(&a, &input);
        assert!(!expected.is_empty());
        for k in [2, 5] {
            assert_eq!(spec_scan(&a, &input, k), expected, "k={k}");
        }
    }

    #[test]
    fn multi_component_tag_spaces_are_independent() {
        // Two components share mask words; reports and exits must not
        // bleed between them.
        let mut a = Automaton::new();
        let s0 = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::AllInput);
        let s1 = a.add_ste(SymbolClass::from_byte(b'b'), StartKind::None);
        a.add_edge(s0, s1);
        a.add_edge(s1, s1);
        a.set_report(s1, 1);
        let t0 = a.add_ste(SymbolClass::from_byte(b'b'), StartKind::AllInput);
        let t1 = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::None);
        a.add_edge(t0, t1);
        a.add_edge(t1, t1);
        a.set_report(t1, 2);
        let input = lcg_input(600, b"abx", 21);
        let expected = nfa_scan(&a, &input);
        for k in [1, 2, 3, 9] {
            assert_eq!(spec_scan(&a, &input, k), expected, "k={k}");
        }
    }

    #[test]
    fn quiescent_skip_is_exact_in_both_passes() {
        // Sparse hits inside long dead stretches exercise the wake-set
        // skip in summarize and run_exact.
        let a = counter_machine(CounterMode::Latch);
        let mut input = vec![b'x'; 4096];
        for i in [100usize, 101, 900, 901, 2000, 2001, 3000, 3001] {
            input[i] = if i % 2 == 0 { b'a' } else { b'b' };
        }
        input[2500] = b'z';
        let expected = nfa_scan(&a, &input);
        for k in [1, 4, 16] {
            assert_eq!(spec_scan(&a, &input, k), expected, "k={k}");
        }
    }

    #[test]
    fn reset_edge_maps_to_port_bit() {
        let a = counter_machine(CounterMode::Latch);
        let fs = FrontierScanner::new(&a).unwrap();
        let mut saw_reset = false;
        for (id, _) in a.iter() {
            for e in a.successors(id) {
                if e.port == Port::Reset {
                    saw_reset = true;
                }
            }
        }
        assert!(saw_reset);
        assert!(fs.succ_tgt.iter().any(|&t| t & PORT_BIT != 0));
    }
}

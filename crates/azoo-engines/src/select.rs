//! Automatic engine selection.
//!
//! Different benchmark shapes favour different engines (the core lesson
//! of the paper's cross-engine experiments): chain automata run fastest
//! bit-parallel, small-alphabet regex automata determinize well, and
//! counters or explosive subset construction require the sparse NFA
//! engine. [`select_engine`] encodes that portfolio policy.

use azoo_core::Automaton;

use crate::prefilter::PREFILTER_COVERAGE_GATE;
use crate::{
    BitParallelEngine, Engine, EngineError, LazyDfaEngine, NfaEngine, ParallelScanner,
    PrefilterEngine, SessionEngine,
};

/// Which engine [`select_engine`] picked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineChoice {
    /// The dense bit-parallel Shift-And engine.
    BitParallel,
    /// The lazy-DFA engine.
    LazyDfa,
    /// The literal-prefilter engine (windowed simulation gated behind an
    /// Aho–Corasick trigger, with NFA fallback for rejected components).
    Prefilter,
    /// The sparse active-set NFA engine.
    Nfa,
    /// The multi-threaded sharding/chunking scanner.
    Parallel {
        /// Worker thread count.
        threads: usize,
    },
}

/// Picks the fastest applicable engine for `a`:
///
/// 1. chain-shaped automata → [`BitParallelEngine`] (dense bitwise
///    advance; best for literal sets, RF chains, CRISPR filters) —
///    chosen only while the state vector stays cache-resident;
/// 2. counter-free automata of bounded size → [`LazyDfaEngine`];
/// 3. automata whose components mostly carry required literals →
///    [`PrefilterEngine`] (gated on
///    [`PREFILTER_COVERAGE_GATE`](crate::PREFILTER_COVERAGE_GATE));
/// 4. everything else (counters, huge NFAs) → [`NfaEngine`].
///
/// # Errors
///
/// Propagates [`EngineError::Invalid`] if the automaton fails
/// validation.
/// Pre-flight structural check run before any engine is constructed.
///
/// Release builds run [`Automaton::validate`] (stops at the first
/// violation). Debug builds run the full Error-level rule set
/// ([`Automaton::validate_all`]) — the same rules `azoo-analyze` reports
/// as Error diagnostics — and reject the automaton with the earliest
/// violation, so a machine that lints dirty can never reach an engine
/// in development even if `validate`'s early-exit order changes.
fn preflight(a: &Automaton) -> Result<(), EngineError> {
    if cfg!(debug_assertions) {
        match a.validate_all().into_iter().next() {
            Some(e) => Err(EngineError::Invalid(e)),
            None => Ok(()),
        }
    } else {
        Ok(a.validate()?)
    }
}

pub fn select_engine(a: &Automaton) -> Result<(EngineChoice, Box<dyn Engine>), EngineError> {
    let (choice, engine) = select_session_engine(a)?;
    Ok((choice, engine))
}

/// Compile-path options for [`select_engine_with`] /
/// [`select_session_engine_with`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SelectOpts {
    /// Worker thread count; 0 and 1 both mean the single-threaded
    /// portfolio.
    pub threads: usize,
    /// Run the `azoo-passes` reduction tier
    /// ([`azoo_passes::reduce`]) before engine selection. The reduced
    /// automaton's report stream is byte-identical, so this only
    /// changes which engine wins and how much state it carries.
    pub reduce: bool,
}

/// [`select_engine`] with a [`SelectOpts`] compile path: optional
/// reduction, then thread-aware portfolio selection.
///
/// # Errors
///
/// Propagates [`EngineError::Invalid`] if the automaton fails
/// validation (the *input* automaton — reduction requires a valid
/// machine and preserves validity).
pub fn select_engine_with(
    a: &Automaton,
    opts: SelectOpts,
) -> Result<(EngineChoice, Box<dyn Engine>), EngineError> {
    let (choice, engine) = select_session_engine_with(a, opts)?;
    Ok((choice, engine))
}

/// Streaming-capable variant of [`select_engine_with`]; see
/// [`select_session_engine`].
///
/// # Errors
///
/// Propagates [`EngineError::Invalid`] if the automaton fails
/// validation.
pub fn select_session_engine_with(
    a: &Automaton,
    opts: SelectOpts,
) -> Result<(EngineChoice, Box<dyn SessionEngine>), EngineError> {
    let threads = opts.threads.max(1);
    if opts.reduce {
        preflight(a)?;
        let (reduced, _) = azoo_passes::reduce(a);
        return select_session_engine_threaded(&reduced, threads);
    }
    select_session_engine_threaded(a, threads)
}

/// Streaming-capable variant of [`select_engine`]: the same portfolio
/// policy, but the boxed engine also exposes the
/// [`StreamingEngine`](crate::StreamingEngine) feed protocol and
/// [`SessionEngine::clone_session`], as session pools (azoo-serve)
/// require. [`select_engine`] delegates here, so the two can never
/// disagree on the choice.
///
/// # Errors
///
/// Propagates [`EngineError::Invalid`] if the automaton fails
/// validation.
pub fn select_session_engine(
    a: &Automaton,
) -> Result<(EngineChoice, Box<dyn SessionEngine>), EngineError> {
    preflight(a)?;
    // Bit-parallel: chain-shaped and small enough that the per-symbol
    // mask walk stays cheap (~256 KiB of active-set words).
    if a.state_count() <= 2_000_000 {
        if let Ok(engine) = BitParallelEngine::new(a) {
            return Ok((EngineChoice::BitParallel, Box::new(engine)));
        }
    }
    if a.counter_count() == 0 && a.state_count() <= 200_000 {
        if let Ok(engine) = LazyDfaEngine::new(a) {
            return Ok((EngineChoice::LazyDfa, Box::new(engine)));
        }
    }
    // Prefilter: worthwhile only when required literals gate most of the
    // state space; otherwise the fallback remainder dominates and plain
    // sparse simulation is simpler.
    let engine = PrefilterEngine::new(a)?;
    if engine.component_count() > 0 && engine.coverage() >= PREFILTER_COVERAGE_GATE {
        return Ok((EngineChoice::Prefilter, Box::new(engine)));
    }
    Ok((EngineChoice::Nfa, Box::new(NfaEngine::new(a)?)))
}

/// Thread-aware variant of [`select_engine`]: with more than one thread
/// it builds a [`ParallelScanner`] (whose merged stream matches the
/// single-threaded engines byte for byte), otherwise it defers to the
/// single-threaded portfolio.
///
/// # Errors
///
/// Propagates [`EngineError::Invalid`] if the automaton fails
/// validation.
pub fn select_engine_threaded(
    a: &Automaton,
    threads: usize,
) -> Result<(EngineChoice, Box<dyn Engine>), EngineError> {
    let (choice, engine) = select_session_engine_threaded(a, threads)?;
    Ok((choice, engine))
}

/// Streaming-capable variant of [`select_engine_threaded`]; see
/// [`select_session_engine`].
///
/// # Errors
///
/// Propagates [`EngineError::Invalid`] if the automaton fails
/// validation.
pub fn select_session_engine_threaded(
    a: &Automaton,
    threads: usize,
) -> Result<(EngineChoice, Box<dyn SessionEngine>), EngineError> {
    if threads > 1 {
        preflight(a)?;
        // Shards whose components carry required literals run behind the
        // prefilter (same gate as the single-threaded portfolio); the
        // merged stream is identical either way.
        let engine = ParallelScanner::with_prefilter(a, threads, true)?;
        return Ok((EngineChoice::Parallel { threads }, Box::new(engine)));
    }
    select_session_engine(a)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::sink::CollectSink;
    use azoo_core::{CounterMode, StartKind, SymbolClass};

    #[test]
    fn chains_get_bit_parallel() {
        let mut a = Automaton::new();
        let (_, last) = a.add_chain(&[SymbolClass::from_byte(b'x'); 4], StartKind::AllInput);
        a.set_report(last, 0);
        let (choice, mut engine) = select_engine(&a).unwrap();
        assert_eq!(choice, EngineChoice::BitParallel);
        let mut sink = CollectSink::new();
        engine.scan(b"xxxx", &mut sink);
        assert_eq!(sink.reports().len(), 1);
    }

    #[test]
    fn fanout_gets_lazy_dfa() {
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::AllInput);
        let t1 = a.add_ste(SymbolClass::from_byte(b'b'), StartKind::None);
        let t2 = a.add_ste(SymbolClass::from_byte(b'c'), StartKind::None);
        a.add_edge(s, t1);
        a.add_edge(s, t2);
        a.set_report(t1, 0);
        a.set_report(t2, 1);
        let (choice, _) = select_engine(&a).unwrap();
        assert_eq!(choice, EngineChoice::LazyDfa);
    }

    #[test]
    fn counters_force_nfa() {
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::AllInput);
        let t = a.add_ste(SymbolClass::from_byte(b'b'), StartKind::None);
        a.add_edge(s, t);
        a.add_edge(s, s); // self loop plus fan-out breaks the chain shape
        a.add_edge(t, s);
        let c = a.add_counter(2, CounterMode::Latch);
        a.add_edge(t, c);
        a.set_report(c, 0);
        let (choice, _) = select_engine(&a).unwrap();
        assert_eq!(choice, EngineChoice::Nfa);
    }

    #[test]
    fn big_literal_suites_get_the_prefilter() {
        // Counter-free but too large for the lazy DFA and not
        // chain-shaped (one fanout component), with required literals
        // everywhere: the prefilter tier catches it.
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::AllInput);
        let t1 = a.add_ste(SymbolClass::from_byte(b'b'), StartKind::None);
        let t2 = a.add_ste(SymbolClass::from_byte(b'c'), StartKind::None);
        a.add_edge(s, t1);
        a.add_edge(s, t2);
        a.set_report(t1, 0);
        a.set_report(t2, 1);
        for i in 0..30_000u32 {
            let word = format!("w{i:06}");
            let classes: Vec<SymbolClass> = word.bytes().map(SymbolClass::from_byte).collect();
            let (_, last) = a.add_chain(&classes, StartKind::AllInput);
            a.set_report(last, 2 + i);
        }
        assert!(a.state_count() > 200_000);
        let (choice, mut engine) = select_engine(&a).unwrap();
        assert_eq!(choice, EngineChoice::Prefilter);
        let mut sink = CollectSink::new();
        engine.scan(b"xx w000017 ab", &mut sink);
        assert_eq!(sink.reports().len(), 2);
    }

    #[test]
    fn threaded_selection_uses_parallel_scanner() {
        let mut a = Automaton::new();
        let (_, last) = a.add_chain(&[SymbolClass::from_byte(b'x'); 4], StartKind::AllInput);
        a.set_report(last, 0);
        let (choice, mut engine) = select_engine_threaded(&a, 4).unwrap();
        assert_eq!(choice, EngineChoice::Parallel { threads: 4 });
        let mut sink = CollectSink::new();
        engine.scan(b"xxxxx", &mut sink);
        assert_eq!(sink.reports().len(), 2);
    }

    #[test]
    fn single_thread_defers_to_portfolio() {
        let mut a = Automaton::new();
        let (_, last) = a.add_chain(&[SymbolClass::from_byte(b'x'); 4], StartKind::AllInput);
        a.set_report(last, 0);
        let (choice, _) = select_engine_threaded(&a, 1).unwrap();
        assert_eq!(choice, EngineChoice::BitParallel);
    }

    #[test]
    fn reduce_opt_preserves_reports() {
        // Two identical copies of one pattern: the reduction tier merges
        // them and the report stream is unchanged.
        let mut a = Automaton::new();
        for _ in 0..2 {
            let (_, last) = a.add_chain(&[SymbolClass::from_byte(b'x'); 4], StartKind::AllInput);
            a.set_report(last, 0);
        }
        let (_, mut plain) = select_engine_with(&a, SelectOpts::default()).unwrap();
        let opts = SelectOpts {
            threads: 1,
            reduce: true,
        };
        let (_, mut reduced) = select_engine_with(&a, opts).unwrap();
        let (mut s1, mut s2) = (CollectSink::new(), CollectSink::new());
        plain.scan(b"xxxxxy", &mut s1);
        reduced.scan(b"xxxxxy", &mut s2);
        assert_eq!(s1.reports(), s2.reports());
        assert_eq!(s1.reports().len(), 2);
    }

    #[test]
    fn invalid_automata_error() {
        let mut a = Automaton::new();
        a.add_ste(SymbolClass::EMPTY, StartKind::AllInput);
        assert!(select_engine(&a).is_err());
    }

    #[test]
    fn preflight_rejects_duplicate_edges() {
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::AllInput);
        let t = a.add_ste(SymbolClass::from_byte(b'b'), StartKind::None);
        a.add_edge(s, t);
        a.add_edge(s, t);
        a.set_report(t, 0);
        assert!(matches!(
            select_engine(&a),
            Err(EngineError::Invalid(
                azoo_core::CoreError::DuplicateEdge { .. }
            ))
        ));
        assert!(select_engine_threaded(&a, 4).is_err());
    }
}

//! Automatic engine selection.
//!
//! Different benchmark shapes favour different engines (the core lesson
//! of the paper's cross-engine experiments): chain automata run fastest
//! bit-parallel, small-alphabet regex automata determinize well, and
//! counters or explosive subset construction require the sparse NFA
//! engine. [`select_engine`] encodes that portfolio policy.

use azoo_core::{Automaton, ElementKind, Port};

use crate::prefilter::PREFILTER_COVERAGE_GATE;
use crate::{
    BitParallelEngine, Engine, EngineError, LazyDfaEngine, NfaEngine, ParallelScanner,
    PrefilterEngine, SessionEngine, ShengEngine,
};

/// Which engine [`select_engine`] picked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineChoice {
    /// The dense bit-parallel Shift-And engine.
    BitParallel,
    /// The lazy-DFA engine.
    LazyDfa,
    /// The Sheng-style shuffle-DFA engine (machines determinizing to at
    /// most 16 states; one `pshufb` per symbol).
    Sheng,
    /// The literal-prefilter engine (windowed simulation gated behind an
    /// Aho–Corasick trigger, with NFA fallback for rejected components).
    Prefilter,
    /// The sparse active-set NFA engine.
    Nfa,
    /// The multi-threaded sharding/chunking scanner.
    Parallel {
        /// Worker thread count.
        threads: usize,
    },
}

/// Picks the fastest applicable engine for `a`:
///
/// 1. chain-shaped automata → [`BitParallelEngine`] (dense bitwise
///    advance; best for literal sets, RF chains, CRISPR filters) —
///    chosen only while the state vector stays cache-resident;
/// 2. counter-free automata of bounded size → the DFA tier:
///    [`ShengEngine`] when the machine determinizes to at most 16
///    states (single-`pshufb` stepping), [`LazyDfaEngine`] otherwise;
/// 3. automata whose components mostly carry required literals →
///    [`PrefilterEngine`] (admitted by [`prefilter_gate`], the
///    [`PREFILTER_COVERAGE_GATE`](crate::PREFILTER_COVERAGE_GATE)
///    weighted by literal length and trigger bucket load);
/// 4. everything else (counters, huge NFAs) → [`NfaEngine`].
///
/// # Errors
///
/// Propagates [`EngineError::Invalid`] if the automaton fails
/// validation.
/// Pre-flight structural check run before any engine is constructed.
///
/// Release builds run [`Automaton::validate`] (stops at the first
/// violation). Debug builds run the full Error-level rule set
/// ([`Automaton::validate_all`]) — the same rules `azoo-analyze` reports
/// as Error diagnostics — and reject the automaton with the earliest
/// violation, so a machine that lints dirty can never reach an engine
/// in development even if `validate`'s early-exit order changes.
fn preflight(a: &Automaton) -> Result<(), EngineError> {
    if cfg!(debug_assertions) {
        match a.validate_all().into_iter().next() {
            Some(e) => Err(EngineError::Invalid(e)),
            None => Ok(()),
        }
    } else {
        Ok(a.validate()?)
    }
}

pub fn select_engine(a: &Automaton) -> Result<(EngineChoice, Box<dyn Engine>), EngineError> {
    let (choice, engine) = select_session_engine(a)?;
    Ok((choice, engine))
}

/// Detects the layered edit-distance mesh shape `azoo-fuzzy` emits
/// (and the zoo's Levenshtein/Hamming filters hand-build): counter-free,
/// acyclic, and dominated by Σ / near-Σ error-track states. Returns the
/// wide-class state count when the shape matches.
///
/// Subset construction over such a mesh enumerates the pattern's
/// positions-×-edits antichains and blows up exponentially in the edit
/// budget, while sparse simulation carries at most one active frontier
/// per error layer — so the portfolio routes these straight to the NFA
/// tier rather than letting the lazy DFA thrash its cache. The acyclic
/// check keeps self-looping shapes (SeqMatch skip states, `.*` cores)
/// out: those determinize fine.
fn fuzzy_layered_shape(a: &Automaton) -> Option<usize> {
    if a.counter_count() != 0 || a.state_count() == 0 {
        return None;
    }
    // Error-track states accept Σ (insertion tracks) or a large
    // complement class (substitution/deletion tracks): anything over
    // half the alphabet counts as "wide".
    let mut wide = 0usize;
    for (_, el) in a.iter() {
        if let ElementKind::Ste { class, .. } = &el.kind {
            if class.len() >= 128 {
                wide += 1;
            }
        }
    }
    if wide < 16 || wide * 4 < a.state_count() {
        return None;
    }
    // Kahn toposort over activate edges: any cycle disqualifies.
    let mut indegree = vec![0usize; a.state_count()];
    for (id, _) in a.iter() {
        for edge in a.successors(id) {
            if edge.port == Port::Activate {
                indegree[edge.to.index()] += 1;
            }
        }
    }
    let mut queue: Vec<usize> = (0..a.state_count()).filter(|&i| indegree[i] == 0).collect();
    let mut seen = 0usize;
    while let Some(i) = queue.pop() {
        seen += 1;
        for edge in a.successors(azoo_core::StateId::new(i)) {
            if edge.port == Port::Activate {
                let j = edge.to.index();
                indegree[j] -= 1;
                if indegree[j] == 0 {
                    queue.push(j);
                }
            }
        }
    }
    (seen == a.state_count()).then_some(wide)
}

/// The prefilter tier's admission gate for `pf`, as an effective
/// coverage threshold.
///
/// A flat coverage cut treats every literal set alike, which mis-ranks
/// the edges (the paper's Brill near-parity row): what the gated slice
/// actually costs depends on how often the trigger fires and how
/// expensive each candidate is to confirm. The gate therefore weighs
/// the raw [`PREFILTER_COVERAGE_GATE`] by literal length and trigger
/// bucket load:
///
/// * **Literal length** — each byte past the
///   [`MIN_STRONG_LITERAL`](azoo_passes::MIN_STRONG_LITERAL) floor cuts
///   expected trigger traffic ~256×, so longer minimum literals admit a
///   thinner gated slice (`gate × floor/min_len`).
/// * **Bucket load** — a set within the Teddy trigger's capacity
///   ([`TEDDY_MAX_PATTERNS`](azoo_simd::TEDDY_MAX_PATTERNS)) confirms
///   candidates at vector speed, lowering the bar a step further; a set
///   overflowing eight times that capacity saturates the Aho–Corasick
///   trigger's buckets and raises it back up.
pub fn prefilter_gate(pf: &PrefilterEngine) -> f64 {
    let mut gate = PREFILTER_COVERAGE_GATE;
    let floor = azoo_passes::MIN_STRONG_LITERAL as f64;
    let min_len = pf.min_literal_len() as f64;
    if min_len > 0.0 {
        gate *= (floor / min_len).min(1.0);
    }
    if pf.trigger_kind() == "teddy" {
        gate *= 0.8;
    } else if pf.literal_count() > 8 * azoo_simd::TEDDY_MAX_PATTERNS {
        gate *= 1.2;
    }
    gate.min(0.95)
}

/// Compile-path options for [`select_engine_with`] /
/// [`select_session_engine_with`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SelectOpts {
    /// Worker thread count; 0 and 1 both mean the single-threaded
    /// portfolio.
    pub threads: usize,
    /// Run the `azoo-passes` reduction tier
    /// ([`azoo_passes::reduce`]) before engine selection. The reduced
    /// automaton's report stream is byte-identical, so this only
    /// changes which engine wins and how much state it carries.
    pub reduce: bool,
}

/// [`select_engine`] with a [`SelectOpts`] compile path: optional
/// reduction, then thread-aware portfolio selection.
///
/// # Errors
///
/// Propagates [`EngineError::Invalid`] if the automaton fails
/// validation (the *input* automaton — reduction requires a valid
/// machine and preserves validity).
pub fn select_engine_with(
    a: &Automaton,
    opts: SelectOpts,
) -> Result<(EngineChoice, Box<dyn Engine>), EngineError> {
    let (choice, engine) = select_session_engine_with(a, opts)?;
    Ok((choice, engine))
}

/// Streaming-capable variant of [`select_engine_with`]; see
/// [`select_session_engine`].
///
/// # Errors
///
/// Propagates [`EngineError::Invalid`] if the automaton fails
/// validation.
pub fn select_session_engine_with(
    a: &Automaton,
    opts: SelectOpts,
) -> Result<(EngineChoice, Box<dyn SessionEngine>), EngineError> {
    let threads = opts.threads.max(1);
    if opts.reduce {
        preflight(a)?;
        let (reduced, _) = azoo_passes::reduce(a);
        return select_session_engine_threaded(&reduced, threads);
    }
    select_session_engine_threaded(a, threads)
}

/// Streaming-capable variant of [`select_engine`]: the same portfolio
/// policy, but the boxed engine also exposes the
/// [`StreamingEngine`](crate::StreamingEngine) feed protocol and
/// [`SessionEngine::clone_session`], as session pools (azoo-serve)
/// require. [`select_engine`] delegates here, so the two can never
/// disagree on the choice.
///
/// # Errors
///
/// Propagates [`EngineError::Invalid`] if the automaton fails
/// validation.
pub fn select_session_engine(
    a: &Automaton,
) -> Result<(EngineChoice, Box<dyn SessionEngine>), EngineError> {
    let (choice, _, engine) = select_session_engine_explained(a)?;
    Ok((choice, engine))
}

/// [`select_session_engine`] plus a human-readable reason for the
/// choice, suitable for bench-row and report annotations (see
/// [`ReportStats::set_engine_tier`](crate::ReportStats::set_engine_tier)).
///
/// # Errors
///
/// Propagates [`EngineError::Invalid`] if the automaton fails
/// validation.
pub fn select_session_engine_explained(
    a: &Automaton,
) -> Result<(EngineChoice, String, Box<dyn SessionEngine>), EngineError> {
    preflight(a)?;
    // Bit-parallel: chain-shaped and small enough that the per-symbol
    // mask walk stays cheap (~256 KiB of active-set words).
    if a.state_count() <= 2_000_000 {
        if let Ok(engine) = BitParallelEngine::new(a) {
            let reason = format!(
                "chain-shaped, {} states: dense bit-parallel advance",
                a.state_count()
            );
            return Ok((EngineChoice::BitParallel, reason, Box::new(engine)));
        }
    }
    // Layered edit-distance meshes (azoo-fuzzy, the zoo's Levenshtein /
    // Hamming filters) determinize explosively — the subset automaton
    // enumerates position-×-edit antichains — while sparse simulation
    // tracks one frontier per error layer. Route them past the DFA tier.
    if let Some(wide) = fuzzy_layered_shape(a) {
        let reason = format!(
            "layered edit-distance mesh ({} of {} states carry wide error-track classes): \
             determinizes explosively, sparse NFA frontier wins",
            wide,
            a.state_count()
        );
        return Ok((EngineChoice::Nfa, reason, Box::new(NfaEngine::new(a)?)));
    }
    if a.counter_count() == 0 && a.state_count() <= 200_000 {
        // Within the DFA tier the shuffle DFA wins whenever it applies:
        // a machine that fits 16 DFA states steps in one pshufb with no
        // cache probes, so the lazy DFA only takes the remainder.
        if let Ok(engine) = ShengEngine::new(a) {
            let reason = format!(
                "counter-free, determinizes to {} states (within the 16-state shuffle-DFA budget)",
                engine.state_count()
            );
            return Ok((EngineChoice::Sheng, reason, Box::new(engine)));
        }
        if let Ok(engine) = LazyDfaEngine::new(a) {
            let reason = format!(
                "counter-free, {} NFA states: lazy subset construction",
                a.state_count()
            );
            return Ok((EngineChoice::LazyDfa, reason, Box::new(engine)));
        }
    }
    // Prefilter: worthwhile only when required literals gate most of the
    // state space at an acceptable trigger cost (see [`prefilter_gate`]);
    // otherwise the fallback remainder dominates and plain sparse
    // simulation is simpler.
    let engine = PrefilterEngine::new(a)?;
    let gate = prefilter_gate(&engine);
    if engine.component_count() > 0 && engine.coverage() >= gate {
        let reason = format!(
            "literal coverage {:.2} >= weighted gate {:.2} ({} literals, min len {}, {} trigger)",
            engine.coverage(),
            gate,
            engine.literal_count(),
            engine.min_literal_len(),
            engine.trigger_kind()
        );
        return Ok((EngineChoice::Prefilter, reason, Box::new(engine)));
    }
    let reason = if engine.component_count() == 0 {
        "no prefilterable literals: sparse NFA simulation".to_string()
    } else {
        format!(
            "literal coverage {:.2} below weighted gate {:.2} ({} literals, min len {}): sparse NFA simulation",
            engine.coverage(),
            gate,
            engine.literal_count(),
            engine.min_literal_len()
        )
    };
    Ok((EngineChoice::Nfa, reason, Box::new(NfaEngine::new(a)?)))
}

/// Thread-aware variant of [`select_engine`]: with more than one thread
/// it builds a [`ParallelScanner`] (whose merged stream matches the
/// single-threaded engines byte for byte), otherwise it defers to the
/// single-threaded portfolio.
///
/// # Errors
///
/// Propagates [`EngineError::Invalid`] if the automaton fails
/// validation.
pub fn select_engine_threaded(
    a: &Automaton,
    threads: usize,
) -> Result<(EngineChoice, Box<dyn Engine>), EngineError> {
    let (choice, engine) = select_session_engine_threaded(a, threads)?;
    Ok((choice, engine))
}

/// Streaming-capable variant of [`select_engine_threaded`]; see
/// [`select_session_engine`].
///
/// # Errors
///
/// Propagates [`EngineError::Invalid`] if the automaton fails
/// validation.
pub fn select_session_engine_threaded(
    a: &Automaton,
    threads: usize,
) -> Result<(EngineChoice, Box<dyn SessionEngine>), EngineError> {
    if threads > 1 {
        preflight(a)?;
        // Shards whose components carry required literals run behind the
        // prefilter (same gate as the single-threaded portfolio); the
        // merged stream is identical either way.
        let engine = ParallelScanner::with_prefilter(a, threads, true)?;
        return Ok((EngineChoice::Parallel { threads }, Box::new(engine)));
    }
    select_session_engine(a)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::sink::CollectSink;
    use azoo_core::{CounterMode, StartKind, SymbolClass};

    #[test]
    fn chains_get_bit_parallel() {
        let mut a = Automaton::new();
        let (_, last) = a.add_chain(&[SymbolClass::from_byte(b'x'); 4], StartKind::AllInput);
        a.set_report(last, 0);
        let (choice, mut engine) = select_engine(&a).unwrap();
        assert_eq!(choice, EngineChoice::BitParallel);
        let mut sink = CollectSink::new();
        engine.scan(b"xxxx", &mut sink);
        assert_eq!(sink.reports().len(), 1);
    }

    #[test]
    fn small_fanout_gets_sheng() {
        // Not chain-shaped, counter-free, determinizes to a handful of
        // states: the shuffle DFA takes it.
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::AllInput);
        let t1 = a.add_ste(SymbolClass::from_byte(b'b'), StartKind::None);
        let t2 = a.add_ste(SymbolClass::from_byte(b'c'), StartKind::None);
        a.add_edge(s, t1);
        a.add_edge(s, t2);
        a.set_report(t1, 0);
        a.set_report(t2, 1);
        let (choice, mut engine) = select_engine(&a).unwrap();
        assert_eq!(choice, EngineChoice::Sheng);
        let mut sink = CollectSink::new();
        engine.scan(b"ab.ac.a", &mut sink);
        assert_eq!(sink.reports().len(), 2);
    }

    #[test]
    fn fanout_gets_lazy_dfa() {
        // Same fan-out shape plus a 20-deep tail: more than 16 DFA
        // states, so the DFA tier falls through to the lazy DFA.
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::AllInput);
        let t1 = a.add_ste(SymbolClass::from_byte(b'b'), StartKind::None);
        let t2 = a.add_ste(SymbolClass::from_byte(b'c'), StartKind::None);
        a.add_edge(s, t1);
        a.add_edge(s, t2);
        a.set_report(t1, 0);
        a.set_report(t2, 1);
        let (_, last) = a.add_chain(&[SymbolClass::from_byte(b'x'); 20], StartKind::AllInput);
        a.set_report(last, 2);
        let (choice, _) = select_engine(&a).unwrap();
        assert_eq!(choice, EngineChoice::LazyDfa);
    }

    #[test]
    fn counters_force_nfa() {
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::AllInput);
        let t = a.add_ste(SymbolClass::from_byte(b'b'), StartKind::None);
        a.add_edge(s, t);
        a.add_edge(s, s); // self loop plus fan-out breaks the chain shape
        a.add_edge(t, s);
        let c = a.add_counter(2, CounterMode::Latch);
        a.add_edge(t, c);
        a.set_report(c, 0);
        let (choice, _) = select_engine(&a).unwrap();
        assert_eq!(choice, EngineChoice::Nfa);
    }

    #[test]
    fn big_literal_suites_get_the_prefilter() {
        // Counter-free but too large for the lazy DFA and not
        // chain-shaped (one fanout component), with required literals
        // everywhere: the prefilter tier catches it.
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::AllInput);
        let t1 = a.add_ste(SymbolClass::from_byte(b'b'), StartKind::None);
        let t2 = a.add_ste(SymbolClass::from_byte(b'c'), StartKind::None);
        a.add_edge(s, t1);
        a.add_edge(s, t2);
        a.set_report(t1, 0);
        a.set_report(t2, 1);
        for i in 0..30_000u32 {
            let word = format!("w{i:06}");
            let classes: Vec<SymbolClass> = word.bytes().map(SymbolClass::from_byte).collect();
            let (_, last) = a.add_chain(&classes, StartKind::AllInput);
            a.set_report(last, 2 + i);
        }
        assert!(a.state_count() > 200_000);
        let (choice, mut engine) = select_engine(&a).unwrap();
        assert_eq!(choice, EngineChoice::Prefilter);
        let mut sink = CollectSink::new();
        engine.scan(b"xx w000017 ab", &mut sink);
        assert_eq!(sink.reports().len(), 2);
    }

    #[test]
    fn explained_selection_reports_the_gate_math() {
        // The Brill shape in miniature: literals exist but gate a small
        // minority of the states, so the weighted gate rejects the
        // prefilter and the reason says why.
        let mut a = Automaton::new();
        let (_, last) = a.add_chain(
            &b"word"
                .iter()
                .map(|&b| SymbolClass::from_byte(b))
                .collect::<Vec<_>>(),
            StartKind::AllInput,
        );
        a.set_report(last, 0);
        // A large counter-guarded remainder (counters keep the DFA tier
        // out of the race) drowns the coverage.
        for i in 0..60u32 {
            let s = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::AllInput);
            let c = a.add_counter(2 + i, CounterMode::Latch);
            a.add_edge(s, c);
            a.set_report(c, 1 + i);
        }
        let pf = PrefilterEngine::new(&a).unwrap();
        assert!(pf.coverage() < prefilter_gate(&pf));
        let (choice, reason, _) = select_session_engine_explained(&a).unwrap();
        assert_eq!(choice, EngineChoice::Nfa);
        assert!(
            reason.contains("below weighted gate"),
            "reason should explain the rejection: {reason}"
        );
    }

    #[test]
    fn weighted_gate_drops_with_literal_strength() {
        // Longer minimum literals admit a thinner gated slice.
        fn suite(len: usize) -> Automaton {
            let mut a = Automaton::new();
            let word: Vec<SymbolClass> = (0..len)
                .map(|i| SymbolClass::from_byte(b'a' + (i % 3) as u8))
                .collect();
            let (_, last) = a.add_chain(&word, StartKind::AllInput);
            a.set_report(last, 0);
            a
        }
        let short = PrefilterEngine::new(&suite(4)).unwrap();
        let long = PrefilterEngine::new(&suite(8)).unwrap();
        assert!(prefilter_gate(&long) < prefilter_gate(&short));
        assert!(prefilter_gate(&short) <= PREFILTER_COVERAGE_GATE);
    }

    #[test]
    fn fuzzy_meshes_route_straight_to_nfa() {
        // A 24-byte pattern at edit distance 2: well within the DFA
        // tier's size cut, but the layered-mesh detector must route it
        // to sparse simulation before subset construction gets a vote.
        let (a, _) = azoo_fuzzy::fuzzy_from_bytes(
            b"approximate_dictionary_x",
            2,
            azoo_fuzzy::EditProfile::LEVENSHTEIN,
            7,
        )
        .unwrap();
        assert!(a.state_count() <= 200_000);
        let (choice, reason, mut engine) = select_session_engine_explained(&a).unwrap();
        assert_eq!(choice, EngineChoice::Nfa, "{reason}");
        assert!(
            reason.contains("edit-distance mesh"),
            "reason should name the shape: {reason}"
        );
        let mut sink = CollectSink::new();
        engine.scan(b"zz approxmiate_dictionary_x zz", &mut sink);
        assert!(!sink.reports().is_empty());
    }

    #[test]
    fn small_fuzzy_meshes_stay_in_the_dfa_tier() {
        // Below the wide-state floor the heuristic stays out of the way:
        // a 4-byte pattern at k = 1 carries too few error-track states
        // to justify skipping the DFA tier.
        let (a, _) =
            azoo_fuzzy::fuzzy_from_bytes(b"gene", 1, azoo_fuzzy::EditProfile::HAMMING, 0).unwrap();
        assert!(fuzzy_layered_shape(&a).is_none());
        let (choice, _, _) = select_session_engine_explained(&a).unwrap();
        assert_ne!(choice, EngineChoice::Nfa);
    }

    #[test]
    fn self_looping_wide_states_are_not_fuzzy_shaped() {
        // SeqMatch-style Σ skip states self-loop; the acyclic check must
        // refuse them even when wide states dominate.
        let mut a = Automaton::new();
        let mut prev = None;
        for _ in 0..20 {
            let s = a.add_ste(SymbolClass::FULL, StartKind::None);
            a.add_edge(s, s);
            if let Some(p) = prev {
                a.add_edge(p, s);
            } else {
                let head = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::AllInput);
                a.add_edge(head, s);
            }
            prev = Some(s);
        }
        a.set_report(prev.unwrap(), 0);
        assert!(fuzzy_layered_shape(&a).is_none());
    }

    #[test]
    fn threaded_selection_uses_parallel_scanner() {
        let mut a = Automaton::new();
        let (_, last) = a.add_chain(&[SymbolClass::from_byte(b'x'); 4], StartKind::AllInput);
        a.set_report(last, 0);
        let (choice, mut engine) = select_engine_threaded(&a, 4).unwrap();
        assert_eq!(choice, EngineChoice::Parallel { threads: 4 });
        let mut sink = CollectSink::new();
        engine.scan(b"xxxxx", &mut sink);
        assert_eq!(sink.reports().len(), 2);
    }

    #[test]
    fn single_thread_defers_to_portfolio() {
        let mut a = Automaton::new();
        let (_, last) = a.add_chain(&[SymbolClass::from_byte(b'x'); 4], StartKind::AllInput);
        a.set_report(last, 0);
        let (choice, _) = select_engine_threaded(&a, 1).unwrap();
        assert_eq!(choice, EngineChoice::BitParallel);
    }

    #[test]
    fn reduce_opt_preserves_reports() {
        // Two identical copies of one pattern: the reduction tier merges
        // them and the report stream is unchanged.
        let mut a = Automaton::new();
        for _ in 0..2 {
            let (_, last) = a.add_chain(&[SymbolClass::from_byte(b'x'); 4], StartKind::AllInput);
            a.set_report(last, 0);
        }
        let (_, mut plain) = select_engine_with(&a, SelectOpts::default()).unwrap();
        let opts = SelectOpts {
            threads: 1,
            reduce: true,
        };
        let (_, mut reduced) = select_engine_with(&a, opts).unwrap();
        let (mut s1, mut s2) = (CollectSink::new(), CollectSink::new());
        plain.scan(b"xxxxxy", &mut s1);
        reduced.scan(b"xxxxxy", &mut s2);
        assert_eq!(s1.reports(), s2.reports());
        assert_eq!(s1.reports().len(), 2);
    }

    #[test]
    fn invalid_automata_error() {
        let mut a = Automaton::new();
        a.add_ste(SymbolClass::EMPTY, StartKind::AllInput);
        assert!(select_engine(&a).is_err());
    }

    #[test]
    fn preflight_rejects_duplicate_edges() {
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::AllInput);
        let t = a.add_ste(SymbolClass::from_byte(b'b'), StartKind::None);
        a.add_edge(s, t);
        a.add_edge(s, t);
        a.set_report(t, 0);
        assert!(matches!(
            select_engine(&a),
            Err(EngineError::Invalid(
                azoo_core::CoreError::DuplicateEdge { .. }
            ))
        ));
        assert!(select_engine_threaded(&a, 4).is_err());
    }
}

//! The VASim-equivalent sparse active-set NFA engine.

use azoo_core::{Automaton, CounterMode, ElementKind, StartKind, SymbolClass};

use azoo_simd::ByteFinder;

use crate::profile::Profile;
use crate::sink::ReportSink;
use crate::stream::StreamingEngine;
use crate::{Engine, EngineError};

// Non-reporting states are marked in `code_idx` (u32::MAX there is safe:
// the dense index is bounded by the distinct-code count). The raw report
// code must NOT double as a sentinel — u32::MAX is a legal code.
const NO_CODE_IDX: u32 = u32::MAX;
const PORT_BIT: u32 = 1 << 31;

/// Sparse active-set simulator for homogeneous automata with counters.
///
/// This engine mirrors VASim's execution model: it tracks the set of
/// dynamically enabled states, tests each against the input symbol, and
/// propagates activations. Work per symbol is proportional to the active
/// set, which is why AutomataZoo reports active set as the CPU performance
/// proxy.
///
/// Always-enabled (`AllInput`) start states are handled via a precomputed
/// per-byte match list, and — following the VASim convention — are *not*
/// counted in the [`Profile`]'s active set.
///
/// When the dynamic active set is empty and no counter is latched, a
/// symbol can only matter if it wakes an `AllInput` start state, so the
/// engine jumps straight to the next byte in the precomputed *wake-up
/// set* via [`azoo_simd::ByteFinder`] (vector `memchr` for up to three
/// wake bytes, a Truffle classifier for larger sets, with scalar twins
/// when SIMD is unavailable). The skip is exact — skipped symbols match nothing, report
/// nothing and change no counter — and it carries across streaming
/// `feed` chunks, since quiescence is engine state, not scan state.
/// [`set_quiescent_skip`](NfaEngine::set_quiescent_skip) disables it for
/// baseline measurements.
///
/// Reports are canonical: at most one report per `(offset, code)` pair,
/// even when several reporting states share a code and match together.
#[derive(Debug, Clone)]
pub struct NfaEngine {
    n: usize,
    classes: Vec<SymbolClass>,
    report_code: Vec<u32>,
    /// Dense index of each state's report code (for the per-cycle stamp
    /// table); `u32::MAX` for non-reporting states.
    code_idx: Vec<u32>,
    report_eod: Vec<bool>,
    is_always: Vec<bool>,
    is_counter: Vec<bool>,
    counter_idx: Vec<u32>,
    // CSR adjacency over all elements; top bit of a target marks the
    // reset port.
    succ_off: Vec<u32>,
    succ_tgt: Vec<u32>,
    sod_list: Vec<u32>,
    // CSR of `AllInput` states matching each byte value.
    always_off: Vec<u32>,
    always_dat: Vec<u32>,
    counters: Vec<CounterDef>,
    counter_elem_ids: Vec<u32>,
    wake: ByteFinder,
    wake_len: usize,
    quiescent: bool,

    // Reusable runtime scratch.
    cur: Vec<u32>,
    next: Vec<u32>,
    stamp: Vec<u32>,
    generation: u32,
    counts: Vec<u32>,
    latched: Vec<bool>,
    cnt_enable: Vec<bool>,
    cnt_reset: Vec<bool>,
    // Generation of the last cycle each counter counted in. A counter
    // samples its (OR'd) enable line once per symbol cycle, so a firing
    // counter re-activating itself — directly or through a counter
    // cycle — must not count again in the same cycle; without this
    // stamp a rolling counter in a combinational loop cascades forever.
    count_stamp: Vec<u32>,
    touched: Vec<u32>,
    latched_list: Vec<u32>,
    /// Per-cycle generation stamp per dense report code: replaces a
    /// linear `contains` scan for the one-report-per-code dedup.
    code_stamp: Vec<u32>,
    /// End-of-data reports held back because the final symbol of a
    /// non-`eod` feed *may* turn out to be the last of the stream. An
    /// empty `eod` feed emits them; a later non-empty feed discards them.
    pending_eod: Vec<(u64, u32)>,
    /// Per-cycle scratch of `(dense code index, code)` eod-gated
    /// candidates, filtered against unconditional reports after the cycle.
    pending_scratch: Vec<(u32, u32)>,
    stream_offset: u64,
}

#[derive(Debug, Clone)]
struct CounterDef {
    target: u32,
    mode: CounterMode,
}

impl NfaEngine {
    /// Compiles `a` for execution.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Invalid`] if `a` fails
    /// [`Automaton::validate`].
    pub fn new(a: &Automaton) -> Result<Self, EngineError> {
        a.validate()?;
        let n = a.state_count();
        let mut classes = vec![SymbolClass::EMPTY; n];
        let mut report_code = vec![0u32; n];
        let mut has_report = vec![false; n];
        let mut report_eod = vec![false; n];
        let mut is_always = vec![false; n];
        let mut is_counter = vec![false; n];
        let mut counter_idx = vec![u32::MAX; n];
        let mut sod_list = Vec::new();
        let mut counters = Vec::new();
        let mut counter_elem_ids = Vec::new();
        let mut always = Vec::new();
        for (id, e) in a.iter() {
            let i = id.index();
            if let Some(code) = e.report {
                report_code[i] = code.0;
                has_report[i] = true;
            }
            report_eod[i] = e.report_eod_only;
            match &e.kind {
                ElementKind::Ste { class, start } => {
                    classes[i] = *class;
                    match start {
                        StartKind::None => {}
                        StartKind::StartOfData => sod_list.push(i as u32),
                        StartKind::AllInput => {
                            is_always[i] = true;
                            always.push(i as u32);
                        }
                    }
                }
                ElementKind::Counter { target, mode } => {
                    is_counter[i] = true;
                    counter_idx[i] = counters.len() as u32;
                    counter_elem_ids.push(i as u32);
                    counters.push(CounterDef {
                        target: *target,
                        mode: *mode,
                    });
                }
            }
        }
        let mut succ_off = Vec::with_capacity(n + 1);
        let mut succ_tgt = Vec::with_capacity(a.edge_count());
        succ_off.push(0);
        for (id, _) in a.iter() {
            for edge in a.successors(id) {
                let mut t = edge.to.index() as u32;
                if edge.port == azoo_core::Port::Reset {
                    t |= PORT_BIT;
                }
                succ_tgt.push(t);
            }
            succ_off.push(succ_tgt.len() as u32);
        }
        let mut always_off = Vec::with_capacity(257);
        let mut always_dat = Vec::new();
        let mut wake = SymbolClass::EMPTY;
        always_off.push(0);
        for b in 0..=255u8 {
            for &s in &always {
                if classes[s as usize].contains(b) {
                    always_dat.push(s);
                }
            }
            always_off.push(always_dat.len() as u32);
        }
        for &s in &always {
            wake = wake.union(&classes[s as usize]);
        }
        let wake_len = wake.len() as usize;
        // Dense report-code index for the stamped per-cycle dedup.
        let mut codes: Vec<u32> = report_code
            .iter()
            .zip(&has_report)
            .filter(|&(_, &has)| has)
            .map(|(&c, _)| c)
            .collect();
        codes.sort_unstable();
        codes.dedup();
        let code_idx: Vec<u32> = report_code
            .iter()
            .zip(&has_report)
            .map(|(&c, &has)| {
                if has {
                    codes.binary_search(&c).map_or(NO_CODE_IDX, |i| i as u32)
                } else {
                    NO_CODE_IDX
                }
            })
            .collect();
        let n_counters = counters.len();
        Ok(NfaEngine {
            n,
            classes,
            report_code,
            code_idx,
            report_eod,
            is_always,
            is_counter,
            counter_idx,
            succ_off,
            succ_tgt,
            sod_list,
            always_off,
            always_dat,
            counters,
            counter_elem_ids,
            wake: ByteFinder::from_bytes(&wake.iter().collect::<Vec<u8>>()),
            wake_len,
            quiescent: true,
            cur: Vec::new(),
            next: Vec::new(),
            stamp: vec![0; n],
            generation: 0,
            counts: vec![0; n_counters],
            latched: vec![false; n_counters],
            cnt_enable: vec![false; n_counters],
            cnt_reset: vec![false; n_counters],
            count_stamp: vec![0; n_counters],
            touched: Vec::new(),
            latched_list: Vec::new(),
            code_stamp: vec![0; codes.len()],
            pending_eod: Vec::new(),
            pending_scratch: Vec::new(),
            stream_offset: 0,
        })
    }

    /// Number of automaton elements.
    pub fn state_count(&self) -> usize {
        self.n
    }

    /// Enables or disables the quiescent-skip fast path (on by default).
    /// The skip is exact; turning it off exists only so harnesses can
    /// measure the unskipped baseline.
    pub fn set_quiescent_skip(&mut self, on: bool) {
        self.quiescent = on;
    }

    /// Number of byte values that can wake an empty active set (the size
    /// of the union of all `AllInput` start classes).
    pub fn wake_set_size(&self) -> usize {
        self.wake_len
    }

    /// Scans `input` while collecting an activity [`Profile`].
    pub fn scan_profiled(&mut self, input: &[u8], sink: &mut dyn ReportSink) -> Profile {
        self.run::<true>(input, sink)
    }

    fn run<const PROFILE: bool>(&mut self, input: &[u8], sink: &mut dyn ReportSink) -> Profile {
        self.reset_run_state();
        self.process::<PROFILE>(input, 0, true, sink)
    }

    fn reset_run_state(&mut self) {
        self.cur.clear();
        self.next.clear();
        self.counts.fill(0);
        self.latched.fill(false);
        self.latched_list.clear();
        // A latched counter re-arms its successors after the per-cycle
        // drain (`settle_counters` runs its drive loop after clearing
        // `touched`), so pending enables legitimately straddle cycle
        // boundaries — and therefore survive end of stream. A recycled
        // engine must not inherit them or the first symbol of the next
        // stream would settle a counter that was never activated.
        self.touched.clear();
        self.cnt_enable.fill(false);
        self.cnt_reset.fill(false);
        self.pending_eod.clear();
        self.pending_scratch.clear();
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            self.stamp.fill(u32::MAX);
            self.code_stamp.fill(u32::MAX);
            self.count_stamp.fill(u32::MAX);
            self.generation = 1;
        }
        // Seed start-of-data states.
        let gen = self.generation;
        for i in 0..self.sod_list.len() {
            let s = self.sod_list[i];
            if self.stamp[s as usize] != gen {
                self.stamp[s as usize] = gen;
                self.cur.push(s);
            }
        }
    }

    fn process<const PROFILE: bool>(
        &mut self,
        input: &[u8],
        base: u64,
        eod: bool,
        sink: &mut dyn ReportSink,
    ) -> Profile {
        let mut profile = Profile::default();
        let len = input.len();
        // New symbols mean the previously held-back end-of-data
        // candidates were not at the end of the stream after all.
        if len > 0 {
            self.pending_eod.clear();
        }
        let mut pos = 0usize;
        while pos < len {
            // Quiescent skip: with no dynamically active states and no
            // latched counter driving its successors, a symbol outside
            // the wake-up set matches nothing, reports nothing and
            // leaves every counter untouched — so jump to the next
            // waking byte. (Held counter counts are unaffected: with no
            // enable pulse a count simply persists.)
            if self.quiescent && self.cur.is_empty() && self.latched_list.is_empty() {
                debug_assert!(self.touched.is_empty());
                let skipped = match self.wake.find(&input[pos..]) {
                    Some(d) => d,
                    None => len - pos,
                };
                if PROFILE {
                    // Skipped symbols are processed symbols with zero
                    // enabled states, zero matches and zero reports.
                    profile.symbols += skipped as u64;
                }
                pos += skipped;
                if pos == len {
                    break;
                }
            }
            let c = input[pos];
            let apos = base + pos as u64;
            let last = eod && pos + 1 == len;
            let maybe_last = !eod && pos + 1 == len;
            if PROFILE {
                profile.symbols += 1;
                profile.total_enabled += self.cur.len() as u64;
            }
            self.generation = self.generation.wrapping_add(1);
            if self.generation == 0 {
                self.stamp.fill(u32::MAX);
                self.code_stamp.fill(u32::MAX);
                self.count_stamp.fill(u32::MAX);
                self.generation = 1;
            }
            let gen = self.generation;
            let mut matched_count = 0u64;
            let mut reports = 0u64;

            // Dynamically enabled states.
            for ci in 0..self.cur.len() {
                let s = self.cur[ci] as usize;
                if !self.classes[s].contains(c) {
                    continue;
                }
                matched_count += 1;
                reports += self.report_if_due(s, gen, apos, last, maybe_last, sink);
                self.activate(s, gen);
            }
            // Always-enabled start states that match this byte (CSR
            // slice, indexed so `activate` can reborrow `self`).
            let lo = self.always_off[c as usize] as usize;
            let hi = self.always_off[c as usize + 1] as usize;
            for ai in lo..hi {
                let s = self.always_dat[ai] as usize;
                matched_count += 1;
                reports += self.report_if_due(s, gen, apos, last, maybe_last, sink);
                self.activate(s, gen);
            }

            // Counter bookkeeping at end of cycle.
            reports += self.settle_counters(gen, apos, last, maybe_last, sink);

            // Keep only the end-of-data candidates no unconditional
            // report claimed this cycle (one canonical report per
            // `(offset, code)` either way).
            if maybe_last && !self.pending_scratch.is_empty() {
                for i in 0..self.pending_scratch.len() {
                    let (idx, code) = self.pending_scratch[i];
                    if self.code_stamp[idx as usize] != gen {
                        self.pending_eod.push((apos, code));
                    }
                }
                self.pending_scratch.clear();
            }

            if PROFILE {
                profile.total_matched += matched_count;
                profile.total_reports += reports;
            }
            std::mem::swap(&mut self.cur, &mut self.next);
            self.next.clear();
            pos += 1;
        }
        profile
    }

    /// Emits `s`'s report unless it has no code, is end-of-data gated, or
    /// its code already reported this cycle (stamp dedup). With
    /// `maybe_last` (final symbol of a non-`eod` feed), suppressed
    /// end-of-data reports are remembered as pending candidates instead.
    #[inline]
    fn report_if_due(
        &mut self,
        s: usize,
        gen: u32,
        pos: u64,
        last: bool,
        maybe_last: bool,
        sink: &mut dyn ReportSink,
    ) -> u64 {
        if self.code_idx[s] == NO_CODE_IDX {
            return 0;
        }
        let code = self.report_code[s];
        let idx = self.code_idx[s] as usize;
        if self.report_eod[s] && !last {
            if maybe_last
                && self.code_stamp[idx] != gen
                && !self.pending_scratch.iter().any(|&(i, _)| i == idx as u32)
            {
                self.pending_scratch.push((idx as u32, code));
            }
            return 0;
        }
        if self.code_stamp[idx] == gen {
            return 0;
        }
        self.code_stamp[idx] = gen;
        sink.report(pos, azoo_core::ReportCode(code));
        1
    }

    /// Propagates an activation from element `s` (counters never report
    /// here — they report in `settle_counters`).
    #[inline]
    fn activate(&mut self, s: usize, gen: u32) {
        let lo = self.succ_off[s] as usize;
        let hi = self.succ_off[s + 1] as usize;
        for ei in lo..hi {
            let raw = self.succ_tgt[ei];
            let reset = raw & PORT_BIT != 0;
            let t = (raw & !PORT_BIT) as usize;
            if self.is_counter[t] {
                let ci = self.counter_idx[t] as usize;
                if !self.cnt_enable[ci] && !self.cnt_reset[ci] {
                    self.touched.push(ci as u32);
                }
                if reset {
                    self.cnt_reset[ci] = true;
                } else {
                    self.cnt_enable[ci] = true;
                }
            } else if !self.is_always[t] && self.stamp[t] != gen {
                self.stamp[t] = gen;
                self.next.push(t as u32);
            }
        }
    }

    fn settle_counters(
        &mut self,
        gen: u32,
        pos: u64,
        last: bool,
        maybe_last: bool,
        sink: &mut dyn ReportSink,
    ) -> u64 {
        let mut reports = 0u64;
        // `activate` below may append to `touched` (counter-to-counter
        // edges), so iterate with a growing bound.
        let mut ti = 0;
        while ti < self.touched.len() {
            let ci = self.touched[ti] as usize;
            ti += 1;
            let def_target = self.counters[ci].target;
            let mode = self.counters[ci].mode;
            let mut fired = false;
            if self.cnt_reset[ci] {
                self.counts[ci] = 0;
                if self.latched[ci] {
                    self.latched[ci] = false;
                    self.latched_list.retain(|&x| x as usize != ci);
                }
            } else if self.cnt_enable[ci]
                && self.counts[ci] < def_target
                && self.count_stamp[ci] != gen
            {
                self.count_stamp[ci] = gen;
                self.counts[ci] += 1;
                if self.counts[ci] == def_target {
                    fired = true;
                    match mode {
                        CounterMode::Latch => {
                            if !self.latched[ci] {
                                self.latched[ci] = true;
                                self.latched_list.push(ci as u32);
                            }
                        }
                        CounterMode::Pulse => {}
                        CounterMode::Roll => self.counts[ci] = 0,
                    }
                }
            }
            self.cnt_enable[ci] = false;
            self.cnt_reset[ci] = false;
            if fired {
                let elem = self.counter_element(ci);
                reports += self.report_if_due(elem, gen, pos, last, maybe_last, sink);
                self.activate(elem, gen);
            }
        }
        self.touched.clear();
        // Latched counters keep driving their successors every cycle
        // (indexed loop: `activate` touches `next`/`touched`/counter
        // flags, never `latched_list`, so no buffer swap is needed).
        for li in 0..self.latched_list.len() {
            let elem = self.counter_element(self.latched_list[li] as usize);
            self.activate(elem, gen);
        }
        reports
    }

    fn counter_element(&self, ci: usize) -> usize {
        self.counter_elem_ids[ci] as usize
    }
}

impl StreamingEngine for NfaEngine {
    fn reset_stream(&mut self) {
        self.reset_run_state();
        self.stream_offset = 0;
    }

    fn stream_quiesced(&self) -> bool {
        // After a reset the active set holds exactly the seeded
        // start-of-data states (`sod_list` is duplicate-free); everything
        // dynamic — counter values, latches, pending enable/reset pulses,
        // held-back `$` reports, per-cycle scratch, the stream offset —
        // must be at zero.
        self.stream_offset == 0
            && self.next.is_empty()
            && self.touched.is_empty()
            && !self.cnt_enable.iter().any(|&b| b)
            && !self.cnt_reset.iter().any(|&b| b)
            && self.pending_eod.is_empty()
            && self.pending_scratch.is_empty()
            && self.latched_list.is_empty()
            && !self.latched.iter().any(|&l| l)
            && self.counts.iter().all(|&c| c == 0)
            && self.cur.len() == self.sod_list.len()
            && self.cur.iter().all(|s| self.sod_list.contains(s))
    }

    fn feed(&mut self, chunk: &[u8], eod: bool, sink: &mut dyn ReportSink) {
        let base = self.stream_offset;
        self.process::<false>(chunk, base, eod, sink);
        self.stream_offset = base + chunk.len() as u64;
        if eod {
            // End of data on an empty chunk: the last symbol was consumed
            // by an earlier feed — emit the reports it held back.
            for i in 0..self.pending_eod.len() {
                let (off, code) = self.pending_eod[i];
                sink.report(off, azoo_core::ReportCode(code));
            }
            self.pending_eod.clear();
        }
    }
}

impl Engine for NfaEngine {
    fn scan(&mut self, input: &[u8], sink: &mut dyn ReportSink) {
        self.run::<false>(input, sink);
    }

    fn name(&self) -> &'static str {
        "nfa"
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::sink::{CollectSink, CountSink};
    use azoo_core::SymbolClass;

    #[test]
    fn state_count_reflects_elements() {
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::FULL, StartKind::AllInput);
        a.add_counter(2, CounterMode::Roll);
        a.set_report(s, 0);
        let engine = NfaEngine::new(&a).unwrap();
        assert_eq!(engine.state_count(), 2);
    }

    #[test]
    fn rejects_invalid_automata() {
        let mut a = Automaton::new();
        a.add_ste(SymbolClass::EMPTY, StartKind::AllInput);
        assert!(matches!(
            NfaEngine::new(&a),
            Err(crate::EngineError::Invalid(_))
        ));
    }

    #[test]
    fn generation_wraparound_is_survivable() {
        // Force the generation counter near wrap and verify scans still
        // produce correct results afterwards.
        let mut a = Automaton::new();
        let (_, last) = a.add_chain(
            &[SymbolClass::from_byte(b'x'), SymbolClass::from_byte(b'y')],
            StartKind::AllInput,
        );
        a.set_report(last, 0);
        let mut engine = NfaEngine::new(&a).unwrap();
        engine.generation = u32::MAX - 3;
        for _ in 0..8 {
            let mut sink = CountSink::new();
            engine.scan(b"xy", &mut sink);
            assert_eq!(sink.count(), 1);
        }
    }

    #[test]
    fn same_code_reports_deduplicate_per_cycle() {
        // Two parallel states with the same code matching together yield
        // one canonical report.
        let mut a = Automaton::new();
        for _ in 0..2 {
            let s = a.add_ste(SymbolClass::from_byte(b'k'), StartKind::AllInput);
            a.set_report(s, 7);
        }
        let mut engine = NfaEngine::new(&a).unwrap();
        let mut sink = CollectSink::new();
        engine.scan(b"kk", &mut sink);
        assert_eq!(sink.reports().len(), 2); // one per offset, not four
    }

    #[test]
    fn distinct_codes_all_fire() {
        let mut a = Automaton::new();
        for code in 0..3 {
            let s = a.add_ste(SymbolClass::from_byte(b'k'), StartKind::AllInput);
            a.set_report(s, code);
        }
        let mut engine = NfaEngine::new(&a).unwrap();
        let mut sink = CollectSink::new();
        engine.scan(b"k", &mut sink);
        assert_eq!(sink.reports().len(), 3);
    }

    #[test]
    fn sparse_codes_deduplicate_per_cycle() {
        // Codes far apart (dense indexing, not direct indexing by code).
        let mut a = Automaton::new();
        for _ in 0..2 {
            let s = a.add_ste(SymbolClass::from_byte(b'k'), StartKind::AllInput);
            a.set_report(s, 3_000_000_000);
        }
        let s = a.add_ste(SymbolClass::from_byte(b'k'), StartKind::AllInput);
        a.set_report(s, 5);
        let mut engine = NfaEngine::new(&a).unwrap();
        let mut sink = CollectSink::new();
        engine.scan(b"k", &mut sink);
        assert_eq!(sink.reports().len(), 2);
    }

    #[test]
    fn wake_set_reflects_start_classes() {
        let mut a = Automaton::new();
        a.add_chain(
            &[SymbolClass::from_byte(b'a'), SymbolClass::from_byte(b'b')],
            StartKind::AllInput,
        );
        a.add_chain(&[SymbolClass::from_byte(b'c'); 2], StartKind::AllInput);
        let engine = NfaEngine::new(&a).unwrap();
        assert_eq!(engine.wake_set_size(), 2); // 'a' and 'c'; 'b' is not a start
    }

    #[test]
    fn quiescent_skip_is_exact() {
        // Sparse pattern over noisy input: skip on and off must agree,
        // including the activity profile.
        let mut a = Automaton::new();
        let classes: Vec<SymbolClass> = b"needle"
            .iter()
            .map(|&b| SymbolClass::from_byte(b))
            .collect();
        let (_, last) = a.add_chain(&classes, StartKind::AllInput);
        a.set_report(last, 0);
        let mut input = vec![b'.'; 4096];
        input[100..106].copy_from_slice(b"needle");
        input[4090..4096].copy_from_slice(b"needle");
        input[200..206].copy_from_slice(b"nexdle"); // partial arm then die
        let mut on = NfaEngine::new(&a).unwrap();
        let mut off = NfaEngine::new(&a).unwrap();
        off.set_quiescent_skip(false);
        let (mut s1, mut s2) = (CollectSink::new(), CollectSink::new());
        let p1 = on.scan_profiled(&input, &mut s1);
        let p2 = off.scan_profiled(&input, &mut s2);
        assert_eq!(s1.sorted_reports(), s2.sorted_reports());
        assert_eq!(s1.reports().len(), 2);
        assert_eq!(p1, p2);
        assert_eq!(p1.symbols, 4096);
    }

    #[test]
    fn quiescence_carries_across_feed_chunks() {
        let mut a = Automaton::new();
        let classes: Vec<SymbolClass> = b"ab".iter().map(|&b| SymbolClass::from_byte(b)).collect();
        let (_, last) = a.add_chain(&classes, StartKind::AllInput);
        a.set_report(last, 0);
        let mut input = vec![b'.'; 300];
        input[149] = b'a'; // straddles the 150-byte chunk boundary
        input[150] = b'b';
        let mut engine = NfaEngine::new(&a).unwrap();
        let mut sink = CollectSink::new();
        engine.scan_chunks([&input[..150], &input[150..]], &mut sink);
        let offsets: Vec<u64> = sink.reports().iter().map(|r| r.offset).collect();
        assert_eq!(offsets, vec![150]);
    }

    #[test]
    fn latched_counter_suppresses_skip() {
        // Once latched, the counter drives its successor every cycle —
        // skipping would silence the downstream report.
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::from_byte(b'k'), StartKind::AllInput);
        let c = a.add_counter(2, CounterMode::Latch);
        let t = a.add_ste(SymbolClass::from_byte(b'z'), StartKind::None);
        a.add_edge(s, c);
        a.add_edge(c, t);
        a.set_report(t, 1);
        let mut on = NfaEngine::new(&a).unwrap();
        let mut off = NfaEngine::new(&a).unwrap();
        off.set_quiescent_skip(false);
        let input = b"kk..z...z";
        let (mut s1, mut s2) = (CollectSink::new(), CollectSink::new());
        on.scan(input, &mut s1);
        off.scan(input, &mut s2);
        assert_eq!(s1.sorted_reports(), s2.sorted_reports());
        assert_eq!(s1.reports().len(), 2);
    }

    #[test]
    fn rolling_counter_in_a_combinational_loop_counts_once_per_cycle() {
        // A counter activating itself (found by the differential oracle,
        // seed 2040): the fire -> self-enable -> count -> fire cascade
        // used to loop forever inside a single symbol cycle. A counter
        // samples its enable line once per cycle, so it fires exactly
        // once per enabling symbol.
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::AllInput);
        let c = a.add_counter(1, CounterMode::Roll);
        a.add_edge(s, c);
        a.add_edge(c, c); // combinational loop
        a.set_report(c, 5);
        a.validate().unwrap();
        let mut engine = NfaEngine::new(&a).unwrap();
        let mut sink = CollectSink::new();
        engine.scan(b"axa", &mut sink);
        let got: Vec<(u64, u32)> = sink
            .sorted_reports()
            .iter()
            .map(|r| (r.offset, r.code.0))
            .collect();
        assert_eq!(got, vec![(0, 5), (2, 5)]);
    }
}

//! The VASim-equivalent sparse active-set NFA engine.

use azoo_core::{Automaton, CounterMode, ElementKind, StartKind};

use crate::profile::Profile;
use crate::sink::ReportSink;
use crate::stream::StreamingEngine;
use crate::{Engine, EngineError};

const NO_REPORT: u32 = u32::MAX;
const PORT_BIT: u32 = 1 << 31;

/// Sparse active-set simulator for homogeneous automata with counters.
///
/// This engine mirrors VASim's execution model: it tracks the set of
/// dynamically enabled states, tests each against the input symbol, and
/// propagates activations. Work per symbol is proportional to the active
/// set, which is why AutomataZoo reports active set as the CPU performance
/// proxy.
///
/// Always-enabled (`AllInput`) start states are handled via a precomputed
/// per-byte match list, and — following the VASim convention — are *not*
/// counted in the [`Profile`]'s active set.
///
/// Reports are canonical: at most one report per `(offset, code)` pair,
/// even when several reporting states share a code and match together.
#[derive(Debug, Clone)]
pub struct NfaEngine {
    n: usize,
    classes: Vec<azoo_core::SymbolClass>,
    report_code: Vec<u32>,
    report_eod: Vec<bool>,
    is_always: Vec<bool>,
    is_counter: Vec<bool>,
    counter_idx: Vec<u32>,
    // CSR adjacency over all elements; top bit of a target marks the
    // reset port.
    succ_off: Vec<u32>,
    succ_tgt: Vec<u32>,
    sod_list: Vec<u32>,
    always_by_byte: Vec<Vec<u32>>,
    counters: Vec<CounterDef>,
    counter_elem_ids: Vec<u32>,

    // Reusable runtime scratch.
    cur: Vec<u32>,
    next: Vec<u32>,
    stamp: Vec<u32>,
    generation: u32,
    counts: Vec<u32>,
    latched: Vec<bool>,
    cnt_enable: Vec<bool>,
    cnt_reset: Vec<bool>,
    touched: Vec<u32>,
    latched_list: Vec<u32>,
    cycle_codes: Vec<u32>,
    stream_offset: u64,
}

#[derive(Debug, Clone)]
struct CounterDef {
    target: u32,
    mode: CounterMode,
}

impl NfaEngine {
    /// Compiles `a` for execution.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Invalid`] if `a` fails
    /// [`Automaton::validate`].
    pub fn new(a: &Automaton) -> Result<Self, EngineError> {
        a.validate()?;
        let n = a.state_count();
        let mut classes = vec![azoo_core::SymbolClass::EMPTY; n];
        let mut report_code = vec![NO_REPORT; n];
        let mut report_eod = vec![false; n];
        let mut is_always = vec![false; n];
        let mut is_counter = vec![false; n];
        let mut counter_idx = vec![u32::MAX; n];
        let mut sod_list = Vec::new();
        let mut counters = Vec::new();
        let mut counter_elem_ids = Vec::new();
        let mut always = Vec::new();
        for (id, e) in a.iter() {
            let i = id.index();
            if let Some(code) = e.report {
                report_code[i] = code.0;
            }
            report_eod[i] = e.report_eod_only;
            match &e.kind {
                ElementKind::Ste { class, start } => {
                    classes[i] = *class;
                    match start {
                        StartKind::None => {}
                        StartKind::StartOfData => sod_list.push(i as u32),
                        StartKind::AllInput => {
                            is_always[i] = true;
                            always.push(i as u32);
                        }
                    }
                }
                ElementKind::Counter { target, mode } => {
                    is_counter[i] = true;
                    counter_idx[i] = counters.len() as u32;
                    counter_elem_ids.push(i as u32);
                    counters.push(CounterDef {
                        target: *target,
                        mode: *mode,
                    });
                }
            }
        }
        let mut succ_off = Vec::with_capacity(n + 1);
        let mut succ_tgt = Vec::with_capacity(a.edge_count());
        succ_off.push(0);
        for (id, _) in a.iter() {
            for edge in a.successors(id) {
                let mut t = edge.to.index() as u32;
                if edge.port == azoo_core::Port::Reset {
                    t |= PORT_BIT;
                }
                succ_tgt.push(t);
            }
            succ_off.push(succ_tgt.len() as u32);
        }
        let mut always_by_byte = vec![Vec::new(); 256];
        for &s in &always {
            for b in classes[s as usize].iter() {
                always_by_byte[b as usize].push(s);
            }
        }
        let n_counters = counters.len();
        Ok(NfaEngine {
            n,
            classes,
            report_code,
            report_eod,
            is_always,
            is_counter,
            counter_idx,
            succ_off,
            succ_tgt,
            sod_list,
            always_by_byte,
            counters,
            counter_elem_ids,
            cur: Vec::new(),
            next: Vec::new(),
            stamp: vec![0; n],
            generation: 0,
            counts: vec![0; n_counters],
            latched: vec![false; n_counters],
            cnt_enable: vec![false; n_counters],
            cnt_reset: vec![false; n_counters],
            touched: Vec::new(),
            latched_list: Vec::new(),
            cycle_codes: Vec::new(),
            stream_offset: 0,
        })
    }

    /// Number of automaton elements.
    pub fn state_count(&self) -> usize {
        self.n
    }

    /// Scans `input` while collecting an activity [`Profile`].
    pub fn scan_profiled(&mut self, input: &[u8], sink: &mut dyn ReportSink) -> Profile {
        self.run::<true>(input, sink)
    }

    fn run<const PROFILE: bool>(&mut self, input: &[u8], sink: &mut dyn ReportSink) -> Profile {
        self.reset_run_state();
        self.process::<PROFILE>(input, 0, true, sink)
    }

    fn reset_run_state(&mut self) {
        self.cur.clear();
        self.next.clear();
        self.counts.fill(0);
        self.latched.fill(false);
        self.latched_list.clear();
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            self.stamp.fill(u32::MAX);
            self.generation = 1;
        }
        // Seed start-of-data states.
        let gen = self.generation;
        for i in 0..self.sod_list.len() {
            let s = self.sod_list[i];
            if self.stamp[s as usize] != gen {
                self.stamp[s as usize] = gen;
                self.cur.push(s);
            }
        }
    }

    fn process<const PROFILE: bool>(
        &mut self,
        input: &[u8],
        base: u64,
        eod: bool,
        sink: &mut dyn ReportSink,
    ) -> Profile {
        let mut profile = Profile::default();
        for (pos, &c) in input.iter().enumerate() {
            let pos = base as usize + pos;
            let last = eod && pos + 1 == base as usize + input.len();
            if PROFILE {
                profile.symbols += 1;
                profile.total_enabled += self.cur.len() as u64;
            }
            self.generation = self.generation.wrapping_add(1);
            if self.generation == 0 {
                self.stamp.fill(u32::MAX);
                self.generation = 1;
            }
            let gen = self.generation;
            let mut matched_count = 0u64;
            let mut reports = 0u64;
            self.cycle_codes.clear();

            // Dynamically enabled states.
            for ci in 0..self.cur.len() {
                let s = self.cur[ci] as usize;
                if !self.classes[s].contains(c) {
                    continue;
                }
                matched_count += 1;
                let code = self.report_code[s];
                if code != NO_REPORT
                    && (!self.report_eod[s] || last)
                    && !self.cycle_codes.contains(&code)
                {
                    self.cycle_codes.push(code);
                    sink.report(pos as u64, azoo_core::ReportCode(code));
                    reports += 1;
                }
                reports += self.activate(s, gen, pos as u64);
            }
            // Always-enabled start states that match this byte.
            // (Split borrows: temporarily take the list to appease the
            // borrow checker without cloning.)
            let alist = std::mem::take(&mut self.always_by_byte[c as usize]);
            for &su in &alist {
                let s = su as usize;
                matched_count += 1;
                let code = self.report_code[s];
                if code != NO_REPORT
                    && (!self.report_eod[s] || last)
                    && !self.cycle_codes.contains(&code)
                {
                    self.cycle_codes.push(code);
                    sink.report(pos as u64, azoo_core::ReportCode(code));
                    reports += 1;
                }
                reports += self.activate(s, gen, pos as u64);
            }
            self.always_by_byte[c as usize] = alist;

            // Counter bookkeeping at end of cycle.
            reports += self.settle_counters(gen, pos as u64, last, sink);

            if PROFILE {
                profile.total_matched += matched_count;
                profile.total_reports += reports;
            }
            std::mem::swap(&mut self.cur, &mut self.next);
            self.next.clear();
        }
        profile
    }

    /// Propagates an activation from element `s`; returns reports emitted
    /// (counters never report here — they report in `settle_counters`).
    #[inline]
    fn activate(&mut self, s: usize, gen: u32, _pos: u64) -> u64 {
        let lo = self.succ_off[s] as usize;
        let hi = self.succ_off[s + 1] as usize;
        for ei in lo..hi {
            let raw = self.succ_tgt[ei];
            let reset = raw & PORT_BIT != 0;
            let t = (raw & !PORT_BIT) as usize;
            if self.is_counter[t] {
                let ci = self.counter_idx[t] as usize;
                if !self.cnt_enable[ci] && !self.cnt_reset[ci] {
                    self.touched.push(ci as u32);
                }
                if reset {
                    self.cnt_reset[ci] = true;
                } else {
                    self.cnt_enable[ci] = true;
                }
            } else if !self.is_always[t] && self.stamp[t] != gen {
                self.stamp[t] = gen;
                self.next.push(t as u32);
            }
        }
        0
    }

    fn settle_counters(
        &mut self,
        gen: u32,
        pos: u64,
        last: bool,
        sink: &mut dyn ReportSink,
    ) -> u64 {
        let mut reports = 0u64;
        // `activate` below may append to `touched` (counter-to-counter
        // edges), so iterate with a growing bound.
        let mut ti = 0;
        while ti < self.touched.len() {
            let ci = self.touched[ti] as usize;
            ti += 1;
            let def_target = self.counters[ci].target;
            let mode = self.counters[ci].mode;
            let mut fired = false;
            if self.cnt_reset[ci] {
                self.counts[ci] = 0;
                if self.latched[ci] {
                    self.latched[ci] = false;
                    self.latched_list.retain(|&x| x as usize != ci);
                }
            } else if self.cnt_enable[ci] && self.counts[ci] < def_target {
                self.counts[ci] += 1;
                if self.counts[ci] == def_target {
                    fired = true;
                    match mode {
                        CounterMode::Latch => {
                            if !self.latched[ci] {
                                self.latched[ci] = true;
                                self.latched_list.push(ci as u32);
                            }
                        }
                        CounterMode::Pulse => {}
                        CounterMode::Roll => self.counts[ci] = 0,
                    }
                }
            }
            self.cnt_enable[ci] = false;
            self.cnt_reset[ci] = false;
            if fired {
                let elem = self.counter_element(ci);
                let code = self.report_code[elem];
                if code != NO_REPORT
                    && (!self.report_eod[elem] || last)
                    && !self.cycle_codes.contains(&code)
                {
                    self.cycle_codes.push(code);
                    sink.report(pos, azoo_core::ReportCode(code));
                    reports += 1;
                }
                reports += self.activate(elem, gen, pos);
            }
        }
        self.touched.clear();
        // Latched counters keep driving their successors every cycle.
        let llist = std::mem::take(&mut self.latched_list);
        for &ci in &llist {
            let elem = self.counter_element(ci as usize);
            self.activate(elem, gen, pos);
        }
        self.latched_list = llist;
        reports
    }

    fn counter_element(&self, ci: usize) -> usize {
        self.counter_elem_ids[ci] as usize
    }
}

impl StreamingEngine for NfaEngine {
    fn reset_stream(&mut self) {
        self.reset_run_state();
        self.stream_offset = 0;
    }

    fn feed(&mut self, chunk: &[u8], eod: bool, sink: &mut dyn ReportSink) {
        let base = self.stream_offset;
        self.process::<false>(chunk, base, eod, sink);
        self.stream_offset = base + chunk.len() as u64;
    }
}

impl Engine for NfaEngine {
    fn scan(&mut self, input: &[u8], sink: &mut dyn ReportSink) {
        self.run::<false>(input, sink);
    }

    fn name(&self) -> &'static str {
        "nfa"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{CollectSink, CountSink};
    use azoo_core::SymbolClass;

    #[test]
    fn state_count_reflects_elements() {
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::FULL, StartKind::AllInput);
        a.add_counter(2, CounterMode::Roll);
        a.set_report(s, 0);
        let engine = NfaEngine::new(&a).unwrap();
        assert_eq!(engine.state_count(), 2);
    }

    #[test]
    fn rejects_invalid_automata() {
        let mut a = Automaton::new();
        a.add_ste(SymbolClass::EMPTY, StartKind::AllInput);
        assert!(matches!(
            NfaEngine::new(&a),
            Err(crate::EngineError::Invalid(_))
        ));
    }

    #[test]
    fn generation_wraparound_is_survivable() {
        // Force the generation counter near wrap and verify scans still
        // produce correct results afterwards.
        let mut a = Automaton::new();
        let (_, last) = a.add_chain(
            &[SymbolClass::from_byte(b'x'), SymbolClass::from_byte(b'y')],
            StartKind::AllInput,
        );
        a.set_report(last, 0);
        let mut engine = NfaEngine::new(&a).unwrap();
        engine.generation = u32::MAX - 3;
        for _ in 0..8 {
            let mut sink = CountSink::new();
            engine.scan(b"xy", &mut sink);
            assert_eq!(sink.count(), 1);
        }
    }

    #[test]
    fn same_code_reports_deduplicate_per_cycle() {
        // Two parallel states with the same code matching together yield
        // one canonical report.
        let mut a = Automaton::new();
        for _ in 0..2 {
            let s = a.add_ste(SymbolClass::from_byte(b'k'), StartKind::AllInput);
            a.set_report(s, 7);
        }
        let mut engine = NfaEngine::new(&a).unwrap();
        let mut sink = CollectSink::new();
        engine.scan(b"kk", &mut sink);
        assert_eq!(sink.reports().len(), 2); // one per offset, not four
    }

    #[test]
    fn distinct_codes_all_fire() {
        let mut a = Automaton::new();
        for code in 0..3 {
            let s = a.add_ste(SymbolClass::from_byte(b'k'), StartKind::AllInput);
            a.set_report(s, code);
        }
        let mut engine = NfaEngine::new(&a).unwrap();
        let mut sink = CollectSink::new();
        engine.scan(b"k", &mut sink);
        assert_eq!(sink.reports().len(), 3);
    }
}

//! Dense bit-parallel (multi-pattern Shift-And) engine for chain-shaped
//! automata.
//!
//! Benchmarks built from per-pattern chains — Random Forest leaf chains,
//! CRISPR guide filters, entity-resolution name chains — have a special
//! shape: every state has at most one non-self successor and one non-self
//! predecessor. Laying the chains out consecutively lets the whole active
//! set live in a bitmask, advanced with one shift and a handful of ANDs
//! per 64 states per symbol:
//!
//! ```text
//! matched = active & accept[symbol]
//! active' = ((matched & advance) << 1) | (matched & selfloop) | always
//! ```
//!
//! This is the CPU technique family (bit-parallelism over dense state
//! vectors) that production engines use for literal-heavy pattern sets.

use azoo_core::{Automaton, ElementKind, StartKind, StateId};

use crate::sink::ReportSink;
use crate::stream::StreamingEngine;
use crate::{Engine, EngineError};

const NO_REPORT: u32 = u32::MAX;

/// Bit-parallel executor for chain-shaped automata.
#[derive(Debug, Clone)]
pub struct BitParallelEngine {
    words: usize,
    accept: Vec<Vec<u64>>, // [256][words]
    advance: Vec<u64>,
    selfloop: Vec<u64>,
    always: Vec<u64>,
    sod: Vec<u64>,
    report: Vec<u64>,
    report_code: Vec<u32>, // by position
    report_eod: Vec<bool>,

    active: Vec<u64>,
    scratch: Vec<u64>,
    cycle_codes: Vec<u32>,
    /// End-of-data reports held back on the final symbol of a non-`eod`
    /// feed; an empty `eod` feed emits them, new data discards them.
    pending_eod: Vec<(u64, u32)>,
    /// Per-cycle scratch of eod-gated candidate codes.
    pending_scratch: Vec<u32>,
    stream_offset: u64,
}

impl BitParallelEngine {
    /// Compiles `a`, internally re-ordering states into chain layout.
    ///
    /// # Errors
    ///
    /// * [`EngineError::CountersUnsupported`] for counter elements.
    /// * [`EngineError::NotChainShaped`] if any state has more than one
    ///   non-self successor/predecessor or lies on a multi-state cycle.
    /// * [`EngineError::Invalid`] if validation fails.
    pub fn new(a: &Automaton) -> Result<Self, EngineError> {
        a.validate()?;
        let n = a.state_count();
        // Verify shape and compute the forward successor of each state.
        let mut fwd: Vec<Option<u32>> = vec![None; n];
        let mut selfloop_flags = vec![false; n];
        let mut in_deg = vec![0u32; n];
        for (id, e) in a.iter() {
            if e.is_counter() {
                return Err(EngineError::CountersUnsupported(id));
            }
            for edge in a.successors(id) {
                if edge.to == id {
                    selfloop_flags[id.index()] = true;
                } else {
                    if fwd[id.index()].is_some() {
                        return Err(EngineError::NotChainShaped(id));
                    }
                    fwd[id.index()] = Some(edge.to.index() as u32);
                    in_deg[edge.to.index()] += 1;
                    if in_deg[edge.to.index()] > 1 {
                        return Err(EngineError::NotChainShaped(edge.to));
                    }
                }
            }
        }
        // Chain layout: walk from heads.
        let mut position = vec![u32::MAX; n];
        let mut order: Vec<u32> = Vec::with_capacity(n);
        for (head, &deg) in in_deg.iter().enumerate() {
            if deg != 0 {
                continue;
            }
            let mut cur = head as u32;
            loop {
                position[cur as usize] = order.len() as u32;
                order.push(cur);
                match fwd[cur as usize] {
                    Some(next) => cur = next,
                    None => break,
                }
            }
        }
        if order.len() != n {
            // Leftover states form a non-self cycle.
            let bad = position
                .iter()
                .position(|&p| p == u32::MAX)
                .expect("some state is unplaced");
            return Err(EngineError::NotChainShaped(StateId::new(bad)));
        }

        let words = n.div_ceil(64);
        let mut accept = vec![vec![0u64; words]; 256];
        let mut advance = vec![0u64; words];
        let mut selfloop = vec![0u64; words];
        let mut always = vec![0u64; words];
        let mut sod = vec![0u64; words];
        let mut report = vec![0u64; words];
        let mut report_code = vec![NO_REPORT; n];
        let mut report_eod = vec![false; n];
        for (id, e) in a.iter() {
            let p = position[id.index()] as usize;
            let (w, m) = (p >> 6, 1u64 << (p & 63));
            let ElementKind::Ste { class, start } = &e.kind else {
                unreachable!("counters rejected above")
            };
            for b in class.iter() {
                accept[b as usize][w] |= m;
            }
            match start {
                StartKind::None => {}
                StartKind::StartOfData => sod[w] |= m,
                StartKind::AllInput => always[w] |= m,
            }
            if fwd[id.index()].is_some() {
                advance[w] |= m;
            }
            if selfloop_flags[id.index()] {
                selfloop[w] |= m;
            }
            if let Some(code) = e.report {
                report[w] |= m;
                report_code[p] = code.0;
                report_eod[p] = e.report_eod_only;
            }
        }
        Ok(BitParallelEngine {
            words,
            accept,
            advance,
            selfloop,
            always,
            sod,
            report,
            report_code,
            report_eod,
            active: vec![0; words],
            scratch: vec![0; words],
            cycle_codes: Vec::new(),
            pending_eod: Vec::new(),
            pending_scratch: Vec::new(),
            stream_offset: 0,
        })
    }

    /// Number of 64-bit words in the state vector.
    pub fn word_count(&self) -> usize {
        self.words
    }
}

impl BitParallelEngine {
    fn reset_active(&mut self) {
        for w in 0..self.words {
            self.active[w] = self.sod[w] | self.always[w];
        }
        self.pending_eod.clear();
        self.pending_scratch.clear();
    }

    fn process(&mut self, input: &[u8], base: u64, eod: bool, sink: &mut dyn ReportSink) {
        let words = self.words;
        if words == 0 {
            return;
        }
        let len = input.len();
        // New symbols invalidate held-back end-of-data candidates.
        if len > 0 {
            self.pending_eod.clear();
        }
        for (pos, &c) in input.iter().enumerate() {
            let acc = &self.accept[c as usize];
            let last = eod && pos + 1 == len;
            let maybe_last = !eod && pos + 1 == len;
            self.cycle_codes.clear();
            // matched (in scratch) and reports (deduplicated per code).
            for (w, &acc_w) in acc.iter().enumerate() {
                let matched = self.active[w] & acc_w;
                self.scratch[w] = matched;
                let mut r = matched & self.report[w];
                while r != 0 {
                    let bit = r.trailing_zeros() as usize;
                    r &= r - 1;
                    let p = w * 64 + bit;
                    let code = self.report_code[p];
                    if (!self.report_eod[p] || last) && !self.cycle_codes.contains(&code) {
                        self.cycle_codes.push(code);
                        sink.report(base + pos as u64, azoo_core::ReportCode(code));
                    } else if self.report_eod[p]
                        && maybe_last
                        && !self.pending_scratch.contains(&code)
                    {
                        self.pending_scratch.push(code);
                    }
                }
            }
            // Keep only the end-of-data candidates no unconditional
            // report claimed this cycle.
            if maybe_last && !self.pending_scratch.is_empty() {
                for i in 0..self.pending_scratch.len() {
                    let code = self.pending_scratch[i];
                    if !self.cycle_codes.contains(&code) {
                        self.pending_eod.push((base + pos as u64, code));
                    }
                }
                self.pending_scratch.clear();
            }
            // active' = ((matched & advance) << 1) | (matched & selfloop) | always
            let mut carry = 0u64;
            for w in 0..words {
                let m = self.scratch[w];
                let adv = m & self.advance[w];
                let shifted = (adv << 1) | carry;
                carry = adv >> 63;
                self.active[w] = shifted | (m & self.selfloop[w]) | self.always[w];
            }
        }
    }
}

impl StreamingEngine for BitParallelEngine {
    fn stream_quiesced(&self) -> bool {
        self.stream_offset == 0
            && self.pending_eod.is_empty()
            && self.pending_scratch.is_empty()
            && (0..self.words).all(|w| self.active[w] == (self.sod[w] | self.always[w]))
    }

    fn reset_stream(&mut self) {
        self.reset_active();
        self.stream_offset = 0;
    }

    fn feed(&mut self, chunk: &[u8], eod: bool, sink: &mut dyn ReportSink) {
        let base = self.stream_offset;
        self.process(chunk, base, eod, sink);
        self.stream_offset = base + chunk.len() as u64;
        if eod {
            for i in 0..self.pending_eod.len() {
                let (off, code) = self.pending_eod[i];
                sink.report(off, azoo_core::ReportCode(code));
            }
            self.pending_eod.clear();
        }
    }
}

impl Engine for BitParallelEngine {
    fn scan(&mut self, input: &[u8], sink: &mut dyn ReportSink) {
        self.reset_active();
        self.process(input, 0, true, sink);
    }

    fn name(&self) -> &'static str {
        "bit-parallel"
    }
}

//! A Sheng-style shuffle-DFA engine for machines that determinize to at
//! most 16 states.
//!
//! Full subset construction is run ahead of time (unlike the lazy DFA):
//! if the machine fits in 16 DFA states, the whole transition function
//! for each alphabet class fits in one 16-byte vector and a step is one
//! `pshufb` via [`azoo_simd::ShengKernel`] — no hash probes, no cache
//! flushes, no memory-indexed dependency chain. Machines that blow the
//! budget are rejected at compile time and fall to the lazy DFA.
//!
//! Reports are Moore-ized: the lazy DFA attaches report lists to
//! *transitions*, so here each destination state is split by the report
//! list emitted on entry, and states are numbered with reporting states
//! at the high end. The kernel then only compares the post-step state
//! against a threshold; mapping states back to codes (and end-of-data
//! gating) happens on the rare hit path.

use std::collections::HashMap;

use azoo_core::{Automaton, ElementKind, StartKind, SymbolClass};
use azoo_simd::ShengKernel;

use crate::sink::ReportSink;
use crate::stream::StreamingEngine;
use crate::{Engine, EngineError};

/// Largest NFA the engine will even attempt to determinize. Machines
/// that fit 16 DFA states are tiny; the cap keeps a doomed subset
/// construction from scanning a huge automaton's edge lists 16 times.
pub const SHENG_MAX_NFA_STATES: usize = 512;

/// Shuffle-DFA executor for small determinizable automata.
///
/// Does not support counter elements (same model limit as the lazy DFA).
#[derive(Debug, Clone)]
pub struct ShengEngine {
    kernel: ShengKernel,
    /// Report list `(code, eod_only)` of each DFA state, entered-on.
    rep_of: Vec<Vec<(u32, bool)>>,
    /// DFA states `>= threshold` carry a non-empty report list.
    threshold: u8,
    start: u8,
    stream_state: u8,
    stream_offset: u64,
    /// End-of-data reports held back on the final symbol of a non-`eod`
    /// feed; an empty `eod` feed emits them, new data discards them.
    pending_eod: Vec<(u64, u32)>,
    hits: Vec<(usize, u8)>,
}

impl ShengEngine {
    /// Compiles `a`, or fails if it cannot run as a 16-state shuffle DFA.
    ///
    /// # Errors
    ///
    /// [`EngineError::CountersUnsupported`] for counter machines,
    /// [`EngineError::TooManyDfaStates`] when the subset construction
    /// exceeds 16 states (or `a` exceeds [`SHENG_MAX_NFA_STATES`]), or
    /// [`EngineError::Invalid`] if validation fails.
    pub fn new(a: &Automaton) -> Result<Self, EngineError> {
        a.validate()?;
        if a.state_count() > SHENG_MAX_NFA_STATES {
            return Err(EngineError::TooManyDfaStates);
        }
        let n = a.state_count();
        let mut classes = vec![SymbolClass::EMPTY; n];
        let mut report: Vec<Option<(u32, bool)>> = vec![None; n];
        let mut is_always = vec![false; n];
        let mut always = Vec::new();
        let mut sod = Vec::new();
        for (id, e) in a.iter() {
            let i = id.index();
            match &e.kind {
                ElementKind::Counter { .. } => {
                    return Err(EngineError::CountersUnsupported(id));
                }
                ElementKind::Ste { class, start } => {
                    classes[i] = *class;
                    match start {
                        StartKind::None => {}
                        StartKind::StartOfData => sod.push(i as u32),
                        StartKind::AllInput => {
                            is_always[i] = true;
                            always.push(i as u32);
                        }
                    }
                }
            }
            if let Some(code) = e.report {
                report[i] = Some((code.0, e.report_eod_only));
            }
        }
        let mut succ: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (id, _) in a.iter() {
            for edge in a.successors(id) {
                let t = edge.to.index();
                if !is_always[t] {
                    succ[id.index()].push(t as u32);
                }
            }
        }
        sod.sort_unstable();
        sod.dedup();

        // Alphabet compression, as in the lazy DFA but with u8 class ids
        // (the kernel's `class_of` table is bytes).
        let (class_of, class_rep) = compress_alphabet(&classes);
        let n_classes = class_rep.len();

        // Subset construction over (state set, report-list-on-entry)
        // pairs. Splitting by report list Moore-izes the machine: every
        // report the lazy DFA would emit on a transition is emitted here
        // on entering the destination.
        type Key = (Vec<u32>, Vec<(u32, bool)>);
        let start_key: Key = (sod, Vec::new());
        let mut intern: HashMap<Key, usize> = HashMap::new();
        let mut states: Vec<Key> = Vec::new();
        let mut trans: Vec<Vec<usize>> = Vec::new();
        intern.insert(start_key.clone(), 0);
        states.push(start_key);
        let mut at = 0;
        while at < states.len() {
            let mut row = Vec::with_capacity(n_classes);
            for &byte in class_rep.iter().take(n_classes) {
                let mut next: Vec<u32> = Vec::new();
                let mut reps: Vec<(u32, bool)> = Vec::new();
                for &s in states[at].0.iter().chain(always.iter()) {
                    let si = s as usize;
                    if !classes[si].contains(byte) {
                        continue;
                    }
                    if let Some(r) = report[si] {
                        reps.push(r);
                    }
                    next.extend_from_slice(&succ[si]);
                }
                next.sort_unstable();
                next.dedup();
                reps.sort_unstable();
                reps.dedup();
                // An unconditional report subsumes an eod-gated one with
                // the same code (sorted order puts `(code, false)` first).
                reps.dedup_by_key(|&mut (code, _)| code);
                let key = (next, reps);
                let id = match intern.get(&key) {
                    Some(&id) => id,
                    None => {
                        let id = states.len();
                        if id >= azoo_simd::sheng::SHENG_MAX_STATES {
                            return Err(EngineError::TooManyDfaStates);
                        }
                        intern.insert(key.clone(), id);
                        states.push(key);
                        id
                    }
                };
                row.push(id);
            }
            trans.push(row);
            at += 1;
        }

        // Renumber with reporting states at the high end so the kernel's
        // threshold compare identifies them.
        let n_dfa = states.len();
        let mut order: Vec<usize> = (0..n_dfa).collect();
        order.sort_by_key(|&i| !states[i].1.is_empty());
        let mut perm = vec![0u8; n_dfa]; // old id -> new id
        for (new, &old) in order.iter().enumerate() {
            perm[old] = new as u8;
        }
        let threshold = order
            .iter()
            .position(|&old| !states[old].1.is_empty())
            .unwrap_or(n_dfa) as u8;
        let mut tables = vec![[0u8; 16]; n_classes];
        for (old, row) in trans.iter().enumerate() {
            for (k, &tgt) in row.iter().enumerate() {
                tables[k][perm[old] as usize] = perm[tgt];
            }
        }
        let rep_of: Vec<Vec<(u32, bool)>> =
            order.iter().map(|&old| states[old].1.clone()).collect();
        let start = perm[0];
        let kernel =
            ShengKernel::new(class_of, tables, n_dfa as u8).ok_or(EngineError::TooManyDfaStates)?;
        Ok(ShengEngine {
            kernel,
            rep_of,
            threshold,
            start,
            stream_state: start,
            stream_offset: 0,
            pending_eod: Vec::new(),
            hits: Vec::new(),
        })
    }

    /// Number of DFA states.
    pub fn state_count(&self) -> usize {
        self.kernel.state_count() as usize
    }

    /// Number of compressed alphabet classes.
    pub fn alphabet_classes(&self) -> usize {
        self.kernel.class_count()
    }

    fn process(
        &mut self,
        cur: u8,
        input: &[u8],
        base: u64,
        eod: bool,
        sink: &mut dyn ReportSink,
    ) -> u8 {
        let len = input.len();
        if len > 0 {
            self.pending_eod.clear();
        }
        let mut hits = std::mem::take(&mut self.hits);
        hits.clear();
        let end = self.kernel.scan(cur, input, self.threshold, &mut hits);
        for &(pos, s) in &hits {
            let last = eod && pos + 1 == len;
            let maybe_last = !eod && pos + 1 == len;
            for &(code, eod_only) in &self.rep_of[s as usize] {
                if !eod_only || last {
                    sink.report(base + pos as u64, azoo_core::ReportCode(code));
                } else if maybe_last {
                    self.pending_eod.push((base + pos as u64, code));
                }
            }
        }
        self.hits = hits;
        end
    }
}

/// Compresses the byte alphabet: bytes indistinguishable by every symbol
/// class share a column. Returns the byte→class map and one
/// representative byte per class.
fn compress_alphabet(classes: &[SymbolClass]) -> ([u8; 256], Vec<u8>) {
    let mut distinct: Vec<SymbolClass> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for c in classes {
        if seen.insert(*c.as_words()) {
            distinct.push(*c);
        }
    }
    let mut class_of = [0u8; 256];
    let mut n_classes = 1usize;
    for c in &distinct {
        let mut remap: HashMap<(u8, bool), u8> = HashMap::new();
        let mut next = 0u8;
        let mut new_class = [0u8; 256];
        for b in 0..256usize {
            let key = (class_of[b], c.contains(b as u8));
            let id = *remap.entry(key).or_insert_with(|| {
                let v = next;
                next = next.wrapping_add(1);
                v
            });
            new_class[b] = id;
        }
        class_of = new_class;
        n_classes = remap.len();
    }
    let mut class_rep = vec![0u8; n_classes];
    for b in (0..256usize).rev() {
        class_rep[class_of[b] as usize] = b as u8;
    }
    (class_of, class_rep)
}

impl StreamingEngine for ShengEngine {
    fn reset_stream(&mut self) {
        self.stream_state = self.start;
        self.stream_offset = 0;
        self.pending_eod.clear();
    }

    fn stream_quiesced(&self) -> bool {
        self.stream_offset == 0 && self.pending_eod.is_empty() && self.stream_state == self.start
    }

    fn feed(&mut self, chunk: &[u8], eod: bool, sink: &mut dyn ReportSink) {
        let base = self.stream_offset;
        self.stream_state = self.process(self.stream_state, chunk, base, eod, sink);
        self.stream_offset = base + chunk.len() as u64;
        if eod {
            for i in 0..self.pending_eod.len() {
                let (off, code) = self.pending_eod[i];
                sink.report(off, azoo_core::ReportCode(code));
            }
            self.pending_eod.clear();
        }
    }
}

impl Engine for ShengEngine {
    fn scan(&mut self, input: &[u8], sink: &mut dyn ReportSink) {
        self.process(self.start, input, 0, true, sink);
    }

    fn name(&self) -> &'static str {
        "sheng"
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::sink::CollectSink;
    use crate::LazyDfaEngine;

    fn abc() -> Automaton {
        let mut a = Automaton::new();
        let classes: Vec<SymbolClass> = b"abc".iter().map(|&b| SymbolClass::from_byte(b)).collect();
        let (_, last) = a.add_chain(&classes, StartKind::AllInput);
        a.set_report(last, 0);
        a
    }

    #[test]
    fn matches_lazy_dfa_on_simple_chain() {
        let a = abc();
        let mut sheng = ShengEngine::new(&a).unwrap();
        let mut dfa = LazyDfaEngine::new(&a).unwrap();
        let hay = b"ababcxxabcabc..abc";
        let (mut s1, mut s2) = (CollectSink::new(), CollectSink::new());
        sheng.scan(hay, &mut s1);
        dfa.scan(hay, &mut s2);
        assert_eq!(s1.reports(), s2.reports());
        assert_eq!(s1.reports().len(), 4);
    }

    #[test]
    fn rejects_big_machines() {
        let mut a = Automaton::new();
        // 20 distinct-length chains of 'x' determinize to > 16 states.
        for len in 1..=20usize {
            let (_, last) = a.add_chain(
                &vec![SymbolClass::from_byte(b'x'); len],
                StartKind::AllInput,
            );
            a.set_report(last, len as u32);
        }
        assert!(matches!(
            ShengEngine::new(&a),
            Err(EngineError::TooManyDfaStates)
        ));
    }

    #[test]
    fn streaming_matches_block_at_odd_chunk_sizes() {
        let a = abc();
        let hay = b"ababcxxabcabc..abcab";
        let mut block = ShengEngine::new(&a).unwrap();
        let mut want = CollectSink::new();
        block.scan(hay, &mut want);
        for chunk in [1usize, 2, 3, 7] {
            let mut eng = ShengEngine::new(&a).unwrap();
            eng.reset_stream();
            let mut got = CollectSink::new();
            let mut it = hay.chunks(chunk).peekable();
            while let Some(part) = it.next() {
                eng.feed(part, it.peek().is_none(), &mut got);
            }
            assert_eq!(got.reports(), want.reports(), "chunk {chunk}");
        }
    }

    #[test]
    fn eod_only_reports_wait_for_end() {
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::from_byte(b'z'), StartKind::AllInput);
        a.set_report(s, 9);
        a.set_report_eod_only(s, true);
        let mut eng = ShengEngine::new(&a).unwrap();
        let mut sink = CollectSink::new();
        eng.scan(b"azbz", &mut sink);
        // Only the final 'z' is at end of data.
        assert_eq!(sink.reports().len(), 1);
        assert_eq!(sink.reports()[0].offset, 3);

        // Streaming: mid-stream 'z' held back then discarded by new data.
        eng.reset_stream();
        let mut sink = CollectSink::new();
        eng.feed(b"az", false, &mut sink);
        assert!(sink.reports().is_empty());
        eng.feed(b"bz", true, &mut sink);
        assert_eq!(sink.reports().len(), 1);
        assert_eq!(sink.reports()[0].offset, 3);
    }

    #[test]
    fn quiescence_tracks_stream_state() {
        let a = abc();
        let mut eng = ShengEngine::new(&a).unwrap();
        eng.reset_stream();
        assert!(eng.stream_quiesced());
        let mut sink = CollectSink::new();
        eng.feed(b"ab", false, &mut sink);
        assert!(!eng.stream_quiesced());
        eng.reset_stream();
        assert!(eng.stream_quiesced());
    }
}

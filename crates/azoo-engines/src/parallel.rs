//! Multi-threaded scanning with a deterministic report merge.
//!
//! AutomataZoo's benchmarks expose two independent axes of parallelism,
//! and [`ParallelScanner`] exploits both:
//!
//! 1. **Automaton sharding.** Weakly connected components never interact,
//!    so the automaton is split into shards (via the same
//!    first-fit-decreasing packing as [`azoo_passes::partition`]) and each
//!    shard scans the input independently.
//! 2. **Input chunking.** A shard that is counter-free, acyclic, and
//!    all-input-start (no `StartOfData` elements) matches at most
//!    `longest_path_from_starts` symbols per report, so the input can be
//!    cut into chunks that different workers scan concurrently. Each
//!    worker re-scans a bounded *overlap window* before its chunk to
//!    catch matches that span the boundary, and discards reports it does
//!    not own. Shards with counters, cycles, or start-of-data anchors
//!    fall back to scanning the whole input on one worker (shard-level
//!    parallelism still applies).
//!
//! Workers drain a shared job queue, batch their reports locally, and
//! append each batch once into a shared rank-ordered merge accumulator
//! ([`azoo_sync::OrderedMutex`], rank `ENGINE_MERGE`); the merged stream
//! is sorted by `(offset, code)` and deduplicated, so the output is
//! **byte-identical to a single [`NfaEngine`] scan** and independent of
//! thread scheduling — the property the differential tests pin down.

use std::sync::atomic::{AtomicUsize, Ordering};

use azoo_core::stats::{component_sizes, longest_path_from_starts};
use azoo_core::{Automaton, ElementKind, StartKind};
use azoo_passes::partition;
use azoo_sync::{ranks, OrderedMutex};

use crate::nfa::NfaEngine;
use crate::prefilter::{PrefilterEngine, PREFILTER_COVERAGE_GATE};
use crate::sheng::ShengEngine;
use crate::sink::{Report, ReportSink};
use crate::stream::StreamingEngine;
use crate::{Engine, EngineError};

/// A shard's executor: a shuffle DFA when the shard determinizes to at
/// most 16 states, literal-gated windowed simulation when the shard's
/// components carry required literals (opted in via
/// [`ParallelScanner::with_prefilter`]), plain sparse simulation
/// otherwise.
#[derive(Debug, Clone)]
enum ShardEngine {
    Nfa(Box<NfaEngine>),
    Sheng(Box<ShengEngine>),
    Prefilter(Box<PrefilterEngine>),
}

impl ShardEngine {
    fn scan(&mut self, input: &[u8], sink: &mut dyn ReportSink) {
        match self {
            ShardEngine::Nfa(e) => e.scan(input, sink),
            ShardEngine::Sheng(e) => e.scan(input, sink),
            ShardEngine::Prefilter(e) => e.scan(input, sink),
        }
    }

    fn reset_stream(&mut self) {
        match self {
            ShardEngine::Nfa(e) => e.reset_stream(),
            ShardEngine::Sheng(e) => e.reset_stream(),
            ShardEngine::Prefilter(e) => e.reset_stream(),
        }
    }

    fn feed(&mut self, chunk: &[u8], eod: bool, sink: &mut dyn ReportSink) {
        match self {
            ShardEngine::Nfa(e) => e.feed(chunk, eod, sink),
            ShardEngine::Sheng(e) => e.feed(chunk, eod, sink),
            ShardEngine::Prefilter(e) => e.feed(chunk, eod, sink),
        }
    }
}

/// One automaton shard plus its chunking capability.
#[derive(Debug, Clone)]
struct Shard {
    /// Prototype engine; cloned per job during `scan`, fed in place
    /// during streaming.
    engine: ShardEngine,
    /// `Some(w)`: input-chunkable, matches span at most `w` symbols.
    /// `None`: must scan the input sequentially.
    window: Option<usize>,
}

/// A unit of work: one shard over one input range.
#[derive(Debug, Clone, Copy)]
struct Job {
    shard: usize,
    /// Input range this job owns reports for.
    start: usize,
    end: usize,
    /// Overlap window for chunk jobs; `None` means scan `start..end` as a
    /// complete input (whole-input job).
    window: Option<usize>,
}

/// Scans with a pool of worker threads, merging shard and chunk report
/// streams into the canonical `(offset, code)`-sorted order.
///
/// # Example
///
/// ```
/// use azoo_core::{Automaton, StartKind, SymbolClass};
/// use azoo_engines::{CollectSink, Engine, ParallelScanner};
///
/// let mut a = Automaton::new();
/// for (code, word) in [&b"cat"[..], &b"dog"[..]].iter().enumerate() {
///     let classes: Vec<SymbolClass> =
///         word.iter().map(|&b| SymbolClass::from_byte(b)).collect();
///     let (_, last) = a.add_chain(&classes, StartKind::AllInput);
///     a.set_report(last, code as u32);
/// }
/// let mut engine = ParallelScanner::new(&a, 4)?;
/// let mut sink = CollectSink::new();
/// engine.scan(b"catdogcat", &mut sink);
/// let offsets: Vec<u64> = sink.reports().iter().map(|r| r.offset).collect();
/// assert_eq!(offsets, vec![2, 5, 8]);
/// # Ok::<(), azoo_engines::EngineError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ParallelScanner {
    shards: Vec<Shard>,
    threads: usize,
}

impl ParallelScanner {
    /// Compiles `a` for scanning with `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Invalid`] if `a` fails
    /// [`Automaton::validate`].
    pub fn new(a: &Automaton, threads: usize) -> Result<Self, EngineError> {
        Self::with_prefilter(a, threads, false)
    }

    /// Like [`new`](Self::new), but with `prefilter` true each shard
    /// whose components mostly carry required literals runs behind a
    /// [`PrefilterEngine`] instead of a plain [`NfaEngine`] (same gate as
    /// [`select_engine`](crate::select_engine)). The merged stream is
    /// unchanged either way.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Invalid`] if `a` fails
    /// [`Automaton::validate`].
    pub fn with_prefilter(
        a: &Automaton,
        threads: usize,
        prefilter: bool,
    ) -> Result<Self, EngineError> {
        assert!(threads > 0, "thread count must be positive");
        a.validate()?;
        // Pack components into about `threads` shards; a component can
        // never be split, so the capacity is at least the largest one.
        let max_component = component_sizes(a).last().copied().unwrap_or(0);
        let capacity = a.state_count().div_ceil(threads).max(max_component).max(1);
        let parts = partition(a, capacity).expect("capacity covers the largest component");
        let shards = parts
            .iter()
            // A shard whose components have no start state can never
            // activate anything — drop it rather than fail its
            // (per-shard) validation. The whole automaton validated
            // above, so at least one shard survives.
            .filter(|p| !p.start_states().is_empty())
            .map(|p| {
                // Shuffle-DFA gating first: a shard that determinizes
                // to <= 16 states steps in one pshufb, beating both the
                // prefilter and plain simulation.
                let engine = if let Ok(sh) = ShengEngine::new(p) {
                    ShardEngine::Sheng(Box::new(sh))
                } else if prefilter {
                    let pf = PrefilterEngine::new(p)?;
                    if pf.component_count() > 0 && pf.coverage() >= PREFILTER_COVERAGE_GATE {
                        ShardEngine::Prefilter(Box::new(pf))
                    } else {
                        ShardEngine::Nfa(Box::new(NfaEngine::new(p)?))
                    }
                } else {
                    ShardEngine::Nfa(Box::new(NfaEngine::new(p)?))
                };
                Ok(Shard {
                    engine,
                    window: chunk_window(p),
                })
            })
            .collect::<Result<Vec<Shard>, EngineError>>()?;
        Ok(ParallelScanner { shards, threads })
    }

    /// Number of shards running behind the literal prefilter.
    pub fn prefiltered_shard_count(&self) -> usize {
        self.shards
            .iter()
            .filter(|s| matches!(s.engine, ShardEngine::Prefilter(_)))
            .count()
    }

    /// Number of shards running as a shuffle DFA.
    pub fn sheng_shard_count(&self) -> usize {
        self.shards
            .iter()
            .filter(|s| matches!(s.engine, ShardEngine::Sheng(_)))
            .count()
    }

    /// Worker thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of automaton shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of shards eligible for input chunking.
    pub fn chunkable_shard_count(&self) -> usize {
        self.shards.iter().filter(|s| s.window.is_some()).count()
    }

    /// Scans `input` and returns the merged, `(offset, code)`-sorted,
    /// deduplicated report stream.
    fn scan_merged(&self, input: &[u8]) -> Vec<Report> {
        let mut jobs = Vec::new();
        for (si, shard) in self.shards.iter().enumerate() {
            match shard.window {
                // Chunking pays off only with input to split and more
                // workers than shards.
                Some(w) if self.threads > 1 && !input.is_empty() => {
                    let k = self.threads.min(input.len());
                    for c in 0..k {
                        jobs.push(Job {
                            shard: si,
                            start: input.len() * c / k,
                            end: input.len() * (c + 1) / k,
                            window: Some(w),
                        });
                    }
                }
                _ => jobs.push(Job {
                    shard: si,
                    start: 0,
                    end: input.len(),
                    window: None,
                }),
            }
        }
        let workers = self.threads.min(jobs.len());
        let mut merged: Vec<Report> = if workers <= 1 {
            // Run inline: the single-thread baseline should not pay a
            // spawn/join round trip.
            let mut worker = Worker::new(&self.shards);
            let mut out = Vec::new();
            for job in &jobs {
                worker.run_job(*job, input, &mut out);
            }
            out
        } else {
            let queue = AtomicUsize::new(0);
            // Workers batch reports locally and take the shared merge
            // lock (rank ENGINE_MERGE) exactly once, after their last
            // job — one contended acquisition per worker, not per report.
            let merge_acc = OrderedMutex::new(ranks::ENGINE_MERGE, Vec::new());
            let (queue, jobs, shards, merge) = (&queue, &jobs[..], &self.shards[..], &merge_acc);
            crossbeam::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(move |_| {
                        let mut worker = Worker::new(shards);
                        let mut out = Vec::new();
                        loop {
                            let j = queue.fetch_add(1, Ordering::Relaxed);
                            let Some(job) = jobs.get(j) else { break };
                            worker.run_job(*job, input, &mut out);
                        }
                        merge.lock().append(&mut out);
                    });
                }
            })
            .expect("scan worker panicked");
            merge_acc.into_inner()
        };
        // Canonical order. Distinct shards may report the same code at
        // the same offset; a single engine deduplicates those per cycle,
        // so the merge must too.
        merged.sort_unstable();
        merged.dedup();
        merged
    }
}

/// `Some(longest match span)` if `p` supports input chunking: no
/// counters (their state depends on the whole prefix), no start-of-data
/// anchors (chunk workers start mid-stream), and no reachable cycles
/// (unbounded match length means no finite overlap window).
fn chunk_window(p: &Automaton) -> Option<usize> {
    if p.counter_count() > 0 {
        return None;
    }
    let anchored = p.iter().any(|(_, e)| {
        matches!(
            e.kind,
            ElementKind::Ste {
                start: StartKind::StartOfData,
                ..
            }
        )
    });
    if anchored {
        return None;
    }
    longest_path_from_starts(p).filter(|&w| w > 0)
}

/// Per-thread job executor. Keeps one engine clone per shard so a worker
/// that draws several chunks of the same shard clones it only once
/// (both `scan` and `reset_stream`/`feed` restart from initial state, so
/// reuse across jobs is sound).
struct Worker<'a> {
    shards: &'a [Shard],
    engines: Vec<Option<ShardEngine>>,
}

impl<'a> Worker<'a> {
    fn new(shards: &'a [Shard]) -> Self {
        Worker {
            shards,
            engines: vec![None; shards.len()],
        }
    }

    /// Executes one job, appending owned reports (absolute offsets in
    /// `job.start..job.end`) to `out`.
    fn run_job(&mut self, job: Job, input: &[u8], out: &mut Vec<Report>) {
        let engine =
            self.engines[job.shard].get_or_insert_with(|| self.shards[job.shard].engine.clone());
        match job.window {
            None => {
                let mut sink = VecSink(out);
                engine.scan(input, &mut sink);
            }
            Some(window) => {
                // Re-scan up to `window - 1` bytes before the chunk so
                // matches spanning the boundary are seen, then keep only
                // the reports this chunk owns.
                let slice_start = job.start.saturating_sub(window - 1);
                let eod = job.end == input.len();
                let mut sink = RebaseSink {
                    base: slice_start as u64,
                    min: job.start as u64,
                    out,
                };
                engine.reset_stream();
                engine.feed(&input[slice_start..job.end], eod, &mut sink);
            }
        }
    }
}

/// Appends reports verbatim.
struct VecSink<'a>(&'a mut Vec<Report>);

impl ReportSink for VecSink<'_> {
    fn report(&mut self, offset: u64, code: azoo_core::ReportCode) {
        self.0.push(Report { offset, code });
    }
}

/// Rebases slice-relative offsets to absolute ones and drops reports
/// below the chunk's owned range.
struct RebaseSink<'a> {
    base: u64,
    min: u64,
    out: &'a mut Vec<Report>,
}

impl ReportSink for RebaseSink<'_> {
    fn report(&mut self, offset: u64, code: azoo_core::ReportCode) {
        let offset = offset + self.base;
        if offset >= self.min {
            self.out.push(Report { offset, code });
        }
    }
}

impl Engine for ParallelScanner {
    fn scan(&mut self, input: &[u8], sink: &mut dyn ReportSink) {
        for r in self.scan_merged(input) {
            sink.report(r.offset, r.code);
        }
    }

    fn name(&self) -> &'static str {
        "parallel"
    }
}

impl StreamingEngine for ParallelScanner {
    fn reset_stream(&mut self) {
        for s in &mut self.shards {
            s.engine.reset_stream();
        }
    }

    fn stream_quiesced(&self) -> bool {
        self.shards.iter().all(|s| match &s.engine {
            ShardEngine::Nfa(e) => e.stream_quiesced(),
            ShardEngine::Sheng(e) => e.stream_quiesced(),
            ShardEngine::Prefilter(e) => e.stream_quiesced(),
        })
    }

    /// Streaming parallelizes across shards only: chunk workers need the
    /// whole input range up front, but each shard's streaming engine
    /// carries state across `feed` calls independently of the others.
    fn feed(&mut self, chunk: &[u8], eod: bool, sink: &mut dyn ReportSink) {
        let workers = self.threads.min(self.shards.len());
        let mut merged: Vec<Report> = if workers <= 1 {
            let mut out = Vec::new();
            for s in &mut self.shards {
                s.engine.feed(chunk, eod, &mut VecSink(&mut out));
            }
            out
        } else {
            let per_worker = self.shards.len().div_ceil(workers);
            let merge_acc = OrderedMutex::new(ranks::ENGINE_MERGE, Vec::new());
            let merge = &merge_acc;
            crossbeam::thread::scope(|scope| {
                for group in self.shards.chunks_mut(per_worker) {
                    scope.spawn(move |_| {
                        let mut out = Vec::new();
                        for s in group {
                            s.engine.feed(chunk, eod, &mut VecSink(&mut out));
                        }
                        merge.lock().append(&mut out);
                    });
                }
            })
            .expect("feed worker panicked");
            merge_acc.into_inner()
        };
        merged.sort_unstable();
        merged.dedup();
        for r in merged {
            sink.report(r.offset, r.code);
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::sink::CollectSink;
    use azoo_core::{CounterMode, SymbolClass};

    fn words(list: &[&[u8]]) -> Automaton {
        let mut a = Automaton::new();
        for (code, word) in list.iter().enumerate() {
            let classes: Vec<SymbolClass> =
                word.iter().map(|&b| SymbolClass::from_byte(b)).collect();
            let (_, last) = a.add_chain(&classes, StartKind::AllInput);
            a.set_report(last, code as u32);
        }
        a
    }

    fn nfa_reports(a: &Automaton, input: &[u8]) -> Vec<Report> {
        let mut sink = CollectSink::new();
        NfaEngine::new(a).unwrap().scan(input, &mut sink);
        sink.sorted_reports()
    }

    fn parallel_reports(a: &Automaton, threads: usize, input: &[u8]) -> Vec<Report> {
        let mut sink = CollectSink::new();
        ParallelScanner::new(a, threads)
            .unwrap()
            .scan(input, &mut sink);
        sink.reports().to_vec()
    }

    #[test]
    fn matches_nfa_on_multi_component_words() {
        let a = words(&[b"cat", b"dog", b"catalog", b"og"]);
        let input = b"the catalog lists a dog and a catdog";
        let expected = nfa_reports(&a, input);
        assert!(!expected.is_empty());
        for threads in [1, 2, 4, 8] {
            assert_eq!(
                parallel_reports(&a, threads, input),
                expected,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn output_is_already_sorted_and_deduped() {
        // Two shards reporting the same code at the same offsets: a
        // single engine dedups per cycle, so the merge must as well.
        let mut a = words(&[b"aa"]);
        let other = words(&[b"aa"]);
        a.append(&other);
        // Both chains share code 0 now.
        let input = b"aaaa";
        for threads in [1, 2, 4] {
            let got = parallel_reports(&a, threads, input);
            assert_eq!(got, nfa_reports(&a, input), "{threads} threads");
            let mut sorted = got.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(got, sorted);
        }
    }

    #[test]
    fn counters_fall_back_to_whole_input() {
        // k at least 3 times (latched counter).
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::from_byte(b'k'), StartKind::AllInput);
        let c = a.add_counter(3, CounterMode::Latch);
        a.add_edge(s, c);
        a.set_report(c, 9);
        let scanner = ParallelScanner::new(&a, 4).unwrap();
        assert_eq!(scanner.chunkable_shard_count(), 0);
        let input = b"kkxkkkxk";
        for threads in [1, 2, 4] {
            assert_eq!(parallel_reports(&a, threads, input), nfa_reports(&a, input));
        }
    }

    #[test]
    fn cycles_fall_back_to_whole_input() {
        // a(b)*c — unbounded match span.
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::AllInput);
        let loop_ = a.add_ste(SymbolClass::from_byte(b'b'), StartKind::None);
        let end = a.add_ste(SymbolClass::from_byte(b'c'), StartKind::None);
        a.add_edge(s, loop_);
        a.add_edge(loop_, loop_);
        a.add_edge(s, end);
        a.add_edge(loop_, end);
        a.set_report(end, 0);
        let scanner = ParallelScanner::new(&a, 4).unwrap();
        assert_eq!(scanner.chunkable_shard_count(), 0);
        let input = b"abbbbbbbbbbcxac";
        for threads in [1, 2, 4, 8] {
            assert_eq!(parallel_reports(&a, threads, input), nfa_reports(&a, input));
        }
    }

    #[test]
    fn start_of_data_falls_back_to_whole_input() {
        let mut a = Automaton::new();
        let (_, last) = a.add_chain(
            &[SymbolClass::from_byte(b'q'), SymbolClass::from_byte(b'r')],
            StartKind::StartOfData,
        );
        a.set_report(last, 0);
        let scanner = ParallelScanner::new(&a, 4).unwrap();
        assert_eq!(scanner.chunkable_shard_count(), 0);
        // Must match only at offset 1, never at the later "qr".
        let input = b"qrxqr";
        for threads in [1, 2, 4] {
            let got = parallel_reports(&a, threads, input);
            assert_eq!(got.len(), 1);
            assert_eq!(got[0].offset, 1);
        }
    }

    #[test]
    fn eod_anchored_reports_only_fire_at_end() {
        let mut a = words(&[b"ab"]);
        let z = a.add_ste(SymbolClass::from_byte(b'z'), StartKind::AllInput);
        a.set_report(z, 7);
        a.set_report_eod_only(z, true);
        let input = b"zabzzzabz";
        for threads in [1, 2, 4, 8] {
            assert_eq!(parallel_reports(&a, threads, input), nfa_reports(&a, input));
        }
    }

    #[test]
    fn streaming_matches_whole_scan() {
        let a = words(&[b"abc", b"cab"]);
        let input = b"xabcabcabx";
        let mut scanner = ParallelScanner::new(&a, 4).unwrap();
        let whole = nfa_reports(&a, input);
        for cut in 0..=input.len() {
            let mut sink = CollectSink::new();
            scanner.scan_chunks([&input[..cut], &input[cut..]], &mut sink);
            assert_eq!(sink.reports().to_vec(), whole, "cut {cut}");
        }
    }

    #[test]
    fn scan_is_reusable() {
        let a = words(&[b"xy"]);
        let mut scanner = ParallelScanner::new(&a, 2).unwrap();
        for _ in 0..3 {
            let mut sink = CollectSink::new();
            scanner.scan(b"xyxy", &mut sink);
            assert_eq!(sink.reports().len(), 2);
        }
    }

    #[test]
    fn startless_components_are_skipped_not_fatal() {
        // A component with no start state can never activate; a single
        // NfaEngine tolerates it because the whole automaton still has
        // starts, and the scanner must too even when partitioning
        // isolates it into its own shard.
        let mut a = words(&[b"ab"]);
        let x = a.add_ste(SymbolClass::from_byte(b'x'), StartKind::None);
        let y = a.add_ste(SymbolClass::from_byte(b'y'), StartKind::None);
        a.add_edge(x, y);
        a.set_report(y, 5);
        for threads in [1, 2, 4] {
            let scanner = ParallelScanner::new(&a, threads).unwrap();
            assert!(scanner.shard_count() >= 1);
            assert_eq!(
                parallel_reports(&a, threads, b"abxyab"),
                nfa_reports(&a, b"abxyab")
            );
        }
    }

    #[test]
    fn prefiltered_shards_match_plain_shards() {
        // Literal words plus one cyclic component: shards too big for the
        // shuffle DFA run behind the prefilter (the two long words keep
        // every packing above 16 DFA states), small shards may run as a
        // shuffle DFA, and the merged stream is unchanged either way.
        let mut a = words(&[
            b"cat",
            b"dog",
            b"catalog",
            b"og",
            b"internationalization",
            b"electroencephalogram",
        ]);
        let s = a.add_ste(SymbolClass::from_byte(b'x'), StartKind::AllInput);
        let l = a.add_ste(SymbolClass::from_byte(b'y'), StartKind::None);
        a.add_edge(s, l);
        a.add_edge(l, l);
        a.set_report(l, 9);
        let input = b"the catalog lists a dog xyy and a catdog";
        let expected = nfa_reports(&a, input);
        for threads in [1, 2, 4] {
            let mut scanner = ParallelScanner::with_prefilter(&a, threads, true).unwrap();
            assert!(scanner.prefiltered_shard_count() >= 1);
            let mut sink = CollectSink::new();
            scanner.scan(input, &mut sink);
            assert_eq!(sink.reports().to_vec(), expected, "{threads} threads");
            // Streaming path too.
            let mut sink = CollectSink::new();
            scanner.scan_chunks([&input[..7], &input[7..30], &input[30..]], &mut sink);
            assert_eq!(
                sink.sorted_reports(),
                expected,
                "{threads} threads streamed"
            );
        }
        let plain = ParallelScanner::new(&a, 4).unwrap();
        assert_eq!(plain.prefiltered_shard_count(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threads_panics() {
        let a = words(&[b"a"]);
        let _ = ParallelScanner::new(&a, 0);
    }

    #[test]
    fn invalid_automaton_errors() {
        let mut a = Automaton::new();
        a.add_ste(SymbolClass::EMPTY, StartKind::AllInput);
        assert!(ParallelScanner::new(&a, 2).is_err());
    }
}

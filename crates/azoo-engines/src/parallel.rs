//! Multi-threaded scanning with a deterministic report merge.
//!
//! AutomataZoo's benchmarks expose two independent axes of parallelism,
//! and [`ParallelScanner`] exploits both:
//!
//! 1. **Automaton sharding.** Weakly connected components never interact,
//!    so the automaton is split into shards (via the same
//!    first-fit-decreasing packing as [`azoo_passes::partition`]) and each
//!    shard scans the input independently.
//! 2. **Input chunking.** A shard that is counter-free, acyclic, and
//!    all-input-start (no `StartOfData` elements) matches at most
//!    `longest_path_from_starts` symbols per report, so the input can be
//!    cut into chunks that different workers scan concurrently. Each
//!    worker re-scans a bounded *overlap window* before its chunk to
//!    catch matches that span the boundary, and discards reports it does
//!    not own. Shards with counters, cycles, or start-of-data anchors —
//!    where no finite overlap window exists — are chunked *speculatively*
//!    instead: workers run every subchunk but the first through
//!    [`FrontierScanner::summarize`], recording an entry-conditional
//!    transfer summary, and the summaries are stitched left-to-right by
//!    composition once each subchunk's true entry configuration is known
//!    (see [`frontier`](crate::frontier) for the construction and its
//!    soundness argument). Only components whose counters feed other
//!    elements — where speculation is not union-linear — still scan the
//!    whole input on one worker.
//!
//! Workers drain a shared job queue, batch their reports locally, and
//! append each batch once into a shared rank-ordered merge accumulator
//! ([`azoo_sync::OrderedMutex`], rank `ENGINE_MERGE`; speculative
//! summaries travel through a second accumulator at rank
//! `ENGINE_SUMMARY`); the merged stream is sorted by `(offset, code)`
//! and deduplicated, so the output is **byte-identical to a single
//! [`NfaEngine`] scan** and independent of thread scheduling — the
//! property the differential tests pin down.

use std::sync::atomic::{AtomicUsize, Ordering};

use azoo_core::stats::{component_labels, component_sizes, longest_path_from_starts};
use azoo_core::{Automaton, ElementKind, ReportCode, StartKind};
use azoo_passes::partition;
use azoo_sync::{ranks, OrderedMutex};

use crate::frontier::{ChunkSummary, FrontierScanner, FrontierScratch, SpecConfig};
use crate::nfa::NfaEngine;
use crate::prefilter::{PrefilterEngine, PREFILTER_COVERAGE_GATE};
use crate::sheng::ShengEngine;
use crate::sink::{Report, ReportSink};
use crate::stream::StreamingEngine;
use crate::{Engine, EngineError};

/// A shard's executor: a shuffle DFA when the shard determinizes to at
/// most 16 states, literal-gated windowed simulation when the shard's
/// components carry required literals (opted in via
/// [`ParallelScanner::with_prefilter`]), plain sparse simulation
/// otherwise.
#[derive(Debug, Clone)]
enum ShardEngine {
    Nfa(Box<NfaEngine>),
    Sheng(Box<ShengEngine>),
    Prefilter(Box<PrefilterEngine>),
}

impl ShardEngine {
    fn scan(&mut self, input: &[u8], sink: &mut dyn ReportSink) {
        match self {
            ShardEngine::Nfa(e) => e.scan(input, sink),
            ShardEngine::Sheng(e) => e.scan(input, sink),
            ShardEngine::Prefilter(e) => e.scan(input, sink),
        }
    }

    fn reset_stream(&mut self) {
        match self {
            ShardEngine::Nfa(e) => e.reset_stream(),
            ShardEngine::Sheng(e) => e.reset_stream(),
            ShardEngine::Prefilter(e) => e.reset_stream(),
        }
    }

    fn feed(&mut self, chunk: &[u8], eod: bool, sink: &mut dyn ReportSink) {
        match self {
            ShardEngine::Nfa(e) => e.feed(chunk, eod, sink),
            ShardEngine::Sheng(e) => e.feed(chunk, eod, sink),
            ShardEngine::Prefilter(e) => e.feed(chunk, eod, sink),
        }
    }

    fn stream_quiesced(&self) -> bool {
        match self {
            ShardEngine::Nfa(e) => e.stream_quiesced(),
            ShardEngine::Sheng(e) => e.stream_quiesced(),
            ShardEngine::Prefilter(e) => e.stream_quiesced(),
        }
    }
}

/// Mutable stream state of a speculative shard: the resolved
/// configuration at the current stream position plus end-of-data report
/// candidates held back at the last feed seam.
#[derive(Debug, Clone)]
struct SpecStream {
    cfg: SpecConfig,
    pending: Vec<(u64, u32)>,
    scratch: FrontierScratch,
}

/// One automaton shard plus its chunking capability.
#[derive(Debug, Clone)]
enum Shard {
    /// A conventional engine shard. `window: Some(w)` means
    /// input-chunkable with a `w`-symbol overlap; `None` means the shard
    /// must scan the input sequentially (now only components whose
    /// counters have successors).
    Engine {
        /// Prototype engine; cloned per job during `scan`, fed in place
        /// during streaming.
        engine: ShardEngine,
        window: Option<usize>,
    },
    /// A speculatively-chunked shard (counters, cycles, `StartOfData`).
    Spec {
        scanner: Box<FrontierScanner>,
        stream: Box<SpecStream>,
    },
}

#[derive(Debug, Clone, Copy)]
enum JobKind {
    /// Scan `0..input.len()` as a complete input (whole-input job).
    Whole,
    /// Overlap-window chunk job.
    Window(usize),
    /// First speculative subchunk: its entry configuration is known, so
    /// it runs exactly and its reports are final.
    Exact { last: bool, maybe_last: bool },
    /// Later speculative subchunk: summarize from the full frontier.
    Summary {
        index: usize,
        last: bool,
        maybe_last: bool,
    },
}

/// A unit of work: one shard over one input range.
#[derive(Debug, Clone, Copy)]
struct Job {
    shard: usize,
    /// Input range this job owns reports for.
    start: usize,
    end: usize,
    kind: JobKind,
}

/// A worker's speculative-job product, deposited into the
/// `ENGINE_SUMMARY`-ranked accumulator for the main-thread stitch.
enum SpecOut {
    /// Exact first subchunk: final reports, held-back candidates, and
    /// the resolved exit configuration.
    Exact {
        shard: usize,
        cfg: SpecConfig,
        reports: Vec<Report>,
        pending: Vec<(u64, u32)>,
    },
    /// One later subchunk's transfer summary.
    Sum {
        shard: usize,
        index: usize,
        sum: ChunkSummary,
    },
}

/// Scans with a pool of worker threads, merging shard and chunk report
/// streams into the canonical `(offset, code)`-sorted order.
///
/// # Example
///
/// ```
/// use azoo_core::{Automaton, StartKind, SymbolClass};
/// use azoo_engines::{CollectSink, Engine, ParallelScanner};
///
/// let mut a = Automaton::new();
/// for (code, word) in [&b"cat"[..], &b"dog"[..]].iter().enumerate() {
///     let classes: Vec<SymbolClass> =
///         word.iter().map(|&b| SymbolClass::from_byte(b)).collect();
///     let (_, last) = a.add_chain(&classes, StartKind::AllInput);
///     a.set_report(last, code as u32);
/// }
/// let mut engine = ParallelScanner::new(&a, 4)?;
/// let mut sink = CollectSink::new();
/// engine.scan(b"catdogcat", &mut sink);
/// let offsets: Vec<u64> = sink.reports().iter().map(|r| r.offset).collect();
/// assert_eq!(offsets, vec![2, 5, 8]);
/// # Ok::<(), azoo_engines::EngineError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ParallelScanner {
    shards: Vec<Shard>,
    threads: usize,
    /// Cumulative stream position across `feed` calls.
    stream_offset: u64,
    /// Merged reports at the final offset of the last non-empty feed:
    /// an empty end-of-data feed's flush is filtered against these so a
    /// candidate one shard held back is not re-emitted when another
    /// shard already reported the same `(offset, code)` unconditionally.
    tail: Vec<(u64, u32)>,
}

impl ParallelScanner {
    /// Compiles `a` for scanning with `threads` workers.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidThreads`] if `threads` is zero, and
    /// [`EngineError::Invalid`] if `a` fails [`Automaton::validate`].
    pub fn new(a: &Automaton, threads: usize) -> Result<Self, EngineError> {
        Self::with_prefilter(a, threads, false)
    }

    /// Like [`new`](Self::new), but with `prefilter` true each shard
    /// whose components mostly carry required literals runs behind a
    /// [`PrefilterEngine`] instead of a plain [`NfaEngine`] (same gate as
    /// [`select_engine`](crate::select_engine)). The merged stream is
    /// unchanged either way.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidThreads`] if `threads` is zero, and
    /// [`EngineError::Invalid`] if `a` fails [`Automaton::validate`].
    pub fn with_prefilter(
        a: &Automaton,
        threads: usize,
        prefilter: bool,
    ) -> Result<Self, EngineError> {
        if threads == 0 {
            return Err(EngineError::InvalidThreads);
        }
        a.validate()?;
        // Pack components into about `threads` shards; a component can
        // never be split, so the capacity is at least the largest one.
        let max_component = component_sizes(a).last().copied().unwrap_or(0);
        let capacity = a.state_count().div_ceil(threads).max(max_component).max(1);
        let parts = partition(a, capacity).expect("capacity covers the largest component");
        let mut shards = Vec::new();
        // A shard whose components have no start state can never
        // activate anything — drop it rather than fail its (per-shard)
        // validation. The whole automaton validated above, so at least
        // one shard survives.
        for p in parts.iter().filter(|p| !p.start_states().is_empty()) {
            if let Some(w) = chunk_window(p) {
                shards.push(Shard::Engine {
                    engine: build_shard_engine(p, prefilter)?,
                    window: Some(w),
                });
                continue;
            }
            // Hard shard: classify its components. *Easy* components
            // (counter-free, unanchored, acyclic) keep the bounded-
            // overlap path; components whose counters are all terminal
            // chunk speculatively; components whose counters drive
            // successors keep the sequential whole-input path.
            let labels = component_labels(p);
            let mut unsound = vec![false; p.state_count()];
            let mut hard = vec![false; p.state_count()];
            for (id, e) in p.iter() {
                match e.kind {
                    ElementKind::Counter { .. } => {
                        hard[labels[id.index()]] = true;
                        if !p.successors(id).is_empty() {
                            unsound[labels[id.index()]] = true;
                        }
                    }
                    ElementKind::Ste {
                        start: StartKind::StartOfData,
                        ..
                    } => hard[labels[id.index()]] = true,
                    ElementKind::Ste { .. } => {}
                }
            }
            mark_reachable_cycles(p, &labels, &mut hard);
            let class = |id: azoo_core::StateId| {
                let l = labels[id.index()];
                if unsound[l] {
                    CompClass::Unsound
                } else if hard[l] {
                    CompClass::Spec
                } else {
                    CompClass::Easy
                }
            };
            for want in [CompClass::Easy, CompClass::Spec, CompClass::Unsound] {
                if !p.iter().any(|(id, _)| class(id) == want) {
                    continue;
                }
                let sub = p.retain_states(|id| class(id) == want);
                if sub.start_states().is_empty() {
                    continue;
                }
                match want {
                    CompClass::Easy => shards.push(Shard::Engine {
                        engine: build_shard_engine(&sub, prefilter)?,
                        window: chunk_window(&sub),
                    }),
                    CompClass::Spec => {
                        let scanner = FrontierScanner::new(&sub)?;
                        let stream = Box::new(SpecStream {
                            cfg: scanner.initial_config(),
                            pending: Vec::new(),
                            scratch: scanner.new_scratch(),
                        });
                        shards.push(Shard::Spec {
                            scanner: Box::new(scanner),
                            stream,
                        });
                    }
                    CompClass::Unsound => shards.push(Shard::Engine {
                        engine: build_shard_engine(&sub, prefilter)?,
                        window: None,
                    }),
                }
            }
        }
        Ok(ParallelScanner {
            shards,
            threads,
            stream_offset: 0,
            tail: Vec::new(),
        })
    }

    /// Number of shards running behind the literal prefilter.
    pub fn prefiltered_shard_count(&self) -> usize {
        self.shards
            .iter()
            .filter(|s| {
                matches!(
                    s,
                    Shard::Engine {
                        engine: ShardEngine::Prefilter(_),
                        ..
                    }
                )
            })
            .count()
    }

    /// Number of shards running as a shuffle DFA.
    pub fn sheng_shard_count(&self) -> usize {
        self.shards
            .iter()
            .filter(|s| {
                matches!(
                    s,
                    Shard::Engine {
                        engine: ShardEngine::Sheng(_),
                        ..
                    }
                )
            })
            .count()
    }

    /// Worker thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of automaton shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of shards eligible for bounded-overlap input chunking.
    pub fn chunkable_shard_count(&self) -> usize {
        self.shards
            .iter()
            .filter(|s| {
                matches!(
                    s,
                    Shard::Engine {
                        window: Some(_),
                        ..
                    }
                )
            })
            .count()
    }

    /// Number of shards chunked speculatively (counters, cycles,
    /// `StartOfData` anchors).
    pub fn speculative_shard_count(&self) -> usize {
        self.shards
            .iter()
            .filter(|s| matches!(s, Shard::Spec { .. }))
            .count()
    }

    /// Number of shards still pinned to a sequential whole-input scan
    /// (components whose counters drive successors).
    pub fn whole_input_shard_count(&self) -> usize {
        self.shards
            .iter()
            .filter(|s| matches!(s, Shard::Engine { window: None, .. }))
            .count()
    }

    /// Number of speculative shards whose frontier overflowed the tag
    /// space: their chunks speculate on a *sampled* frontier and may pay
    /// verified re-scans during the stitch (a throughput diagnostic, not
    /// a correctness concern).
    pub fn sampled_speculative_shard_count(&self) -> usize {
        self.shards
            .iter()
            .filter(|s| match s {
                Shard::Spec { scanner, .. } => scanner.sampled_comp_count() > 0,
                Shard::Engine { .. } => false,
            })
            .count()
    }

    /// Subchunk count for a speculative shard over `len` input bytes.
    fn spec_subchunks(&self, len: usize) -> usize {
        if self.threads > 1 {
            self.threads.min(len).max(1)
        } else {
            1
        }
    }

    /// Scans `input` and returns the merged, `(offset, code)`-sorted,
    /// deduplicated report stream.
    fn scan_merged(&self, input: &[u8]) -> Vec<Report> {
        let len = input.len();
        let mut jobs = Vec::new();
        for (si, shard) in self.shards.iter().enumerate() {
            match shard {
                // Chunking pays off only with input to split and more
                // workers than shards.
                Shard::Engine {
                    window: Some(w), ..
                } if self.threads > 1 && len > 0 => {
                    let k = self.threads.min(len);
                    for c in 0..k {
                        jobs.push(Job {
                            shard: si,
                            start: len * c / k,
                            end: len * (c + 1) / k,
                            kind: JobKind::Window(*w),
                        });
                    }
                }
                Shard::Engine { .. } => jobs.push(Job {
                    shard: si,
                    start: 0,
                    end: len,
                    kind: JobKind::Whole,
                }),
                Shard::Spec { .. } => {
                    let k = self.spec_subchunks(len);
                    for c in 0..k {
                        let kind = if c == 0 {
                            JobKind::Exact {
                                last: k == 1,
                                maybe_last: false,
                            }
                        } else {
                            JobKind::Summary {
                                index: c,
                                last: c + 1 == k,
                                maybe_last: false,
                            }
                        };
                        jobs.push(Job {
                            shard: si,
                            start: len * c / k,
                            end: len * (c + 1) / k,
                            kind,
                        });
                    }
                }
            }
        }
        let workers = self.threads.min(jobs.len());
        let (mut merged, spec_outs) = if workers <= 1 {
            // Run inline: the single-thread baseline should not pay a
            // spawn/join round trip.
            let mut worker = Worker::new(&self.shards);
            let mut out = Vec::new();
            let mut spec = Vec::new();
            for job in &jobs {
                worker.run_job(*job, input, 0, &mut out, &mut spec);
            }
            (out, spec)
        } else {
            let queue = AtomicUsize::new(0);
            // Workers batch reports locally and take the shared merge
            // lock (rank ENGINE_MERGE) exactly once, after their last
            // job — one contended acquisition per worker, not per report.
            // Speculative products go through a second accumulator at
            // rank ENGINE_SUMMARY; neither lock is held while the other
            // is.
            let merge_acc = OrderedMutex::new(ranks::ENGINE_MERGE, Vec::new());
            let sum_acc = OrderedMutex::new(ranks::ENGINE_SUMMARY, Vec::new());
            let (queue, jobs, shards) = (&queue, &jobs[..], &self.shards[..]);
            let (merge, sums) = (&merge_acc, &sum_acc);
            crossbeam::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(move |_| {
                        let mut worker = Worker::new(shards);
                        let mut out = Vec::new();
                        let mut spec = Vec::new();
                        loop {
                            let j = queue.fetch_add(1, Ordering::Relaxed);
                            let Some(job) = jobs.get(j) else { break };
                            worker.run_job(*job, input, 0, &mut out, &mut spec);
                        }
                        if !spec.is_empty() {
                            sums.lock().append(&mut spec);
                        }
                        merge.lock().append(&mut out);
                    });
                }
            })
            .expect("scan worker panicked");
            (merge_acc.into_inner(), sum_acc.into_inner())
        };
        // Stitch the speculative shards left-to-right on this thread.
        let mut slots = SpecSlots::collect(self.shards.len(), spec_outs, &mut merged);
        for (si, shard) in self.shards.iter().enumerate() {
            let Shard::Spec { scanner, .. } = shard else {
                continue;
            };
            let k = self.spec_subchunks(len);
            let mut cfg = slots.take_cfg(si);
            let mut scratch = scanner.new_scratch();
            let mut pending = Vec::new();
            for c in 1..k {
                let (s, e) = (len * c / k, len * (c + 1) / k);
                let sum = slots.take_sum(si, c);
                scanner.stitch(
                    &mut scratch,
                    &mut cfg,
                    &sum,
                    &input[s..e],
                    s as u64,
                    &mut merged,
                    &mut pending,
                );
            }
            // A block scan ends the stream, so nothing is held back.
            debug_assert!(pending.is_empty());
        }
        // Canonical order. Distinct shards may report the same code at
        // the same offset; a single engine deduplicates those per cycle,
        // so the merge must too.
        merged.sort_unstable();
        merged.dedup();
        merged
    }

    /// One streaming feed, returning the merged sorted stream for this
    /// chunk.
    fn feed_merged(&mut self, chunk: &[u8], eod: bool) -> Vec<Report> {
        let len = chunk.len();
        let base0 = self.stream_offset;
        if len == 0 {
            let mut merged = Vec::new();
            for shard in &mut self.shards {
                match shard {
                    Shard::Engine { engine, .. } => {
                        engine.feed(chunk, eod, &mut VecSink(&mut merged));
                    }
                    Shard::Spec { stream, .. } => {
                        if eod {
                            merged.extend(stream.pending.drain(..).map(|(o, c)| Report {
                                offset: o,
                                code: ReportCode(c),
                            }));
                        }
                    }
                }
            }
            merged.sort_unstable();
            merged.dedup();
            if eod {
                // The held-back candidates resolve at the last symbol of
                // the previous feed; drop any a shard already reported
                // there unconditionally.
                let tail = &self.tail;
                merged.retain(|r| !tail.contains(&(r.offset, r.code.0)));
            }
            return merged;
        }
        // A non-empty feed extends the stream: candidates held at the
        // previous seam are cancelled, exactly as `NfaEngine` does.
        for shard in &mut self.shards {
            if let Shard::Spec { stream, .. } = shard {
                stream.pending.clear();
            }
        }
        // Phase 1: conventional shards, parallel across shards only
        // (each engine carries mutable stream state).
        let engine_shards = self
            .shards
            .iter()
            .filter(|s| matches!(s, Shard::Engine { .. }))
            .count();
        let workers = self.threads.min(engine_shards);
        let mut merged: Vec<Report> = if workers <= 1 {
            let mut out = Vec::new();
            for shard in &mut self.shards {
                if let Shard::Engine { engine, .. } = shard {
                    engine.feed(chunk, eod, &mut VecSink(&mut out));
                }
            }
            out
        } else {
            let per_worker = self.shards.len().div_ceil(workers);
            let merge_acc = OrderedMutex::new(ranks::ENGINE_MERGE, Vec::new());
            let merge = &merge_acc;
            crossbeam::thread::scope(|scope| {
                for group in self.shards.chunks_mut(per_worker) {
                    scope.spawn(move |_| {
                        let mut out = Vec::new();
                        for shard in group {
                            if let Shard::Engine { engine, .. } = shard {
                                engine.feed(chunk, eod, &mut VecSink(&mut out));
                            }
                        }
                        merge.lock().append(&mut out);
                    });
                }
            })
            .expect("feed worker panicked");
            merge_acc.into_inner()
        };
        // Phase 2: speculative shards, parallel across subchunks.
        let mut jobs = Vec::new();
        for (si, shard) in self.shards.iter().enumerate() {
            let Shard::Spec { .. } = shard else { continue };
            let k = self.spec_subchunks(len);
            for c in 0..k {
                let final_sub = c + 1 == k;
                let kind = if c == 0 {
                    JobKind::Exact {
                        last: eod && final_sub,
                        maybe_last: !eod && final_sub,
                    }
                } else {
                    JobKind::Summary {
                        index: c,
                        last: eod && final_sub,
                        maybe_last: !eod && final_sub,
                    }
                };
                jobs.push(Job {
                    shard: si,
                    start: len * c / k,
                    end: len * (c + 1) / k,
                    kind,
                });
            }
        }
        let workers = self.threads.min(jobs.len());
        let spec_outs = if jobs.is_empty() {
            Vec::new()
        } else if workers <= 1 {
            let mut worker = Worker::new(&self.shards);
            let mut spec = Vec::new();
            let mut out = Vec::new();
            for job in &jobs {
                worker.run_job(*job, chunk, base0, &mut out, &mut spec);
            }
            debug_assert!(out.is_empty(), "spec jobs report via SpecOut");
            spec
        } else {
            let queue = AtomicUsize::new(0);
            let sum_acc = OrderedMutex::new(ranks::ENGINE_SUMMARY, Vec::new());
            let (queue, jobs, shards, sums) = (&queue, &jobs[..], &self.shards[..], &sum_acc);
            crossbeam::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(move |_| {
                        let mut worker = Worker::new(shards);
                        let mut out = Vec::new();
                        let mut spec = Vec::new();
                        loop {
                            let j = queue.fetch_add(1, Ordering::Relaxed);
                            let Some(job) = jobs.get(j) else { break };
                            worker.run_job(*job, chunk, base0, &mut out, &mut spec);
                        }
                        debug_assert!(out.is_empty(), "spec jobs report via SpecOut");
                        sums.lock().append(&mut spec);
                    });
                }
            })
            .expect("feed worker panicked");
            sum_acc.into_inner()
        };
        // Stitch, adopting each shard's resolved exit configuration.
        let mut slots = SpecSlots::collect(self.shards.len(), spec_outs, &mut merged);
        let k = self.spec_subchunks(len);
        for (si, shard) in self.shards.iter_mut().enumerate() {
            let Shard::Spec { scanner, stream } = shard else {
                continue;
            };
            stream.cfg = slots.take_cfg(si);
            stream.pending.append(&mut slots.take_pending(si));
            for c in 1..k {
                let (s, e) = (len * c / k, len * (c + 1) / k);
                let sum = slots.take_sum(si, c);
                scanner.stitch(
                    &mut stream.scratch,
                    &mut stream.cfg,
                    &sum,
                    &chunk[s..e],
                    base0 + s as u64,
                    &mut merged,
                    &mut stream.pending,
                );
            }
            stream.pending.sort_unstable();
            stream.pending.dedup();
        }
        merged.sort_unstable();
        merged.dedup();
        self.stream_offset += len as u64;
        let end = self.stream_offset;
        self.tail = merged
            .iter()
            .filter(|r| r.offset + 1 == end)
            .map(|r| (r.offset, r.code.0))
            .collect();
        merged
    }
}

/// Per-shard collection bins for worker [`SpecOut`] products; exact
/// subchunks' final reports drain straight into the merge stream.
struct SpecSlots {
    cfgs: Vec<Option<SpecConfig>>,
    pendings: Vec<Vec<(u64, u32)>>,
    sums: Vec<Vec<Option<ChunkSummary>>>,
}

impl SpecSlots {
    fn collect(n_shards: usize, outs: Vec<SpecOut>, merged: &mut Vec<Report>) -> SpecSlots {
        let mut slots = SpecSlots {
            cfgs: vec![None; n_shards],
            pendings: vec![Vec::new(); n_shards],
            sums: (0..n_shards).map(|_| Vec::new()).collect(),
        };
        for out in outs {
            match out {
                SpecOut::Exact {
                    shard,
                    cfg,
                    mut reports,
                    mut pending,
                } => {
                    merged.append(&mut reports);
                    slots.cfgs[shard] = Some(cfg);
                    slots.pendings[shard].append(&mut pending);
                }
                SpecOut::Sum { shard, index, sum } => {
                    let bin = &mut slots.sums[shard];
                    if bin.len() <= index {
                        bin.resize_with(index + 1, || None);
                    }
                    bin[index] = Some(sum);
                }
            }
        }
        slots
    }

    fn take_cfg(&mut self, shard: usize) -> SpecConfig {
        self.cfgs[shard].take().expect("exact subchunk result")
    }

    fn take_pending(&mut self, shard: usize) -> Vec<(u64, u32)> {
        std::mem::take(&mut self.pendings[shard])
    }

    fn take_sum(&mut self, shard: usize, index: usize) -> ChunkSummary {
        self.sums[shard][index].take().expect("subchunk summary")
    }
}

/// Component execution class for a shard that failed whole-shard
/// chunking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CompClass {
    /// Counter-free, unanchored, acyclic: bounded-overlap chunkable.
    Easy,
    /// Hard but speculation-eligible (any counters are terminal).
    Spec,
    /// A counter drives successors: sequential whole-input scan.
    Unsound,
}

/// Marks (by component label) every component containing a cycle
/// reachable from a start state — the components with no finite overlap
/// window.
fn mark_reachable_cycles(p: &Automaton, labels: &[usize], cyclic: &mut [bool]) {
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let mut color = vec![WHITE; p.state_count()];
    for start in p.start_states() {
        if color[start.index()] != WHITE {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        color[start.index()] = GRAY;
        while let Some(top) = stack.last_mut() {
            let (v, ei) = *top;
            let succs = p.successors(v);
            if ei < succs.len() {
                top.1 += 1;
                let t = succs[ei].to;
                match color[t.index()] {
                    WHITE => {
                        color[t.index()] = GRAY;
                        stack.push((t, 0));
                    }
                    GRAY => cyclic[labels[v.index()]] = true,
                    _ => {}
                }
            } else {
                color[v.index()] = BLACK;
                stack.pop();
            }
        }
    }
}

/// `Some(longest match span)` if `p` supports bounded-overlap input
/// chunking: no counters (their state depends on the whole prefix), no
/// start-of-data anchors (chunk workers start mid-stream), and no
/// reachable cycles (unbounded match length means no finite overlap
/// window). Shards failing this are chunked speculatively instead.
fn chunk_window(p: &Automaton) -> Option<usize> {
    if p.counter_count() > 0 {
        return None;
    }
    let anchored = p.iter().any(|(_, e)| {
        matches!(
            e.kind,
            ElementKind::Ste {
                start: StartKind::StartOfData,
                ..
            }
        )
    });
    if anchored {
        return None;
    }
    longest_path_from_starts(p).filter(|&w| w > 0)
}

/// Shuffle-DFA gating first: a shard that determinizes to <= 16 states
/// steps in one pshufb, beating both the prefilter and plain simulation.
fn build_shard_engine(p: &Automaton, prefilter: bool) -> Result<ShardEngine, EngineError> {
    Ok(if let Ok(sh) = ShengEngine::new(p) {
        ShardEngine::Sheng(Box::new(sh))
    } else if prefilter {
        let pf = PrefilterEngine::new(p)?;
        if pf.component_count() > 0 && pf.coverage() >= PREFILTER_COVERAGE_GATE {
            ShardEngine::Prefilter(Box::new(pf))
        } else {
            ShardEngine::Nfa(Box::new(NfaEngine::new(p)?))
        }
    } else {
        ShardEngine::Nfa(Box::new(NfaEngine::new(p)?))
    })
}

/// Per-thread job executor. Keeps one engine clone (or speculative
/// scratch) per shard so a worker that draws several chunks of the same
/// shard allocates it only once (both `scan` and `reset_stream`/`feed`
/// restart from initial state, so reuse across jobs is sound).
struct Worker<'a> {
    shards: &'a [Shard],
    engines: Vec<Option<ShardEngine>>,
    scratches: Vec<Option<FrontierScratch>>,
}

impl<'a> Worker<'a> {
    fn new(shards: &'a [Shard]) -> Self {
        Worker {
            shards,
            engines: vec![None; shards.len()],
            scratches: vec![None; shards.len()],
        }
    }

    /// Executes one job. Conventional jobs append owned reports
    /// (absolute offsets) to `out`; speculative jobs deposit their
    /// products into `spec_out`. `base` is the stream offset of
    /// `input[0]` (zero for block scans).
    fn run_job(
        &mut self,
        job: Job,
        input: &[u8],
        base: u64,
        out: &mut Vec<Report>,
        spec_out: &mut Vec<SpecOut>,
    ) {
        match job.kind {
            JobKind::Whole => {
                let engine = self.engine(job.shard);
                let mut sink = VecSink(out);
                engine.scan(input, &mut sink);
            }
            JobKind::Window(window) => {
                // Re-scan up to `window - 1` bytes before the chunk so
                // matches spanning the boundary are seen, then keep only
                // the reports this chunk owns.
                let engine = self.engine(job.shard);
                let slice_start = job.start.saturating_sub(window - 1);
                let eod = job.end == input.len();
                let mut sink = RebaseSink {
                    base: slice_start as u64,
                    min: job.start as u64,
                    out,
                };
                engine.reset_stream();
                engine.feed(&input[slice_start..job.end], eod, &mut sink);
            }
            JobKind::Exact { last, maybe_last } => {
                let Shard::Spec { scanner, stream } = &self.shards[job.shard] else {
                    unreachable!("exact job on a non-speculative shard")
                };
                let scratch =
                    self.scratches[job.shard].get_or_insert_with(|| scanner.new_scratch());
                // The stream configuration is adopted (not mutated) so a
                // failed scan cannot corrupt shard state.
                let mut cfg = stream.cfg.clone();
                let entry = std::mem::take(&mut cfg.active);
                let mut reports = Vec::new();
                let mut pending = Vec::new();
                let mut exits = Vec::new();
                scanner.run_exact(
                    scratch,
                    None,
                    &entry,
                    &mut cfg.counts,
                    &mut cfg.latched,
                    &input[job.start..job.end],
                    base + job.start as u64,
                    last,
                    maybe_last,
                    &mut reports,
                    &mut pending,
                    &mut exits,
                );
                exits.sort_unstable();
                exits.dedup();
                cfg.active = exits;
                spec_out.push(SpecOut::Exact {
                    shard: job.shard,
                    cfg,
                    reports,
                    pending,
                });
            }
            JobKind::Summary {
                index,
                last,
                maybe_last,
            } => {
                let Shard::Spec { scanner, .. } = &self.shards[job.shard] else {
                    unreachable!("summary job on a non-speculative shard")
                };
                let scratch =
                    self.scratches[job.shard].get_or_insert_with(|| scanner.new_scratch());
                let sum = scanner.summarize(scratch, &input[job.start..job.end], last, maybe_last);
                spec_out.push(SpecOut::Sum {
                    shard: job.shard,
                    index,
                    sum,
                });
            }
        }
    }

    fn engine(&mut self, shard: usize) -> &mut ShardEngine {
        self.engines[shard].get_or_insert_with(|| {
            let Shard::Engine { engine, .. } = &self.shards[shard] else {
                unreachable!("engine job on a speculative shard")
            };
            engine.clone()
        })
    }
}

/// Appends reports verbatim.
struct VecSink<'a>(&'a mut Vec<Report>);

impl ReportSink for VecSink<'_> {
    fn report(&mut self, offset: u64, code: azoo_core::ReportCode) {
        self.0.push(Report { offset, code });
    }
}

/// Rebases slice-relative offsets to absolute ones and drops reports
/// below the chunk's owned range.
struct RebaseSink<'a> {
    base: u64,
    min: u64,
    out: &'a mut Vec<Report>,
}

impl ReportSink for RebaseSink<'_> {
    fn report(&mut self, offset: u64, code: azoo_core::ReportCode) {
        let offset = offset + self.base;
        if offset >= self.min {
            self.out.push(Report { offset, code });
        }
    }
}

impl Engine for ParallelScanner {
    fn scan(&mut self, input: &[u8], sink: &mut dyn ReportSink) {
        for r in self.scan_merged(input) {
            sink.report(r.offset, r.code);
        }
    }

    fn name(&self) -> &'static str {
        "parallel"
    }
}

impl StreamingEngine for ParallelScanner {
    fn reset_stream(&mut self) {
        for s in &mut self.shards {
            match s {
                Shard::Engine { engine, .. } => engine.reset_stream(),
                Shard::Spec { scanner, stream } => {
                    stream.cfg = scanner.initial_config();
                    stream.pending.clear();
                }
            }
        }
        self.stream_offset = 0;
        self.tail.clear();
    }

    fn stream_quiesced(&self) -> bool {
        self.stream_offset == 0
            && self.tail.is_empty()
            && self.shards.iter().all(|s| match s {
                Shard::Engine { engine, .. } => engine.stream_quiesced(),
                Shard::Spec { scanner, stream } => {
                    scanner.quiesced(&stream.cfg) && stream.pending.is_empty()
                }
            })
    }

    /// Streaming parallelizes conventional shards across shards (each
    /// engine carries state between `feed` calls) and speculative shards
    /// across subchunks of the fed chunk.
    fn feed(&mut self, chunk: &[u8], eod: bool, sink: &mut dyn ReportSink) {
        for r in self.feed_merged(chunk, eod) {
            sink.report(r.offset, r.code);
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::sink::CollectSink;
    use azoo_core::{CounterMode, SymbolClass};

    fn words(list: &[&[u8]]) -> Automaton {
        let mut a = Automaton::new();
        for (code, word) in list.iter().enumerate() {
            let classes: Vec<SymbolClass> =
                word.iter().map(|&b| SymbolClass::from_byte(b)).collect();
            let (_, last) = a.add_chain(&classes, StartKind::AllInput);
            a.set_report(last, code as u32);
        }
        a
    }

    fn nfa_reports(a: &Automaton, input: &[u8]) -> Vec<Report> {
        let mut sink = CollectSink::new();
        NfaEngine::new(a).unwrap().scan(input, &mut sink);
        sink.sorted_reports()
    }

    fn parallel_reports(a: &Automaton, threads: usize, input: &[u8]) -> Vec<Report> {
        let mut sink = CollectSink::new();
        ParallelScanner::new(a, threads)
            .unwrap()
            .scan(input, &mut sink);
        sink.reports().to_vec()
    }

    #[test]
    fn matches_nfa_on_multi_component_words() {
        let a = words(&[b"cat", b"dog", b"catalog", b"og"]);
        let input = b"the catalog lists a dog and a catdog";
        let expected = nfa_reports(&a, input);
        assert!(!expected.is_empty());
        for threads in [1, 2, 4, 8] {
            assert_eq!(
                parallel_reports(&a, threads, input),
                expected,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn output_is_already_sorted_and_deduped() {
        // Two shards reporting the same code at the same offsets: a
        // single engine dedups per cycle, so the merge must as well.
        let mut a = words(&[b"aa"]);
        let other = words(&[b"aa"]);
        a.append(&other);
        // Both chains share code 0 now.
        let input = b"aaaa";
        for threads in [1, 2, 4] {
            let got = parallel_reports(&a, threads, input);
            assert_eq!(got, nfa_reports(&a, input), "{threads} threads");
            let mut sorted = got.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(got, sorted);
        }
    }

    #[test]
    fn terminal_counters_chunk_speculatively() {
        // k at least 3 times (latched counter): previously a whole-input
        // fallback, now a speculative shard.
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::from_byte(b'k'), StartKind::AllInput);
        let c = a.add_counter(3, CounterMode::Latch);
        a.add_edge(s, c);
        a.set_report(c, 9);
        let scanner = ParallelScanner::new(&a, 4).unwrap();
        assert_eq!(scanner.chunkable_shard_count(), 0);
        assert_eq!(scanner.speculative_shard_count(), 1);
        assert_eq!(scanner.whole_input_shard_count(), 0);
        let input = b"kkxkkkxk";
        for threads in [1, 2, 4] {
            assert_eq!(parallel_reports(&a, threads, input), nfa_reports(&a, input));
        }
    }

    #[test]
    fn non_terminal_counters_fall_back_to_whole_input() {
        // The counter drives a successor, so speculation is unsound and
        // the component keeps the sequential whole-input path.
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::from_byte(b'k'), StartKind::AllInput);
        let c = a.add_counter(2, CounterMode::Latch);
        a.add_edge(s, c);
        let y = a.add_ste(SymbolClass::from_byte(b'y'), StartKind::None);
        a.add_edge(c, y);
        a.set_report(y, 5);
        let scanner = ParallelScanner::new(&a, 4).unwrap();
        assert_eq!(scanner.speculative_shard_count(), 0);
        assert_eq!(scanner.whole_input_shard_count(), 1);
        let input = b"kkyky";
        for threads in [1, 2, 4] {
            assert_eq!(parallel_reports(&a, threads, input), nfa_reports(&a, input));
        }
    }

    #[test]
    fn mixed_shard_splits_into_spec_and_fallback() {
        // One taggable counter component plus one non-terminal-counter
        // component packed together: the shard splits.
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::from_byte(b'k'), StartKind::AllInput);
        let c = a.add_counter(3, CounterMode::Latch);
        a.add_edge(s, c);
        a.set_report(c, 9);
        let s2 = a.add_ste(SymbolClass::from_byte(b'm'), StartKind::AllInput);
        let c2 = a.add_counter(2, CounterMode::Latch);
        a.add_edge(s2, c2);
        let y = a.add_ste(SymbolClass::from_byte(b'y'), StartKind::None);
        a.add_edge(c2, y);
        a.set_report(y, 5);
        let scanner = ParallelScanner::new(&a, 1).unwrap();
        assert_eq!(scanner.speculative_shard_count(), 1);
        assert_eq!(scanner.whole_input_shard_count(), 1);
        let input = b"kkmkymmyk";
        for threads in [1, 2, 4] {
            assert_eq!(parallel_reports(&a, threads, input), nfa_reports(&a, input));
        }
    }

    #[test]
    fn cycles_chunk_speculatively() {
        // a(b)*c — unbounded match span, no finite overlap window.
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::AllInput);
        let loop_ = a.add_ste(SymbolClass::from_byte(b'b'), StartKind::None);
        let end = a.add_ste(SymbolClass::from_byte(b'c'), StartKind::None);
        a.add_edge(s, loop_);
        a.add_edge(loop_, loop_);
        a.add_edge(s, end);
        a.add_edge(loop_, end);
        a.set_report(end, 0);
        let scanner = ParallelScanner::new(&a, 4).unwrap();
        assert_eq!(scanner.chunkable_shard_count(), 0);
        assert_eq!(scanner.speculative_shard_count(), 1);
        let input = b"abbbbbbbbbbcxac";
        for threads in [1, 2, 4, 8] {
            assert_eq!(parallel_reports(&a, threads, input), nfa_reports(&a, input));
        }
    }

    #[test]
    fn start_of_data_chunks_speculatively() {
        let mut a = Automaton::new();
        let (_, last) = a.add_chain(
            &[SymbolClass::from_byte(b'q'), SymbolClass::from_byte(b'r')],
            StartKind::StartOfData,
        );
        a.set_report(last, 0);
        let scanner = ParallelScanner::new(&a, 4).unwrap();
        assert_eq!(scanner.chunkable_shard_count(), 0);
        assert_eq!(scanner.speculative_shard_count(), 1);
        // Must match only at offset 1, never at the later "qr".
        let input = b"qrxqr";
        for threads in [1, 2, 4] {
            let got = parallel_reports(&a, threads, input);
            assert_eq!(got.len(), 1);
            assert_eq!(got[0].offset, 1);
        }
    }

    #[test]
    fn eod_anchored_reports_only_fire_at_end() {
        let mut a = words(&[b"ab"]);
        let z = a.add_ste(SymbolClass::from_byte(b'z'), StartKind::AllInput);
        a.set_report(z, 7);
        a.set_report_eod_only(z, true);
        let input = b"zabzzzabz";
        for threads in [1, 2, 4, 8] {
            assert_eq!(parallel_reports(&a, threads, input), nfa_reports(&a, input));
        }
    }

    #[test]
    fn streaming_matches_whole_scan() {
        let a = words(&[b"abc", b"cab"]);
        let input = b"xabcabcabx";
        let mut scanner = ParallelScanner::new(&a, 4).unwrap();
        let whole = nfa_reports(&a, input);
        for cut in 0..=input.len() {
            let mut sink = CollectSink::new();
            scanner.scan_chunks([&input[..cut], &input[cut..]], &mut sink);
            assert_eq!(sink.reports().to_vec(), whole, "cut {cut}");
        }
    }

    #[test]
    fn streaming_speculative_shards_match_whole_scan() {
        // Counter + cycle + anchor all in one automaton; every cut point
        // must produce the whole-scan stream.
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::from_byte(b'k'), StartKind::AllInput);
        let c = a.add_counter(3, CounterMode::Latch);
        a.add_edge(s, c);
        a.set_report(c, 9);
        let s0 = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::AllInput);
        let s1 = a.add_ste(SymbolClass::from_byte(b'b'), StartKind::None);
        a.add_edge(s0, s1);
        a.add_edge(s1, s1);
        a.set_report(s1, 4);
        let (_, qlast) = a.add_chain(
            &[SymbolClass::from_byte(b'q'), SymbolClass::from_byte(b'r')],
            StartKind::StartOfData,
        );
        a.set_report(qlast, 2);
        let input = b"qrkabbkxkkabqrkk";
        let whole = nfa_reports(&a, input);
        assert!(!whole.is_empty());
        for threads in [1, 2, 4] {
            let mut scanner = ParallelScanner::new(&a, threads).unwrap();
            for cut in 0..=input.len() {
                let mut sink = CollectSink::new();
                scanner.scan_chunks([&input[..cut], &input[cut..]], &mut sink);
                assert_eq!(sink.sorted_reports(), whole, "{threads} threads cut {cut}");
            }
        }
    }

    #[test]
    fn scan_is_reusable() {
        let a = words(&[b"xy"]);
        let mut scanner = ParallelScanner::new(&a, 2).unwrap();
        for _ in 0..3 {
            let mut sink = CollectSink::new();
            scanner.scan(b"xyxy", &mut sink);
            assert_eq!(sink.reports().len(), 2);
        }
    }

    #[test]
    fn startless_components_are_skipped_not_fatal() {
        // A component with no start state can never activate; a single
        // NfaEngine tolerates it because the whole automaton still has
        // starts, and the scanner must too even when partitioning
        // isolates it into its own shard.
        let mut a = words(&[b"ab"]);
        let x = a.add_ste(SymbolClass::from_byte(b'x'), StartKind::None);
        let y = a.add_ste(SymbolClass::from_byte(b'y'), StartKind::None);
        a.add_edge(x, y);
        a.set_report(y, 5);
        for threads in [1, 2, 4] {
            let scanner = ParallelScanner::new(&a, threads).unwrap();
            assert!(scanner.shard_count() >= 1);
            assert_eq!(
                parallel_reports(&a, threads, b"abxyab"),
                nfa_reports(&a, b"abxyab")
            );
        }
    }

    #[test]
    fn prefiltered_shards_match_plain_shards() {
        // Literal words plus one cyclic component: shards too big for the
        // shuffle DFA run behind the prefilter (the two long words keep
        // every packing above 16 DFA states), small shards may run as a
        // shuffle DFA, and the merged stream is unchanged either way.
        let mut a = words(&[
            b"cat",
            b"dog",
            b"catalog",
            b"og",
            b"internationalization",
            b"electroencephalogram",
        ]);
        let s = a.add_ste(SymbolClass::from_byte(b'x'), StartKind::AllInput);
        let l = a.add_ste(SymbolClass::from_byte(b'y'), StartKind::None);
        a.add_edge(s, l);
        a.add_edge(l, l);
        a.set_report(l, 9);
        let input = b"the catalog lists a dog xyy and a catdog";
        let expected = nfa_reports(&a, input);
        for threads in [1, 2, 4] {
            let mut scanner = ParallelScanner::with_prefilter(&a, threads, true).unwrap();
            assert!(scanner.prefiltered_shard_count() >= 1);
            let mut sink = CollectSink::new();
            scanner.scan(input, &mut sink);
            assert_eq!(sink.reports().to_vec(), expected, "{threads} threads");
            // Streaming path too.
            let mut sink = CollectSink::new();
            scanner.scan_chunks([&input[..7], &input[7..30], &input[30..]], &mut sink);
            assert_eq!(
                sink.sorted_reports(),
                expected,
                "{threads} threads streamed"
            );
        }
        let plain = ParallelScanner::new(&a, 4).unwrap();
        assert_eq!(plain.prefiltered_shard_count(), 0);
    }

    #[test]
    fn zero_threads_is_a_typed_error() {
        let a = words(&[b"a"]);
        assert_eq!(
            ParallelScanner::new(&a, 0).err(),
            Some(EngineError::InvalidThreads)
        );
        assert_eq!(
            ParallelScanner::with_prefilter(&a, 0, true).err(),
            Some(EngineError::InvalidThreads)
        );
    }

    #[test]
    fn invalid_automaton_errors() {
        let mut a = Automaton::new();
        a.add_ste(SymbolClass::EMPTY, StartKind::AllInput);
        assert!(ParallelScanner::new(&a, 2).is_err());
    }
}

//! A dense Aho–Corasick multi-literal matcher.
//!
//! This is the trigger stage of the prefilter engine: it reports the
//! *end offset* of every occurrence of every literal, tagged with the
//! pattern's id. Fail links are folded into the transition table at
//! build time (the "DFA" Aho–Corasick variant), so the scan loop is one
//! table load per byte, and the matcher streams trivially — the current
//! node is the whole cross-chunk state.

/// An occurrence of pattern `pattern` whose last byte is at `end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiteralHit {
    /// Offset of the occurrence's final byte.
    pub end: u64,
    /// Index of the matched pattern, as passed to [`AhoCorasick::new`].
    pub pattern: u32,
}

/// Dense-transition Aho–Corasick automaton over byte literals.
#[derive(Debug, Clone)]
pub struct AhoCorasick {
    /// `next[node * 256 + byte]` — goto with fail links pre-applied.
    next: Vec<u32>,
    /// CSR output lists: patterns ending at each node (own plus
    /// fail-chain outputs, merged at build time).
    out_off: Vec<u32>,
    out_pat: Vec<u32>,
    /// Current node for streaming scans.
    state: u32,
    /// Length of the longest pattern.
    max_len: usize,
}

impl AhoCorasick {
    /// Builds the matcher. Empty patterns are ignored (they would match
    /// everywhere and carry no filtering power).
    pub fn new<P: AsRef<[u8]>>(patterns: &[P]) -> AhoCorasick {
        // Trie construction.
        let mut next: Vec<u32> = vec![0; 256]; // node 0 = root
        let mut outs: Vec<Vec<u32>> = vec![Vec::new()];
        for (pi, p) in patterns.iter().enumerate() {
            let bytes = p.as_ref();
            if bytes.is_empty() {
                continue;
            }
            let mut node = 0usize;
            for &b in bytes {
                let slot = node * 256 + b as usize;
                if next[slot] == 0 {
                    let fresh = outs.len() as u32;
                    next[slot] = fresh;
                    next.resize(next.len() + 256, 0);
                    outs.push(Vec::new());
                    node = fresh as usize;
                } else {
                    node = next[slot] as usize;
                }
            }
            outs[node].push(pi as u32);
        }
        // BFS fail links; fold them into the table as we go (a parent's
        // row is final before its children are visited) and merge output
        // lists down the fail chain.
        let nodes = outs.len();
        let mut fail = vec![0u32; nodes];
        let mut queue = std::collections::VecDeque::new();
        for &t in &next[..256] {
            if t != 0 {
                queue.push_back(t);
            }
        }
        while let Some(u) = queue.pop_front() {
            let u = u as usize;
            let f = fail[u] as usize;
            if !outs[f].is_empty() {
                let inherited = outs[f].clone();
                outs[u].extend(inherited);
            }
            for b in 0..256usize {
                let t = next[u * 256 + b];
                if t != 0 {
                    fail[t as usize] = next[f * 256 + b];
                    queue.push_back(t);
                } else {
                    next[u * 256 + b] = next[f * 256 + b];
                }
            }
        }
        let mut out_off = Vec::with_capacity(nodes + 1);
        let mut out_pat = Vec::new();
        out_off.push(0);
        for o in &outs {
            out_pat.extend_from_slice(o);
            out_off.push(out_pat.len() as u32);
        }
        AhoCorasick {
            next,
            out_off,
            out_pat,
            state: 0,
            max_len: patterns.iter().map(|p| p.as_ref().len()).max().unwrap_or(0),
        }
    }

    /// Length of the longest pattern.
    pub fn max_pattern_len(&self) -> usize {
        self.max_len
    }

    /// Number of trie nodes (root included).
    pub fn node_count(&self) -> usize {
        self.out_off.len() - 1
    }

    /// Rewinds the streaming state to the root.
    pub fn reset(&mut self) {
        self.state = 0;
    }

    /// Whether the streaming state sits at the root (freshly reset).
    pub fn is_at_root(&self) -> bool {
        self.state == 0
    }

    /// Feeds one chunk; hit offsets are `base` plus the in-chunk index.
    /// Matcher state carries over to the next call, so literals spanning
    /// chunk boundaries are found.
    pub fn feed(&mut self, chunk: &[u8], base: u64, hits: &mut Vec<LiteralHit>) {
        let mut node = self.state as usize;
        for (i, &b) in chunk.iter().enumerate() {
            node = self.next[node * 256 + b as usize] as usize;
            let lo = self.out_off[node] as usize;
            let hi = self.out_off[node + 1] as usize;
            for oi in lo..hi {
                hits.push(LiteralHit {
                    end: base + i as u64,
                    pattern: self.out_pat[oi],
                });
            }
        }
        self.state = node as u32;
    }

    /// One-shot scan of a whole input.
    pub fn find_all(&mut self, hay: &[u8]) -> Vec<LiteralHit> {
        self.reset();
        let mut hits = Vec::new();
        self.feed(hay, 0, &mut hits);
        hits
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn naive(patterns: &[&[u8]], hay: &[u8]) -> Vec<LiteralHit> {
        let mut hits = Vec::new();
        for (i, &b) in hay.iter().enumerate() {
            let _ = b;
            for (pi, p) in patterns.iter().enumerate() {
                if i + 1 >= p.len() && hay[i + 1 - p.len()..=i] == **p {
                    hits.push(LiteralHit {
                        end: i as u64,
                        pattern: pi as u32,
                    });
                }
            }
        }
        hits
    }

    fn sorted(mut v: Vec<LiteralHit>) -> Vec<(u64, u32)> {
        v.sort_by_key(|h| (h.end, h.pattern));
        v.into_iter().map(|h| (h.end, h.pattern)).collect()
    }

    #[test]
    fn finds_overlapping_and_nested_patterns() {
        let patterns: Vec<&[u8]> = vec![b"he", b"she", b"his", b"hers"];
        let mut ac = AhoCorasick::new(&patterns);
        let hay = b"ushers and his head";
        assert_eq!(sorted(ac.find_all(hay)), sorted(naive(&patterns, hay)));
    }

    #[test]
    fn repeated_and_self_overlapping() {
        let patterns: Vec<&[u8]> = vec![b"aa", b"aaa"];
        let mut ac = AhoCorasick::new(&patterns);
        let hay = b"aaaaa";
        assert_eq!(sorted(ac.find_all(hay)), sorted(naive(&patterns, hay)));
    }

    #[test]
    fn streaming_matches_whole_at_every_cut() {
        let patterns: Vec<&[u8]> = vec![b"chunk", b"unk", b"boundary"];
        let hay = b"achunkyboundarychunk";
        let mut whole = AhoCorasick::new(&patterns);
        let expect = sorted(whole.find_all(hay));
        for cut in 0..=hay.len() {
            let mut ac = AhoCorasick::new(&patterns);
            ac.reset();
            let mut hits = Vec::new();
            ac.feed(&hay[..cut], 0, &mut hits);
            ac.feed(&hay[cut..], cut as u64, &mut hits);
            assert_eq!(sorted(hits), expect, "cut {cut}");
        }
    }

    #[test]
    fn duplicate_patterns_report_both_ids() {
        let patterns: Vec<&[u8]> = vec![b"dup", b"dup"];
        let mut ac = AhoCorasick::new(&patterns);
        let hits = ac.find_all(b"dup");
        assert_eq!(sorted(hits), vec![(2, 0), (2, 1)]);
    }

    #[test]
    fn empty_patterns_are_ignored() {
        let patterns: Vec<&[u8]> = vec![b"", b"x"];
        let mut ac = AhoCorasick::new(&patterns);
        assert_eq!(sorted(ac.find_all(b"axa")), vec![(1, 1)]);
        assert_eq!(ac.max_pattern_len(), 1);
    }

    #[test]
    fn binary_bytes_work() {
        let patterns: Vec<&[u8]> = vec![&[0x00, 0xff], &[0xff, 0x00]];
        let mut ac = AhoCorasick::new(&patterns);
        let hay = [0x00u8, 0xff, 0x00, 0xff];
        assert_eq!(sorted(ac.find_all(&hay)), sorted(naive(&patterns, &hay)));
    }
}

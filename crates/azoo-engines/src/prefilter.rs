//! The literal-prefilter engine.
//!
//! [`PrefilterEngine`] splits the automaton with
//! [`azoo_passes::prefilter_plan`]: components whose every match must
//! contain a *required literal* ending exactly at the report offset are
//! gated behind an [`AhoCorasick`](crate::literal::AhoCorasick) matcher
//! and simulated only inside a bounded window before each candidate hit;
//! the rejected remainder falls back to full [`NfaEngine`] simulation.
//! Components with no reachable reporting element are dropped outright.
//!
//! # Soundness
//!
//! For a prefilterable component (counter-free, no start-of-data anchor,
//! acyclic from its starts, window `w` = longest start-rooted path):
//!
//! * **No hit → no report.** Every match contains a required literal
//!   ending at the match offset, so offsets without a hit need no
//!   simulation at all.
//! * **Window-bound.** Any activation chain culminating at offset `p`
//!   began no earlier than `p − (w − 1)`, so a *cold-start* simulation of
//!   `[p + 1 − w, p + 1)` observes every true report at `p`. Cold starts
//!   cannot invent reports either: the component's only starts are
//!   `AllInput`, which full simulation re-arms on every symbol anyway.
//! * **Streaming dedup.** Overlapping windows are merged per feed, and a
//!   per-component watermark drops reports below the already-simulated
//!   prefix; a true report below the watermark was necessarily emitted by
//!   the feed that consumed its final byte (its hit ends there).
//!
//! The merged output is the canonical sorted, deduplicated report stream
//! — byte-identical to [`NfaEngine`] on the same automaton, which the
//! differential suite verifies across all 25 benchmarks.

use azoo_core::Automaton;
use azoo_passes::prefilter_plan;

use crate::literal::{AhoCorasick, LiteralHit};
use crate::nfa::NfaEngine;
use crate::sink::{Report, ReportSink};
use crate::stream::StreamingEngine;
use crate::{Engine, EngineError};

/// Minimum fraction of states the plan must cover for
/// [`select_engine`](crate::select_engine) to prefer this engine.
pub const PREFILTER_COVERAGE_GATE: f64 = 0.5;

/// One gated component and its streaming simulation state.
#[derive(Debug, Clone)]
struct GatedComponent {
    engine: NfaEngine,
    window: u64,
    /// Reports at global offsets below this were already emitted.
    simulated_to: u64,
    /// Global offset of the last simulated span's start, so pending
    /// end-of-data reports (span-relative) can be rebased when an empty
    /// `eod` feed flushes them.
    last_span_base: u64,
}

/// Literal-gated windowed simulation with full-simulation fallback.
#[derive(Debug, Clone)]
pub struct PrefilterEngine {
    matcher: AhoCorasick,
    /// Pattern index (as fed to the matcher) → gated component index.
    pat_comp: Vec<u32>,
    components: Vec<GatedComponent>,
    fallback: Option<NfaEngine>,
    coverage: f64,
    /// `max(window) − 1`: how many trailing stream bytes a window can
    /// reach back past a chunk boundary.
    keep: usize,

    // Streaming state and per-feed scratch.
    tail: Vec<u8>,
    stream_offset: u64,
    hits: Vec<LiteralHit>,
    spans: Vec<Vec<(u64, u64)>>,
    reports: Vec<Report>,
    /// Reports emitted at the last consumed offset by the previous feed,
    /// so an empty-`eod` pending flush never re-emits one of them.
    tail_reports: Vec<Report>,
}

impl PrefilterEngine {
    /// Plans and compiles the prefilter for `a`.
    ///
    /// Construction succeeds for any valid automaton — with nothing
    /// prefilterable the engine degenerates to a plain [`NfaEngine`]
    /// behind a never-matching trigger. Use [`coverage`](Self::coverage)
    /// and [`component_count`](Self::component_count) to decide whether
    /// that is worthwhile.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Invalid`] if `a` fails validation.
    pub fn new(a: &Automaton) -> Result<Self, EngineError> {
        a.validate()?;
        let plan = prefilter_plan(a);
        let mut patterns: Vec<Vec<u8>> = Vec::new();
        let mut pat_comp = Vec::new();
        let mut components = Vec::with_capacity(plan.components.len());
        for (ci, pc) in plan.components.iter().enumerate() {
            for lit in &pc.literals {
                patterns.push(lit.clone());
                pat_comp.push(ci as u32);
            }
            components.push(GatedComponent {
                engine: NfaEngine::new(&pc.automaton)?,
                window: pc.window as u64,
                simulated_to: 0,
                last_span_base: 0,
            });
        }
        let fallback = match &plan.fallback {
            Some(fb) => Some(NfaEngine::new(fb)?),
            None => None,
        };
        let keep = components
            .iter()
            .map(|c| c.window as usize)
            .max()
            .unwrap_or(0)
            .saturating_sub(1);
        let n_comp = components.len();
        Ok(PrefilterEngine {
            matcher: AhoCorasick::new(&patterns),
            pat_comp,
            components,
            fallback,
            coverage: plan.coverage(),
            keep,
            tail: Vec::new(),
            stream_offset: 0,
            hits: Vec::new(),
            spans: vec![Vec::new(); n_comp],
            reports: Vec::new(),
            tail_reports: Vec::new(),
        })
    }

    /// Fraction of states spared from full simulation (gated plus
    /// dropped, over total).
    pub fn coverage(&self) -> f64 {
        self.coverage
    }

    /// Number of literal-gated components.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Number of literals driving the trigger matcher.
    pub fn literal_count(&self) -> usize {
        self.pat_comp.len()
    }

    /// True when a fallback remainder must be fully simulated.
    pub fn has_fallback(&self) -> bool {
        self.fallback.is_some()
    }
}

/// Rebases span-local report offsets to global ones, dropping those the
/// component's watermark already covered.
struct SpanSink<'a> {
    base: u64,
    min: u64,
    out: &'a mut Vec<Report>,
}

impl ReportSink for SpanSink<'_> {
    fn report(&mut self, offset: u64, code: azoo_core::ReportCode) {
        let global = self.base + offset;
        if global >= self.min {
            self.out.push(Report {
                offset: global,
                code,
            });
        }
    }
}

/// Collects fallback reports (already globally offset).
struct VecSink<'a>(&'a mut Vec<Report>);

impl ReportSink for VecSink<'_> {
    fn report(&mut self, offset: u64, code: azoo_core::ReportCode) {
        self.0.push(Report { offset, code });
    }
}

impl StreamingEngine for PrefilterEngine {
    fn reset_stream(&mut self) {
        self.matcher.reset();
        for c in &mut self.components {
            c.simulated_to = 0;
            c.last_span_base = 0;
            c.engine.reset_stream();
        }
        if let Some(fb) = &mut self.fallback {
            fb.reset_stream();
        }
        self.tail.clear();
        self.tail_reports.clear();
        self.stream_offset = 0;
    }

    fn stream_quiesced(&self) -> bool {
        self.stream_offset == 0
            && self.tail.is_empty()
            && self.tail_reports.is_empty()
            && self.matcher.is_at_root()
            && self
                .components
                .iter()
                .all(|c| c.simulated_to == 0 && c.last_span_base == 0 && c.engine.stream_quiesced())
            && self.fallback.as_ref().is_none_or(|fb| fb.stream_quiesced())
    }

    fn feed(&mut self, chunk: &[u8], eod: bool, sink: &mut dyn ReportSink) {
        let base = self.stream_offset;
        let total = base + chunk.len() as u64;
        self.reports.clear();

        // Stage 1: literal trigger. Hits arrive in increasing end order,
        // so per-component spans can be merged as they are produced.
        self.hits.clear();
        self.matcher.feed(chunk, base, &mut self.hits);
        for h in &self.hits {
            let ci = self.pat_comp[h.pattern as usize] as usize;
            let w = self.components[ci].window;
            let s = (h.end + 1).saturating_sub(w);
            let t = h.end + 1;
            let spans = &mut self.spans[ci];
            match spans.last_mut() {
                Some(last) if s <= last.1 => last.1 = t.max(last.1),
                _ => spans.push((s, t)),
            }
        }

        // Stage 2: cold-start windowed simulation of each merged span.
        // A span may reach back into the previous chunks' tail, but its
        // end never passes the bytes consumed so far, so no span is ever
        // left pending for a later feed.
        for ci in 0..self.components.len() {
            for si in 0..self.spans[ci].len() {
                let (s, t) = self.spans[ci][si];
                let comp = &mut self.components[ci];
                comp.engine.reset_stream();
                let mut ssink = SpanSink {
                    base: s,
                    min: comp.simulated_to,
                    out: &mut self.reports,
                };
                if s < base {
                    let back = (base - s) as usize;
                    debug_assert!(back <= self.tail.len());
                    let tail_part = &self.tail[self.tail.len() - back..];
                    comp.engine.feed(tail_part, false, &mut ssink);
                }
                let c0 = (s.max(base) - base) as usize;
                let c1 = (t - base) as usize;
                comp.engine
                    .feed(&chunk[c0..c1], eod && t == total, &mut ssink);
                comp.simulated_to = t;
                comp.last_span_base = s;
            }
            self.spans[ci].clear();
        }

        // Stage 2b: end of data on an empty chunk — the final symbol was
        // consumed by an earlier feed. Components whose last span reached
        // the end of the stream may hold back end-of-data reports; flush
        // them (watermark 0: eod-gated reports cannot have been emitted
        // before eod arrived). Components whose last span ended earlier
        // cannot report at the final symbol at all (no literal hit ends
        // there), so their pending state is stale and stays unflushed.
        if eod && chunk.is_empty() {
            for comp in &mut self.components {
                if comp.simulated_to == total && comp.simulated_to > 0 {
                    let mut ssink = SpanSink {
                        base: comp.last_span_base,
                        min: 0,
                        out: &mut self.reports,
                    };
                    comp.engine.feed(&[], true, &mut ssink);
                }
            }
        }

        // Stage 3: full simulation of the fallback remainder.
        if let Some(fb) = &mut self.fallback {
            fb.feed(chunk, eod, &mut VecSink(&mut self.reports));
        }

        // Canonical merge: per-feed sort and dedup. Cross-feed duplicates
        // are impossible (watermarks), except when an empty-`eod` flush
        // replays a code the previous feed already emitted
        // unconditionally at the final symbol — filter those.
        self.reports.sort_unstable();
        self.reports.dedup();
        if eod && chunk.is_empty() && !self.tail_reports.is_empty() {
            let tail_reports = &self.tail_reports;
            self.reports.retain(|r| !tail_reports.contains(r));
        }
        for r in &self.reports {
            sink.report(r.offset, r.code);
        }
        if !chunk.is_empty() {
            // Remember what was emitted at the last consumed offset, for
            // the empty-`eod` cross-feed dedup above.
            self.tail_reports.clear();
            let last_off = total - 1;
            self.tail_reports.extend(
                self.reports
                    .iter()
                    .filter(|r| r.offset == last_off)
                    .copied(),
            );
        }

        // Roll the tail window forward for the next feed.
        self.stream_offset = total;
        if self.keep > 0 {
            if chunk.len() >= self.keep {
                self.tail.clear();
                self.tail
                    .extend_from_slice(&chunk[chunk.len() - self.keep..]);
            } else {
                let excess = (self.tail.len() + chunk.len()).saturating_sub(self.keep);
                self.tail.drain(..excess);
                self.tail.extend_from_slice(chunk);
            }
        }
    }
}

impl Engine for PrefilterEngine {
    fn scan(&mut self, input: &[u8], sink: &mut dyn ReportSink) {
        self.reset_stream();
        self.feed(input, true, sink);
    }

    fn name(&self) -> &'static str {
        "prefilter"
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::sink::CollectSink;
    use azoo_core::{CounterMode, StartKind, SymbolClass};

    fn word(a: &mut Automaton, w: &[u8], code: u32) {
        let classes: Vec<SymbolClass> = w.iter().map(|&b| SymbolClass::from_byte(b)).collect();
        let (_, last) = a.add_chain(&classes, StartKind::AllInput);
        a.set_report(last, code);
    }

    fn nfa_reports(a: &Automaton, input: &[u8]) -> Vec<Report> {
        let mut sink = CollectSink::new();
        NfaEngine::new(a).unwrap().scan(input, &mut sink);
        sink.sorted_reports()
    }

    #[test]
    fn matches_nfa_on_literal_suite() {
        let mut a = Automaton::new();
        word(&mut a, b"admin", 0);
        word(&mut a, b"root", 1);
        word(&mut a, b"min", 2); // suffix of another literal
        let mut input = b"the admin went root-level; adminmin".to_vec();
        input.extend_from_slice(&[0u8; 64]);
        let mut engine = PrefilterEngine::new(&a).unwrap();
        assert_eq!(engine.component_count(), 3);
        assert!(!engine.has_fallback());
        assert_eq!(engine.coverage(), 1.0);
        let mut sink = CollectSink::new();
        engine.scan(&input, &mut sink);
        assert_eq!(sink.reports(), nfa_reports(&a, &input));
    }

    #[test]
    fn fallback_components_still_report() {
        let mut a = Automaton::new();
        word(&mut a, b"lit", 0);
        // Cyclic component: rejected by the analysis, fully simulated.
        let s = a.add_ste(SymbolClass::from_byte(b'x'), StartKind::AllInput);
        let l = a.add_ste(SymbolClass::from_byte(b'y'), StartKind::None);
        a.add_edge(s, l);
        a.add_edge(l, l);
        a.set_report(l, 1);
        let mut engine = PrefilterEngine::new(&a).unwrap();
        assert_eq!(engine.component_count(), 1);
        assert!(engine.has_fallback());
        let input = b"xyyy lit xyy lit";
        let mut sink = CollectSink::new();
        engine.scan(input, &mut sink);
        assert_eq!(sink.reports(), nfa_reports(&a, input));
    }

    #[test]
    fn shared_codes_across_components_dedupe() {
        // Two gated components share a report code and match at the same
        // offset; the canonical stream holds one report, like the NFA's
        // per-cycle code dedup.
        let mut a = Automaton::new();
        word(&mut a, b"ab", 7);
        word(&mut a, b"bb", 7);
        let input = b"xabb"; // "ab" at 2? no: "ab" ends at 2, "bb" ends at 3... use overlap
        let mut engine = PrefilterEngine::new(&a).unwrap();
        let mut sink = CollectSink::new();
        engine.scan(input, &mut sink);
        assert_eq!(sink.reports(), nfa_reports(&a, input));

        let mut a2 = Automaton::new();
        word(&mut a2, b"ab", 7);
        word(&mut a2, b"cb", 7);
        let mut e2 = PrefilterEngine::new(&a2).unwrap();
        let mut s2 = CollectSink::new();
        // No single offset has both, but same-offset same-code from one
        // component plus fallbackless merge must still be deduped.
        e2.scan(b"ab cb", &mut s2);
        assert_eq!(s2.reports(), nfa_reports(&a2, b"ab cb"));
    }

    #[test]
    fn streaming_splits_literals_across_chunks() {
        let mut a = Automaton::new();
        word(&mut a, b"boundary", 0);
        word(&mut a, b"dar", 1);
        let input = b"....boundary....boundary..";
        let expect = nfa_reports(&a, input);
        for cut in 0..=input.len() {
            let mut engine = PrefilterEngine::new(&a).unwrap();
            let mut sink = CollectSink::new();
            engine.scan_chunks([&input[..cut], &input[cut..]], &mut sink);
            assert_eq!(sink.sorted_reports(), expect, "cut {cut}");
        }
    }

    #[test]
    fn overlapping_hits_do_not_duplicate() {
        let mut a = Automaton::new();
        word(&mut a, b"aa", 0);
        let input = b"aaaaaaaa";
        let mut engine = PrefilterEngine::new(&a).unwrap();
        let mut sink = CollectSink::new();
        engine.scan(input, &mut sink);
        assert_eq!(sink.reports(), nfa_reports(&a, input));
    }

    #[test]
    fn counters_go_to_fallback_and_match() {
        let mut a = Automaton::new();
        word(&mut a, b"word", 0);
        let s = a.add_ste(SymbolClass::from_byte(b'k'), StartKind::AllInput);
        let c = a.add_counter(2, CounterMode::Latch);
        let t = a.add_ste(SymbolClass::from_byte(b'z'), StartKind::None);
        a.add_edge(s, c);
        a.add_edge(c, t);
        a.set_report(t, 1);
        let mut engine = PrefilterEngine::new(&a).unwrap();
        assert!(engine.has_fallback());
        let input = b"kk..z word z";
        let mut sink = CollectSink::new();
        engine.scan(input, &mut sink);
        assert_eq!(sink.reports(), nfa_reports(&a, input));
    }

    #[test]
    fn eod_anchored_fallback_and_empty_automaton() {
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::from_byte(b'z'), StartKind::AllInput);
        a.set_report(s, 0);
        a.set_report_eod_only(s, true);
        let mut engine = PrefilterEngine::new(&a).unwrap();
        let input = b"zzz";
        let mut sink = CollectSink::new();
        engine.scan(input, &mut sink);
        assert_eq!(sink.reports(), nfa_reports(&a, input));

        let empty = Automaton::new();
        let mut e = PrefilterEngine::new(&empty).unwrap();
        let mut s = CollectSink::new();
        e.scan(b"anything", &mut s);
        assert!(s.reports().is_empty());
        assert_eq!(e.coverage(), 1.0);
    }

    #[test]
    fn engines_are_reusable_across_scans() {
        let mut a = Automaton::new();
        word(&mut a, b"hit", 0);
        let mut engine = PrefilterEngine::new(&a).unwrap();
        for _ in 0..3 {
            let mut sink = CollectSink::new();
            engine.scan(b"a hit and a hit", &mut sink);
            assert_eq!(sink.reports().len(), 2);
        }
    }
}

//! The literal-prefilter engine.
//!
//! [`PrefilterEngine`] splits the automaton with
//! [`azoo_passes::prefilter_plan`]: components whose every match must
//! contain a *required factor* — a forced byte chain with known
//! `before`/`after` span geometry (see
//! [`azoo_core::stats::RequiredLiteral`]) — are gated behind an
//! [`AhoCorasick`](crate::literal::AhoCorasick) matcher and simulated
//! only inside a bounded span around each candidate hit; the rejected
//! remainder falls back to full simulation ([`NfaEngine`], or
//! [`LazyDfaEngine`] when the remainder determinizes well). Components
//! with no reachable reporting element are dropped outright.
//!
//! # Soundness
//!
//! For a prefilterable component (counter-free, no start-of-data anchor,
//! acyclic from its starts), every match contains a factor occurrence.
//! With `back = max(len + before)` and `fwd = max(after)` over the
//! component's factors:
//!
//! * **No hit → no report.** Offsets with no factor occurrence in
//!   `[p − fwd, p]`-range need no simulation at all.
//! * **Span-bound.** A match whose factor occurrence ends at `e` armed
//!   no earlier than `e + 1 − back` and reports no later than `e + fwd`,
//!   so a *cold-start* simulation of `[e + 1 − back, e + 1 + fwd)`
//!   observes every true report it is responsible for. Cold starts
//!   cannot invent reports: the component's only starts are `AllInput`,
//!   which full simulation re-arms on every symbol anyway.
//! * **Forward spans stay open across feeds.** `fwd > 0` lets a span
//!   outrun the bytes consumed so far; the component's engine then stays
//!   *hot* and the residual span (`open_until`) is continued by later feeds, so
//!   arms from the triggering chunk survive to their report offsets.
//! * **Streaming dedup.** Overlapping spans are merged per feed (span
//!   ends are monotone in hit ends because the geometry is uniform per
//!   component), and a per-component watermark drops reports below the
//!   already-simulated prefix.
//!
//! The merged output is the canonical sorted, deduplicated report stream
//! — byte-identical to [`NfaEngine`] on the same automaton, which the
//! differential suite verifies across all 27 benchmarks.

use azoo_core::{stats::longest_path_from_starts, Automaton};
use azoo_passes::prefilter_plan;

use crate::lazy_dfa::LazyDfaEngine;
use azoo_simd::{Teddy, TeddyMatch};

use crate::literal::{AhoCorasick, LiteralHit};
use crate::nfa::NfaEngine;
use crate::sink::{Report, ReportSink};
use crate::stream::StreamingEngine;
use crate::{Engine, EngineError};

/// Minimum fraction of states the plan must cover for
/// [`select_engine`](crate::select_engine) to prefer this engine.
pub const PREFILTER_COVERAGE_GATE: f64 = 0.5;

/// Widest compressed alphabet for which the fallback remainder is
/// simulated with a lazy DFA instead of the NFA. Wildcard-heavy
/// remainders (e.g. `??`-laden signatures) blow the subset construction
/// up; literal-ish remainders determinize to a handful of states and
/// scan several times faster.
const FALLBACK_DFA_CLASS_CAP: usize = 64;

/// One gated component and its streaming simulation state.
#[derive(Debug, Clone)]
struct GatedComponent {
    /// When set, the component's sole factor *is* its every match: the
    /// factor starts at a start state (`before == 0`), ends at the only
    /// report state (`after == 0`), and spans the component's longest
    /// path, so each accepting path is exactly the factor's chain. A
    /// trigger hit ending at `e` then reports `(e, code)` directly,
    /// with no simulation at all.
    exact: Option<azoo_core::ReportCode>,
    engine: NfaEngine,
    /// Span reach behind a hit end: `max(len + before)` over factors.
    back: u64,
    /// Span reach past a hit end: `max(after)` over factors.
    fwd: u64,
    /// Reports at global offsets below this were already emitted.
    simulated_to: u64,
    /// Global offset of the last cold start, so pending end-of-data
    /// reports (span-relative) can be rebased when an empty `eod` feed
    /// flushes them.
    last_span_base: u64,
    /// A span extended past the bytes consumed so far: simulation must
    /// continue to this global offset in later feeds. `0` = none.
    open_until: u64,
    /// The engine holds live state continuous with `simulated_to` (not
    /// reset since its last cold start), so a span starting at or before
    /// the watermark may continue it instead of cold-starting.
    hot: bool,
    /// An `eod` feed already flushed this component's end-of-data
    /// reports this round (transient, cleared every feed).
    eod_flushed: bool,
}

/// The full-simulation engine behind the gated components.
#[derive(Debug, Clone)]
enum FallbackSim {
    Nfa(Box<NfaEngine>),
    Dfa(Box<LazyDfaEngine>),
}

impl FallbackSim {
    /// Picks an engine for the remainder: a lazy DFA when the remainder
    /// is counter-free, acyclic from its starts, and its compressed
    /// alphabet is narrow (all statically checkable predictors of a
    /// small, fast subset automaton); otherwise the NFA.
    fn build(fb: &Automaton) -> Result<FallbackSim, EngineError> {
        if longest_path_from_starts(fb).is_some() && fb.counter_count() == 0 {
            if let Ok(dfa) = LazyDfaEngine::new(fb) {
                if dfa.alphabet_classes() <= FALLBACK_DFA_CLASS_CAP {
                    return Ok(FallbackSim::Dfa(Box::new(dfa)));
                }
            }
        }
        Ok(FallbackSim::Nfa(Box::new(NfaEngine::new(fb)?)))
    }

    fn feed(&mut self, chunk: &[u8], eod: bool, sink: &mut dyn ReportSink) {
        match self {
            FallbackSim::Nfa(e) => e.feed(chunk, eod, sink),
            FallbackSim::Dfa(e) => e.feed(chunk, eod, sink),
        }
    }

    fn reset_stream(&mut self) {
        match self {
            FallbackSim::Nfa(e) => e.reset_stream(),
            FallbackSim::Dfa(e) => e.reset_stream(),
        }
    }

    fn stream_quiesced(&self) -> bool {
        match self {
            FallbackSim::Nfa(e) => e.stream_quiesced(),
            FallbackSim::Dfa(e) => e.stream_quiesced(),
        }
    }

    fn is_dfa(&self) -> bool {
        matches!(self, FallbackSim::Dfa(_))
    }
}

/// The multi-literal trigger scanner: a vectorized Teddy prefilter when
/// the literal set is small enough for its nibble masks and the host has
/// SIMD, the Aho–Corasick automaton otherwise.
///
/// Teddy is stateless per scan, so streaming keeps a seam carry of the
/// last `max_len - 1` stream bytes and rescans it ahead of each chunk; a
/// hit is new exactly when its *end* lands in the new chunk (anything
/// ending earlier was found by the previous feed, whose scan covered
/// every byte before `base`). Hits are re-sorted by end position because
/// Teddy reports in start order and pattern lengths differ.
#[derive(Debug, Clone)]
enum Trigger {
    Ac(AhoCorasick),
    Teddy {
        teddy: Teddy,
        /// Pattern lengths, indexed as fed to [`Teddy::new`].
        pat_len: Vec<u32>,
        /// Longest pattern length (seam carry is `max_len - 1` bytes).
        max_len: usize,
        carry: Vec<u8>,
        buf: Vec<u8>,
        scratch: Vec<TeddyMatch>,
    },
}

impl Trigger {
    fn build_with(patterns: &[Vec<u8>], level: azoo_simd::SimdLevel) -> Trigger {
        // Teddy pays off only when its vector kernels run; under
        // forced-scalar (or on non-SIMD hosts) the scalar twin would
        // re-derive candidates byte-at-a-time, slower than one AC step.
        if level > azoo_simd::SimdLevel::Scalar {
            if let Some(teddy) = Teddy::new(patterns) {
                let pat_len = patterns.iter().map(|p| p.len() as u32).collect();
                let max_len = patterns.iter().map(Vec::len).max().unwrap_or(1);
                return Trigger::Teddy {
                    teddy,
                    pat_len,
                    max_len,
                    carry: Vec::new(),
                    buf: Vec::new(),
                    scratch: Vec::new(),
                };
            }
        }
        Trigger::Ac(AhoCorasick::new(patterns))
    }

    fn kind(&self) -> &'static str {
        match self {
            Trigger::Ac(_) => "aho-corasick",
            Trigger::Teddy { .. } => "teddy",
        }
    }

    fn reset(&mut self) {
        match self {
            Trigger::Ac(m) => m.reset(),
            Trigger::Teddy { carry, .. } => carry.clear(),
        }
    }

    fn quiesced(&self) -> bool {
        match self {
            Trigger::Ac(m) => m.is_at_root(),
            Trigger::Teddy { carry, .. } => carry.is_empty(),
        }
    }

    /// Emits this chunk's hits in nondecreasing end order, `base` being
    /// the chunk's global offset.
    fn feed(&mut self, chunk: &[u8], base: u64, hits: &mut Vec<LiteralHit>) {
        match self {
            Trigger::Ac(m) => m.feed(chunk, base, hits),
            Trigger::Teddy {
                teddy,
                pat_len,
                max_len,
                carry,
                buf,
                scratch,
            } => {
                buf.clear();
                buf.extend_from_slice(carry);
                buf.extend_from_slice(chunk);
                let buf_base = base - carry.len() as u64;
                scratch.clear();
                teddy.find(buf, scratch);
                for m in scratch.iter() {
                    let end =
                        buf_base + m.start as u64 + u64::from(pat_len[m.pattern as usize]) - 1;
                    if end >= base {
                        hits.push(LiteralHit {
                            end,
                            pattern: m.pattern,
                        });
                    }
                }
                hits.sort_unstable_by_key(|h| (h.end, h.pattern));
                let keep = buf.len().min(*max_len - 1);
                carry.clear();
                carry.extend_from_slice(&buf[buf.len() - keep..]);
            }
        }
    }
}

/// Literal-gated windowed simulation with full-simulation fallback.
#[derive(Debug, Clone)]
pub struct PrefilterEngine {
    matcher: Trigger,
    /// Pattern index (as fed to the matcher) → gated component index.
    pat_comp: Vec<u32>,
    components: Vec<GatedComponent>,
    fallback: Option<FallbackSim>,
    coverage: f64,
    min_literal_len: usize,
    /// `max(back) − 1`: how many trailing stream bytes a span can reach
    /// back past a chunk boundary.
    keep: usize,

    // Streaming state and per-feed scratch.
    tail: Vec<u8>,
    stream_offset: u64,
    hits: Vec<LiteralHit>,
    spans: Vec<Vec<(u64, u64)>>,
    reports: Vec<Report>,
    /// Reports emitted at the last consumed offset by the previous feed,
    /// so an empty-`eod` pending flush never re-emits one of them.
    tail_reports: Vec<Report>,
}

impl PrefilterEngine {
    /// Plans and compiles the prefilter for `a`.
    ///
    /// Construction succeeds for any valid automaton — with nothing
    /// prefilterable the engine degenerates to a plain [`NfaEngine`]
    /// behind a never-matching trigger. Use [`coverage`](Self::coverage)
    /// and [`component_count`](Self::component_count) to decide whether
    /// that is worthwhile.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Invalid`] if `a` fails validation.
    pub fn new(a: &Automaton) -> Result<Self, EngineError> {
        Self::build_for_level(a, azoo_simd::level())
    }

    /// [`new`](Self::new) with the trigger pinned to the scalar tier: the
    /// literal matcher is always the Aho–Corasick automaton, never Teddy,
    /// regardless of host SIMD. The report stream is identical either
    /// way; the oracle and the prefilter bench use this configuration to
    /// differentiate the two trigger paths inside one process (the
    /// `AZOO_FORCE_SCALAR` environment variable covers the whole-process
    /// equivalent).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Invalid`] if `a` fails validation.
    pub fn with_scalar_trigger(a: &Automaton) -> Result<Self, EngineError> {
        Self::build_for_level(a, azoo_simd::SimdLevel::Scalar)
    }

    fn build_for_level(a: &Automaton, level: azoo_simd::SimdLevel) -> Result<Self, EngineError> {
        a.validate()?;
        let plan = prefilter_plan(a);
        let mut patterns: Vec<Vec<u8>> = Vec::new();
        let mut pat_comp = Vec::new();
        let mut components = Vec::with_capacity(plan.components.len());
        for (ci, pc) in plan.components.iter().enumerate() {
            let mut back = 0u64;
            let mut fwd = 0u64;
            for lit in &pc.literals {
                patterns.push(lit.bytes.clone());
                pat_comp.push(ci as u32);
                back = back.max((lit.bytes.len() + lit.before) as u64);
                fwd = fwd.max(lit.after as u64);
            }
            let exact = if let [lit] = pc.literals.as_slice() {
                let reps = pc.automaton.report_states();
                if lit.before == 0
                    && lit.after == 0
                    && lit.bytes.len() == pc.window
                    && reps.len() == 1
                    && !pc.automaton.element(reps[0]).report_eod_only
                {
                    pc.automaton.element(reps[0]).report
                } else {
                    None
                }
            } else {
                None
            };
            components.push(GatedComponent {
                exact,
                engine: NfaEngine::new(&pc.automaton)?,
                back,
                fwd,
                simulated_to: 0,
                last_span_base: 0,
                open_until: 0,
                hot: false,
                eod_flushed: false,
            });
        }
        let fallback = match &plan.fallback {
            Some(fb) => Some(FallbackSim::build(fb)?),
            None => None,
        };
        let keep = components
            .iter()
            .filter(|c| c.exact.is_none())
            .map(|c| c.back as usize)
            .max()
            .unwrap_or(0)
            .saturating_sub(1);
        let n_comp = components.len();
        let min_literal_len = patterns.iter().map(Vec::len).min().unwrap_or(0);
        Ok(PrefilterEngine {
            matcher: Trigger::build_with(&patterns, level),
            pat_comp,
            components,
            fallback,
            coverage: plan.coverage(),
            min_literal_len,
            keep,
            tail: Vec::new(),
            stream_offset: 0,
            hits: Vec::new(),
            spans: vec![Vec::new(); n_comp],
            reports: Vec::new(),
            tail_reports: Vec::new(),
        })
    }

    /// Fraction of states spared from full simulation (gated plus
    /// dropped, over total).
    pub fn coverage(&self) -> f64 {
        self.coverage
    }

    /// Number of literal-gated components.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Number of literals driving the trigger matcher.
    pub fn literal_count(&self) -> usize {
        self.pat_comp.len()
    }

    /// Which literal matcher drives the gate: `"teddy"` (vectorized
    /// nibble-mask prefilter) or `"aho-corasick"` (the scalar trigger).
    pub fn trigger_kind(&self) -> &'static str {
        self.matcher.kind()
    }

    /// Length of the shortest trigger literal, 0 with no literals. Short
    /// minimums mean frequent trigger hits and wide relative windows —
    /// the selection gate weighs this against coverage.
    pub fn min_literal_len(&self) -> usize {
        self.min_literal_len
    }

    /// Number of gated components whose matches are exactly their factor
    /// (reported straight from trigger hits, no simulation).
    pub fn exact_component_count(&self) -> usize {
        self.components.iter().filter(|c| c.exact.is_some()).count()
    }

    /// True when a fallback remainder must be fully simulated.
    pub fn has_fallback(&self) -> bool {
        self.fallback.is_some()
    }

    /// Name of the engine simulating the fallback remainder, if any.
    pub fn fallback_engine(&self) -> Option<&'static str> {
        self.fallback
            .as_ref()
            .map(|fb| if fb.is_dfa() { "lazy-dfa" } else { "nfa" })
    }
}

/// Rebases span-local report offsets to global ones, dropping those the
/// component's watermark already covered.
struct SpanSink<'a> {
    base: u64,
    min: u64,
    out: &'a mut Vec<Report>,
}

impl ReportSink for SpanSink<'_> {
    fn report(&mut self, offset: u64, code: azoo_core::ReportCode) {
        let global = self.base + offset;
        if global >= self.min {
            self.out.push(Report {
                offset: global,
                code,
            });
        }
    }
}

/// Collects fallback reports (already globally offset).
struct VecSink<'a>(&'a mut Vec<Report>);

impl ReportSink for VecSink<'_> {
    fn report(&mut self, offset: u64, code: azoo_core::ReportCode) {
        self.0.push(Report { offset, code });
    }
}

impl StreamingEngine for PrefilterEngine {
    fn reset_stream(&mut self) {
        self.matcher.reset();
        for c in &mut self.components {
            c.simulated_to = 0;
            c.last_span_base = 0;
            c.open_until = 0;
            c.hot = false;
            c.eod_flushed = false;
            c.engine.reset_stream();
        }
        if let Some(fb) = &mut self.fallback {
            fb.reset_stream();
        }
        self.tail.clear();
        self.tail_reports.clear();
        self.stream_offset = 0;
    }

    fn stream_quiesced(&self) -> bool {
        self.stream_offset == 0
            && self.tail.is_empty()
            && self.tail_reports.is_empty()
            && self.matcher.quiesced()
            && self.components.iter().all(|c| {
                c.simulated_to == 0
                    && c.last_span_base == 0
                    && c.open_until == 0
                    && !c.hot
                    && c.engine.stream_quiesced()
            })
            && self.fallback.as_ref().is_none_or(|fb| fb.stream_quiesced())
    }

    fn feed(&mut self, chunk: &[u8], eod: bool, sink: &mut dyn ReportSink) {
        let base = self.stream_offset;
        let total = base + chunk.len() as u64;
        self.reports.clear();

        // Stage 1: literal trigger. Hits arrive in increasing end order
        // and the span geometry is uniform per component, so spans can
        // be merged as they are produced (both endpoints are monotone).
        self.hits.clear();
        self.matcher.feed(chunk, base, &mut self.hits);
        for h in &self.hits {
            let ci = self.pat_comp[h.pattern as usize] as usize;
            let comp = &self.components[ci];
            if let Some(code) = comp.exact {
                self.reports.push(Report {
                    offset: h.end,
                    code,
                });
                continue;
            }
            let s = (h.end + 1).saturating_sub(comp.back);
            let t = h.end + 1 + comp.fwd;
            let spans = &mut self.spans[ci];
            match spans.last_mut() {
                Some(last) if s <= last.1 => last.1 = t.max(last.1),
                _ => spans.push((s, t)),
            }
        }

        // Stage 1b: a span left open by the previous feed (its forward
        // reach outran the stream) resumes as a continuation span over
        // the still-unsimulated range, merged with this feed's first
        // span when they touch. The continuation is contiguous with the
        // hot engine state by construction (`simulated_to` was clamped
        // to the previous stream end).
        for ci in 0..self.components.len() {
            let comp = &self.components[ci];
            if comp.open_until == 0 {
                continue;
            }
            debug_assert!(comp.hot && comp.simulated_to == base);
            let spans = &mut self.spans[ci];
            match spans.first_mut() {
                Some(first) if first.0 <= comp.open_until => {
                    first.0 = first.0.min(comp.simulated_to);
                    first.1 = first.1.max(comp.open_until);
                }
                _ => spans.insert(0, (comp.simulated_to, comp.open_until)),
            }
        }

        // Stage 2: simulate each merged span. A span overlapping the
        // already-simulated prefix of a hot engine continues it (the hot
        // arms are a superset of any cold start at or after the last
        // cold-start base, and new-hit spans never begin before that
        // base); a disjoint span restarts cold. Spans may reach back
        // into the previous chunks' tail, and a span whose forward reach
        // outruns this feed is clipped and left open for the next one.
        for ci in 0..self.components.len() {
            self.components[ci].eod_flushed = false;
            for si in 0..self.spans[ci].len() {
                let (s, t) = self.spans[ci][si];
                let comp = &mut self.components[ci];
                let t_clip = t.min(total);
                let span_eod = eod && t_clip == total;
                if comp.hot && s <= comp.simulated_to {
                    // Continue the live arms from the watermark.
                    debug_assert!(s >= comp.last_span_base);
                    let mut ssink = SpanSink {
                        base: comp.last_span_base,
                        min: comp.simulated_to,
                        out: &mut self.reports,
                    };
                    if comp.simulated_to < base {
                        let back = (base - comp.simulated_to) as usize;
                        debug_assert!(back <= self.tail.len());
                        let tail_part = &self.tail[self.tail.len() - back..];
                        comp.engine.feed(tail_part, false, &mut ssink);
                    }
                    let c0 = (comp.simulated_to.max(base) - base) as usize;
                    let c1 = (t_clip.max(base) - base) as usize;
                    comp.engine.feed(&chunk[c0..c1], span_eod, &mut ssink);
                } else {
                    comp.engine.reset_stream();
                    let mut ssink = SpanSink {
                        base: s,
                        min: comp.simulated_to,
                        out: &mut self.reports,
                    };
                    if s < base {
                        let back = (base - s) as usize;
                        debug_assert!(back <= self.tail.len());
                        let tail_part = &self.tail[self.tail.len() - back..];
                        comp.engine.feed(tail_part, false, &mut ssink);
                    }
                    let c0 = (s.max(base) - base) as usize;
                    let c1 = (t_clip.max(base) - base) as usize;
                    comp.engine.feed(&chunk[c0..c1], span_eod, &mut ssink);
                    comp.last_span_base = s;
                }
                comp.simulated_to = t_clip;
                comp.hot = true;
                comp.open_until = if t > total && !eod { t } else { 0 };
                comp.eod_flushed |= span_eod;
            }
            self.spans[ci].clear();
        }

        // Stage 2b: end of data on an empty chunk — the final symbol was
        // consumed by an earlier feed. Components whose last span reached
        // the end of the stream may hold back end-of-data reports; flush
        // them (watermark 0: eod-gated reports cannot have been emitted
        // before eod arrived) unless a continuation span already carried
        // the eod flag to the engine above. Components whose last span
        // ended earlier cannot report at the final symbol at all (no
        // literal hit reaches it), so their pending state is stale and
        // stays unflushed.
        if eod && chunk.is_empty() {
            for comp in &mut self.components {
                if comp.simulated_to == total && comp.simulated_to > 0 && !comp.eod_flushed {
                    let mut ssink = SpanSink {
                        base: comp.last_span_base,
                        min: 0,
                        out: &mut self.reports,
                    };
                    comp.engine.feed(&[], true, &mut ssink);
                }
            }
        }

        // Stage 3: full simulation of the fallback remainder.
        if let Some(fb) = &mut self.fallback {
            fb.feed(chunk, eod, &mut VecSink(&mut self.reports));
        }

        // Canonical merge: per-feed sort and dedup. Cross-feed duplicates
        // are impossible (watermarks), except when an empty-`eod` flush
        // replays a code the previous feed already emitted
        // unconditionally at the final symbol — filter those.
        self.reports.sort_unstable();
        self.reports.dedup();
        if eod && chunk.is_empty() && !self.tail_reports.is_empty() {
            let tail_reports = &self.tail_reports;
            self.reports.retain(|r| !tail_reports.contains(r));
        }
        for r in &self.reports {
            sink.report(r.offset, r.code);
        }
        if !chunk.is_empty() {
            // Remember what was emitted at the last consumed offset, for
            // the empty-`eod` cross-feed dedup above.
            self.tail_reports.clear();
            let last_off = total - 1;
            self.tail_reports.extend(
                self.reports
                    .iter()
                    .filter(|r| r.offset == last_off)
                    .copied(),
            );
        }

        // Roll the tail window forward for the next feed.
        self.stream_offset = total;
        if self.keep > 0 {
            if chunk.len() >= self.keep {
                self.tail.clear();
                self.tail
                    .extend_from_slice(&chunk[chunk.len() - self.keep..]);
            } else {
                let excess = (self.tail.len() + chunk.len()).saturating_sub(self.keep);
                self.tail.drain(..excess);
                self.tail.extend_from_slice(chunk);
            }
        }
    }
}

impl Engine for PrefilterEngine {
    fn scan(&mut self, input: &[u8], sink: &mut dyn ReportSink) {
        self.reset_stream();
        self.feed(input, true, sink);
    }

    fn name(&self) -> &'static str {
        "prefilter"
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::sink::CollectSink;
    use azoo_core::{CounterMode, StartKind, SymbolClass};

    fn word(a: &mut Automaton, w: &[u8], code: u32) {
        let classes: Vec<SymbolClass> = w.iter().map(|&b| SymbolClass::from_byte(b)).collect();
        let (_, last) = a.add_chain(&classes, StartKind::AllInput);
        a.set_report(last, code);
    }

    fn nfa_reports(a: &Automaton, input: &[u8]) -> Vec<Report> {
        let mut sink = CollectSink::new();
        NfaEngine::new(a).unwrap().scan(input, &mut sink);
        sink.sorted_reports()
    }

    #[test]
    fn matches_nfa_on_literal_suite() {
        let mut a = Automaton::new();
        word(&mut a, b"admin", 0);
        word(&mut a, b"root", 1);
        word(&mut a, b"min", 2); // suffix of another literal
        let mut input = b"the admin went root-level; adminmin".to_vec();
        input.extend_from_slice(&[0u8; 64]);
        let mut engine = PrefilterEngine::new(&a).unwrap();
        assert_eq!(engine.component_count(), 3);
        assert!(!engine.has_fallback());
        assert_eq!(engine.coverage(), 1.0);
        let mut sink = CollectSink::new();
        engine.scan(&input, &mut sink);
        assert_eq!(sink.reports(), nfa_reports(&a, &input));
    }

    #[test]
    fn fallback_components_still_report() {
        let mut a = Automaton::new();
        word(&mut a, b"lit", 0);
        // Cyclic component: rejected by the analysis, fully simulated.
        let s = a.add_ste(SymbolClass::from_byte(b'x'), StartKind::AllInput);
        let l = a.add_ste(SymbolClass::from_byte(b'y'), StartKind::None);
        a.add_edge(s, l);
        a.add_edge(l, l);
        a.set_report(l, 1);
        let mut engine = PrefilterEngine::new(&a).unwrap();
        assert_eq!(engine.component_count(), 1);
        assert!(engine.has_fallback());
        let input = b"xyyy lit xyy lit";
        let mut sink = CollectSink::new();
        engine.scan(input, &mut sink);
        assert_eq!(sink.reports(), nfa_reports(&a, input));
    }

    #[test]
    fn shared_codes_across_components_dedupe() {
        // Two gated components share a report code and match at the same
        // offset; the canonical stream holds one report, like the NFA's
        // per-cycle code dedup.
        let mut a = Automaton::new();
        word(&mut a, b"ab", 7);
        word(&mut a, b"bb", 7);
        let input = b"xabb"; // "ab" at 2? no: "ab" ends at 2, "bb" ends at 3... use overlap
        let mut engine = PrefilterEngine::new(&a).unwrap();
        let mut sink = CollectSink::new();
        engine.scan(input, &mut sink);
        assert_eq!(sink.reports(), nfa_reports(&a, input));

        let mut a2 = Automaton::new();
        word(&mut a2, b"ab", 7);
        word(&mut a2, b"cb", 7);
        let mut e2 = PrefilterEngine::new(&a2).unwrap();
        let mut s2 = CollectSink::new();
        // No single offset has both, but same-offset same-code from one
        // component plus fallbackless merge must still be deduped.
        e2.scan(b"ab cb", &mut s2);
        assert_eq!(s2.reports(), nfa_reports(&a2, b"ab cb"));
    }

    #[test]
    fn streaming_splits_literals_across_chunks() {
        let mut a = Automaton::new();
        word(&mut a, b"boundary", 0);
        word(&mut a, b"dar", 1);
        let input = b"....boundary....boundary..";
        let expect = nfa_reports(&a, input);
        for cut in 0..=input.len() {
            let mut engine = PrefilterEngine::new(&a).unwrap();
            let mut sink = CollectSink::new();
            engine.scan_chunks([&input[..cut], &input[cut..]], &mut sink);
            assert_eq!(sink.sorted_reports(), expect, "cut {cut}");
        }
    }

    #[test]
    fn overlapping_hits_do_not_duplicate() {
        let mut a = Automaton::new();
        word(&mut a, b"aa", 0);
        let input = b"aaaaaaaa";
        let mut engine = PrefilterEngine::new(&a).unwrap();
        let mut sink = CollectSink::new();
        engine.scan(input, &mut sink);
        assert_eq!(sink.reports(), nfa_reports(&a, input));
    }

    #[test]
    fn counters_go_to_fallback_and_match() {
        let mut a = Automaton::new();
        word(&mut a, b"word", 0);
        let s = a.add_ste(SymbolClass::from_byte(b'k'), StartKind::AllInput);
        let c = a.add_counter(2, CounterMode::Latch);
        let t = a.add_ste(SymbolClass::from_byte(b'z'), StartKind::None);
        a.add_edge(s, c);
        a.add_edge(c, t);
        a.set_report(t, 1);
        let mut engine = PrefilterEngine::new(&a).unwrap();
        assert!(engine.has_fallback());
        let input = b"kk..z word z";
        let mut sink = CollectSink::new();
        engine.scan(input, &mut sink);
        assert_eq!(sink.reports(), nfa_reports(&a, input));
    }

    #[test]
    fn eod_anchored_fallback_and_empty_automaton() {
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::from_byte(b'z'), StartKind::AllInput);
        a.set_report(s, 0);
        a.set_report_eod_only(s, true);
        let mut engine = PrefilterEngine::new(&a).unwrap();
        let input = b"zzz";
        let mut sink = CollectSink::new();
        engine.scan(input, &mut sink);
        assert_eq!(sink.reports(), nfa_reports(&a, input));

        let empty = Automaton::new();
        let mut e = PrefilterEngine::new(&empty).unwrap();
        let mut s = CollectSink::new();
        e.scan(b"anything", &mut s);
        assert!(s.reports().is_empty());
        assert_eq!(e.coverage(), 1.0);
    }

    #[test]
    fn engines_are_reusable_across_scans() {
        let mut a = Automaton::new();
        word(&mut a, b"hit", 0);
        let mut engine = PrefilterEngine::new(&a).unwrap();
        for _ in 0..3 {
            let mut sink = CollectSink::new();
            engine.scan(b"a hit and a hit", &mut sink);
            assert_eq!(sink.reports().len(), 2);
        }
    }
}

//! Report sinks: destinations for match events.

use azoo_core::ReportCode;

/// A single match event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Report {
    /// Zero-based offset of the input symbol on which the report fired.
    pub offset: u64,
    /// The reporting element's code.
    pub code: ReportCode,
}

/// Destination for reports emitted during a scan.
pub trait ReportSink {
    /// Receives one report.
    fn report(&mut self, offset: u64, code: ReportCode);
}

/// Discards all reports. Useful for pure-throughput measurements.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl NullSink {
    /// Creates a discarding sink.
    pub fn new() -> Self {
        NullSink
    }
}

impl ReportSink for NullSink {
    fn report(&mut self, _offset: u64, _code: ReportCode) {}
}

/// Counts reports without storing them.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountSink {
    count: u64,
}

impl CountSink {
    /// Creates a counting sink.
    pub fn new() -> Self {
        CountSink::default()
    }

    /// Total reports received.
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl ReportSink for CountSink {
    fn report(&mut self, _offset: u64, _code: ReportCode) {
        self.count += 1;
    }
}

/// Collects every report in order of arrival.
#[derive(Debug, Clone, Default)]
pub struct CollectSink {
    reports: Vec<Report>,
}

impl CollectSink {
    /// Creates a collecting sink.
    pub fn new() -> Self {
        CollectSink::default()
    }

    /// The reports received so far.
    pub fn reports(&self) -> &[Report] {
        &self.reports
    }

    /// Consumes the sink, returning its reports.
    pub fn into_reports(self) -> Vec<Report> {
        self.reports
    }

    /// Reports sorted by `(offset, code)` — the canonical order used to
    /// compare report streams across engines (engines may emit same-offset
    /// reports in different orders).
    pub fn sorted_reports(&self) -> Vec<Report> {
        let mut v = self.reports.clone();
        v.sort_unstable();
        v
    }
}

impl ReportSink for CollectSink {
    fn report(&mut self, offset: u64, code: ReportCode) {
        self.reports.push(Report { offset, code });
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn count_sink_counts() {
        let mut s = CountSink::new();
        s.report(0, ReportCode(1));
        s.report(5, ReportCode(2));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn collect_sink_preserves_order_and_sorts() {
        let mut s = CollectSink::new();
        s.report(5, ReportCode(2));
        s.report(5, ReportCode(1));
        s.report(2, ReportCode(9));
        assert_eq!(s.reports().len(), 3);
        let sorted = s.sorted_reports();
        assert_eq!(sorted[0].offset, 2);
        assert_eq!(sorted[1].code, ReportCode(1));
        assert_eq!(sorted[2].code, ReportCode(2));
    }

    #[test]
    fn null_sink_ignores() {
        let mut s = NullSink::new();
        s.report(1, ReportCode(1));
    }
}

//! CPU automata-processing engines.
//!
//! AutomataZoo's evaluation compares automata execution across software
//! engines and spatial architectures. This crate provides the software
//! side as a portfolio behind one [`Engine`] trait:
//!
//! * [`NfaEngine`] — a VASim-equivalent sparse active-set simulator.
//!   Supports the full element set (STEs and counters) and collects the
//!   per-symbol activity [`Profile`] used for the paper's *active set*
//!   metric. Throughput is proportional to active-set size.
//! * [`LazyDfaEngine`] — an RE2/Hyperscan-style engine that determinizes
//!   the automaton on the fly with a bounded state cache, giving
//!   active-set-independent throughput on DFA-friendly workloads.
//! * [`ShengEngine`] — a Sheng-style shuffle DFA for machines that
//!   determinize to at most 16 states: the whole transition function of a
//!   symbol class lives in one 16-byte vector and a step is a single
//!   `pshufb` (with a scalar twin via [`azoo_simd`]).
//! * [`BitParallelEngine`] — a dense multi-pattern Shift-And engine for
//!   chain-shaped automata (e.g. Random Forest leaf chains), processing
//!   64 states per machine word per symbol.
//! * [`PrefilterEngine`] — a literal-prefilter engine: components whose
//!   matches must contain a *required literal* are gated behind an
//!   Aho–Corasick trigger and simulated only in a bounded window around
//!   each candidate hit; everything else falls back to full simulation.
//! * [`ParallelScanner`] — a multi-threaded wrapper that shards the
//!   automaton by connected component and (where sound) chunks the input
//!   across workers, merging reports into the canonical sorted stream.
//!
//! All engines produce identical report streams for the automata they
//! support, which the test suite cross-validates.
//!
//! # Example
//!
//! ```
//! use azoo_core::{Automaton, StartKind, SymbolClass};
//! use azoo_engines::{CollectSink, Engine, NfaEngine};
//!
//! let mut a = Automaton::new();
//! let (_, last) = a.add_chain(
//!     &[SymbolClass::from_byte(b'h'), SymbolClass::from_byte(b'i')],
//!     StartKind::AllInput,
//! );
//! a.set_report(last, 0);
//! let mut engine = NfaEngine::new(&a)?;
//! let mut sink = CollectSink::new();
//! engine.scan(b"hi there, hi!", &mut sink);
//! let offsets: Vec<u64> = sink.reports().iter().map(|r| r.offset).collect();
//! assert_eq!(offsets, vec![1, 11]);
//! # Ok::<(), azoo_engines::EngineError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]
mod bitpar;
mod frontier;
mod lazy_dfa;
mod literal;
mod nfa;
mod parallel;
mod prefilter;
mod profile;
mod report_stats;
mod select;
mod sheng;
mod sink;
mod stream;

pub use bitpar::BitParallelEngine;
pub use lazy_dfa::LazyDfaEngine;
pub use literal::{AhoCorasick, LiteralHit};
pub use nfa::NfaEngine;
pub use parallel::ParallelScanner;
pub use prefilter::{PrefilterEngine, PREFILTER_COVERAGE_GATE};
pub use profile::Profile;
pub use report_stats::ReportStats;
pub use select::{
    prefilter_gate, select_engine, select_engine_threaded, select_engine_with,
    select_session_engine, select_session_engine_explained, select_session_engine_threaded,
    select_session_engine_with, EngineChoice, SelectOpts,
};
pub use sheng::{ShengEngine, SHENG_MAX_NFA_STATES};
pub use sink::{CollectSink, CountSink, NullSink, Report, ReportSink};
pub use stream::StreamingEngine;

use azoo_core::StateId;

/// A compiled automaton executor.
///
/// `scan` always starts from the automaton's initial conditions; engines
/// are reusable across calls.
pub trait Engine {
    /// Scans `input`, emitting every report into `sink`.
    fn scan(&mut self, input: &[u8], sink: &mut dyn ReportSink);

    /// A short engine name for harness output.
    fn name(&self) -> &'static str;
}

/// An engine usable as a pooled per-session executor: block scanning,
/// streaming, `Send` (session pools hand engines across threads), and
/// cheap duplication of the compiled form.
///
/// Blanket-implemented for every `Clone` engine in the portfolio, so
/// [`select_session_engine`] can box any tier.
pub trait SessionEngine: Engine + StreamingEngine + Send {
    /// A fresh executor over the same compiled tables — a memcpy of the
    /// compiled form, with no recompilation or validation. Session pools
    /// use this to grow a free list past the prototype; steady-state
    /// checkouts then reuse pooled engines without any allocation.
    fn clone_session(&self) -> Box<dyn SessionEngine>;
}

impl<T> SessionEngine for T
where
    T: Engine + StreamingEngine + Clone + Send + 'static,
{
    fn clone_session(&self) -> Box<dyn SessionEngine> {
        Box::new(self.clone())
    }
}

/// Errors raised when compiling an automaton for an engine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// The engine does not support counter elements.
    CountersUnsupported(StateId),
    /// The automaton is not chain-shaped (required by
    /// [`BitParallelEngine`]): some state has more than one non-self
    /// successor or more than one non-self predecessor.
    NotChainShaped(StateId),
    /// The automaton does not determinize within the 16-state shuffle-DFA
    /// budget (required by [`ShengEngine`]).
    TooManyDfaStates,
    /// The automaton failed core validation.
    Invalid(azoo_core::CoreError),
    /// A zero worker-thread count was requested from
    /// [`ParallelScanner`].
    InvalidThreads,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::CountersUnsupported(id) => {
                write!(f, "engine does not support counter element {id:?}")
            }
            EngineError::NotChainShaped(id) => {
                write!(f, "state {id:?} breaks the chain shape")
            }
            EngineError::TooManyDfaStates => {
                write!(f, "automaton exceeds the 16-state shuffle-DFA budget")
            }
            EngineError::Invalid(e) => write!(f, "invalid automaton: {e}"),
            EngineError::InvalidThreads => {
                write!(f, "thread count must be positive")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<azoo_core::CoreError> for EngineError {
    fn from(e: azoo_core::CoreError) -> Self {
        EngineError::Invalid(e)
    }
}

//! Cross-engine validation: every engine must produce the identical
//! report stream on the automata it supports.

use azoo_core::{Automaton, CounterMode, StartKind, SymbolClass};
use azoo_engines::{
    BitParallelEngine, CollectSink, CountSink, Engine, EngineError, LazyDfaEngine, NfaEngine,
    Report,
};
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn literal(word: &[u8], code: u32) -> Automaton {
    let mut a = Automaton::new();
    let classes: Vec<SymbolClass> = word.iter().map(|&b| SymbolClass::from_byte(b)).collect();
    let (_, last) = a.add_chain(&classes, StartKind::AllInput);
    a.set_report(last, code);
    a
}

fn reports_of(engine: &mut dyn Engine, input: &[u8]) -> Vec<Report> {
    let mut sink = CollectSink::new();
    engine.scan(input, &mut sink);
    sink.sorted_reports()
}

#[test]
fn all_engines_agree_on_literals() {
    let mut a = literal(b"cat", 1);
    a.append(&literal(b"dog", 2));
    a.append(&literal(b"a", 3));
    let input = b"a catalog of dogmatic cats";
    let nfa = reports_of(&mut NfaEngine::new(&a).unwrap(), input);
    let dfa = reports_of(&mut LazyDfaEngine::new(&a).unwrap(), input);
    let bp = reports_of(&mut BitParallelEngine::new(&a).unwrap(), input);
    assert_eq!(nfa, dfa);
    assert_eq!(nfa, bp);
    // "cat" at 2..5 and 22..25; "a" five times; "dog" at 13..16.
    assert_eq!(nfa.iter().filter(|r| r.code.0 == 1).count(), 2, "cat twice");
    assert_eq!(nfa.iter().filter(|r| r.code.0 == 2).count(), 1);
    assert_eq!(nfa.iter().filter(|r| r.code.0 == 3).count(), 5);
}

#[test]
fn start_of_data_only_matches_prefix() {
    let mut a = Automaton::new();
    let (_, last) = a.add_chain(
        &[SymbolClass::from_byte(b'x'), SymbolClass::from_byte(b'y')],
        StartKind::StartOfData,
    );
    a.set_report(last, 0);
    for engine in engines(&a) {
        let mut engine = engine;
        assert_eq!(reports_of(engine.as_mut(), b"xyxy").len(), 1);
        assert_eq!(reports_of(engine.as_mut(), b"axy").len(), 0);
    }
}

#[test]
fn eod_report_only_fires_at_end() {
    let mut a = Automaton::new();
    let s = a.add_ste(SymbolClass::from_byte(b'q'), StartKind::AllInput);
    a.set_report(s, 0);
    a.set_report_eod_only(s, true);
    for mut engine in engines(&a) {
        assert_eq!(reports_of(engine.as_mut(), b"qqq").len(), 1);
        assert_eq!(
            reports_of(engine.as_mut(), b"qqa").len(),
            0,
            "{} fired a $-anchored report mid-stream",
            engine.name()
        );
    }
}

fn engines(a: &Automaton) -> Vec<Box<dyn Engine>> {
    let mut v: Vec<Box<dyn Engine>> = vec![
        Box::new(NfaEngine::new(a).unwrap()),
        Box::new(LazyDfaEngine::new(a).unwrap()),
    ];
    if let Ok(bp) = BitParallelEngine::new(a) {
        v.push(Box::new(bp));
    }
    v
}

#[test]
fn self_loops_absorb_runs() {
    // a x* b : a -> loop(x) -> b with loop optional is hard to express as
    // a chain; use a x+ b which is a chain with a self-loop.
    let mut a = Automaton::new();
    let s0 = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::AllInput);
    let s1 = a.add_ste(SymbolClass::from_byte(b'x'), StartKind::None);
    let s2 = a.add_ste(SymbolClass::from_byte(b'b'), StartKind::None);
    a.add_edge(s0, s1);
    a.add_edge(s1, s1);
    a.add_edge(s1, s2);
    a.add_edge(s2, s2); // keep it chain-shaped but also test trailing loop
    a.set_report(s2, 7);
    let input = b"axxxb..axb.ab.axxxxxxb";
    let nfa = reports_of(&mut NfaEngine::new(&a).unwrap(), input);
    let dfa = reports_of(&mut LazyDfaEngine::new(&a).unwrap(), input);
    let bp = reports_of(&mut BitParallelEngine::new(&a).unwrap(), input);
    assert_eq!(nfa, dfa);
    assert_eq!(nfa, bp);
    assert_eq!(nfa.iter().filter(|r| r.code.0 == 7).count(), 3);
}

#[test]
fn random_chain_automata_agree() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xC0FFEE);
    for trial in 0..50 {
        let mut a = Automaton::new();
        let n_chains = rng.random_range(1..6);
        for chain in 0..n_chains {
            let len = rng.random_range(1..8);
            let mut prev = None;
            for i in 0..len {
                // Small alphabet to get plenty of matches.
                let mut class = SymbolClass::new();
                for b in b'a'..=b'd' {
                    if rng.random_bool(0.5) {
                        class.insert(b);
                    }
                }
                if class.is_empty() {
                    class.insert(b'a');
                }
                let start = if i == 0 {
                    if rng.random_bool(0.7) {
                        StartKind::AllInput
                    } else {
                        StartKind::StartOfData
                    }
                } else {
                    StartKind::None
                };
                let s = a.add_ste(class, start);
                if rng.random_bool(0.3) {
                    a.add_edge(s, s);
                }
                if let Some(p) = prev {
                    a.add_edge(p, s);
                }
                if i == len - 1 || rng.random_bool(0.2) {
                    a.set_report(s, chain as u32 * 100 + i as u32);
                }
                prev = Some(s);
            }
        }
        let input: Vec<u8> = (0..200)
            .map(|_| b'a' + rng.random_range(0..5) as u8)
            .collect();
        let nfa = reports_of(&mut NfaEngine::new(&a).unwrap(), &input);
        let dfa = reports_of(&mut LazyDfaEngine::new(&a).unwrap(), &input);
        let bp = reports_of(&mut BitParallelEngine::new(&a).unwrap(), &input);
        assert_eq!(nfa, dfa, "trial {trial}: nfa vs lazy-dfa");
        assert_eq!(nfa, bp, "trial {trial}: nfa vs bit-parallel");
    }
}

#[test]
fn random_general_automata_agree_nfa_vs_dfa() {
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    for trial in 0..40 {
        let mut a = Automaton::new();
        let n = rng.random_range(2..12);
        for i in 0..n {
            let mut class = SymbolClass::new();
            for b in b'a'..=b'c' {
                if rng.random_bool(0.6) {
                    class.insert(b);
                }
            }
            if class.is_empty() {
                class.insert(b'b');
            }
            let start = match rng.random_range(0..4) {
                0 => StartKind::AllInput,
                1 => StartKind::StartOfData,
                _ => StartKind::None,
            };
            let s = a.add_ste(class, start);
            if rng.random_bool(0.25) {
                a.set_report(s, i as u32);
            }
        }
        // Random edges, including cycles and fan-out.
        for _ in 0..rng.random_range(0..(3 * n)) {
            let from = azoo_core::StateId::new(rng.random_range(0..n));
            let to = azoo_core::StateId::new(rng.random_range(0..n));
            a.add_edge(from, to);
        }
        if a.validate().is_err() {
            continue; // e.g. no start states this trial
        }
        let input: Vec<u8> = (0..300)
            .map(|_| b'a' + rng.random_range(0..4) as u8)
            .collect();
        let nfa = reports_of(&mut NfaEngine::new(&a).unwrap(), &input);
        let dfa = reports_of(&mut LazyDfaEngine::new(&a).unwrap(), &input);
        assert_eq!(nfa, dfa, "trial {trial}");
    }
}

#[test]
fn dfa_cache_flush_preserves_reports() {
    // A pathological NFA whose DFA state count exceeds a tiny cache: the
    // classic (a|b)*a(a|b)^k pattern with 2^k DFA states.
    let k = 6;
    let mut a = Automaton::new();
    let any = SymbolClass::from_bytes(b"ab");
    let s0 = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::AllInput);
    let mut prev = s0;
    for _ in 0..k {
        let s = a.add_ste(any, StartKind::None);
        a.add_edge(prev, s);
        prev = s;
    }
    a.set_report(prev, 0);
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let input: Vec<u8> = (0..2000)
        .map(|_| if rng.random_bool(0.5) { b'a' } else { b'b' })
        .collect();
    let expected = reports_of(&mut NfaEngine::new(&a).unwrap(), &input);
    let mut tiny = LazyDfaEngine::with_max_states(&a, 4).unwrap();
    let got = reports_of(&mut tiny, &input);
    assert!(tiny.flush_count() > 0, "cache must have flushed");
    assert_eq!(expected, got);
}

#[test]
fn counters_latch_pulse_roll() {
    // s(matches 'x') -> counter(target 3); reset on 'r' via a reset state.
    for (mode, input, expected_reports) in [
        // Latch: fires once at the 3rd x, stays latched (no more reports).
        (CounterMode::Latch, &b"xxxxxx"[..], 1),
        // Pulse: count holds at target; only one fire without reset.
        (CounterMode::Pulse, &b"xxxxxx"[..], 1),
        // Roll: count resets after firing, fires every 3 x's.
        (CounterMode::Roll, &b"xxxxxx"[..], 2),
    ] {
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::from_byte(b'x'), StartKind::AllInput);
        let c = a.add_counter(3, mode);
        a.add_edge(s, c);
        a.set_report(c, 0);
        let mut engine = NfaEngine::new(&a).unwrap();
        let mut sink = CountSink::new();
        engine.scan(input, &mut sink);
        assert_eq!(
            sink.count(),
            expected_reports,
            "mode {mode:?} on {:?}",
            std::str::from_utf8(input).unwrap()
        );
    }
}

#[test]
fn counter_reset_restarts_count() {
    let mut a = Automaton::new();
    let s = a.add_ste(SymbolClass::from_byte(b'x'), StartKind::AllInput);
    let r = a.add_ste(SymbolClass::from_byte(b'r'), StartKind::AllInput);
    let c = a.add_counter(3, CounterMode::Latch);
    a.add_edge(s, c);
    a.add_reset_edge(r, c);
    a.set_report(c, 0);
    let mut engine = NfaEngine::new(&a).unwrap();
    let mut sink = CountSink::new();
    engine.scan(b"xxrxxrxx", &mut sink);
    assert_eq!(sink.count(), 0, "reset before target prevents firing");
    let mut sink = CountSink::new();
    engine.scan(b"xxrxxx", &mut sink);
    assert_eq!(sink.count(), 1);
}

#[test]
fn latched_counter_drives_successors_every_cycle() {
    // counter(latch, 2) -> t('z' reporter). After latching, every
    // subsequent 'z' reports.
    let mut a = Automaton::new();
    let s = a.add_ste(SymbolClass::from_byte(b'x'), StartKind::AllInput);
    let c = a.add_counter(2, CounterMode::Latch);
    let t = a.add_ste(SymbolClass::from_byte(b'z'), StartKind::None);
    a.add_edge(s, c);
    a.add_edge(c, t);
    a.set_report(t, 9);
    let mut engine = NfaEngine::new(&a).unwrap();
    let mut sink = CountSink::new();
    engine.scan(b"xxzzz", &mut sink);
    assert_eq!(sink.count(), 3);
}

#[test]
fn lazy_dfa_rejects_counters() {
    let mut a = Automaton::new();
    let s = a.add_ste(SymbolClass::from_byte(b'x'), StartKind::AllInput);
    let c = a.add_counter(2, CounterMode::Latch);
    a.add_edge(s, c);
    a.set_report(c, 0);
    assert!(matches!(
        LazyDfaEngine::new(&a),
        Err(EngineError::CountersUnsupported(_))
    ));
    assert!(matches!(
        BitParallelEngine::new(&a),
        Err(EngineError::CountersUnsupported(_))
    ));
}

#[test]
fn bitpar_rejects_fanout() {
    let mut a = Automaton::new();
    let s = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::AllInput);
    let t1 = a.add_ste(SymbolClass::from_byte(b'b'), StartKind::None);
    let t2 = a.add_ste(SymbolClass::from_byte(b'c'), StartKind::None);
    a.add_edge(s, t1);
    a.add_edge(s, t2);
    a.set_report(t1, 0);
    a.set_report(t2, 1);
    assert!(matches!(
        BitParallelEngine::new(&a),
        Err(EngineError::NotChainShaped(_))
    ));
    // But the NFA and DFA engines handle it fine and agree.
    let nfa = reports_of(&mut NfaEngine::new(&a).unwrap(), b"ab ac");
    let dfa = reports_of(&mut LazyDfaEngine::new(&a).unwrap(), b"ab ac");
    assert_eq!(nfa, dfa);
    assert_eq!(nfa.len(), 2);
}

#[test]
fn profile_counts_dynamic_active_set() {
    // One always-on start driving a 3-state tail; on "aaaa" the tail
    // saturates: enabled(dynamic) goes 0, 1, 2, 3 over the four symbols.
    let mut a = Automaton::new();
    let (_, last) = a.add_chain(&[SymbolClass::from_byte(b'a'); 4], StartKind::AllInput);
    a.set_report(last, 0);
    let mut engine = NfaEngine::new(&a).unwrap();
    let mut sink = CountSink::new();
    let p = engine.scan_profiled(b"aaaa", &mut sink);
    assert_eq!(p.symbols, 4);
    assert_eq!(p.total_enabled, 1 + 2 + 3);
    assert_eq!(p.total_reports, 1);
    assert_eq!(sink.count(), 1);
    // matched: 1, 2, 3, 4 (the always state matches every cycle).
    assert_eq!(p.total_matched, 1 + 2 + 3 + 4);
}

#[test]
fn scan_is_reusable() {
    let a = literal(b"ab", 0);
    for mut engine in engines(&a) {
        let first = reports_of(engine.as_mut(), b"abab");
        let second = reports_of(engine.as_mut(), b"abab");
        assert_eq!(first, second, "{} not reusable", engine.name());
        assert_eq!(first.len(), 2);
    }
}

#[test]
fn bitpar_handles_multi_word_state_vectors() {
    // Chains long enough that the active mask spans several 64-bit words
    // and advancing crosses word boundaries.
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let mut a = Automaton::new();
    for chain in 0..4 {
        let len = 70 + chain * 13; // 70, 83, 96, 109 states
        let classes: Vec<SymbolClass> = (0..len)
            .map(|_| {
                let mut c = SymbolClass::new();
                for b in b'a'..=b'c' {
                    if rng.random_bool(0.6) {
                        c.insert(b);
                    }
                }
                if c.is_empty() {
                    c.insert(b'a');
                }
                c
            })
            .collect();
        let (_, last) = a.add_chain(&classes, StartKind::AllInput);
        a.set_report(last, chain as u32);
    }
    assert!(a.state_count() > 300, "must span > 4 words");
    let input: Vec<u8> = (0..5000)
        .map(|_| b'a' + rng.random_range(0..4) as u8)
        .collect();
    let nfa = reports_of(&mut NfaEngine::new(&a).unwrap(), &input);
    let bp = reports_of(&mut BitParallelEngine::new(&a).unwrap(), &input);
    let dfa = reports_of(&mut LazyDfaEngine::new(&a).unwrap(), &input);
    assert_eq!(nfa, bp);
    assert_eq!(nfa, dfa);
}

#[test]
fn counters_with_eod_reports() {
    // A counter whose report is $-anchored only fires if the target is
    // reached exactly at end of data.
    let mut a = Automaton::new();
    let s = a.add_ste(SymbolClass::from_byte(b'x'), StartKind::AllInput);
    let c = a.add_counter(2, CounterMode::Latch);
    a.add_edge(s, c);
    a.set_report(c, 0);
    a.set_report_eod_only(c, true);
    let mut engine = NfaEngine::new(&a).unwrap();
    let mut sink = CountSink::new();
    engine.scan(b"xx", &mut sink);
    assert_eq!(sink.count(), 1, "target reached on the final symbol");
    let mut sink = CountSink::new();
    engine.scan(b"xxy", &mut sink);
    assert_eq!(sink.count(), 0, "target reached mid-stream only");
}

#[test]
fn profile_reports_match_sink_counts() {
    let mut a = literal(b"ab", 3);
    a.append(&literal(b"b", 4));
    let mut engine = NfaEngine::new(&a).unwrap();
    let mut sink = CountSink::new();
    let profile = engine.scan_profiled(b"ababab", &mut sink);
    assert_eq!(profile.total_reports, sink.count());
    assert_eq!(profile.symbols, 6);
}

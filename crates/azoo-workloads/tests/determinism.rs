//! Determinism and well-formedness properties for every stimulus
//! generator: identical seeds yield identical bytes, different seeds
//! diverge, and each generator's structural invariants hold across the
//! seed space.

use azoo_workloads::disk::{disk_image, malware_files, DiskConfig};
use azoo_workloads::media::{carving_stimulus, CarvingConfig};
use azoo_workloads::names::{streaming_database, unique_names, StreamConfig};
use azoo_workloads::network::{pcap_like, PcapConfig};
use azoo_workloads::{dna, random_bytes, text};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn dna_deterministic_and_well_formed(seed in 0u64..1000, len in 1usize..2000) {
        let a = dna::random_dna(seed, len);
        prop_assert_eq!(&a, &dna::random_dna(seed, len));
        prop_assert_eq!(a.len(), len);
        prop_assert!(a.iter().all(|c| dna::DNA.contains(c)));
    }

    #[test]
    fn protein_db_deterministic(seed in 0u64..1000, len in 100usize..5000) {
        let a = dna::protein_database(seed, len, &[]);
        prop_assert_eq!(&a, &dna::protein_database(seed, len, &[]));
        prop_assert!(a
            .iter()
            .all(|&c| c == b'\n' || dna::AMINO_ACIDS.contains(&c)));
    }

    #[test]
    fn random_bytes_deterministic(seed in 0u64..1000, len in 0usize..4000) {
        prop_assert_eq!(random_bytes(seed, len), random_bytes(seed, len));
    }

    #[test]
    fn tagged_corpus_tokens_carry_tags(seed in 0u64..200, tokens in 1usize..300) {
        let corpus = text::tagged_corpus(seed, tokens);
        let s = String::from_utf8(corpus).expect("ascii");
        let toks: Vec<&str> = s.split_whitespace().collect();
        prop_assert_eq!(toks.len(), tokens);
        for tok in toks {
            prop_assert!(
                tok.rsplit_once('/')
                    .is_some_and(|(_, tag)| text::TAGS.contains(&tag)),
                "token '{tok}' lacks a known tag"
            );
        }
    }

    #[test]
    fn pcap_stream_deterministic(seed in 0u64..200, len in 1024usize..20_000) {
        let cfg = PcapConfig { len, ..PcapConfig::default() };
        let a = pcap_like(seed, &cfg);
        prop_assert_eq!(a.len(), len);
        prop_assert_eq!(a, pcap_like(seed, &cfg));
    }

    #[test]
    fn disk_image_deterministic(seed in 0u64..200, len in 4096usize..40_000) {
        let cfg = DiskConfig { len, planted: vec![b"XYZZY".to_vec()] };
        let (a, offsets_a) = disk_image(seed, &cfg);
        let (b, offsets_b) = disk_image(seed, &cfg);
        prop_assert_eq!(a, b);
        prop_assert_eq!(offsets_a, offsets_b);
    }

    #[test]
    fn names_unique_across_seed_space(seed in 0u64..100) {
        let names = unique_names(seed, 64);
        let set: std::collections::HashSet<_> = names.iter().collect();
        prop_assert_eq!(set.len(), 64);
    }

    #[test]
    fn database_has_one_record_per_line(seed in 0u64..100, records in 1usize..400) {
        let names = unique_names(1, 10);
        let db = streaming_database(
            seed,
            &names,
            &StreamConfig { records, ..StreamConfig::default() },
        );
        let lines = db.iter().filter(|&&b| b == b'\n').count();
        prop_assert_eq!(lines, records);
    }

    #[test]
    fn malware_files_shape(seed in 0u64..100, n in 1usize..12) {
        let planted = vec![vec![0xAA, 0xBB, 0xCC]];
        let files = malware_files(seed, n, 1024, &planted);
        prop_assert_eq!(files.len(), n);
        prop_assert!(files.iter().all(|f| f.len() == 1024));
    }

    #[test]
    fn carving_stimulus_contains_zip_magic(seed in 0u64..50) {
        let s = carving_stimulus(
            seed,
            &CarvingConfig { len: 60_000, ..CarvingConfig::default() },
        );
        prop_assert_eq!(s.len(), 60_000);
        prop_assert!(s.windows(4).any(|w| w == b"PK\x03\x04"));
    }
}

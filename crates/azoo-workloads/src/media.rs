//! Multi-media file stimuli for the File Carving benchmark: zip local
//! file headers (with real MS-DOS timestamp bit-fields), MPEG program
//! streams, and forensic text (e-mails, SSNs) embedded in filler.

use rand::RngExt;
use rand_chacha::ChaCha8Rng;

/// Encodes an MS-DOS time: bits 0-4 seconds/2 (0..=29), 5-10 minutes
/// (0..=59), 11-15 hours (0..=23).
pub fn dos_time(hours: u16, minutes: u16, seconds: u16) -> u16 {
    assert!(hours < 24 && minutes < 60 && seconds < 60);
    (hours << 11) | (minutes << 5) | (seconds / 2)
}

/// Encodes an MS-DOS date: bits 0-4 day (1..=31), 5-8 month (1..=12),
/// 9-15 years since 1980.
pub fn dos_date(year: u16, month: u16, day: u16) -> u16 {
    assert!((1980..2108).contains(&year) && (1..=12).contains(&month) && (1..=31).contains(&day));
    ((year - 1980) << 9) | (month << 5) | day
}

/// A PKZip local-file-header (`PK\x03\x04`) with a valid random DOS
/// timestamp, followed by the file name.
pub fn zip_local_header(r: &mut ChaCha8Rng, name: &str) -> Vec<u8> {
    let mut h = Vec::with_capacity(30 + name.len());
    h.extend_from_slice(b"PK\x03\x04");
    h.extend_from_slice(&20u16.to_le_bytes()); // version needed
    h.extend_from_slice(&0u16.to_le_bytes()); // flags
    h.extend_from_slice(&8u16.to_le_bytes()); // method: deflate
    let t = dos_time(
        r.random_range(0..24),
        r.random_range(0..60),
        r.random_range(0..60),
    );
    let d = dos_date(
        r.random_range(1990..2030),
        r.random_range(1..13),
        r.random_range(1..29),
    );
    h.extend_from_slice(&t.to_le_bytes());
    h.extend_from_slice(&d.to_le_bytes());
    h.extend_from_slice(&r.random::<u32>().to_le_bytes()); // crc
    let size: u32 = r.random_range(64..4096);
    h.extend_from_slice(&size.to_le_bytes()); // compressed
    h.extend_from_slice(&size.to_le_bytes()); // uncompressed
    h.extend_from_slice(&(name.len() as u16).to_le_bytes());
    h.extend_from_slice(&0u16.to_le_bytes()); // extra len
    h.extend_from_slice(name.as_bytes());
    h
}

/// An MPEG-2 program-stream fragment: pack start code, a few PES packets,
/// then random payload; `len` bytes total.
pub fn mpeg_stream(r: &mut ChaCha8Rng, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len + 64);
    out.extend_from_slice(&[0x00, 0x00, 0x01, 0xba]); // pack header
    out.push(0x44); // system-clock-reference byte: '01' marker bits
    while out.len() < len {
        out.extend_from_slice(&[0x00, 0x00, 0x01, 0xe0]); // video PES
        let n = r
            .random_range(64..512)
            .min(len.saturating_sub(out.len()) + 8);
        for _ in 0..n {
            out.push(r.random());
        }
    }
    out.truncate(len);
    out
}

/// An MPEG-4 (ISO BMFF) file start: size + `ftyp` box.
pub fn mp4_header(brand: &[u8; 4]) -> Vec<u8> {
    let mut h = Vec::with_capacity(16);
    h.extend_from_slice(&20u32.to_be_bytes());
    h.extend_from_slice(b"ftyp");
    h.extend_from_slice(brand);
    h.extend_from_slice(&0u32.to_be_bytes());
    h
}

/// Configuration for [`carving_stimulus`].
#[derive(Debug, Clone)]
pub struct CarvingConfig {
    /// Approximate size in bytes.
    pub len: usize,
    /// Number of zip headers to embed.
    pub zips: usize,
    /// Number of mpeg fragments to embed.
    pub mpegs: usize,
    /// Number of mp4 headers to embed.
    pub mp4s: usize,
    /// E-mail addresses to embed in text regions.
    pub emails: usize,
    /// SSN-formatted numbers to embed.
    pub ssns: usize,
}

impl Default for CarvingConfig {
    fn default() -> Self {
        CarvingConfig {
            len: 1 << 20,
            zips: 20,
            mpegs: 10,
            mp4s: 10,
            emails: 20,
            ssns: 20,
        }
    }
}

/// A "corrupted filesystem" byte stream containing file headers and
/// forensic metadata scattered through random filler — the File Carving
/// benchmark's standard input.
pub fn carving_stimulus(seed: u64, config: &CarvingConfig) -> Vec<u8> {
    let mut r = crate::rng(seed);
    let mut artifacts: Vec<Vec<u8>> = Vec::new();
    for i in 0..config.zips {
        artifacts.push(zip_local_header(&mut r, &format!("file{i}.dat")));
    }
    for _ in 0..config.mpegs {
        artifacts.push(mpeg_stream(&mut r, 256));
    }
    for i in 0..config.mp4s {
        artifacts.push(mp4_header(if i % 2 == 0 { b"isom" } else { b"mp42" }));
    }
    for _ in 0..config.emails {
        let user = crate::text::word(&mut r);
        let host = crate::text::word(&mut r);
        artifacts.push(format!(" {user}@{host}.com ").into_bytes());
    }
    for _ in 0..config.ssns {
        artifacts.push(
            format!(
                " {:03}-{:02}-{:04} ",
                r.random_range(1..900u32),
                r.random_range(1..100u32),
                r.random_range(1..10000u32)
            )
            .into_bytes(),
        );
    }
    // Interleave artifacts with filler.
    let mut out = Vec::with_capacity(config.len + 4096);
    let filler_per = config.len / (artifacts.len() + 1);
    for a in &artifacts {
        let n = r.random_range(filler_per / 2..filler_per + filler_per / 2);
        if r.random_bool(0.5) {
            for _ in 0..n {
                out.push(r.random());
            }
        } else {
            out.extend_from_slice(&crate::text::english_like(r.random(), n));
        }
        out.extend_from_slice(a);
    }
    while out.len() < config.len {
        out.push(r.random());
    }
    out.truncate(config.len);
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn dos_time_bitfields() {
        let t = dos_time(23, 59, 58);
        assert_eq!(t >> 11, 23);
        assert_eq!((t >> 5) & 0x3f, 59);
        assert_eq!(t & 0x1f, 29);
        assert_eq!(dos_time(0, 0, 0), 0);
    }

    #[test]
    fn dos_date_bitfields() {
        let d = dos_date(2020, 7, 15);
        assert_eq!((d >> 9) + 1980, 2020);
        assert_eq!((d >> 5) & 0xf, 7);
        assert_eq!(d & 0x1f, 15);
    }

    #[test]
    #[should_panic]
    fn invalid_dos_time_panics() {
        dos_time(24, 0, 0);
    }

    #[test]
    fn zip_header_magic_and_name() {
        let mut r = crate::rng(1);
        let h = zip_local_header(&mut r, "a.txt");
        assert_eq!(&h[0..4], b"PK\x03\x04");
        assert!(h.ends_with(b"a.txt"));
        assert_eq!(h.len(), 30 + 5);
    }

    #[test]
    fn stimulus_contains_all_artifact_kinds() {
        let s = carving_stimulus(
            1,
            &CarvingConfig {
                len: 300_000,
                ..CarvingConfig::default()
            },
        );
        let has = |needle: &[u8]| s.windows(needle.len()).any(|w| w == needle);
        assert!(has(b"PK\x03\x04"));
        assert!(has(&[0x00, 0x00, 0x01, 0xba]));
        assert!(has(b"ftyp"));
        assert!(has(b".com "));
    }
}

//! Disk-image stimulus for the ClamAV benchmark, and malware-file
//! stimulus for YARA.
//!
//! AutomataZoo's ClamAV input is "a disk image including various files and
//! two embedded virus fragments". This builder concatenates synthetic
//! files of several types (text, binary, zip-like, media-like) and plants
//! signature fragments at deterministic offsets.

use rand::RngExt;

/// Configuration for [`disk_image`].
#[derive(Debug, Clone)]
pub struct DiskConfig {
    /// Approximate image size in bytes.
    pub len: usize,
    /// Virus/malware fragments to embed.
    pub planted: Vec<Vec<u8>>,
}

impl Default for DiskConfig {
    fn default() -> Self {
        DiskConfig {
            len: 1 << 20,
            planted: Vec::new(),
        }
    }
}

/// Builds a synthetic disk image. Returns the image and the offsets where
/// each planted fragment was embedded.
pub fn disk_image(seed: u64, config: &DiskConfig) -> (Vec<u8>, Vec<usize>) {
    let mut r = crate::rng(seed);
    let mut out = Vec::with_capacity(config.len + 4096);
    while out.len() < config.len {
        match r.random_range(0..4) {
            0 => {
                // Text file.
                let t = crate::text::english_like(r.random(), r.random_range(512..4096));
                out.extend_from_slice(&t);
            }
            1 => {
                // Binary blob (executable-ish: header + sections).
                out.extend_from_slice(b"\x7fELF");
                let n = r.random_range(512..4096);
                for _ in 0..n {
                    out.push(r.random());
                }
            }
            2 => {
                // Zip-like container with a few entries.
                for _ in 0..r.random_range(1..4) {
                    out.extend_from_slice(&crate::media::zip_local_header(&mut r, "doc.txt"));
                    let n = r.random_range(128..1024);
                    for _ in 0..n {
                        out.push(r.random());
                    }
                }
            }
            _ => {
                // Media-ish stream.
                out.extend_from_slice(&crate::media::mpeg_stream(&mut r, 2048));
            }
        }
    }
    out.truncate(config.len);
    // Plant the fragments at spread offsets (like the paper's two
    // VirusSign fragments).
    let mut offsets = Vec::new();
    if !config.planted.is_empty() {
        let stride = config.len / (config.planted.len() + 1);
        for (i, frag) in config.planted.iter().enumerate() {
            let at = (i + 1) * stride;
            if at + frag.len() <= out.len() {
                out[at..at + frag.len()].copy_from_slice(frag);
                offsets.push(at);
            }
        }
    }
    (out, offsets)
}

/// A set of synthetic "malware files" for the YARA benchmark: mostly
/// random binary, with the given hex-pattern byte strings planted into a
/// subset of files.
pub fn malware_files(
    seed: u64,
    n_files: usize,
    file_len: usize,
    planted: &[Vec<u8>],
) -> Vec<Vec<u8>> {
    let mut r = crate::rng(seed);
    let mut files = Vec::with_capacity(n_files);
    for i in 0..n_files {
        let mut f: Vec<u8> = (0..file_len).map(|_| r.random()).collect();
        // Every third file carries one planted pattern.
        if !planted.is_empty() && i % 3 == 0 {
            let p = &planted[i / 3 % planted.len()];
            if p.len() <= f.len() {
                let at = r.random_range(0..=(f.len() - p.len()));
                f[at..at + p.len()].copy_from_slice(p);
            }
        }
        files.push(f);
    }
    files
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn image_is_sized_and_plants_fragments() {
        let cfg = DiskConfig {
            len: 100_000,
            planted: vec![b"VIRUS_FRAGMENT_ALPHA".to_vec(), b"VIRUS_BETA".to_vec()],
        };
        let (img, offsets) = disk_image(1, &cfg);
        assert_eq!(img.len(), 100_000);
        assert_eq!(offsets.len(), 2);
        for (frag, &at) in cfg.planted.iter().zip(&offsets) {
            assert_eq!(&img[at..at + frag.len()], &frag[..]);
        }
    }

    #[test]
    fn image_contains_multiple_file_types() {
        let (img, _) = disk_image(
            2,
            &DiskConfig {
                len: 200_000,
                planted: vec![],
            },
        );
        let has = |needle: &[u8]| img.windows(needle.len()).any(|w| w == needle);
        assert!(has(b"\x7fELF"), "no binary files");
        assert!(has(b"PK\x03\x04"), "no zip entries");
    }

    #[test]
    fn malware_files_carry_patterns() {
        let planted = vec![vec![0x9c, 0x50, 0xa1, 0x77, 0x58, 0x0f, 0x85]];
        let files = malware_files(3, 9, 4096, &planted);
        assert_eq!(files.len(), 9);
        let carriers = files
            .iter()
            .filter(|f| f.windows(planted[0].len()).any(|w| w == &planted[0][..]))
            .count();
        assert!(carriers >= 3);
    }
}

//! Network-capture-like stimulus for the Snort benchmark.
//!
//! The paper streams a PCAP file through the Snort ruleset. This generator
//! emits a concatenation of synthetic packets — binary-ish headers
//! followed by HTTP-flavoured payloads — with a configurable fraction of
//! payloads containing planted attack strings so the ruleset has true
//! positives.

use rand::RngExt;

/// Configuration for [`pcap_like`].
#[derive(Debug, Clone)]
pub struct PcapConfig {
    /// Approximate total size in bytes.
    pub len: usize,
    /// Strings planted into a fraction of payloads (attack content).
    pub planted: Vec<Vec<u8>>,
    /// Probability that any packet carries one planted string.
    pub plant_rate: f64,
}

impl Default for PcapConfig {
    fn default() -> Self {
        PcapConfig {
            len: 1 << 20,
            planted: Vec::new(),
            plant_rate: 0.01,
        }
    }
}

const METHODS: [&str; 4] = ["GET", "POST", "HEAD", "PUT"];
const PATHS: [&str; 6] = [
    "/index.html",
    "/login.php",
    "/api/v1/items",
    "/images/logo.png",
    "/admin/config",
    "/search",
];

/// Generates a PCAP-like byte stream.
pub fn pcap_like(seed: u64, config: &PcapConfig) -> Vec<u8> {
    let mut r = crate::rng(seed);
    let mut out = Vec::with_capacity(config.len + 2048);
    while out.len() < config.len {
        // 16-byte pseudo packet header (timestamps / lengths).
        for _ in 0..16 {
            out.push(r.random());
        }
        // HTTP-ish request line + headers.
        let m = METHODS[r.random_range(0..4)];
        let p = PATHS[r.random_range(0..PATHS.len())];
        out.extend_from_slice(m.as_bytes());
        out.push(b' ');
        out.extend_from_slice(p.as_bytes());
        if r.random_bool(0.5) {
            out.extend_from_slice(format!("?id={}", r.random_range(0..100000u32)).as_bytes());
        }
        out.extend_from_slice(b" HTTP/1.1\r\nHost: example.test\r\n");
        // Payload: text or binary.
        let payload_len = r.random_range(40..400);
        if r.random_bool(0.7) {
            let text = crate::text::english_like(r.random(), payload_len);
            out.extend_from_slice(&text);
        } else {
            for _ in 0..payload_len {
                out.push(r.random());
            }
        }
        if !config.planted.is_empty() && r.random_bool(config.plant_rate) {
            let s = &config.planted[r.random_range(0..config.planted.len())];
            out.extend_from_slice(s);
        }
        out.extend_from_slice(b"\r\n\r\n");
    }
    out.truncate(config.len);
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn stream_has_requested_size_and_structure() {
        let cfg = PcapConfig {
            len: 50_000,
            ..PcapConfig::default()
        };
        let s = pcap_like(1, &cfg);
        assert_eq!(s.len(), 50_000);
        let text = String::from_utf8_lossy(&s);
        assert!(text.contains("HTTP/1.1"));
    }

    #[test]
    fn planted_strings_appear() {
        let cfg = PcapConfig {
            len: 200_000,
            planted: vec![b"EVIL_SHELLCODE_MARKER".to_vec()],
            plant_rate: 0.2,
        };
        let s = pcap_like(2, &cfg);
        let needle = b"EVIL_SHELLCODE_MARKER";
        assert!(
            s.windows(needle.len()).any(|w| w == needle),
            "planted string absent"
        );
    }

    #[test]
    fn deterministic() {
        let cfg = PcapConfig {
            len: 10_000,
            ..PcapConfig::default()
        };
        assert_eq!(pcap_like(5, &cfg), pcap_like(5, &cfg));
    }
}

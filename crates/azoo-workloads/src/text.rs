//! Natural-language-like text stimuli: a synthetic Brown-corpus stand-in
//! for the Brill benchmark and generic English-like filler for disk
//! images.

use rand::RngExt;
use rand_chacha::ChaCha8Rng;

/// Part-of-speech tags used by the synthetic tagged corpus, mirroring the
/// coarse Brown-corpus tag classes the Brill benchmark rewrites.
pub const TAGS: [&str; 12] = [
    "NN", "NNS", "VB", "VBD", "VBG", "JJ", "RB", "DT", "IN", "PRP", "CC", "CD",
];

const SYLLABLES: [&str; 24] = [
    "ta", "re", "mi", "con", "ver", "lo", "san", "del", "mor", "ti", "ka", "ble", "ing", "ed",
    "er", "an", "or", "ran", "pos", "net", "dis", "pre", "sub", "ter",
];

/// A pseudo-English word of 1..=4 syllables.
pub fn word(r: &mut ChaCha8Rng) -> String {
    let n = r.random_range(1..5);
    let mut w = String::new();
    for _ in 0..n {
        w.push_str(SYLLABLES[r.random_range(0..SYLLABLES.len())]);
    }
    w
}

/// English-like filler text of approximately `len` bytes.
pub fn english_like(seed: u64, len: usize) -> Vec<u8> {
    let mut r = crate::rng(seed);
    let mut out = Vec::with_capacity(len + 16);
    while out.len() < len {
        let w = word(&mut r);
        out.extend_from_slice(w.as_bytes());
        out.push(if r.random_bool(0.1) { b'.' } else { b' ' });
    }
    out.truncate(len);
    out
}

/// One token of a tagged corpus: `word/TAG `.
///
/// The Brill benchmark streams tagged text and patches incorrect tags; the
/// automata match on `word/TAG` contexts, so the stimulus interleaves
/// words with their tags exactly like the tagged Brown corpus does.
pub fn tagged_corpus(seed: u64, tokens: usize) -> Vec<u8> {
    let mut r = crate::rng(seed);
    let mut out = Vec::with_capacity(tokens * 10);
    for i in 0..tokens {
        let w = word(&mut r);
        let tag = TAGS[r.random_range(0..TAGS.len())];
        out.extend_from_slice(w.as_bytes());
        out.push(b'/');
        out.extend_from_slice(tag.as_bytes());
        out.push(if i % 17 == 16 { b'\n' } else { b' ' });
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn english_like_is_sized_and_ascii() {
        let t = english_like(1, 5000);
        assert_eq!(t.len(), 5000);
        assert!(t.iter().all(u8::is_ascii));
    }

    #[test]
    fn tagged_corpus_contains_tags() {
        let t = tagged_corpus(2, 500);
        let s = String::from_utf8(t).unwrap();
        let with_tag = s
            .split_whitespace()
            .filter(|tok| TAGS.iter().any(|tag| tok.ends_with(&format!("/{tag}"))))
            .count();
        assert!(with_tag >= 490, "only {with_tag} of 500 tokens tagged");
    }

    #[test]
    fn deterministic() {
        assert_eq!(tagged_corpus(3, 50), tagged_corpus(3, 50));
        assert_eq!(english_like(3, 100), english_like(3, 100));
    }
}

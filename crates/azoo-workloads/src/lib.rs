//! Seeded synthetic input-stimulus generators for the AutomataZoo
//! benchmarks.
//!
//! The paper's standard inputs are real-world corpora (network captures,
//! disk images, UniProt, the Brown corpus, VirusSign samples, ...). This
//! crate provides deterministic synthetic equivalents with the same
//! structural statistics, so every benchmark ships with a reproducible
//! stimulus. All generators take an explicit seed; the same seed always
//! produces the same bytes.
//!
//! # Example
//!
//! ```
//! use azoo_workloads::dna;
//!
//! let a = dna::random_dna(42, 1000);
//! let b = dna::random_dna(42, 1000);
//! assert_eq!(a, b);
//! assert!(a.iter().all(|c| b"ACGT".contains(c)));
//! ```

#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]
pub mod disk;
pub mod dna;
pub mod media;
pub mod names;
pub mod network;
pub mod text;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Creates the deterministic RNG used by every generator in this crate.
///
/// ChaCha8 is used (rather than `StdRng`) because its output is stable
/// across library versions, keeping benchmark stimuli reproducible.
pub fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Uniformly random bytes — the AP PRNG benchmark's input stimulus.
pub fn random_bytes(seed: u64, len: usize) -> Vec<u8> {
    use rand::RngExt;
    let mut r = rng(seed);
    (0..len).map(|_| r.random()).collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn random_bytes_deterministic_and_sized() {
        let a = random_bytes(7, 4096);
        let b = random_bytes(7, 4096);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4096);
        let c = random_bytes(8, 4096);
        assert_ne!(a, c);
    }

    #[test]
    fn random_bytes_roughly_uniform() {
        let data = random_bytes(1, 1 << 16);
        let mut counts = [0u32; 256];
        for &b in &data {
            counts[b as usize] += 1;
        }
        let expected = data.len() as f64 / 256.0;
        for (b, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64) > expected * 0.5 && (c as f64) < expected * 1.5,
                "byte {b} count {c} far from uniform"
            );
        }
    }
}

//! DNA and protein sequence stimuli.

use rand::RngExt;

/// The DNA alphabet used by Hamming, Levenshtein, and CRISPR benchmarks.
pub const DNA: [u8; 4] = *b"ACGT";

/// The 20 standard amino acids (for Protomata).
pub const AMINO_ACIDS: [u8; 20] = *b"ACDEFGHIKLMNPQRSTVWY";

/// Uniformly random DNA base-pairs.
pub fn random_dna(seed: u64, len: usize) -> Vec<u8> {
    let mut r = crate::rng(seed);
    (0..len).map(|_| DNA[r.random_range(0..4)]).collect()
}

/// Random DNA with `patterns` planted at deterministic, spread-out
/// offsets, so that filters have true positives to find. Returns the
/// sequence and the offsets where each pattern begins.
///
/// # Panics
///
/// Panics if a pattern is longer than `len / patterns.len()`.
pub fn dna_with_planted(seed: u64, len: usize, patterns: &[Vec<u8>]) -> (Vec<u8>, Vec<usize>) {
    let mut seq = random_dna(seed, len);
    let mut offsets = Vec::with_capacity(patterns.len());
    if patterns.is_empty() {
        return (seq, offsets);
    }
    let stride = len / patterns.len();
    for (i, p) in patterns.iter().enumerate() {
        assert!(p.len() <= stride, "pattern {i} longer than its slot");
        let at = i * stride;
        seq[at..at + p.len()].copy_from_slice(p);
        offsets.push(at);
    }
    (seq, offsets)
}

/// A random 20-letter protein database with `motifs` planted, separated by
/// newline record breaks every ~60 residues (FASTA-like body).
pub fn protein_database(seed: u64, len: usize, motifs: &[Vec<u8>]) -> Vec<u8> {
    let mut r = crate::rng(seed);
    let mut seq: Vec<u8> = (0..len)
        .map(|i| {
            if i % 61 == 60 {
                b'\n'
            } else {
                AMINO_ACIDS[r.random_range(0..20)]
            }
        })
        .collect();
    if !motifs.is_empty() {
        let stride = len / motifs.len();
        for (i, m) in motifs.iter().enumerate() {
            let at = i * stride;
            if at + m.len() <= seq.len() {
                seq[at..at + m.len()].copy_from_slice(m);
            }
        }
    }
    seq
}

/// A random guide-RNA-like DNA pattern of length `len`.
pub fn random_guide(seed: u64, len: usize) -> Vec<u8> {
    random_dna(seed, len)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn dna_alphabet_only() {
        let d = random_dna(3, 1000);
        assert!(d.iter().all(|c| DNA.contains(c)));
        assert_eq!(d.len(), 1000);
    }

    #[test]
    fn dna_is_deterministic() {
        assert_eq!(random_dna(9, 64), random_dna(9, 64));
        assert_ne!(random_dna(9, 64), random_dna(10, 64));
    }

    #[test]
    fn planting_places_patterns() {
        let patterns = vec![b"AAAATTTT".to_vec(), b"GGGGCCCC".to_vec()];
        let (seq, offsets) = dna_with_planted(1, 1000, &patterns);
        for (p, &at) in patterns.iter().zip(&offsets) {
            assert_eq!(&seq[at..at + p.len()], &p[..]);
        }
        assert_eq!(offsets, vec![0, 500]);
    }

    #[test]
    fn protein_db_has_record_breaks_and_motifs() {
        let motif = b"HKWWRDE".to_vec();
        let db = protein_database(5, 10_000, std::slice::from_ref(&motif));
        assert!(db.windows(motif.len()).any(|w| w == &motif[..]));
        assert!(db.contains(&b'\n'));
        let residues = db.iter().filter(|&&c| c != b'\n').count();
        assert!(residues > 9_000);
    }
}

//! Name-database generator for the Entity Resolution benchmark.
//!
//! AutomataZoo replaced ANMLZoo's lexicographically-similar 500-name list
//! with "a name generator that can introduce arbitrary names of different
//! formats, and also introduce various errors". This module reproduces
//! that toolchain: diverse synthetic names, multiple rendering formats,
//! and configurable error injection (typos, dropped characters,
//! transpositions), plus a streaming-database renderer.

use rand::RngExt;
use rand_chacha::ChaCha8Rng;

const FIRST_PARTS: [&str; 16] = [
    "al", "ber", "chris", "da", "el", "fran", "gio", "han", "isa", "jo", "ka", "lu", "mar", "ni",
    "ro", "sa",
];
const LAST_PARTS: [&str; 16] = [
    "son", "ман", "berg", "etti", "ez", "ford", "grove", "hill", "ins", "kov", "land", "man",
    "ner", "ton", "wood", "ski",
];

/// How a name is rendered into the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NameFormat {
    /// `first last`
    FirstLast,
    /// `last, first`
    LastCommaFirst,
    /// `f. last`
    InitialLast,
}

/// A generated person name.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Name {
    /// Given name, lowercase.
    pub first: String,
    /// Family name, lowercase.
    pub last: String,
}

impl Name {
    /// Renders the name in `format`.
    pub fn render(&self, format: NameFormat) -> String {
        match format {
            NameFormat::FirstLast => format!("{} {}", self.first, self.last),
            NameFormat::LastCommaFirst => format!("{}, {}", self.last, self.first),
            NameFormat::InitialLast => {
                format!("{}. {}", &self.first[0..1], self.last)
            }
        }
    }
}

fn ascii_name_part(r: &mut ChaCha8Rng, parts: &[&str]) -> String {
    let mut s = String::new();
    for _ in 0..r.random_range(1..3) {
        let p = parts[r.random_range(0..parts.len())];
        // Skip the one intentionally non-ASCII decoy part; the automata
        // alphabet is bytes and the benchmark uses ASCII names.
        if p.is_ascii() {
            s.push_str(p);
        }
    }
    if s.is_empty() {
        s.push_str("lee");
    }
    s
}

/// Generates `n` unique names.
pub fn unique_names(seed: u64, n: usize) -> Vec<Name> {
    let mut r = crate::rng(seed);
    let mut seen = std::collections::HashSet::new();
    let mut names = Vec::with_capacity(n);
    while names.len() < n {
        let name = Name {
            first: ascii_name_part(&mut r, &FIRST_PARTS),
            last: ascii_name_part(&mut r, &LAST_PARTS),
        };
        if seen.insert(name.clone()) {
            names.push(name);
        }
    }
    names
}

/// Injects one random error into `s`: substitution, deletion, insertion,
/// or adjacent transposition.
pub fn inject_error(r: &mut ChaCha8Rng, s: &str) -> String {
    let bytes = s.as_bytes();
    if bytes.is_empty() {
        return s.to_owned();
    }
    let mut v = bytes.to_vec();
    let i = r.random_range(0..v.len());
    match r.random_range(0..4) {
        0 => v[i] = b'a' + r.random_range(0..26) as u8, // substitute
        1 => {
            v.remove(i); // delete
        }
        2 => v.insert(i, b'a' + r.random_range(0..26) as u8), // insert
        _ => {
            if i + 1 < v.len() {
                v.swap(i, i + 1); // transpose
            }
        }
    }
    String::from_utf8_lossy(&v).into_owned()
}

/// Configuration for [`streaming_database`].
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Number of records to emit.
    pub records: usize,
    /// Probability that a record is a (possibly corrupted) duplicate of a
    /// known name rather than a fresh distractor.
    pub duplicate_rate: f64,
    /// Probability that a duplicate carries an injected error.
    pub error_rate: f64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            records: 10_000,
            duplicate_rate: 0.3,
            error_rate: 0.3,
        }
    }
}

/// Renders a newline-separated streaming database of name records, a
/// mix of duplicates of `known` (with errors and format variation) and
/// fresh distractor names.
pub fn streaming_database(seed: u64, known: &[Name], config: &StreamConfig) -> Vec<u8> {
    let mut r = crate::rng(seed ^ 0x5eed_0002);
    let mut out = Vec::new();
    for _ in 0..config.records {
        let rendered = if !known.is_empty() && r.random_bool(config.duplicate_rate) {
            let name = &known[r.random_range(0..known.len())];
            let fmt = match r.random_range(0..3) {
                0 => NameFormat::FirstLast,
                1 => NameFormat::LastCommaFirst,
                _ => NameFormat::InitialLast,
            };
            let s = name.render(fmt);
            if r.random_bool(config.error_rate) {
                inject_error(&mut r, &s)
            } else {
                s
            }
        } else {
            Name {
                first: ascii_name_part(&mut r, &FIRST_PARTS),
                last: ascii_name_part(&mut r, &LAST_PARTS),
            }
            .render(NameFormat::FirstLast)
        };
        out.extend_from_slice(rendered.as_bytes());
        out.push(b'\n');
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_ascii() {
        let names = unique_names(1, 500);
        assert_eq!(names.len(), 500);
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), 500);
        assert!(names
            .iter()
            .all(|n| n.first.is_ascii() && n.last.is_ascii()));
    }

    #[test]
    fn formats_render_differently() {
        let n = Name {
            first: "maria".into(),
            last: "kovson".into(),
        };
        assert_eq!(n.render(NameFormat::FirstLast), "maria kovson");
        assert_eq!(n.render(NameFormat::LastCommaFirst), "kovson, maria");
        assert_eq!(n.render(NameFormat::InitialLast), "m. kovson");
    }

    #[test]
    fn error_injection_changes_string() {
        let mut r = crate::rng(3);
        let mut changed = 0;
        for _ in 0..50 {
            if inject_error(&mut r, "jonathan") != "jonathan" {
                changed += 1;
            }
        }
        assert!(changed > 40, "errors rarely injected: {changed}/50");
    }

    #[test]
    fn database_contains_duplicates_of_known_names() {
        let known = unique_names(2, 50);
        let db = streaming_database(
            7,
            &known,
            &StreamConfig {
                records: 2000,
                duplicate_rate: 0.5,
                error_rate: 0.0,
            },
        );
        let text = String::from_utf8(db).unwrap();
        let hits = known
            .iter()
            .filter(|n| text.contains(&n.render(NameFormat::FirstLast)))
            .count();
        assert!(hits > 25, "only {hits}/50 known names appear");
    }
}

//! # azoo-fuzzy
//!
//! Bounded edit-distance (Levenshtein-automaton) construction: compile
//! *any* pattern — raw bytes or a symbol-class sequence — together with a
//! maximum edit budget `k` and an [`EditProfile`] into a validated
//! homogeneous [`Automaton`] of `k + 1` error layers, the way noodle's
//! `nx.c` scans with per-error state layers.
//!
//! The construction is the classic Levenshtein NFA over configurations
//! `(consumed, edits)` with deletion ε-moves pre-expanded by closure and
//! two homogeneous tracks per configuration:
//!
//! * **track 0** — entered by *matching* position `i` (class `p[i]`);
//! * **track 1** — entered by an *edit* that consumes an input symbol.
//!   When insertions are enabled this track is shared by insertions and
//!   substitutions and must carry class `Σ` (any byte can be inserted);
//!   when only substitutions consume input it carries `¬p[i]`, which is
//!   exactly azoo-zoo's hand-built Hamming mesh.
//!
//! Disabling edit kinds specializes the mesh: `EditProfile::HAMMING`
//! (substitutions only) reproduces `azoo_zoo::hamming::hamming_filter`
//! report-for-report, and `EditProfile::LEVENSHTEIN` reproduces
//! `azoo_zoo::levenshtein::levenshtein_filter` — both pinned by
//! `tests/fuzzy_equivalence.rs` at the paper's published pattern sizes.
//!
//! Besides building meshes from scratch ([`fuzzy_automaton`],
//! [`fuzzy_from_bytes`]), [`fuzzify`] lifts an existing *chain-shaped*
//! automaton (e.g. a compiled literal database) to edit distance `k`,
//! preserving anchoring (`StartOfData`) and end-of-data report flags —
//! this is what azoo-serve's per-session `max_edits` OPEN parameter uses
//! to open one compiled pattern database at distance 0/1/2.
//!
//! Every constructor returns [`FuzzyStats`] alongside the automaton:
//! state/edge counts, the number of error layers, and the estimated
//! active-set width `(k + 1) × pattern_len` that azoo-analyze's
//! `fuzzy-blowup` rule warns on.

#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]

use std::fmt;

use azoo_core::{Automaton, ElementKind, Port, StartKind, StateId, SymbolClass};

/// Largest `max_edits` accepted by the serve protocol and the oracle
/// generator. The core constructors accept any `edits < pattern_len`;
/// this cap is the *wire-level* bound (it must fit the two fuzz bits of
/// the AZDB flags byte) and the range the acceptance campaign certifies.
pub const MAX_EDITS: u8 = 3;

/// Longest supported pattern, in symbol positions. The mesh holds at
/// most `2 (l + 1)(k + 1)` states; this cap keeps a single fuzzified
/// pattern well under engine-tier limits.
pub const MAX_PATTERN_LEN: usize = 4096;

/// Which edit kinds the mesh may spend its budget on.
///
/// Each toggle admits one kind of down-edge between error layers:
///
/// * `substitutions` — consume one input symbol in place of position `i`;
/// * `insertions` — consume one input symbol without advancing the
///   pattern;
/// * `deletions` — advance the pattern without consuming input
///   (ε-closure, pre-expanded).
///
/// Hamming distance falls out as the substitution-only profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EditProfile {
    /// Allow substituted symbols.
    pub substitutions: bool,
    /// Allow inserted symbols.
    pub insertions: bool,
    /// Allow deleted symbols.
    pub deletions: bool,
}

impl EditProfile {
    /// Full edit distance: substitutions, insertions, and deletions.
    pub const LEVENSHTEIN: EditProfile = EditProfile {
        substitutions: true,
        insertions: true,
        deletions: true,
    };

    /// Hamming distance: substitutions only.
    pub const HAMMING: EditProfile = EditProfile {
        substitutions: true,
        insertions: false,
        deletions: false,
    };

    /// Number of enabled edit kinds.
    pub fn kinds(&self) -> usize {
        usize::from(self.substitutions) + usize::from(self.insertions) + usize::from(self.deletions)
    }
}

/// Construction metadata returned alongside every fuzzy automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzyStats {
    /// States in the pruned mesh.
    pub states: usize,
    /// Activation edges in the pruned mesh.
    pub edges: usize,
    /// Error layers, always `max_edits + 1`.
    pub layers: usize,
    /// Pattern length in symbol positions (longest pattern for
    /// multi-chain [`fuzzify`] builds).
    pub pattern_len: usize,
    /// Estimated active-set width: `Σ layers × pattern_len` over all
    /// patterns. This is the quantity azoo-analyze's `fuzzy-blowup`
    /// rule compares against its budget.
    pub est_active_width: usize,
}

/// Typed construction failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FuzzyError {
    /// The pattern has no positions.
    EmptyPattern,
    /// The pattern exceeds [`MAX_PATTERN_LEN`].
    PatternTooLong {
        /// Offending length.
        len: usize,
        /// The cap ([`MAX_PATTERN_LEN`]).
        max: usize,
    },
    /// `edits >= pattern_len`: the mesh would accept the empty string.
    EditsExceedPattern {
        /// Requested budget.
        edits: usize,
        /// Pattern length.
        pattern_len: usize,
    },
    /// A non-zero edit budget with every edit kind disabled.
    NoEditKinds {
        /// Requested budget.
        edits: usize,
    },
    /// A pattern position has an empty symbol class and can never match.
    UnmatchablePosition {
        /// Offending position index.
        index: usize,
    },
    /// [`fuzzify`] requires chain-shaped components (literal runs); this
    /// state breaks the shape.
    NotChainShaped {
        /// Offending state.
        state: StateId,
        /// What about the state breaks the chain shape.
        reason: &'static str,
    },
}

impl fmt::Display for FuzzyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuzzyError::EmptyPattern => write!(f, "empty pattern"),
            FuzzyError::PatternTooLong { len, max } => {
                write!(f, "pattern length {len} exceeds maximum {max}")
            }
            FuzzyError::EditsExceedPattern { edits, pattern_len } => {
                write!(
                    f,
                    "edit budget {edits} must be below pattern length {pattern_len}"
                )
            }
            FuzzyError::NoEditKinds { edits } => {
                write!(f, "edit budget {edits} with every edit kind disabled")
            }
            FuzzyError::UnmatchablePosition { index } => {
                write!(f, "pattern position {index} has an empty symbol class")
            }
            FuzzyError::NotChainShaped { state, reason } => {
                write!(
                    f,
                    "state {} is not part of a literal chain: {reason}",
                    state.index()
                )
            }
        }
    }
}

impl std::error::Error for FuzzyError {}

fn check_pattern(
    classes: &[SymbolClass],
    edits: usize,
    profile: EditProfile,
) -> Result<(), FuzzyError> {
    let l = classes.len();
    if l == 0 {
        return Err(FuzzyError::EmptyPattern);
    }
    if l > MAX_PATTERN_LEN {
        return Err(FuzzyError::PatternTooLong {
            len: l,
            max: MAX_PATTERN_LEN,
        });
    }
    if edits >= l {
        return Err(FuzzyError::EditsExceedPattern {
            edits,
            pattern_len: l,
        });
    }
    if edits > 0 && profile.kinds() == 0 {
        return Err(FuzzyError::NoEditKinds { edits });
    }
    if let Some(index) = classes.iter().position(SymbolClass::is_empty) {
        return Err(FuzzyError::UnmatchablePosition { index });
    }
    Ok(())
}

/// Appends one `(i, e, track)` mesh for `classes` into `a`. The caller
/// prunes with `remove_dead` once all meshes are in place.
#[allow(clippy::needless_range_loop)] // index loops mirror the (i, e, track) mesh
fn mesh_into(
    a: &mut Automaton,
    classes: &[SymbolClass],
    d: usize,
    profile: EditProfile,
    code: u32,
    start_kind: StartKind,
    eod_only: bool,
) {
    let l = classes.len();
    // With insertions the edit-entered track is shared by insertions and
    // substitutions and must match any byte; substitution-only meshes
    // narrow it to the complement class (azoo-zoo's Hamming mesh).
    let track1_full = profile.insertions;
    let mut ids = vec![vec![[None::<StateId>; 2]; d + 1]; l + 1];
    // With deletions, trailing pattern positions may be deleted for free;
    // without them, only the final column accepts.
    let accepting = |i: usize, e: usize| {
        if profile.deletions {
            l - i <= d - e
        } else {
            i == l
        }
    };
    for i in 0..=l {
        for e in 0..=d {
            if i >= 1 {
                let s = a.add_ste(classes[i - 1], StartKind::None);
                ids[i][e][0] = Some(s);
                if accepting(i, e) {
                    a.set_report(s, code);
                    a.set_report_eod_only(s, eod_only);
                }
            }
            if e >= 1 {
                let class = if track1_full {
                    Some(SymbolClass::FULL)
                } else if profile.substitutions && i >= 1 {
                    // A substitution of a Σ-class position cannot
                    // mismatch; skip the unmatchable state.
                    Some(classes[i - 1].complement()).filter(|c| !c.is_empty())
                } else {
                    None
                };
                if let Some(class) = class {
                    let s = a.add_ste(class, StartKind::None);
                    ids[i][e][1] = Some(s);
                    if accepting(i, e) {
                        a.set_report(s, code);
                        a.set_report_eod_only(s, eod_only);
                    }
                }
            }
        }
    }
    // Deletion closure of configuration (i, e); the identity when
    // deletions are disabled.
    let closure = |i: usize, e: usize| -> Vec<(usize, usize)> {
        if profile.deletions {
            (0..=(l - i).min(d - e)).map(|j| (i + j, e + j)).collect()
        } else {
            vec![(i, e)]
        }
    };
    // Symbol successors of a configuration set, as homogeneous targets.
    let targets_of = |cfg: (usize, usize)| -> Vec<StateId> {
        let mut out = Vec::new();
        for (i, e) in closure(cfg.0, cfg.1) {
            if i < l {
                if let Some(m) = ids[i + 1][e][0] {
                    out.push(m);
                }
                if profile.substitutions && e < d {
                    if let Some(s) = ids[i + 1][e + 1][1] {
                        out.push(s);
                    }
                }
            }
            if profile.insertions && e < d {
                if let Some(ins) = ids[i][e + 1][1] {
                    out.push(ins);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    };
    for i in 0..=l {
        for e in 0..=d {
            for track in 0..2 {
                let Some(s) = ids[i][e][track] else { continue };
                for t in targets_of((i, e)) {
                    a.add_edge(s, t);
                }
            }
        }
    }
    // Start states: symbol successors of the initial configuration (0,0).
    for t in targets_of((0, 0)) {
        if let ElementKind::Ste { start, .. } = &mut a.element_mut(t).kind {
            *start = start_kind;
        }
    }
}

/// Compiles a symbol-class sequence into a fuzzy mesh reporting `code`
/// at every offset where some stream suffix is within `edits` edits
/// (per `profile`) of the pattern.
///
/// Matching is unanchored (`AllInput` starts); use [`fuzzify`] to carry
/// anchoring over from an existing automaton.
pub fn fuzzy_automaton(
    classes: &[SymbolClass],
    edits: usize,
    profile: EditProfile,
    code: u32,
) -> Result<(Automaton, FuzzyStats), FuzzyError> {
    check_pattern(classes, edits, profile)?;
    let mut a = Automaton::new();
    mesh_into(
        &mut a,
        classes,
        edits,
        profile,
        code,
        StartKind::AllInput,
        false,
    );
    // The uniform (i, e) grid creates configurations no path can reach
    // (e.g. high-edit cells next to the start); prune them.
    let a = azoo_passes::remove_dead(&a);
    let stats = FuzzyStats {
        states: a.state_count(),
        edges: a.edge_count(),
        layers: edits + 1,
        pattern_len: classes.len(),
        est_active_width: (edits + 1) * classes.len(),
    };
    Ok((a, stats))
}

/// Byte-pattern convenience wrapper over [`fuzzy_automaton`].
pub fn fuzzy_from_bytes(
    pattern: &[u8],
    edits: usize,
    profile: EditProfile,
    code: u32,
) -> Result<(Automaton, FuzzyStats), FuzzyError> {
    let classes: Vec<SymbolClass> = pattern
        .iter()
        .copied()
        .map(SymbolClass::from_byte)
        .collect();
    fuzzy_automaton(&classes, edits, profile, code)
}

/// One literal chain recovered from an automaton by [`fuzzify`].
struct Chain {
    classes: Vec<SymbolClass>,
    code: u32,
    start: StartKind,
    eod_only: bool,
}

/// Decomposes `a` into literal chains: every component must be a single
/// start-headed run of STEs with fan-out ≤ 1, no counters, no reset
/// edges, no cycles, and exactly one report at the tail.
fn extract_chains(a: &Automaton) -> Result<Vec<Chain>, FuzzyError> {
    let n = a.state_count();
    let mut visited = vec![false; n];
    let mut chains = Vec::new();
    for (id, element) in a.iter() {
        let start = match &element.kind {
            ElementKind::Ste { start, .. } => *start,
            ElementKind::Counter { .. } => {
                return Err(FuzzyError::NotChainShaped {
                    state: id,
                    reason: "counter element",
                })
            }
        };
        if start == StartKind::None {
            continue;
        }
        let mut classes = Vec::new();
        let mut cur = id;
        let (code, eod_only) = loop {
            if visited[cur.index()] {
                return Err(FuzzyError::NotChainShaped {
                    state: cur,
                    reason: "cycle or state shared between chains",
                });
            }
            visited[cur.index()] = true;
            let element = a.element(cur);
            match &element.kind {
                ElementKind::Ste { class, .. } => classes.push(*class),
                ElementKind::Counter { .. } => {
                    return Err(FuzzyError::NotChainShaped {
                        state: cur,
                        reason: "counter element",
                    })
                }
            }
            let succ = a.successors(cur);
            if let Some(edge) = succ.iter().find(|e| e.port != Port::Activate) {
                return Err(FuzzyError::NotChainShaped {
                    state: edge.to,
                    reason: "reset edge",
                });
            }
            if succ.len() > 1 {
                return Err(FuzzyError::NotChainShaped {
                    state: cur,
                    reason: "fan-out above one",
                });
            }
            match succ.first() {
                None => match element.report {
                    Some(code) => break (code.0, element.report_eod_only),
                    None => {
                        return Err(FuzzyError::NotChainShaped {
                            state: cur,
                            reason: "tail without a report",
                        })
                    }
                },
                Some(edge) => {
                    if element.report.is_some() {
                        return Err(FuzzyError::NotChainShaped {
                            state: cur,
                            reason: "mid-chain report",
                        });
                    }
                    cur = edge.to;
                }
            }
        };
        chains.push(Chain {
            classes,
            code,
            start,
            eod_only,
        });
    }
    if let Some(i) = visited.iter().position(|v| !v) {
        return Err(FuzzyError::NotChainShaped {
            state: StateId::new(i),
            reason: "unreachable from any start head",
        });
    }
    Ok(chains)
}

/// Lifts a chain-shaped automaton (a compiled literal database) to edit
/// distance `edits`: each chain becomes a `(edits + 1)`-layer mesh with
/// its original report code, start anchoring, and end-of-data flag.
///
/// `edits == 0` returns a pruned copy unchanged in behaviour. Fails with
/// [`FuzzyError::NotChainShaped`] on counters, fan-out, cycles, reset
/// edges, or mid-chain reports, and with the usual pattern errors when a
/// chain is too short for the budget.
pub fn fuzzify(
    a: &Automaton,
    edits: usize,
    profile: EditProfile,
) -> Result<(Automaton, FuzzyStats), FuzzyError> {
    let chains = extract_chains(a)?;
    if chains.is_empty() {
        return Err(FuzzyError::EmptyPattern);
    }
    let mut out = Automaton::new();
    let mut pattern_len = 0;
    let mut est_active_width = 0;
    for chain in &chains {
        check_pattern(&chain.classes, edits, profile)?;
        mesh_into(
            &mut out,
            &chain.classes,
            edits,
            profile,
            chain.code,
            chain.start,
            chain.eod_only,
        );
        pattern_len = pattern_len.max(chain.classes.len());
        est_active_width += (edits + 1) * chain.classes.len();
    }
    let out = azoo_passes::remove_dead(&out);
    let stats = FuzzyStats {
        states: out.state_count(),
        edges: out.edge_count(),
        layers: edits + 1,
        pattern_len,
        est_active_width,
    };
    Ok((out, stats))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use azoo_engines::{CollectSink, Engine, NfaEngine};
    use rand::{RngExt, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    const INF: usize = usize::MAX / 2;

    /// Profile-gated Sellers DP: offsets where some stream suffix is
    /// within `d` profile-edits of the pattern.
    fn naive_fuzzy(pattern: &[u8], d: usize, profile: EditProfile, input: &[u8]) -> Vec<u64> {
        let l = pattern.len();
        let mut prev: Vec<usize> = if profile.deletions {
            (0..=l).collect()
        } else {
            let mut v = vec![INF; l + 1];
            v[0] = 0;
            v
        };
        let mut out = Vec::new();
        for (o, &c) in input.iter().enumerate() {
            let mut cur = vec![INF; l + 1];
            cur[0] = 0;
            for j in 1..=l {
                let step = if c == pattern[j - 1] {
                    prev[j - 1]
                } else if profile.substitutions {
                    prev[j - 1].saturating_add(1)
                } else {
                    INF
                };
                let ins = if profile.insertions {
                    prev[j].saturating_add(1)
                } else {
                    INF
                };
                let del = if profile.deletions {
                    cur[j - 1].saturating_add(1)
                } else {
                    INF
                };
                cur[j] = step.min(ins).min(del);
            }
            if cur[l] <= d {
                out.push(o as u64);
            }
            prev = cur;
        }
        out
    }

    fn scan_offsets(a: &Automaton, input: &[u8]) -> Vec<u64> {
        let mut engine = NfaEngine::new(a).unwrap();
        let mut sink = CollectSink::new();
        engine.scan(input, &mut sink);
        let mut got: Vec<u64> = sink.reports().iter().map(|r| r.offset).collect();
        got.sort_unstable();
        got.dedup();
        got
    }

    const PROFILES: [EditProfile; 7] = [
        EditProfile::LEVENSHTEIN,
        EditProfile::HAMMING,
        EditProfile {
            substitutions: true,
            insertions: true,
            deletions: false,
        },
        EditProfile {
            substitutions: true,
            insertions: false,
            deletions: true,
        },
        EditProfile {
            substitutions: false,
            insertions: true,
            deletions: true,
        },
        EditProfile {
            substitutions: false,
            insertions: true,
            deletions: false,
        },
        EditProfile {
            substitutions: false,
            insertions: false,
            deletions: true,
        },
    ];

    #[test]
    fn every_profile_agrees_with_gated_sellers_dp() {
        let mut rng = ChaCha8Rng::seed_from_u64(0xF022);
        for profile in PROFILES {
            for d in 0..=3usize {
                for _ in 0..8 {
                    let l = rng.random_range(d + 1..=d + 7);
                    let pattern: Vec<u8> = (0..l)
                        .map(|_| b"abc"[rng.random_range(0..3usize)])
                        .collect();
                    let input: Vec<u8> = (0..rng.random_range(0..80usize))
                        .map(|_| b"abc"[rng.random_range(0..3usize)])
                        .collect();
                    let (a, _) = fuzzy_from_bytes(&pattern, d, profile, 0).unwrap();
                    assert_eq!(a.validate_all(), Vec::new());
                    assert_eq!(
                        scan_offsets(&a, &input),
                        naive_fuzzy(&pattern, d, profile, &input),
                        "profile {profile:?} d {d} pattern {pattern:?} input {input:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn levenshtein_profile_detects_each_edit_kind() {
        let (a, stats) = fuzzy_from_bytes(b"ACGTACGT", 1, EditProfile::LEVENSHTEIN, 0).unwrap();
        assert_eq!(stats.layers, 2);
        assert_eq!(stats.est_active_width, 2 * 8);
        for (mutated, kind) in [
            (&b"ACGTACGT"[..], "exact"),
            (&b"ACGAACGT"[..], "substitution"),
            (&b"ACGACGT"[..], "deletion"),
            (&b"ACGTTACGT"[..], "insertion"),
        ] {
            let mut padded = b"CCCC".to_vec();
            padded.extend_from_slice(mutated);
            padded.extend_from_slice(b"CCCC");
            assert!(!scan_offsets(&a, &padded).is_empty(), "{kind} not detected");
        }
    }

    #[test]
    fn hamming_profile_rejects_shifted_occurrences() {
        // Substitution-only: a deleted middle symbol shifts the tail and
        // must not be tolerated, while one substitution is.
        let (a, _) = fuzzy_from_bytes(b"ABCDEFGH", 1, EditProfile::HAMMING, 0).unwrap();
        assert!(scan_offsets(&a, b"TTTABCDFGHTTT").is_empty());
        assert_eq!(scan_offsets(&a, b"TTTABCDXFGHTTT"), vec![10]);
    }

    #[test]
    fn class_patterns_fold_case_and_complement_correctly() {
        // Case-insensitive "ab" at Hamming distance 1: the substitution
        // track for position 0 must exclude both 'a' and 'A'.
        let classes = [
            SymbolClass::from_bytes(b"aA"),
            SymbolClass::from_bytes(b"bB"),
        ];
        let (a, _) = fuzzy_automaton(&classes, 1, EditProfile::HAMMING, 9).unwrap();
        assert_eq!(a.validate_all(), Vec::new());
        assert_eq!(scan_offsets(&a, b"xAB Ab aX xb"), vec![2, 5, 8, 11]);
    }

    #[test]
    fn full_class_positions_skip_the_empty_substitution_track() {
        // A Σ position cannot mismatch; its substitution states vanish
        // rather than surviving as unmatchable empty-class STEs.
        let classes = [
            SymbolClass::from_byte(b'a'),
            SymbolClass::FULL,
            SymbolClass::from_byte(b'c'),
        ];
        let (a, _) = fuzzy_automaton(&classes, 1, EditProfile::HAMMING, 0).unwrap();
        assert_eq!(a.validate_all(), Vec::new());
        assert_eq!(scan_offsets(&a, b"azc abc zzc"), vec![2, 6, 10]);
    }

    #[test]
    fn validates_clean_up_to_64_bytes_at_k_3() {
        // Acceptance: construction validates clean for patterns up to 64
        // bytes at k <= 3, across every profile.
        let mut rng = ChaCha8Rng::seed_from_u64(0x64);
        let pattern: Vec<u8> = (0..64)
            .map(|_| b"ACGT"[rng.random_range(0..4usize)])
            .collect();
        for profile in PROFILES {
            for d in 0..=3usize {
                let (a, stats) = fuzzy_from_bytes(&pattern, d, profile, 7).unwrap();
                assert_eq!(a.validate_all(), Vec::new(), "profile {profile:?} d {d}");
                assert_eq!(stats.layers, d + 1);
                assert_eq!(stats.pattern_len, 64);
            }
        }
    }

    #[test]
    fn construction_errors_are_typed() {
        assert_eq!(
            fuzzy_from_bytes(b"", 0, EditProfile::LEVENSHTEIN, 0).err(),
            Some(FuzzyError::EmptyPattern)
        );
        assert_eq!(
            fuzzy_from_bytes(b"ab", 2, EditProfile::LEVENSHTEIN, 0).err(),
            Some(FuzzyError::EditsExceedPattern {
                edits: 2,
                pattern_len: 2
            })
        );
        let none = EditProfile {
            substitutions: false,
            insertions: false,
            deletions: false,
        };
        assert_eq!(
            fuzzy_from_bytes(b"abc", 1, none, 0).err(),
            Some(FuzzyError::NoEditKinds { edits: 1 })
        );
        // k = 0 with no kinds is an exact matcher, not an error.
        let (a, _) = fuzzy_from_bytes(b"abc", 0, none, 0).unwrap();
        assert_eq!(scan_offsets(&a, b"xabcx"), vec![3]);
        assert_eq!(
            fuzzy_automaton(&[SymbolClass::EMPTY], 0, EditProfile::HAMMING, 0).err(),
            Some(FuzzyError::UnmatchablePosition { index: 0 })
        );
        let long = vec![SymbolClass::FULL; MAX_PATTERN_LEN + 1];
        assert_eq!(
            fuzzy_automaton(&long, 0, EditProfile::HAMMING, 0).err(),
            Some(FuzzyError::PatternTooLong {
                len: MAX_PATTERN_LEN + 1,
                max: MAX_PATTERN_LEN
            })
        );
    }

    #[test]
    fn fuzzify_lifts_chains_and_preserves_anchoring() {
        let mut base = Automaton::new();
        let (_, tail) = base.add_chain(
            &[
                SymbolClass::from_byte(b'c'),
                SymbolClass::from_byte(b'a'),
                SymbolClass::from_byte(b't'),
            ],
            StartKind::StartOfData,
        );
        base.set_report(tail, 1);
        let (_, tail2) = base.add_chain(
            &[
                SymbolClass::from_byte(b'd'),
                SymbolClass::from_byte(b'o'),
                SymbolClass::from_byte(b'g'),
            ],
            StartKind::AllInput,
        );
        base.set_report(tail2, 2);
        let (fuzzy, stats) = fuzzify(&base, 1, EditProfile::HAMMING).unwrap();
        assert_eq!(fuzzy.validate_all(), Vec::new());
        assert_eq!(stats.layers, 2);
        assert_eq!(stats.est_active_width, 2 * 3 + 2 * 3);
        // Anchored chain: one substitution tolerated, but only at data
        // start; the unanchored chain matches anywhere.
        let offsets = |input: &[u8]| scan_offsets(&fuzzy, input);
        assert_eq!(offsets(b"cut dug"), vec![2, 6]);
        assert_eq!(offsets(b"x cut dug"), vec![8]);
    }

    #[test]
    fn fuzzify_preserves_eod_only_reports() {
        let mut base = Automaton::new();
        let (_, tail) = base.add_chain(
            &[SymbolClass::from_byte(b'h'), SymbolClass::from_byte(b'i')],
            StartKind::AllInput,
        );
        base.set_report(tail, 0);
        base.set_report_eod_only(tail, true);
        let (fuzzy, _) = fuzzify(&base, 1, EditProfile::HAMMING).unwrap();
        assert_eq!(scan_offsets(&fuzzy, b"hi there hx"), vec![10]);
    }

    #[test]
    fn fuzzify_at_zero_edits_is_behaviour_preserving() {
        let mut base = Automaton::new();
        let (_, tail) = base.add_chain(
            &[
                SymbolClass::from_byte(b'a'),
                SymbolClass::from_byte(b'b'),
                SymbolClass::from_byte(b'c'),
            ],
            StartKind::AllInput,
        );
        base.set_report(tail, 5);
        let (fuzzy, stats) = fuzzify(&base, 0, EditProfile::LEVENSHTEIN).unwrap();
        assert_eq!(stats.layers, 1);
        assert_eq!(
            scan_offsets(&fuzzy, b"zabcz"),
            scan_offsets(&base, b"zabcz")
        );
    }

    #[test]
    fn fuzzify_rejects_non_chain_shapes() {
        let reason = |a: &Automaton| match fuzzify(a, 1, EditProfile::HAMMING) {
            Err(FuzzyError::NotChainShaped { reason, .. }) => reason,
            other => panic!("expected NotChainShaped, got {other:?}"),
        };

        let mut counters = Automaton::new();
        let s = counters.add_ste(SymbolClass::FULL, StartKind::AllInput);
        let c = counters.add_counter(3, azoo_core::CounterMode::Latch);
        counters.add_edge(s, c);
        counters.set_report(c, 0);
        assert_eq!(reason(&counters), "counter element");

        let mut fanout = Automaton::new();
        let h = fanout.add_ste(SymbolClass::from_byte(b'a'), StartKind::AllInput);
        let x = fanout.add_ste(SymbolClass::from_byte(b'b'), StartKind::None);
        let y = fanout.add_ste(SymbolClass::from_byte(b'c'), StartKind::None);
        fanout.add_edge(h, x);
        fanout.add_edge(h, y);
        fanout.set_report(x, 0);
        fanout.set_report(y, 1);
        assert_eq!(reason(&fanout), "fan-out above one");

        let mut cyclic = Automaton::new();
        let h = cyclic.add_ste(SymbolClass::from_byte(b'a'), StartKind::AllInput);
        let t = cyclic.add_ste(SymbolClass::from_byte(b'b'), StartKind::None);
        cyclic.add_edge(h, t);
        cyclic.add_edge(t, h);
        assert_eq!(reason(&cyclic), "cycle or state shared between chains");

        let mut mid = Automaton::new();
        let h = mid.add_ste(SymbolClass::from_byte(b'a'), StartKind::AllInput);
        let t = mid.add_ste(SymbolClass::from_byte(b'b'), StartKind::None);
        mid.add_edge(h, t);
        mid.set_report(h, 0);
        mid.set_report(t, 1);
        assert_eq!(reason(&mid), "mid-chain report");

        assert_eq!(
            fuzzify(&Automaton::new(), 1, EditProfile::HAMMING).err(),
            Some(FuzzyError::EmptyPattern)
        );
    }

    #[test]
    fn stats_grow_linearly_in_layers() {
        let pattern = b"ACGTACGTACGTACGT";
        let (a1, s1) = fuzzy_from_bytes(pattern, 1, EditProfile::LEVENSHTEIN, 0).unwrap();
        let (a2, s2) = fuzzy_from_bytes(pattern, 2, EditProfile::LEVENSHTEIN, 0).unwrap();
        assert!(a2.state_count() > a1.state_count());
        assert_eq!(s2.layers, 3);
        assert!(s2.est_active_width > s1.est_active_width);
        assert_eq!(s1.states, a1.state_count());
        assert_eq!(s1.edges, a1.edge_count());
    }
}

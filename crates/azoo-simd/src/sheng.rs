//! A Sheng-style shuffle-DFA stepper for machines with at most 16 states.
//!
//! When a determinized machine fits in 16 states, the entire transition
//! function for one symbol class fits in a single 16-byte vector:
//! `tables[class][s]` is the successor of state `s`. Splatting the current
//! state across all lanes and executing `pshufb(tables[class], splat(s))`
//! both steps the DFA *and* re-splats the new state — one instruction per
//! input byte, no memory-indexed load in the dependency chain. This is the
//! "Sheng" trick from Hyperscan.
//!
//! # Reporting
//!
//! The kernel is deliberately dumb about reports: callers number their
//! states so every *reporting* state has an id `>= threshold`, and the
//! kernel pushes `(index, state)` whenever the post-step state clears the
//! threshold. Mapping states back to report codes (and end-of-data-only
//! handling) stays in the engine layer.
//!
//! # Dispatch
//!
//! The SSSE3 kernel serves both the [`SimdLevel::Ssse3`] and
//! [`SimdLevel::Avx2`] tiers: the state is a single lane, so wider vectors
//! buy nothing — a 256-bit shuffle cannot shorten the serial
//! state-to-state dependency chain. The scalar twin is a plain
//! table-walk, byte-identical by construction.

use crate::SimdLevel;

/// Maximum number of DFA states the kernel can represent.
pub const SHENG_MAX_STATES: usize = 16;

/// A compiled shuffle-DFA transition table.
#[derive(Debug, Clone)]
pub struct ShengKernel {
    class_of: [u8; 256],
    tables: Vec<[u8; 16]>,
    n_states: u8,
}

impl ShengKernel {
    /// Builds a kernel, or `None` if the shape is invalid: zero or more
    /// than 16 states, no classes, a `class_of` entry out of range, or a
    /// transition target out of range. Lanes `>= n_states` of each table
    /// are ignored by valid scans but must still be `< n_states` so an
    /// out-of-range state can never be produced.
    pub fn new(class_of: [u8; 256], tables: Vec<[u8; 16]>, n_states: u8) -> Option<ShengKernel> {
        if n_states == 0 || n_states as usize > SHENG_MAX_STATES || tables.is_empty() {
            return None;
        }
        if class_of.iter().any(|&c| c as usize >= tables.len()) {
            return None;
        }
        if tables.iter().any(|t| t.iter().any(|&s| s >= n_states)) {
            return None;
        }
        Some(ShengKernel {
            class_of,
            tables,
            n_states,
        })
    }

    /// Number of DFA states.
    pub fn state_count(&self) -> u8 {
        self.n_states
    }

    /// Number of symbol classes.
    pub fn class_count(&self) -> usize {
        self.tables.len()
    }

    /// Steps one byte from `state`.
    pub fn step(&self, state: u8, byte: u8) -> u8 {
        debug_assert!(state < self.n_states);
        self.tables[self.class_of[byte as usize] as usize][state as usize]
    }

    /// Scans `hay` from `state` using the process-wide dispatch level.
    ///
    /// For every position `i` whose *post-step* state `s` satisfies
    /// `s >= threshold`, pushes `(i, s)` onto `hits`. Returns the state
    /// after the last byte.
    pub fn scan(&self, state: u8, hay: &[u8], threshold: u8, hits: &mut Vec<(usize, u8)>) -> u8 {
        self.scan_with(crate::level(), state, hay, threshold, hits)
    }

    /// As [`scan`](ShengKernel::scan) with an explicit level (clamped to
    /// host support); differential tests pin both sides through this.
    pub fn scan_with(
        &self,
        level: SimdLevel,
        state: u8,
        hay: &[u8],
        threshold: u8,
        hits: &mut Vec<(usize, u8)>,
    ) -> u8 {
        assert!(state < self.n_states, "start state out of range");
        let level = crate::supported(level);
        #[cfg(target_arch = "x86_64")]
        if level > SimdLevel::Scalar {
            return crate::x86::sheng_scan_ssse3(
                &self.tables,
                &self.class_of,
                state,
                hay,
                threshold,
                hits,
            );
        }
        let _ = level;
        let mut cur = state;
        for (i, &b) in hay.iter().enumerate() {
            cur = self.tables[self.class_of[b as usize] as usize][cur as usize];
            if cur >= threshold {
                hits.push((i, cur));
            }
        }
        cur
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::cast_possible_truncation)]
mod tests {
    use super::*;

    const LEVELS: [SimdLevel; 3] = [SimdLevel::Scalar, SimdLevel::Ssse3, SimdLevel::Avx2];

    /// DFA matching the literal "abc": states 0..=2 are chain progress,
    /// state 3 (the only reporting state) means "just saw abc".
    fn abc_kernel() -> ShengKernel {
        let mut class_of = [0u8; 256]; // class 0: other
        class_of[b'a' as usize] = 1;
        class_of[b'b' as usize] = 2;
        class_of[b'c' as usize] = 3;
        let mut tables = vec![[0u8; 16]; 4];
        // On 'a' every state goes to 1; on 'b' only state 1 advances to 2;
        // on 'c' only state 2 advances to 3; everything else resets.
        tables[1] = [1; 16];
        tables[2][1] = 2;
        tables[3][2] = 3;
        ShengKernel::new(class_of, tables, 4).unwrap()
    }

    #[test]
    fn rejects_invalid_shapes() {
        assert!(ShengKernel::new([0; 256], vec![[0; 16]], 0).is_none());
        assert!(ShengKernel::new([0; 256], vec![[0; 16]], 17).is_none());
        assert!(ShengKernel::new([0; 256], vec![], 4).is_none());
        assert!(ShengKernel::new([1; 256], vec![[0; 16]], 4).is_none()); // class oob
        assert!(ShengKernel::new([0; 256], vec![[9; 16]], 4).is_none()); // target oob
        assert!(ShengKernel::new([0; 256], vec![[0; 16]], 16).is_some());
    }

    #[test]
    fn finds_abc_at_all_levels() {
        let k = abc_kernel();
        let hay = b"xxabcxabababcabc";
        for level in LEVELS {
            let mut hits = Vec::new();
            let end = k.scan_with(level, 0, hay, 3, &mut hits);
            assert_eq!(hits, vec![(4, 3), (12, 3), (15, 3)], "level {level:?}");
            assert_eq!(end, 3);
        }
    }

    #[test]
    fn random_dfa_differential() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0x5eed);
        for trial in 0..50 {
            let n_states = rng.random_range(1..=16u8);
            let n_classes = rng.random_range(1..=8usize);
            let mut class_of = [0u8; 256];
            for c in &mut class_of {
                *c = rng.random_range(0..n_classes) as u8;
            }
            let tables: Vec<[u8; 16]> = (0..n_classes)
                .map(|_| std::array::from_fn(|_| rng.random_range(0..n_states)))
                .collect();
            let k = ShengKernel::new(class_of, tables, n_states).unwrap();
            let len = rng.random_range(0..300);
            let hay: Vec<u8> = (0..len).map(|_| rng.random()).collect();
            let threshold = rng.random_range(0..=n_states);
            let start = rng.random_range(0..n_states);

            let mut want = Vec::new();
            let want_end = k.scan_with(SimdLevel::Scalar, start, &hay, threshold, &mut want);
            for level in [SimdLevel::Ssse3, SimdLevel::Avx2] {
                let mut got = Vec::new();
                let end = k.scan_with(level, start, &hay, threshold, &mut got);
                assert_eq!(got, want, "trial {trial} level {level:?}");
                assert_eq!(end, want_end, "trial {trial}");
            }
        }
    }

    #[test]
    fn state_carries_across_chunked_scans() {
        let k = abc_kernel();
        let hay = b"xxabcxabababcabc";
        for level in LEVELS {
            for chunk in [1usize, 3, 7] {
                let mut hits = Vec::new();
                let mut s = 0u8;
                let mut base = 0usize;
                for part in hay.chunks(chunk) {
                    let mut local = Vec::new();
                    s = k.scan_with(level, s, part, 3, &mut local);
                    hits.extend(local.into_iter().map(|(i, st)| (base + i, st)));
                    base += part.len();
                }
                assert_eq!(hits, vec![(4, 3), (12, 3), (15, 3)], "chunk {chunk}");
            }
        }
    }
}

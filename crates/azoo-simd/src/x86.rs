//! The audited x86-64 intrinsic kernels.
//!
//! This is the only module in the workspace permitted to use `unsafe`, and
//! the only one permitted to touch `std::arch` (CI greps for both). The
//! audit surface is kept deliberately small:
//!
//! * every `unsafe` block is either an unaligned vector load from a slice
//!   range the surrounding safe code already bounds-checked, or a call into
//!   a `#[target_feature]` function;
//! * every public function asserts the CPU feature it needs before entering
//!   the intrinsic path, so the wrappers are sound to call from safe code
//!   regardless of what the dispatcher decided;
//! * no raw-pointer arithmetic beyond `as_ptr().add(i)` with `i + width`
//!   asserted in bounds, no transmutes, no aliasing games.
//!
//! Each kernel's semantics are defined by its scalar twin in
//! [`crate::scalar`] / the scalar paths of the callers; the differential
//! tests assert byte-identical behaviour on both sides.
#![allow(unsafe_code)]
// Intrinsic idiom, not data-loss hazards: `u8 as i8` reinterpretation for
// `set1`/`shuffle` lanes, sign-agnostic `movemask`/`cvtsi` extractions
// masked to lane width, and `loadu`/`storeu` pointer casts that carry no
// alignment requirement.
#![allow(
    clippy::cast_possible_wrap,
    clippy::cast_sign_loss,
    clippy::cast_possible_truncation,
    clippy::cast_ptr_alignment
)]

use std::arch::is_x86_feature_detected;
use std::arch::x86_64::{
    __m128i, __m256i, _mm256_alignr_epi8, _mm256_and_si256, _mm256_cmpeq_epi8, _mm256_loadu_si256,
    _mm256_movemask_epi8, _mm256_permute2x128_si256, _mm256_set1_epi8, _mm256_set_m128i,
    _mm256_setzero_si256, _mm256_shuffle_epi8, _mm256_srli_epi16, _mm256_storeu_si256,
    _mm_alignr_epi8, _mm_and_si128, _mm_cmpeq_epi8, _mm_cvtsi128_si32, _mm_loadu_si128,
    _mm_movemask_epi8, _mm_or_si128, _mm_set1_epi8, _mm_setzero_si128, _mm_shuffle_epi8,
    _mm_srli_epi16, _mm_storeu_si128, _mm_xor_si128,
};

/// A 16-byte unaligned load from `hay[at..at + 16]`.
///
/// # Panics
///
/// Panics (in debug) if the range is out of bounds; callers pass ranges
/// they have already sized.
#[inline]
fn load16(hay: &[u8], at: usize) -> __m128i {
    debug_assert!(at + 16 <= hay.len());
    // SAFETY: `at + 16 <= hay.len()` is checked above and guaranteed by all
    // callers (they iterate full 16-byte blocks only); `loadu` has no
    // alignment requirement.
    unsafe { _mm_loadu_si128(hay.as_ptr().add(at).cast::<__m128i>()) }
}

/// A 32-byte unaligned load from `hay[at..at + 32]`.
#[inline]
fn load32(hay: &[u8], at: usize) -> __m256i {
    debug_assert!(at + 32 <= hay.len());
    // SAFETY: as in `load16`, with a 32-byte width.
    unsafe { _mm256_loadu_si256(hay.as_ptr().add(at).cast::<__m256i>()) }
}

#[inline]
fn m128_from(bytes: &[u8; 16]) -> __m128i {
    // SAFETY: the source is exactly 16 readable bytes; `loadu` has no
    // alignment requirement.
    unsafe { _mm_loadu_si128(bytes.as_ptr().cast::<__m128i>()) }
}

#[inline]
#[target_feature(enable = "avx")]
fn m256_broadcast(bytes: &[u8; 16]) -> __m256i {
    let v = m128_from(bytes);
    _mm256_set_m128i(v, v)
}

// ---------------------------------------------------------------------------
// memchr1/2/3
// ---------------------------------------------------------------------------

#[target_feature(enable = "sse2")]
unsafe fn memchr1_sse2(hay: &[u8], n0: u8) -> Option<usize> {
    let v0 = _mm_set1_epi8(n0 as i8);
    let mut at = 0;
    while at + 16 <= hay.len() {
        let v = load16(hay, at);
        let m = _mm_movemask_epi8(_mm_cmpeq_epi8(v, v0)) as u32;
        if m != 0 {
            return Some(at + m.trailing_zeros() as usize);
        }
        at += 16;
    }
    hay[at..].iter().position(|&b| b == n0).map(|i| at + i)
}

#[target_feature(enable = "sse2")]
unsafe fn memchr2_sse2(hay: &[u8], n0: u8, n1: u8) -> Option<usize> {
    let v0 = _mm_set1_epi8(n0 as i8);
    let v1 = _mm_set1_epi8(n1 as i8);
    let mut at = 0;
    while at + 16 <= hay.len() {
        let v = load16(hay, at);
        let hit = _mm_or_si128(_mm_cmpeq_epi8(v, v0), _mm_cmpeq_epi8(v, v1));
        let m = _mm_movemask_epi8(hit) as u32;
        if m != 0 {
            return Some(at + m.trailing_zeros() as usize);
        }
        at += 16;
    }
    hay[at..]
        .iter()
        .position(|&b| b == n0 || b == n1)
        .map(|i| at + i)
}

#[target_feature(enable = "sse2")]
unsafe fn memchr3_sse2(hay: &[u8], n0: u8, n1: u8, n2: u8) -> Option<usize> {
    let v0 = _mm_set1_epi8(n0 as i8);
    let v1 = _mm_set1_epi8(n1 as i8);
    let v2 = _mm_set1_epi8(n2 as i8);
    let mut at = 0;
    while at + 16 <= hay.len() {
        let v = load16(hay, at);
        let hit = _mm_or_si128(
            _mm_or_si128(_mm_cmpeq_epi8(v, v0), _mm_cmpeq_epi8(v, v1)),
            _mm_cmpeq_epi8(v, v2),
        );
        let m = _mm_movemask_epi8(hit) as u32;
        if m != 0 {
            return Some(at + m.trailing_zeros() as usize);
        }
        at += 16;
    }
    hay[at..]
        .iter()
        .position(|&b| b == n0 || b == n1 || b == n2)
        .map(|i| at + i)
}

/// Vector `memchr` for up to three needles. `needles` beyond the first
/// three are ignored (callers never pass more).
///
/// # Panics
///
/// Panics if the host lacks SSE2 (x86-64 baselines it) or `needles` is
/// empty or longer than three.
pub fn memchr_up_to3(needles: &[u8], hay: &[u8]) -> Option<usize> {
    assert!(is_x86_feature_detected!("sse2"), "x86-64 baselines sse2");
    // SAFETY: sse2 support was just asserted.
    unsafe {
        match *needles {
            [a] => memchr1_sse2(hay, a),
            [a, b] => memchr2_sse2(hay, a, b),
            [a, b, c] => memchr3_sse2(hay, a, b, c),
            _ => panic!("memchr_up_to3 takes 1..=3 needles"),
        }
    }
}

// ---------------------------------------------------------------------------
// Truffle byte-set search
// ---------------------------------------------------------------------------

/// `BITS[h] = 1 << (h & 7)`: the probe bit for high nibble `h`.
const BITS: [u8; 16] = [1, 2, 4, 8, 16, 32, 64, 128, 1, 2, 4, 8, 16, 32, 64, 128];

#[target_feature(enable = "ssse3")]
unsafe fn truffle_ssse3(lo_half: &[u8; 16], hi_half: &[u8; 16], hay: &[u8]) -> Option<usize> {
    let a = m128_from(lo_half);
    let b = m128_from(hi_half);
    let bits = m128_from(&BITS);
    let top = _mm_set1_epi8(0x80u8 as i8);
    let nib = _mm_set1_epi8(0x0f);
    let mut at = 0;
    while at + 16 <= hay.len() {
        let v = load16(hay, at);
        // Bytes < 0x80 index `a` by their low nibble (pshufb zeroes lanes
        // whose index has the top bit set); bytes >= 0x80 index `b` after
        // flipping the top bit. Each lookup yields the set-membership
        // column for the byte's low nibble within its half of the space.
        let cols = _mm_or_si128(
            _mm_shuffle_epi8(a, v),
            _mm_shuffle_epi8(b, _mm_xor_si128(v, top)),
        );
        let hi = _mm_and_si128(_mm_srli_epi16::<4>(v), nib);
        let probe = _mm_shuffle_epi8(bits, hi);
        let member = _mm_and_si128(cols, probe);
        // Non-members compare equal to zero; invert the mask.
        let miss = _mm_cmpeq_epi8(member, _mm_setzero_si128());
        let m = !(_mm_movemask_epi8(miss) as u32) & 0xffff;
        if m != 0 {
            return Some(at + m.trailing_zeros() as usize);
        }
        at += 16;
    }
    hay[at..]
        .iter()
        .position(|&c| {
            let col = if c < 0x80 {
                lo_half[(c & 0x0f) as usize]
            } else {
                hi_half[(c & 0x0f) as usize]
            };
            col & (1 << ((c >> 4) & 7)) != 0
        })
        .map(|i| at + i)
}

/// Truffle search: first index of a byte whose set-membership bit is set.
///
/// `lo_half[l]` holds bit `h` for byte `(h << 4) | l` with `h < 8`;
/// `hi_half` covers `h >= 8`.
///
/// # Panics
///
/// Panics if the host lacks SSSE3; gate on [`crate::supported`].
pub fn truffle(lo_half: &[u8; 16], hi_half: &[u8; 16], hay: &[u8]) -> Option<usize> {
    assert!(is_x86_feature_detected!("ssse3"), "truffle requires ssse3");
    // SAFETY: ssse3 support was just asserted.
    unsafe { truffle_ssse3(lo_half, hi_half, hay) }
}

// ---------------------------------------------------------------------------
// Teddy candidate scan
// ---------------------------------------------------------------------------

/// Per-position nibble masks for up to three pattern bytes; see
/// [`crate::teddy`] for construction.
#[derive(Debug, Clone)]
pub struct TeddyMasks {
    /// `lo[j][n]` = bucket bits whose patterns have low nibble `n` at
    /// position `j`.
    pub lo: [[u8; 16]; 3],
    /// High-nibble companion of `lo`.
    pub hi: [[u8; 16]; 3],
    /// Number of mask positions in use (2 or 3).
    pub mask_len: usize,
}

#[target_feature(enable = "ssse3")]
unsafe fn teddy_ssse3(masks: &TeddyMasks, hay: &[u8], out: &mut Vec<(usize, u8)>) -> usize {
    let nib = _mm_set1_epi8(0x0f);
    let lo: Vec<__m128i> = masks.lo[..masks.mask_len].iter().map(m128_from).collect();
    let hi: Vec<__m128i> = masks.hi[..masks.mask_len].iter().map(m128_from).collect();
    let ml = masks.mask_len;
    // `prev[j]`: position-j byte-class vector of the previous block. Zero
    // means "no match before the start", which correctly suppresses
    // candidates whose start would be negative.
    let mut prev = [_mm_setzero_si128(); 3];
    let mut at = 0;
    while at + 16 <= hay.len() {
        let v = load16(hay, at);
        let vlo = _mm_and_si128(v, nib);
        let vhi = _mm_and_si128(_mm_srli_epi16::<4>(v), nib);
        // cand[p] = AND over j of C_j[p - (ml-1-j)]: the candidate is
        // anchored at the *last* mask byte, shifting earlier positions up
        // through the previous block's carry.
        let c_last = _mm_and_si128(
            _mm_shuffle_epi8(lo[ml - 1], vlo),
            _mm_shuffle_epi8(hi[ml - 1], vhi),
        );
        let mut cand = c_last;
        for j in 0..ml - 1 {
            let c_j = _mm_and_si128(_mm_shuffle_epi8(lo[j], vlo), _mm_shuffle_epi8(hi[j], vhi));
            let shift = ml - 1 - j;
            let shifted = match shift {
                1 => _mm_alignr_epi8::<15>(c_j, prev[j]),
                _ => _mm_alignr_epi8::<14>(c_j, prev[j]),
            };
            cand = _mm_and_si128(cand, shifted);
            prev[j] = c_j;
        }
        let nz = !(_mm_movemask_epi8(_mm_cmpeq_epi8(cand, _mm_setzero_si128())) as u32) & 0xffff;
        if nz != 0 {
            let mut buf = [0u8; 16];
            // SAFETY: `buf` is exactly 16 writable bytes.
            unsafe {
                _mm_storeu_si128(buf.as_mut_ptr().cast::<__m128i>(), cand);
            }
            let mut m = nz;
            while m != 0 {
                let lane = m.trailing_zeros() as usize;
                out.push((at + lane, buf[lane]));
                m &= m - 1;
            }
        }
        at += 16;
    }
    at
}

#[target_feature(enable = "avx2")]
unsafe fn teddy_avx2(masks: &TeddyMasks, hay: &[u8], out: &mut Vec<(usize, u8)>) -> usize {
    let nib = _mm256_set1_epi8(0x0f);
    let lo: Vec<__m256i> = masks.lo[..masks.mask_len]
        .iter()
        .map(|m| m256_broadcast(m))
        .collect();
    let hi: Vec<__m256i> = masks.hi[..masks.mask_len]
        .iter()
        .map(|m| m256_broadcast(m))
        .collect();
    let ml = masks.mask_len;
    let mut prev = [_mm256_setzero_si256(); 3];
    let mut at = 0;
    while at + 32 <= hay.len() {
        let v = load32(hay, at);
        let vlo = _mm256_and_si256(v, nib);
        let vhi = _mm256_and_si256(_mm256_srli_epi16::<4>(v), nib);
        let c_last = _mm256_and_si256(
            _mm256_shuffle_epi8(lo[ml - 1], vlo),
            _mm256_shuffle_epi8(hi[ml - 1], vhi),
        );
        let mut cand = c_last;
        for j in 0..ml - 1 {
            let c_j = _mm256_and_si256(
                _mm256_shuffle_epi8(lo[j], vlo),
                _mm256_shuffle_epi8(hi[j], vhi),
            );
            // `vpalignr` shifts within 128-bit lanes; splice the carry so
            // lane 1 shifts in lane 0's top bytes and lane 0 shifts in the
            // previous block's.
            let spliced = _mm256_permute2x128_si256::<0x21>(prev[j], c_j);
            let shift = ml - 1 - j;
            let shifted = match shift {
                1 => _mm256_alignr_epi8::<15>(c_j, spliced),
                _ => _mm256_alignr_epi8::<14>(c_j, spliced),
            };
            cand = _mm256_and_si256(cand, shifted);
            prev[j] = c_j;
        }
        let nz = !(_mm256_movemask_epi8(_mm256_cmpeq_epi8(cand, _mm256_setzero_si256())) as u32);
        if nz != 0 {
            let mut buf = [0u8; 32];
            // SAFETY: `buf` is exactly 32 writable bytes.
            unsafe {
                _mm256_storeu_si256(buf.as_mut_ptr().cast::<__m256i>(), cand);
            }
            let mut m = nz;
            while m != 0 {
                let lane = m.trailing_zeros() as usize;
                out.push((at + lane, buf[lane]));
                m &= m - 1;
            }
        }
        at += 32;
    }
    at
}

/// SSSE3 Teddy candidate scan over the full 16-byte blocks of `hay`.
///
/// Pushes `(position_of_last_mask_byte, bucket_bits)` for every candidate
/// and returns the number of bytes covered (a multiple of 16); the caller
/// finishes the tail with the scalar twin.
///
/// # Panics
///
/// Panics if the host lacks SSSE3; gate on [`crate::supported`].
pub fn teddy_candidates_ssse3(masks: &TeddyMasks, hay: &[u8], out: &mut Vec<(usize, u8)>) -> usize {
    assert!(is_x86_feature_detected!("ssse3"), "teddy requires ssse3");
    // SAFETY: ssse3 support was just asserted.
    unsafe { teddy_ssse3(masks, hay, out) }
}

/// AVX2 Teddy candidate scan; as [`teddy_candidates_ssse3`] with 32-byte
/// blocks.
///
/// # Panics
///
/// Panics if the host lacks AVX2; gate on [`crate::supported`].
pub fn teddy_candidates_avx2(masks: &TeddyMasks, hay: &[u8], out: &mut Vec<(usize, u8)>) -> usize {
    assert!(is_x86_feature_detected!("avx2"), "teddy avx2 requires avx2");
    // SAFETY: avx2 support was just asserted.
    unsafe { teddy_avx2(masks, hay, out) }
}

// ---------------------------------------------------------------------------
// Sheng DFA stepping
// ---------------------------------------------------------------------------

#[target_feature(enable = "ssse3")]
unsafe fn sheng_ssse3(
    tables: &[[u8; 16]],
    class_of: &[u8; 256],
    state: u8,
    hay: &[u8],
    threshold: u8,
    hits: &mut Vec<(usize, u8)>,
) -> u8 {
    // The state rides splatted across all 16 lanes: `pshufb(table, splat(s))`
    // yields `splat(table[s])`, so one shuffle both steps the DFA and
    // re-splats. The dependency chain is pure `pshufb` (1-cycle class);
    // the per-symbol table loads depend only on the input byte and
    // pipeline ahead of it.
    let mut s = _mm_set1_epi8(state as i8);
    let mut i = 0;
    let n = hay.len();
    while i + 4 <= n {
        let t0 = m128_from(&tables[class_of[hay[i] as usize] as usize]);
        let t1 = m128_from(&tables[class_of[hay[i + 1] as usize] as usize]);
        let t2 = m128_from(&tables[class_of[hay[i + 2] as usize] as usize]);
        let t3 = m128_from(&tables[class_of[hay[i + 3] as usize] as usize]);
        s = _mm_shuffle_epi8(t0, s);
        let s0 = (_mm_cvtsi128_si32(s) & 0xff) as u8;
        s = _mm_shuffle_epi8(t1, s);
        let s1 = (_mm_cvtsi128_si32(s) & 0xff) as u8;
        s = _mm_shuffle_epi8(t2, s);
        let s2 = (_mm_cvtsi128_si32(s) & 0xff) as u8;
        s = _mm_shuffle_epi8(t3, s);
        let s3 = (_mm_cvtsi128_si32(s) & 0xff) as u8;
        if s0 >= threshold || s1 >= threshold || s2 >= threshold || s3 >= threshold {
            if s0 >= threshold {
                hits.push((i, s0));
            }
            if s1 >= threshold {
                hits.push((i + 1, s1));
            }
            if s2 >= threshold {
                hits.push((i + 2, s2));
            }
            if s3 >= threshold {
                hits.push((i + 3, s3));
            }
        }
        i += 4;
    }
    let mut cur = (_mm_cvtsi128_si32(s) & 0xff) as u8;
    while i < n {
        cur = tables[class_of[hay[i] as usize] as usize][cur as usize];
        if cur >= threshold {
            hits.push((i, cur));
        }
        i += 1;
    }
    cur
}

/// SSSE3 Sheng scan: steps the ≤16-state DFA across `hay`, pushing
/// `(index, state)` for every position whose *post-step* state is at or
/// above `threshold`, and returns the final state.
///
/// # Panics
///
/// Panics if the host lacks SSSE3; gate on [`crate::supported`].
pub fn sheng_scan_ssse3(
    tables: &[[u8; 16]],
    class_of: &[u8; 256],
    state: u8,
    hay: &[u8],
    threshold: u8,
    hits: &mut Vec<(usize, u8)>,
) -> u8 {
    assert!(is_x86_feature_detected!("ssse3"), "sheng requires ssse3");
    // SAFETY: ssse3 support was just asserted.
    unsafe { sheng_ssse3(tables, class_of, state, hay, threshold, hits) }
}

//! Wake-byte search: find the first byte of a haystack that belongs to a
//! byte set.
//!
//! The NFA engine's quiescent-skip fast path repeatedly asks "where is the
//! next byte that can wake the empty active set?". [`ByteFinder`] answers
//! it: small sets use `memchr`-style scans (SSE2 compare loops with SWAR
//! twins), arbitrary sets use a Truffle-style two-`pshufb` classifier with
//! a table-scan twin.

use crate::{scalar, SimdLevel};

/// A Truffle-style byte-set classifier: 256 membership bits packed as two
/// 16-column nibble tables.
///
/// `lo_half[l]` holds bit `h` for byte `(h << 4) | l` when `h < 8`;
/// `hi_half[l]` holds bit `h - 8` for `h >= 8`. A byte is a member when
/// the probe bit `1 << (h & 7)` is set in its column.
#[derive(Debug, Clone)]
pub struct ByteSet {
    lo_half: [u8; 16],
    hi_half: [u8; 16],
    table: [bool; 256],
}

impl ByteSet {
    /// Builds the classifier for the given member bytes.
    pub fn new(members: impl IntoIterator<Item = u8>) -> ByteSet {
        let mut set = ByteSet {
            lo_half: [0; 16],
            hi_half: [0; 16],
            table: [false; 256],
        };
        for b in members {
            let (hi, lo) = (b >> 4, (b & 0x0f) as usize);
            if hi < 8 {
                set.lo_half[lo] |= 1 << hi;
            } else {
                set.hi_half[lo] |= 1 << (hi - 8);
            }
            set.table[b as usize] = true;
        }
        set
    }

    /// True when `b` is a member.
    pub fn contains(&self, b: u8) -> bool {
        self.table[b as usize]
    }
}

/// First-member-byte search with runtime dispatch.
///
/// Build once from the wake set, then call [`find`](ByteFinder::find) per
/// scan. The variant is chosen by set size; the implementation (vector or
/// scalar twin) by [`crate::level`].
#[derive(Debug, Clone)]
pub enum ByteFinder {
    /// The empty set: never matches.
    Never,
    /// The full set: matches at index 0 of any non-empty haystack.
    Always,
    /// One-byte set.
    One(u8),
    /// Two-byte set.
    Two(u8, u8),
    /// Three-byte set.
    Three(u8, u8, u8),
    /// Arbitrary set.
    Set(Box<ByteSet>),
}

impl ByteFinder {
    /// Builds a finder for the given member bytes (duplicates are fine).
    pub fn from_bytes(members: &[u8]) -> ByteFinder {
        let mut seen = [false; 256];
        let mut uniq = Vec::new();
        for &b in members {
            if !seen[b as usize] {
                seen[b as usize] = true;
                uniq.push(b);
            }
        }
        match *uniq.as_slice() {
            [] => ByteFinder::Never,
            [a] => ByteFinder::One(a),
            [a, b] => ByteFinder::Two(a, b),
            [a, b, c] => ByteFinder::Three(a, b, c),
            _ if uniq.len() == 256 => ByteFinder::Always,
            _ => ByteFinder::Set(Box::new(ByteSet::new(uniq))),
        }
    }

    /// Index of the first member byte in `hay`, using the process-wide
    /// dispatch level.
    pub fn find(&self, hay: &[u8]) -> Option<usize> {
        self.find_with(crate::level(), hay)
    }

    /// As [`find`](ByteFinder::find) with an explicit level (clamped to
    /// host support); differential tests pin both sides through this.
    pub fn find_with(&self, level: SimdLevel, hay: &[u8]) -> Option<usize> {
        let level = crate::supported(level);
        match self {
            ByteFinder::Never => None,
            ByteFinder::Always => {
                if hay.is_empty() {
                    None
                } else {
                    Some(0)
                }
            }
            #[cfg(target_arch = "x86_64")]
            ByteFinder::One(a) if level > SimdLevel::Scalar => {
                crate::x86::memchr_up_to3(&[*a], hay)
            }
            #[cfg(target_arch = "x86_64")]
            ByteFinder::Two(a, b) if level > SimdLevel::Scalar => {
                crate::x86::memchr_up_to3(&[*a, *b], hay)
            }
            #[cfg(target_arch = "x86_64")]
            ByteFinder::Three(a, b, c) if level > SimdLevel::Scalar => {
                crate::x86::memchr_up_to3(&[*a, *b, *c], hay)
            }
            #[cfg(target_arch = "x86_64")]
            ByteFinder::Set(s) if level > SimdLevel::Scalar => {
                crate::x86::truffle(&s.lo_half, &s.hi_half, hay)
            }
            ByteFinder::One(a) => scalar::memchr(*a, hay),
            ByteFinder::Two(a, b) => scalar::memchr2(*a, *b, hay),
            ByteFinder::Three(a, b, c) => scalar::memchr3(*a, *b, *c, hay),
            ByteFinder::Set(s) => scalar::find_in_table(&s.table, hay),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::cast_possible_truncation)]
mod tests {
    use super::*;

    const LEVELS: [SimdLevel; 3] = [SimdLevel::Scalar, SimdLevel::Ssse3, SimdLevel::Avx2];

    fn naive(members: &[u8], hay: &[u8]) -> Option<usize> {
        hay.iter().position(|b| members.contains(b))
    }

    #[test]
    fn all_variants_match_naive_at_all_levels() {
        let hay: Vec<u8> = (0u32..400)
            .map(|i| (i.wrapping_mul(37) % 256) as u8)
            .collect();
        let sets: [&[u8]; 6] = [
            &[],
            &[7],
            &[7, 200],
            &[7, 200, 0],
            &[1, 2, 3, 4, 5, 0x80, 0xff, 0x90],
            &[0, 0x7f, 0x80, 0x8f, 0xf0, 0xff],
        ];
        for set in sets {
            let f = ByteFinder::from_bytes(set);
            for start in 0..64 {
                let h = &hay[start..];
                let want = naive(set, h);
                for level in LEVELS {
                    assert_eq!(f.find_with(level, h), want, "set {set:?} start {start}");
                }
            }
        }
    }

    #[test]
    fn always_and_never() {
        let all: Vec<u8> = (0u16..256).map(|b| b as u8).collect();
        assert!(matches!(ByteFinder::from_bytes(&all), ByteFinder::Always));
        assert_eq!(ByteFinder::from_bytes(&all).find(b"x"), Some(0));
        assert_eq!(ByteFinder::from_bytes(&all).find(b""), None);
        assert_eq!(ByteFinder::from_bytes(&[]).find(b"xyz"), None);
    }

    #[test]
    fn set_membership_every_byte() {
        // A set crossing the 0x80 pshufb boundary, checked at every byte
        // value and position within a block.
        let members: Vec<u8> = (0u16..256)
            .filter(|b| b % 5 == 0)
            .map(|b| b as u8)
            .collect();
        let f = ByteFinder::from_bytes(&members);
        for b in 0u16..=255 {
            let mut hay = vec![1u8; 40]; // 1 is not a member (1 % 5 != 0)
            for at in [0, 7, 15, 16, 17, 31, 32, 39] {
                hay[at] = b as u8;
                let want = naive(&members, &hay);
                for level in LEVELS {
                    assert_eq!(f.find_with(level, &hay), want, "byte {b} at {at}");
                }
                hay[at] = 1;
            }
        }
    }
}

//! Portable scalar twins of the vector kernels.
//!
//! These are the reference implementations: safe on every target, selected
//! at runtime when the host lacks the required CPU features (or when
//! `AZOO_FORCE_SCALAR=1`), and asserted byte-identical to the intrinsic
//! kernels by the differential tests. The byte searches are SWAR (eight
//! bytes per step in a `u64`), the rest are plain loops.

const LO: u64 = 0x0101_0101_0101_0101;
const HI: u64 = 0x8080_8080_8080_8080;

#[inline]
fn splat(b: u8) -> u64 {
    LO * u64::from(b)
}

/// Sets `0x80` in every byte of `x` that is zero. Borrow propagation can
/// also set bits in bytes *above* the first zero byte, but never below
/// it, so the lowest set bit always marks the true first zero — which is
/// all a first-match search needs.
#[inline]
fn zero_bytes(x: u64) -> u64 {
    x.wrapping_sub(LO) & !x & HI
}

#[inline]
#[allow(clippy::cast_possible_truncation)]
fn first_index(mask: u64, off: usize) -> usize {
    // Words are loaded little-endian, so the lowest set bit is the
    // earliest byte regardless of host endianness.
    off + (mask.trailing_zeros() / 8) as usize
}

/// Index of the first occurrence of `n0` in `hay`.
pub fn memchr(n0: u8, hay: &[u8]) -> Option<usize> {
    let s0 = splat(n0);
    let mut chunks = hay.chunks_exact(8);
    let mut off = 0;
    for ch in &mut chunks {
        let w = u64::from_le_bytes(ch.try_into().expect("8-byte chunk"));
        let m = zero_bytes(w ^ s0);
        if m != 0 {
            return Some(first_index(m, off));
        }
        off += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b == n0)
        .map(|i| off + i)
}

/// Index of the first occurrence of `n0` or `n1` in `hay`.
pub fn memchr2(n0: u8, n1: u8, hay: &[u8]) -> Option<usize> {
    let (s0, s1) = (splat(n0), splat(n1));
    let mut chunks = hay.chunks_exact(8);
    let mut off = 0;
    for ch in &mut chunks {
        let w = u64::from_le_bytes(ch.try_into().expect("8-byte chunk"));
        let m = zero_bytes(w ^ s0) | zero_bytes(w ^ s1);
        if m != 0 {
            return Some(first_index(m, off));
        }
        off += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b == n0 || b == n1)
        .map(|i| off + i)
}

/// Index of the first occurrence of `n0`, `n1` or `n2` in `hay`.
pub fn memchr3(n0: u8, n1: u8, n2: u8, hay: &[u8]) -> Option<usize> {
    let (s0, s1, s2) = (splat(n0), splat(n1), splat(n2));
    let mut chunks = hay.chunks_exact(8);
    let mut off = 0;
    for ch in &mut chunks {
        let w = u64::from_le_bytes(ch.try_into().expect("8-byte chunk"));
        let m = zero_bytes(w ^ s0) | zero_bytes(w ^ s1) | zero_bytes(w ^ s2);
        if m != 0 {
            return Some(first_index(m, off));
        }
        off += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b == n0 || b == n1 || b == n2)
        .map(|i| off + i)
}

/// Index of the first byte of `hay` whose `table` entry is set.
pub fn find_in_table(table: &[bool; 256], hay: &[u8]) -> Option<usize> {
    hay.iter().position(|&b| table[b as usize])
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn naive(set: &[u8], hay: &[u8]) -> Option<usize> {
        hay.iter().position(|b| set.contains(b))
    }

    #[test]
    fn matches_naive_on_patterned_input() {
        // Exercise every alignment and in-word position, including bytes
        // adjacent to matches (the SWAR borrow-noise case).
        let mut hay = Vec::new();
        for i in 0..64u32 {
            hay.push((i % 7) as u8);
            hay.push(0);
            hay.push(1);
            hay.push((i % 3) as u8);
        }
        for start in 0..hay.len() {
            let h = &hay[start..];
            assert_eq!(memchr(5, h), naive(&[5], h), "start {start}");
            assert_eq!(memchr2(5, 2, h), naive(&[5, 2], h));
            assert_eq!(memchr3(5, 2, 6, h), naive(&[5, 2, 6], h));
        }
    }

    #[test]
    fn finds_every_position() {
        for len in 0..24 {
            for at in 0..len {
                let mut hay = vec![b'.'; len];
                hay[at] = b'X';
                assert_eq!(memchr(b'X', &hay), Some(at));
                assert_eq!(memchr2(b'X', b'Y', &hay), Some(at));
                assert_eq!(memchr3(b'Y', b'Z', b'X', &hay), Some(at));
            }
        }
        assert_eq!(memchr(b'X', b""), None);
        assert_eq!(memchr(b'X', b"................."), None);
    }

    #[test]
    fn high_bytes_and_zero_work() {
        let hay = [0xffu8, 0x80, 0x7f, 0x00, 0x01, 0xfe];
        assert_eq!(memchr(0x00, &hay), Some(3));
        assert_eq!(memchr(0x80, &hay), Some(1));
        assert_eq!(memchr(0x01, &hay), Some(4));
        assert_eq!(memchr2(0xfe, 0x7f, &hay), Some(2));
        assert_eq!(memchr3(0xfe, 0x01, 0x00, &hay), Some(3));
    }

    #[test]
    fn table_search_matches_naive() {
        let mut table = [false; 256];
        table[7] = true;
        table[200] = true;
        let hay: Vec<u8> = (0u16..512).map(|i| (i % 251) as u8).collect();
        assert_eq!(find_in_table(&table, &hay), naive(&[7, 200], &hay));
        assert_eq!(find_in_table(&[false; 256], &hay), None);
    }
}

//! Vectorized scanning kernels with runtime CPU dispatch.
//!
//! The engine portfolio's inner loops — multi-literal triggering, wake-byte
//! search, and small-DFA stepping — are memory-light and branch-light, which
//! makes them the natural place to spend SIMD. This crate packages three such
//! kernels:
//!
//! * [`Teddy`] — a Teddy-style multi-literal prefilter: the first bytes of up
//!   to 64 literals are packed into per-position nibble masks (≤ 8 buckets),
//!   scanned 16 (SSSE3) or 32 (AVX2) bytes per step with `pshufb`, and
//!   candidates are verified in place. Used as the trigger scanner of the
//!   literal-prefilter engine.
//! * [`ShengKernel`] — a Sheng-style shuffle DFA stepper for machines that
//!   determinize to at most 16 states: the whole transition function of one
//!   symbol class lives in a single 16-byte lane, and a step is one `pshufb`
//!   with no memory-indexed dependency chain.
//! * [`ByteFinder`] — the quiescent-skip wake-byte search: `memchr`-style
//!   scans for 1–3 bytes, and a Truffle-style two-`pshufb` classifier for
//!   arbitrary byte sets.
//!
//! # Dispatch and the scalar twins
//!
//! Every vector kernel has a safe, portable scalar twin that computes the
//! same function byte-identically; which implementation runs is chosen once
//! per process by [`level`], which probes CPU features at runtime
//! (`is_x86_feature_detected!`) and honours the `AZOO_FORCE_SCALAR=1`
//! environment variable. Differential tests drive both paths explicitly
//! through the `*_with` entry points, so the twins can be compared within a
//! single process regardless of the ambient level.
//!
//! # Unsafe policy
//!
//! The workspace forbids `unsafe` everywhere else; this crate alone relaxes
//! that to `deny(unsafe_code)` with narrow `#[allow]`s inside the
//! target-feature-gated intrinsic module ([`x86`]). The auditable surface is
//! exactly: unaligned vector loads from in-bounds slices, and calls into
//! `#[target_feature]` functions that were gated by a runtime feature check.
//! Nothing else in the crate may use `unsafe`.

#![deny(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::pedantic)]
#![allow(clippy::must_use_candidate, clippy::missing_panics_doc)]

pub mod byteset;
pub mod scalar;
pub mod sheng;
pub mod teddy;
#[cfg(target_arch = "x86_64")]
pub(crate) mod x86;

pub use byteset::ByteFinder;
pub use sheng::ShengKernel;
pub use teddy::{Teddy, TeddyMatch, TEDDY_MAX_PATTERNS};

use std::sync::OnceLock;

/// Vector capability tiers, in increasing order.
///
/// `x86_64` baselines SSE2, so anything below SSSE3 (the first tier with
/// `pshufb`) runs the scalar twins outright; other architectures always
/// report [`SimdLevel::Scalar`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    /// Portable scalar twins only.
    Scalar,
    /// 16-byte `pshufb` kernels (x86-64 with SSSE3).
    Ssse3,
    /// 32-byte kernels (x86-64 with AVX2).
    Avx2,
}

static LEVEL: OnceLock<SimdLevel> = OnceLock::new();

/// The dispatch level active for this process.
///
/// Computed once on first call: `AZOO_FORCE_SCALAR=1` in the environment
/// forces [`SimdLevel::Scalar`]; otherwise the best supported tier is probed
/// with `is_x86_feature_detected!`. The result is cached, so changing the
/// environment variable mid-process has no effect.
pub fn level() -> SimdLevel {
    *LEVEL.get_or_init(detect)
}

fn detect() -> SimdLevel {
    if std::env::var_os("AZOO_FORCE_SCALAR").is_some_and(|v| v == "1") {
        return SimdLevel::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return SimdLevel::Avx2;
        }
        if std::arch::is_x86_feature_detected!("ssse3") {
            return SimdLevel::Ssse3;
        }
    }
    SimdLevel::Scalar
}

/// Clamps a requested level to what the host can actually execute.
///
/// The `*_with` entry points take an explicit level so differential tests
/// can pin both sides of a comparison; clamping keeps a pinned `Avx2`
/// request safe on a host without AVX2.
pub fn supported(requested: SimdLevel) -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        let mut l = requested;
        if l == SimdLevel::Avx2 && !std::arch::is_x86_feature_detected!("avx2") {
            l = SimdLevel::Ssse3;
        }
        if l == SimdLevel::Ssse3 && !std::arch::is_x86_feature_detected!("ssse3") {
            l = SimdLevel::Scalar;
        }
        l
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = requested;
        SimdLevel::Scalar
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_is_stable_and_supported() {
        let l = level();
        assert_eq!(l, level());
        assert_eq!(supported(l), l);
    }

    #[test]
    fn supported_never_exceeds_request() {
        assert_eq!(supported(SimdLevel::Scalar), SimdLevel::Scalar);
        assert!(supported(SimdLevel::Ssse3) <= SimdLevel::Ssse3);
        assert!(supported(SimdLevel::Avx2) <= SimdLevel::Avx2);
    }
}

//! A Teddy-style multi-literal prefilter.
//!
//! Teddy (from Hyperscan, popularised by the `aho-corasick` crate) packs
//! the leading bytes of a small literal set into per-position *nibble
//! masks*: for mask position `j`, `lo[j][n]` is the bitset of *buckets*
//! containing a pattern whose byte `j` has low nibble `n` (`hi[j]`
//! likewise for high nibbles). A byte's candidate-bucket bits are then
//! `lo[j][b & 15] & hi[j][b >> 4]` — two `pshufb`s evaluate this for 16
//! bytes at once — and AND-ing the per-position results (each shifted to a
//! common anchor) leaves only positions where some bucket matches on all
//! mask positions. Candidates are confirmed by comparing the bucket's
//! patterns against the haystack.
//!
//! This implementation uses 1–3 mask positions (the shorter of 3 and the
//! shortest pattern), eight buckets, and anchors candidates at the *last*
//! mask byte so earlier positions shift in from the previous block's
//! carry — a start is never reported before enough bytes exist to check.
//!
//! # Output contract
//!
//! [`Teddy::find`] reports every `(start, pattern)` occurrence whose full
//! pattern lies inside the haystack, in nondecreasing `start` order —
//! exactly the occurrence set an Aho–Corasick scan of the same patterns
//! produces (modulo order). Verification makes false candidates
//! unobservable; the scalar twin evaluates the same mask algebra so the
//! candidate *semantics* (not just the confirmed matches) agree across
//! levels.

use crate::SimdLevel;

/// Maximum number of patterns; beyond this the nibble masks saturate and
/// candidate density destroys the advantage over an automaton scan.
pub const TEDDY_MAX_PATTERNS: usize = 64;

/// Number of buckets (bits in a candidate byte).
const BUCKETS: usize = 8;

/// One confirmed occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TeddyMatch {
    /// Start index of the occurrence in the haystack.
    pub start: usize,
    /// Pattern index as passed to [`Teddy::new`].
    pub pattern: u32,
}

/// Nibble masks in plain-array form (shared with the intrinsic kernels).
#[cfg(target_arch = "x86_64")]
pub(crate) use crate::x86::TeddyMasks;

/// Portable stand-in so the type exists off x86 too.
#[cfg(not(target_arch = "x86_64"))]
#[derive(Debug, Clone)]
pub(crate) struct TeddyMasks {
    pub lo: [[u8; 16]; 3],
    pub hi: [[u8; 16]; 3],
    pub mask_len: usize,
}

/// A compiled Teddy scanner.
#[derive(Debug, Clone)]
pub struct Teddy {
    masks: TeddyMasks,
    /// Patterns per bucket as `(pattern_index, bytes)`.
    buckets: Vec<Vec<(u32, Vec<u8>)>>,
    min_len: usize,
    /// Scratch: `(anchor_position, bucket_bits)` candidates.
    cand: Vec<(usize, u8)>,
}

impl Teddy {
    /// Compiles a scanner for `patterns`, or `None` when the set is
    /// unsuitable: empty, more than [`TEDDY_MAX_PATTERNS`] entries, or any
    /// pattern shorter than 2 bytes (1-byte needles belong in
    /// [`crate::ByteFinder`]).
    pub fn new<P: AsRef<[u8]>>(patterns: &[P]) -> Option<Teddy> {
        if patterns.is_empty() || patterns.len() > TEDDY_MAX_PATTERNS {
            return None;
        }
        let min_len = patterns.iter().map(|p| p.as_ref().len()).min().unwrap_or(0);
        if min_len < 2 {
            return None;
        }
        let mask_len = min_len.min(3);

        // Bucket assignment: group patterns sharing a mask prefix into the
        // same bucket (they produce identical candidate bits anyway), and
        // spread distinct prefixes round-robin.
        // Cap checked above: at most TEDDY_MAX_PATTERNS (64) patterns.
        #[allow(clippy::cast_possible_truncation)]
        let mut order: Vec<u32> = (0..patterns.len() as u32).collect();
        order.sort_by_key(|&i| patterns[i as usize].as_ref());
        let mut buckets: Vec<Vec<(u32, Vec<u8>)>> = vec![Vec::new(); BUCKETS];
        let mut prev_prefix: Option<&[u8]> = None;
        let mut next_bucket = 0usize;
        for &i in &order {
            let p = patterns[i as usize].as_ref();
            let prefix = &p[..mask_len];
            let bucket = match prev_prefix {
                Some(q) if q == prefix => (next_bucket + BUCKETS - 1) % BUCKETS,
                _ => {
                    let b = next_bucket;
                    next_bucket = (next_bucket + 1) % BUCKETS;
                    prev_prefix = Some(prefix);
                    b
                }
            };
            buckets[bucket].push((i, p.to_vec()));
        }

        let mut masks = TeddyMasks {
            lo: [[0; 16]; 3],
            hi: [[0; 16]; 3],
            mask_len,
        };
        for (b, members) in buckets.iter().enumerate() {
            for (_, p) in members {
                for (j, &byte) in p[..mask_len].iter().enumerate() {
                    masks.lo[j][(byte & 0x0f) as usize] |= 1 << b;
                    masks.hi[j][(byte >> 4) as usize] |= 1 << b;
                }
            }
        }

        Some(Teddy {
            masks,
            buckets,
            min_len,
            cand: Vec::new(),
        })
    }

    /// Shortest pattern length.
    pub fn min_len(&self) -> usize {
        self.min_len
    }

    /// Number of mask positions in use (2 or 3).
    pub fn mask_len(&self) -> usize {
        self.masks.mask_len
    }

    /// Finds all occurrences using the process-wide dispatch level.
    pub fn find(&mut self, hay: &[u8], out: &mut Vec<TeddyMatch>) {
        self.find_with(crate::level(), hay, out);
    }

    /// As [`find`](Teddy::find) with an explicit level (clamped to host
    /// support); differential tests pin both sides through this.
    pub fn find_with(&mut self, level: SimdLevel, hay: &[u8], out: &mut Vec<TeddyMatch>) {
        let level = crate::supported(level);
        let mut cand = std::mem::take(&mut self.cand);
        cand.clear();
        let covered = match level {
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx2 => crate::x86::teddy_candidates_avx2(&self.masks, hay, &mut cand),
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Ssse3 => crate::x86::teddy_candidates_ssse3(&self.masks, hay, &mut cand),
            _ => 0,
        };
        // Scalar twin over whatever the vector kernel did not cover: the
        // same per-position nibble-mask algebra, anchored at the last mask
        // byte. Starting `mask_len - 1` before the covered boundary
        // re-anchors without re-reporting (anchors below `covered` were
        // already emitted by the kernel).
        let ml = self.masks.mask_len;
        for p in covered.max(ml - 1)..hay.len() {
            let mut bits = 0xffu8;
            for j in 0..ml {
                let b = hay[p + 1 - ml + j];
                bits &= self.masks.lo[j][(b & 0x0f) as usize] & self.masks.hi[j][(b >> 4) as usize];
                if bits == 0 {
                    break;
                }
            }
            if bits != 0 {
                cand.push((p, bits));
            }
        }

        for &(p, bits) in &cand {
            let start = p + 1 - ml;
            let mut b = bits;
            while b != 0 {
                let bucket = b.trailing_zeros() as usize;
                b &= b - 1;
                for (idx, pat) in &self.buckets[bucket] {
                    if hay[start..].len() >= pat.len() && hay[start..start + pat.len()] == pat[..] {
                        out.push(TeddyMatch {
                            start,
                            pattern: *idx,
                        });
                    }
                }
            }
        }
        // Candidates arrive anchor-ordered from both the kernel and the
        // tail loop, and anchor order equals start order (fixed mask_len).
        debug_assert!(out.windows(2).all(|w| w[0].start <= w[1].start));
        self.cand = cand;
    }
}

/// Reference finder used by tests: every occurrence of every pattern.
#[cfg(test)]
#[allow(clippy::cast_possible_truncation)] // pattern count capped well below u32::MAX
fn naive_find<P: AsRef<[u8]>>(patterns: &[P], hay: &[u8]) -> Vec<TeddyMatch> {
    let mut out = Vec::new();
    for start in 0..hay.len() {
        for (i, p) in patterns.iter().enumerate() {
            let p = p.as_ref();
            if hay[start..].len() >= p.len() && &hay[start..start + p.len()] == p {
                out.push(TeddyMatch {
                    start,
                    pattern: i as u32,
                });
            }
        }
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::cast_possible_truncation)]
mod tests {
    use super::*;

    const LEVELS: [SimdLevel; 3] = [SimdLevel::Scalar, SimdLevel::Ssse3, SimdLevel::Avx2];

    fn sorted(mut v: Vec<TeddyMatch>) -> Vec<TeddyMatch> {
        v.sort_unstable();
        v
    }

    fn check_all_levels<P: AsRef<[u8]>>(patterns: &[P], hay: &[u8]) {
        let want = sorted(naive_find(patterns, hay));
        let mut teddy = Teddy::new(patterns).expect("buildable");
        for level in LEVELS {
            let mut got = Vec::new();
            teddy.find_with(level, hay, &mut got);
            assert_eq!(sorted(got), want, "level {level:?}");
        }
    }

    #[test]
    fn rejects_unsuitable_sets() {
        assert!(Teddy::new::<&[u8]>(&[]).is_none());
        assert!(Teddy::new(&[b"x".as_slice()]).is_none());
        assert!(Teddy::new(&[b"ok".as_slice(), b"y".as_slice()]).is_none());
        let many: Vec<Vec<u8>> = (0..65u32).map(|i| i.to_le_bytes().to_vec()).collect();
        assert!(Teddy::new(&many).is_none());
        assert!(Teddy::new(&[b"ab".as_slice()]).is_some());
    }

    #[test]
    fn finds_simple_literals() {
        let patterns: &[&[u8]] = &[b"abc", b"xyz", b"abq"];
        let hay = b"..abc..xyzabc_abq..ab.xy.";
        check_all_levels(patterns, hay);
    }

    #[test]
    fn two_byte_masks_and_short_patterns() {
        let patterns: &[&[u8]] = &[b"ab", b"ba", b"aa"];
        let hay = b"aababbaaab";
        check_all_levels(patterns, hay);
    }

    #[test]
    fn overlapping_and_shared_prefixes() {
        let patterns: &[&[u8]] = &[b"aaa", b"aaaa", b"aab", b"aa"];
        let hay = b"aaaaaaabaaab";
        check_all_levels(patterns, hay);
    }

    #[test]
    fn block_boundaries_every_offset() {
        // A match placed at every offset across several 16/32-byte block
        // boundaries, including the carry lanes.
        let patterns: &[&[u8]] = &[b"needle", b"ndl"];
        for at in 0..80 {
            let mut hay = vec![b'.'; 96];
            hay[at..at + 6].copy_from_slice(b"needle");
            check_all_levels(patterns, &hay);
        }
    }

    #[test]
    fn matches_longer_than_masks_verify() {
        let patterns: &[&[u8]] = &[b"abcdefgh", b"abcdzzzz"];
        let mut hay = vec![b'a'; 64];
        hay.extend_from_slice(b"abcdefgh");
        hay.extend_from_slice(b"abcdzzzzabcde");
        check_all_levels(patterns, &hay);
    }

    #[test]
    fn high_bytes_and_binary_patterns() {
        let patterns: &[&[u8]] = &[&[0xff, 0x00, 0x80], &[0x80, 0x81], &[0x00, 0x00]];
        let mut hay = Vec::new();
        for i in 0..200u32 {
            hay.push((i.wrapping_mul(131)) as u8);
        }
        hay.extend_from_slice(&[0xff, 0x00, 0x80, 0x81, 0x00, 0x00, 0x00]);
        check_all_levels(patterns, &hay);
    }

    #[test]
    fn sixty_four_patterns_ok() {
        let patterns: Vec<Vec<u8>> = (0..64u32)
            .map(|i| vec![b'a' + (i % 26) as u8, b'A' + (i / 26) as u8, (i % 7) as u8])
            .collect();
        let mut hay = Vec::new();
        for p in &patterns {
            hay.extend_from_slice(p);
            hay.push(b'.');
        }
        check_all_levels(&patterns, &hay);
    }

    #[test]
    fn empty_and_tiny_haystacks() {
        let patterns: &[&[u8]] = &[b"abc"];
        for hay in [&b""[..], b"a", b"ab", b"abc", b"xabc"] {
            check_all_levels(patterns, hay);
        }
    }
}

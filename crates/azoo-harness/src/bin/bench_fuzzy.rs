//! Records the fuzzy (bounded edit-distance) workload family's
//! per-budget cost as `BENCH_fuzzy.json` — the machine-readable
//! companion to DESIGN.md 6k.
//!
//! Both corpora (fuzzy-Snort under the full Levenshtein profile,
//! fuzzy-DNA under the substitution-only Hamming profile) are compiled
//! at `k = 0, 1, 2` from one pinned seed, so every row within a family
//! meshes the *same* pattern set at a different budget. All budgets
//! then scan the family's `k = 1` stimulus — noise plus exact and
//! 1-edit-mutated plants — so report counts must grow monotonically
//! with `k` and the mutated plants are invisible at `k = 0`. Each row
//! records the mesh size (states, edges, layers, estimated active
//! width), which engine tier the portfolio picks and why, and the
//! measured scan throughput.
//!
//! Usage: `bench-fuzzy [--scale tiny|small|full] [--out PATH] [--check]`
//!
//! `--check` is the CI gate: exits nonzero unless, per family, report
//! counts are monotone in `k` and `k = 1` strictly beats `k = 0` (the
//! mesh does real work), on top of the validation asserts that abort
//! the run on their own.

#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]

use azoo_engines::{select_session_engine_explained, CountSink, EngineChoice};
use azoo_harness::{arg_value, flag_present, scale_from_args, time_scan_with};
use azoo_zoo::fuzzy::{build_dna, build_snort, FuzzyParams};
use azoo_zoo::Scale;

fn tier_name(choice: EngineChoice) -> &'static str {
    match choice {
        EngineChoice::BitParallel => "bit-parallel",
        EngineChoice::LazyDfa => "lazy-dfa",
        EngineChoice::Sheng => "sheng",
        EngineChoice::Prefilter => "prefilter",
        EngineChoice::Nfa => "nfa",
        EngineChoice::Parallel { .. } => "parallel",
    }
}

/// One family's pinned-seed parameter set at budget `k`: the published
/// instance rescaled, with the `k = 1` seed shared across budgets so
/// the pattern set (and thus language containment) is identical.
fn params(scale: Scale, snort: bool, k: usize) -> FuzzyParams {
    let mut p = if snort {
        FuzzyParams::published_snort(1)
    } else {
        FuzzyParams::published_dna(1)
    };
    p.max_edits = k;
    p.patterns = scale.count(p.patterns);
    p.input_len = scale.input(p.input_len);
    p
}

fn main() {
    let scale = scale_from_args();
    let args: Vec<String> = std::env::args().collect();
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_fuzzy.json".into());
    let check = flag_present(&args, "--check");

    let mut rows = Vec::new();
    let mut gate_ok = true;
    for (family, profile, snort) in [
        ("fuzzy_snort", "levenshtein", true),
        ("fuzzy_dna", "hamming", false),
    ] {
        // Shared stimulus: the k = 1 build's input carries exact plants
        // and plants mutated by exactly one edit.
        let build = |k: usize| {
            let p = params(scale, snort, k);
            if snort {
                build_snort(&p)
            } else {
                build_dna(&p)
            }
        };
        let (_, stimulus, _) = build(1);
        let window = stimulus.len().min(1 << 18);
        let input = &stimulus[..window];

        let mut counts = Vec::new();
        for k in 0..=2usize {
            let (a, _, stats) = build(k);
            let violations = a.validate_all();
            assert!(
                violations.is_empty(),
                "{family} k={k}: mesh fails validation: {violations:?}"
            );
            assert_eq!(stats.layers, k + 1, "{family} k={k}: wrong layer count");

            let (choice, reason, mut engine) =
                select_session_engine_explained(&a).expect("valid mesh");
            let mut sink = CountSink::new();
            let secs = time_scan_with(engine.as_mut(), input, &mut sink);
            let mbps = input.len() as f64 / secs / 1e6;
            counts.push(sink.count());

            rows.push(format!(
                concat!(
                    "    {{\n",
                    "      \"family\": \"{}\",\n",
                    "      \"profile\": \"{}\",\n",
                    "      \"max_edits\": {},\n",
                    "      \"layers\": {},\n",
                    "      \"states\": {},\n",
                    "      \"edges\": {},\n",
                    "      \"est_active_width\": {},\n",
                    "      \"engine\": \"{}\",\n",
                    "      \"engine_reason\": \"{}\",\n",
                    "      \"input_bytes\": {},\n",
                    "      \"reports\": {},\n",
                    "      \"mbps\": {:.3}\n",
                    "    }}"
                ),
                family,
                profile,
                k,
                stats.layers,
                stats.states,
                stats.edges,
                stats.est_active_width,
                tier_name(choice),
                reason.replace('"', "'"),
                input.len(),
                sink.count(),
                mbps,
            ));
            eprintln!(
                "{family} k={k}: {} states, {} layers, {} via {}, {} reports, {mbps:.3} MB/s",
                stats.states,
                stats.layers,
                reason.replace('"', "'"),
                tier_name(choice),
                sink.count(),
            );
        }

        // Containment on a shared stimulus: a bigger budget accepts a
        // superset of the language, and the 1-edit plants need k >= 1.
        if !(counts[0] <= counts[1] && counts[1] <= counts[2]) {
            eprintln!("{family}: report counts not monotone in k: {counts:?}");
            gate_ok = false;
        }
        if counts[1] <= counts[0] {
            eprintln!("{family}: k=1 found nothing beyond k=0: {counts:?}");
            gate_ok = false;
        }
    }

    let scale_name = format!("{scale:?}").to_lowercase();
    let json = format!(
        concat!(
            "{{\n",
            "  \"artifact\": \"fuzzy workload per-budget mesh cost and throughput (DESIGN.md 6k)\",\n",
            "  \"command\": \"cargo run --release -p azoo-harness --bin bench-fuzzy -- --scale {}\",\n",
            "  \"scale\": \"{}\",\n",
            "  \"rows\": [\n{}\n  ]\n",
            "}}\n"
        ),
        scale_name,
        scale_name,
        rows.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("writable output path");
    eprintln!("wrote {out_path} ({} rows)", rows.len());

    if check && !gate_ok {
        eprintln!("bench-fuzzy: --check found a containment violation");
        std::process::exit(1);
    }
}

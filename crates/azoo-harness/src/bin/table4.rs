//! Regenerates **Table IV**: Random Forest classification throughput of
//! automata-based execution versus native decision-tree inference
//! (Section VIII's full-kernel comparison, possible only because the
//! benchmark computes the complete trained model).
//!
//! Rows:
//! * lazy-DFA engine (the Hyperscan stand-in, = 1x baseline)
//! * bit-parallel engine (our stronger CPU automata row)
//! * parallel scanner (sharded/chunked NFA across `--threads` workers)
//! * with `--prefilter`: the literal-prefilter engine, single-threaded
//!   (the parallel row also gates its shards behind the prefilter)
//! * native forest inference, single-threaded (the scikit-learn row)
//! * native forest inference, multi-threaded (scikit-learn MT)
//! * REAPR FPGA analytic model (clock x symbols, as the paper computes)
//!
//! Usage: `table4 [--scale tiny|small|full] [--threads N] [--prefilter]
//! [--metrics-json PATH]`
//!
//! `--metrics-json` exports the engine-row scan counters in the
//! `azoo-serve-metrics-v1` schema (each timed automata scan recorded as
//! one feed), so serve-side dashboards can ingest offline table runs.

#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]

use std::time::Instant;

use azoo_engines::{
    BitParallelEngine, CountSink, Engine, LazyDfaEngine, ParallelScanner, PrefilterEngine,
};
use azoo_harness::{arg_value, flag_present, scale_from_args, write_metrics_json, Table};
use azoo_ml::SpatialModel;
use azoo_serve::MetricsRegistry;
use azoo_zoo::random_forest::{build, RandomForestParams, Variant};
use azoo_zoo::Scale;

fn main() {
    let scale = scale_from_args();
    let args: Vec<String> = std::env::args().collect();
    let threads: usize = arg_value(&args, "--threads")
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(std::thread::available_parallelism().map_or(4, |n| n.get()));
    let prefilter = flag_present(&args, "--prefilter");
    let mut params = RandomForestParams::published(Variant::B);
    match scale {
        Scale::Tiny => {
            params.trees = 5;
            params.train_samples = 500;
            params.test_samples = 100;
        }
        Scale::Small => {
            params.trees = 10;
            params.train_samples = 2000;
            params.test_samples = 300;
        }
        Scale::Full => {}
    }
    println!(
        "== Table IV: Random Forest throughput (variant B, scale: {scale:?}, \
         {} test classifications, {threads} threads) ==\n",
        params.test_samples
    );
    let bench = build(&params);
    let n = bench.test.len();
    println!(
        "model: {} trees, {} chains, {} automaton states, {} symbols/classification, \
         accuracy {:.1}%\n",
        params.trees,
        bench.forest.total_leaves(),
        bench.fa.automaton.state_count(),
        bench.fa.symbols_per_classification,
        bench.accuracy * 100.0
    );

    let mut rows: Vec<(String, f64)> = Vec::new();
    let metrics = MetricsRegistry::new();
    // Each timed automata scan is recorded as one "feed" so
    // --metrics-json exports the run in the serve schema.
    let record = |metrics: &MetricsRegistry, sink: &CountSink, t: Instant| {
        let nanos = t.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        metrics.record_feed(bench.input.len() as u64, sink.count(), nanos);
    };

    // Lazy-DFA (Hyperscan stand-in).
    {
        let mut dfa =
            LazyDfaEngine::with_max_states(&bench.fa.automaton, 1 << 16).expect("no counters");
        let mut sink = CountSink::new();
        let t = Instant::now();
        dfa.scan(&bench.input, &mut sink);
        let kcps = n as f64 / t.elapsed().as_secs_f64() / 1e3;
        record(&metrics, &sink, t);
        rows.push(("Lazy DFA (Hyperscan)".into(), kcps));
    }
    // Bit-parallel engine.
    {
        let mut bp = BitParallelEngine::new(&bench.fa.automaton).expect("chains");
        let mut sink = CountSink::new();
        let t = Instant::now();
        bp.scan(&bench.input, &mut sink);
        let kcps = n as f64 / t.elapsed().as_secs_f64() / 1e3;
        record(&metrics, &sink, t);
        rows.push(("Bit-parallel (ours)".into(), kcps));
    }
    // Sharded/chunked NFA across worker threads.
    {
        let mut par = ParallelScanner::with_prefilter(&bench.fa.automaton, threads, prefilter)
            .expect("valid");
        let mut sink = CountSink::new();
        let t = Instant::now();
        par.scan(&bench.input, &mut sink);
        let kcps = n as f64 / t.elapsed().as_secs_f64() / 1e3;
        record(&metrics, &sink, t);
        rows.push((format!("Parallel NFA x{threads}"), kcps));
    }
    // Literal-prefilter engine (opt-in row; the RF chains carry narrow
    // feature-range classes, so this documents how much of the model the
    // literal analysis can actually gate).
    if prefilter {
        let mut pf = PrefilterEngine::new(&bench.fa.automaton).expect("valid");
        let coverage = pf.coverage();
        let mut sink = CountSink::new();
        let t = Instant::now();
        pf.scan(&bench.input, &mut sink);
        let kcps = n as f64 / t.elapsed().as_secs_f64() / 1e3;
        record(&metrics, &sink, t);
        rows.push((
            format!("Prefilter NFA ({:.0}% cov)", coverage * 100.0),
            kcps,
        ));
    }
    // Native, single-threaded. Repeat to get a measurable duration.
    {
        let reps = (10_000 / n).max(1);
        let t = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(bench.forest.predict_batch(&bench.test));
        }
        let kcps = (n * reps) as f64 / t.elapsed().as_secs_f64() / 1e3;
        rows.push(("Native trees (Scikit)".into(), kcps));
    }
    // Native, multi-threaded.
    {
        let reps = (20_000 / n).max(1);
        let t = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(bench.forest.predict_batch_parallel(&bench.test, threads));
        }
        let kcps = (n * reps) as f64 / t.elapsed().as_secs_f64() / 1e3;
        rows.push((format!("Native trees MT x{threads}"), kcps));
    }
    // FPGA analytic model.
    {
        let model = SpatialModel::REAPR_KU060;
        let kcps = model.items_per_second_partitioned(
            bench.fa.symbols_per_classification,
            bench.fa.automaton.state_count(),
        ) / 1e3;
        rows.push((format!("{} (model)", model.name), kcps));
    }

    let baseline = rows[0].1;
    let table = Table::new(&[
        ("Engine / algorithm", 26),
        ("kClass/s", 10),
        ("Speedup", 9),
        ("Paper", 7),
    ]);
    let mut paper = vec!["1x", "-", "-", "141.5x", "401.1x", "817.9x"];
    if prefilter {
        paper.insert(3, "-");
    }
    for ((name, kcps), paper_cell) in rows.iter().zip(paper) {
        table.row(&[
            name.clone(),
            format!("{kcps:.2}"),
            format!("{:.1}x", kcps / baseline),
            paper_cell.into(),
        ]);
    }
    println!(
        "\npaper shape to check: native decision trees dominate CPU automata \
         execution by orders of magnitude; the spatial architecture beats \
         CPU automata execution. (Our native rows are compiled Rust, not \
         Python scikit-learn, so the native-vs-FPGA crossover shifts — see \
         EXPERIMENTS.md.)"
    );
    write_metrics_json(&args, &metrics);
}

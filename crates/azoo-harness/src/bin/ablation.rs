//! Ablations for the design choices DESIGN.md §7 calls out:
//!
//! 1. **Prefix merging**: state count, active set, and NFA throughput
//!    before/after the optimization.
//! 2. **Engine choice**: the same benchmark on the sparse NFA engine vs
//!    the lazy DFA (vs bit-parallel where the shape allows).
//! 3. **Striding**: the File Carving patterns executed as bit-level
//!    automata (8 bit-symbols per byte) vs the 8-strided byte automata.
//! 4. **Counters**: report volume of Sequence Matching with and without
//!    support counters.
//! 5. **Parallel scanning**: Snort throughput of the sharding/chunking
//!    [`ParallelScanner`] as the worker count doubles up to `--threads`.
//! 6. **Quiescence + prefilter**: sparse-benchmark throughput with the
//!    NFA's quiescent skip disabled/enabled, and again behind the
//!    literal-prefilter engine — reports identical in all three modes.
//!
//! Usage: `ablation [--scale tiny|small|full] [--threads N]`

#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]

use azoo_core::{Automaton, CounterMode};
use azoo_engines::{CountSink, Engine, LazyDfaEngine, NfaEngine, ParallelScanner, PrefilterEngine};
use azoo_harness::{arg_value, fmt_count, scale_from_args, time_scan, Table};
use azoo_passes::merge_prefixes;
use azoo_zoo::{sequence_match, BenchmarkId, Scale};

fn main() {
    let scale = scale_from_args();
    let args: Vec<String> = std::env::args().collect();
    // Sweep worker counts up to --threads (default: the machine, capped
    // at 8 so the table stays readable).
    let max_threads = arg_value(&args, "--threads")
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map_or(4, |n| n.get())
                .min(8)
        });
    println!("== Ablations (scale: {scale:?}) ==");
    prefix_merge_ablation(scale);
    engine_ablation(scale);
    striding_ablation(scale);
    counter_ablation(scale);
    parallel_ablation(scale, max_threads);
    prefilter_ablation(scale);
}

fn profile_and_speed(a: &Automaton, input: &[u8]) -> (f64, f64) {
    let mut engine = NfaEngine::new(a).expect("valid");
    let mut sink = azoo_engines::NullSink::new();
    let window = input.len().min(1 << 16);
    let profile = engine.scan_profiled(&input[..window], &mut sink);
    let (_, mbps) = time_scan(&mut engine, &input[..window]);
    (profile.active_set(), mbps)
}

fn prefix_merge_ablation(scale: Scale) {
    println!("\n-- 1. prefix merging (VASim's standard optimization) --\n");
    let table = Table::new(&[
        ("Benchmark", 18),
        ("States", 10),
        ("Merged", 10),
        ("AS before", 10),
        ("AS after", 10),
        ("MB/s before", 12),
        ("MB/s after", 11),
    ]);
    for id in [BenchmarkId::Snort, BenchmarkId::Brill, BenchmarkId::ClamAv] {
        let bench = id.build(scale);
        let (merged, _) = merge_prefixes(&bench.automaton);
        let (as_before, speed_before) = profile_and_speed(&bench.automaton, &bench.input);
        let (as_after, speed_after) = profile_and_speed(&merged, &bench.input);
        table.row(&[
            id.name().into(),
            fmt_count(bench.automaton.state_count()),
            fmt_count(merged.state_count()),
            format!("{as_before:.1}"),
            format!("{as_after:.1}"),
            format!("{speed_before:.1}"),
            format!("{speed_after:.1}"),
        ]);
    }
    println!("\nexpected: fewer states and a smaller active set -> higher NFA throughput.");
}

fn engine_ablation(scale: Scale) {
    println!("\n-- 2. engine choice on the same automaton --\n");
    let table = Table::new(&[
        ("Benchmark", 18),
        ("NFA MB/s", 10),
        ("LazyDFA MB/s", 13),
        ("DFA states", 11),
        ("Flushes", 8),
    ]);
    for id in [
        BenchmarkId::Brill,
        BenchmarkId::Protomata,
        BenchmarkId::EntityResolution,
    ] {
        let bench = id.build(scale);
        let window = bench.input.len().min(1 << 18);
        let input = &bench.input[..window];
        let mut nfa = NfaEngine::new(&bench.automaton).expect("valid");
        let (_, nfa_mbps) = time_scan(&mut nfa, input);
        let mut dfa =
            LazyDfaEngine::with_max_states(&bench.automaton, 1 << 16).expect("no counters");
        // Warm, then measure steady state.
        let mut sink = azoo_engines::NullSink::new();
        dfa.scan(&input[..window.min(1 << 15)], &mut sink);
        let (_, dfa_mbps) = time_scan(&mut dfa, input);
        table.row(&[
            id.name().into(),
            format!("{nfa_mbps:.1}"),
            format!("{dfa_mbps:.1}"),
            fmt_count(dfa.cached_states()),
            dfa.flush_count().to_string(),
        ]);
    }
    println!("\nexpected: the DFA wins where determinization stays small, and");
    println!("degrades (flushes) where subset construction explodes.");
}

fn striding_ablation(scale: Scale) {
    println!("\n-- 3. bit-level vs 8-strided File Carving --\n");
    use azoo_regex::{compile_pattern, Flags, Pattern};
    use azoo_zoo::file_carving;
    // Bit-level automaton for the zip local header.
    let bit_pattern = Pattern {
        ast: file_carving::zip_local_header_bits(),
        anchored_start: false,
        anchored_end: false,
        flags: Flags::default(),
    };
    let bit_nfa = compile_pattern(&bit_pattern, 0).expect("well-formed");
    let byte_nfa = azoo_passes::stride8(&bit_nfa).expect("strides");
    let input_len = match scale {
        Scale::Tiny => 1 << 16,
        Scale::Small => 1 << 18,
        Scale::Full => 1 << 20,
    };
    let byte_input = azoo_workloads::media::carving_stimulus(
        3,
        &azoo_workloads::media::CarvingConfig {
            len: input_len,
            ..Default::default()
        },
    );
    // The bit automaton consumes one symbol per *bit* (MSB first).
    let bit_input: Vec<u8> = byte_input
        .iter()
        .flat_map(|&b| (0..8).map(move |i| (b >> (7 - i)) & 1))
        .collect();
    let mut bit_engine = NfaEngine::new(&bit_nfa).expect("valid");
    let mut byte_engine = NfaEngine::new(&byte_nfa).expect("valid");
    let mut bit_sink = CountSink::new();
    let mut byte_sink = CountSink::new();
    let bit_secs = azoo_harness::time_scan_with(&mut bit_engine, &bit_input, &mut bit_sink);
    let byte_secs = azoo_harness::time_scan_with(&mut byte_engine, &byte_input, &mut byte_sink);
    println!(
        "bit-level:  {} states, {} reports, {:.3}s for {} bit-symbols ({:.2} MB/s of data)",
        fmt_count(bit_nfa.state_count()),
        bit_sink.count(),
        bit_secs,
        fmt_count(bit_input.len()),
        byte_input.len() as f64 / bit_secs / 1e6
    );
    println!(
        "8-strided:  {} states, {} reports, {:.3}s for {} byte-symbols ({:.2} MB/s of data)",
        fmt_count(byte_nfa.state_count()),
        byte_sink.count(),
        byte_secs,
        fmt_count(byte_input.len()),
        byte_input.len() as f64 / byte_secs / 1e6
    );
    assert_eq!(
        bit_sink.count(),
        byte_sink.count(),
        "striding must preserve the report stream"
    );
    println!(
        "-> striding trades {:.1}x states for {:.1}x data throughput (reports identical)",
        byte_nfa.state_count() as f64 / bit_nfa.state_count() as f64,
        bit_secs / byte_secs
    );
}

fn parallel_ablation(scale: Scale, max_threads: usize) {
    println!("\n-- 5. parallel scanning (automaton sharding + input chunking) --\n");
    let bench = BenchmarkId::Snort.build(scale);
    let window = bench.input.len().min(1 << 18);
    let input = &bench.input[..window];
    let table = Table::new(&[
        ("Workers", 8),
        ("Shards", 7),
        ("Chunkable", 10),
        ("MB/s", 9),
        ("Speedup", 8),
    ]);
    let mut baseline = None;
    let mut threads = 1;
    while threads <= max_threads {
        let mut engine = ParallelScanner::new(&bench.automaton, threads).expect("valid");
        // Warm once (page in the input), then measure.
        let mut sink = azoo_engines::NullSink::new();
        engine.scan(&input[..window.min(1 << 14)], &mut sink);
        let (_, mbps) = time_scan(&mut engine, input);
        let base = *baseline.get_or_insert(mbps);
        table.row(&[
            threads.to_string(),
            engine.shard_count().to_string(),
            format!(
                "{}/{}",
                engine.chunkable_shard_count(),
                engine.shard_count()
            ),
            format!("{mbps:.1}"),
            format!("{:.2}x", mbps / base),
        ]);
        threads *= 2;
    }
    println!("\nexpected: near-linear scaling while shards/chunks outnumber workers;");
    println!("the merged report stream is byte-identical at every worker count.");
}

fn prefilter_ablation(scale: Scale) {
    println!("\n-- 6. quiescent skip + literal prefilter --\n");
    let table = Table::new(&[
        ("Benchmark", 18),
        ("no-skip MB/s", 13),
        ("skip MB/s", 10),
        ("prefilter MB/s", 15),
        ("Coverage", 9),
        ("Reports", 8),
    ]);
    for id in [BenchmarkId::Snort, BenchmarkId::ClamAv, BenchmarkId::Brill] {
        let bench = id.build(scale);
        let window = bench.input.len().min(1 << 18);
        let input = &bench.input[..window];
        let mut base = NfaEngine::new(&bench.automaton).expect("valid");
        base.set_quiescent_skip(false);
        let (_, base_mbps) = time_scan(&mut base, input);
        let mut skip = NfaEngine::new(&bench.automaton).expect("valid");
        let mut skip_sink = CountSink::new();
        let skip_secs = azoo_harness::time_scan_with(&mut skip, input, &mut skip_sink);
        let skip_mbps = input.len() as f64 / skip_secs / 1e6;
        let mut pf = PrefilterEngine::new(&bench.automaton).expect("valid");
        let mut pf_sink = CountSink::new();
        let pf_secs = azoo_harness::time_scan_with(&mut pf, input, &mut pf_sink);
        let pf_mbps = input.len() as f64 / pf_secs / 1e6;
        assert_eq!(
            skip_sink.count(),
            pf_sink.count(),
            "prefilter must preserve the report stream"
        );
        table.row(&[
            id.name().into(),
            format!("{base_mbps:.1}"),
            format!("{skip_mbps:.1}"),
            format!("{pf_mbps:.1}"),
            format!("{:.0}%", pf.coverage() * 100.0),
            fmt_count(skip_sink.count() as usize),
        ]);
    }
    println!("\nexpected: the skip pays off while the automaton is quiescent between");
    println!("matches; the prefilter pays off when required literals gate most of");
    println!("the state space (coverage). Reports are identical in every mode.");
}

fn counter_ablation(scale: Scale) {
    println!("\n-- 4. counters vs counter-free Sequence Matching --\n");
    let filters = match scale {
        Scale::Tiny => 8,
        Scale::Small => 24,
        Scale::Full => 64,
    };
    let mut rng = azoo_workloads::rng(0xC0DE);
    let sequences: Vec<_> = (0..filters)
        .map(|_| sequence_match::generate_sequence(&mut rng, 3, 4))
        .collect();
    let mut plain = Automaton::new();
    let mut counted = Automaton::new();
    for (i, seq) in sequences.iter().enumerate() {
        sequence_match::append_filter(&mut plain, seq, i as u32, None, None);
        sequence_match::append_filter(
            &mut counted,
            seq,
            i as u32,
            Some((5, CounterMode::Latch)),
            None,
        );
    }
    // Drive with a stream that embeds each sequence repeatedly.
    let mut input = Vec::new();
    for (i, seq) in sequences.iter().enumerate() {
        input.extend(sequence_match::stream_with_sequence(i as u64, seq, 12));
    }
    let mut s1 = CountSink::new();
    let mut s2 = CountSink::new();
    NfaEngine::new(&plain).expect("valid").scan(&input, &mut s1);
    NfaEngine::new(&counted)
        .expect("valid")
        .scan(&input, &mut s2);
    println!(
        "plain:    {} reports over {} bytes",
        fmt_count(s1.count() as usize),
        fmt_count(input.len())
    );
    println!(
        "counters: {} reports (support >= 5, latched)",
        fmt_count(s2.count() as usize)
    );
    println!(
        "-> counters collapse the output stream {:.0}x (the paper's motivation \
         for the wC variants)",
        s1.count() as f64 / s2.count().max(1) as f64
    );
}

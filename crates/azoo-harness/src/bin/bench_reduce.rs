//! Records the reduction tier's state/edge savings and throughput
//! effect across all 27 benchmarks as `BENCH_reduce.json` — the
//! machine-readable companion to DESIGN.md 6g.
//!
//! For every benchmark the full `reduce` pipeline (simulation quotient
//! alternated with the residual coverage fold) runs once; the reduced
//! machine must validate cleanly and produce a report stream
//! byte-identical to the original, both block-mode and chunked
//! (asserted, not sampled). Throughput is the reference NFA on a
//! bounded input window, before and after.
//!
//! Usage: `bench-reduce [--scale tiny|small|full] [--out PATH] [--check]`
//!
//! `--check` is the CI gate: exits nonzero unless at least 5 benchmarks
//! lost states and every equivalence assertion held (the assertions
//! abort the run on their own).

#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]

use azoo_engines::{CollectSink, CountSink, Engine, NfaEngine, StreamingEngine};
use azoo_harness::{arg_value, flag_present, scale_from_args, time_scan_with};
use azoo_passes::reduce;
use azoo_zoo::BenchmarkId;

/// Chunk length for the streaming-equivalence check: small enough to
/// split every tiny-scale corpus into many feeds, odd so chunk edges
/// drift across pattern boundaries.
const STREAM_CHUNK: usize = 509;

fn reports(engine: &mut NfaEngine, input: &[u8]) -> Vec<(u64, u32)> {
    let mut sink = CollectSink::new();
    engine.scan(input, &mut sink);
    sink.reports()
        .iter()
        .map(|r| (r.offset, r.code.0))
        .collect()
}

fn chunked_reports(engine: &mut NfaEngine, input: &[u8]) -> Vec<(u64, u32)> {
    let mut sink = CollectSink::new();
    engine.scan_chunks(input.chunks(STREAM_CHUNK.max(1)), &mut sink);
    sink.reports()
        .iter()
        .map(|r| (r.offset, r.code.0))
        .collect()
}

fn main() {
    let scale = scale_from_args();
    let args: Vec<String> = std::env::args().collect();
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_reduce.json".into());
    let check = flag_present(&args, "--check");

    let mut rows = Vec::new();
    let mut shrunk = 0usize;
    for id in BenchmarkId::ALL {
        let bench = id.build(scale);
        let (reduced, stats) = reduce(&bench.automaton);

        let violations = reduced.validate_all();
        assert!(
            violations.is_empty(),
            "{}: reduced automaton fails validation: {violations:?}",
            id.name()
        );
        assert!(
            stats.states_after <= stats.states_before,
            "{}: reduction grew the machine",
            id.name()
        );

        // Byte-identical equivalence, block and chunked, on the full
        // corpus — this is the acceptance criterion, not a sample.
        let mut before = NfaEngine::new(&bench.automaton).expect("valid");
        let mut after = NfaEngine::new(&reduced).expect("valid reduced");
        assert_eq!(
            reports(&mut before, &bench.input),
            reports(&mut after, &bench.input),
            "{}: block reports diverged after reduction",
            id.name()
        );
        assert_eq!(
            chunked_reports(&mut before, &bench.input),
            chunked_reports(&mut after, &bench.input),
            "{}: streaming reports diverged after reduction",
            id.name()
        );

        // Throughput on a bounded window (full corpora can be huge).
        let window = bench.input.len().min(1 << 18);
        let input = &bench.input[..window];
        let mut before_sink = CountSink::new();
        let before_secs = time_scan_with(&mut before, input, &mut before_sink);
        let mut after_sink = CountSink::new();
        let after_secs = time_scan_with(&mut after, input, &mut after_sink);
        let mbps = |secs: f64| input.len() as f64 / secs / 1e6;

        if stats.states_after < stats.states_before {
            shrunk += 1;
        }
        rows.push(format!(
            concat!(
                "    {{\n",
                "      \"benchmark\": \"{}\",\n",
                "      \"states_before\": {},\n",
                "      \"states_after\": {},\n",
                "      \"edges_before\": {},\n",
                "      \"edges_after\": {},\n",
                "      \"quotient_removed\": {},\n",
                "      \"residual_removed\": {},\n",
                "      \"rounds\": {},\n",
                "      \"refused_components\": {},\n",
                "      \"compression_factor\": {:.4},\n",
                "      \"input_bytes\": {},\n",
                "      \"reports\": {},\n",
                "      \"baseline_mbps\": {:.3},\n",
                "      \"reduced_mbps\": {:.3}\n",
                "    }}"
            ),
            id.name(),
            stats.states_before,
            stats.states_after,
            stats.edges_before,
            stats.edges_after,
            stats.quotient_removed,
            stats.residual_removed,
            stats.rounds,
            stats.refused_components,
            stats.compression_factor(),
            input.len(),
            before_sink.count(),
            mbps(before_secs),
            mbps(after_secs),
        ));
        eprintln!(
            "{}: {} -> {} states ({} quotient, {} residual), {:.3} -> {:.3} MB/s",
            id.name(),
            stats.states_before,
            stats.states_after,
            stats.quotient_removed,
            stats.residual_removed,
            mbps(before_secs),
            mbps(after_secs),
        );
    }

    let scale_name = format!("{scale:?}").to_lowercase();
    let json = format!(
        concat!(
            "{{\n",
            "  \"artifact\": \"reduction tier state/edge savings and throughput (DESIGN.md 6g)\",\n",
            "  \"command\": \"cargo run --release -p azoo-harness --bin bench-reduce -- --scale {}\",\n",
            "  \"scale\": \"{}\",\n",
            "  \"benchmarks\": {},\n",
            "  \"benchmarks_reduced\": {},\n",
            "  \"rows\": [\n{}\n  ]\n",
            "}}\n"
        ),
        scale_name,
        scale_name,
        BenchmarkId::ALL.len(),
        shrunk,
        rows.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("writable output path");
    eprintln!(
        "wrote {out_path} ({shrunk} of {} benchmarks reduced)",
        BenchmarkId::ALL.len()
    );

    if check && shrunk < 5 {
        eprintln!("bench-reduce: --check expects >=5 reduced benchmarks, saw {shrunk}");
        std::process::exit(1);
    }
}

//! Regenerates **Figure 1** and **Table V**: profile-driven mesh-automata
//! pruning (Section X).
//!
//! For each kernel (Hamming, Levenshtein) and scoring distance
//! d ∈ {3, 5, 10}, build N = 10 filters of increasing pattern length `l`
//! over random DNA, simulate them on random DNA input, and record the
//! average number of reports per filter per million input symbols. The
//! chosen benchmark length is the first `l` whose filters report less
//! than once per million inputs — Table V's published lengths.
//!
//! Usage: `fig1 [--scale tiny|small|full] [--csv PATH]`
//! (scale controls the simulated input length: 62.5k / 250k / 1M
//! symbols; `--csv` additionally writes the Figure-1 series as
//! `kernel,d,l,reports_per_million` rows for plotting)

#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]

use azoo_engines::{CountSink, Engine, NfaEngine};
use azoo_harness::{arg_value, scale_from_args, Table};
use azoo_workloads::dna;
use azoo_zoo::{hamming, levenshtein, Scale};

fn reports_per_million(kernel: &str, l: usize, d: usize, input: &[u8], trials: u64) -> f64 {
    let filters = 10;
    let mut total_reports = 0u64;
    for trial in 0..trials {
        for f in 0..filters {
            let pattern = dna::random_dna(0xF16_0001 + trial * 1000 + f, l);
            let automaton = match kernel {
                "hamming" => hamming::hamming_filter(&pattern, d, 0),
                _ => levenshtein::levenshtein_filter(&pattern, d, 0),
            };
            let mut engine = NfaEngine::new(&automaton).expect("valid");
            let mut sink = CountSink::new();
            engine.scan(input, &mut sink);
            total_reports += sink.count();
        }
    }
    total_reports as f64 * 1e6 / (trials as f64 * filters as f64 * input.len() as f64)
}

fn main() {
    let scale = scale_from_args();
    let args: Vec<String> = std::env::args().collect();
    let csv_path = arg_value(&args, "--csv");
    let mut csv = String::from("kernel,d,l,reports_per_million\n");
    let (input_len, trials) = match scale {
        Scale::Tiny => (1 << 16, 1),
        Scale::Small => (1 << 18, 1),
        Scale::Full => (1 << 20, 2),
    };
    println!(
        "== Figure 1 / Table V: profile-driven filter length selection \
         (scale: {scale:?}, {input_len} random DNA symbols, {trials} trial(s)) ==\n"
    );
    let input = dna::random_dna(0xD4A, input_len);
    let paper_choice = |kernel: &str, d: usize| match (kernel, d) {
        ("hamming", 3) => 18,
        ("hamming", 5) => 22,
        ("hamming", 10) => 31,
        ("levenshtein", 3) => 19,
        ("levenshtein", 5) => 24,
        (_, _) => 37,
    };

    let mut chosen: Vec<(String, usize, usize, usize)> = Vec::new();
    for kernel in ["hamming", "levenshtein"] {
        for d in [3usize, 5, 10] {
            println!("{kernel} d={d}: reports per filter per million inputs");
            let mut l = d + 2;
            let selected = loop {
                let rpm = reports_per_million(kernel, l, d, &input, trials);
                println!("  l = {l:>2}: {rpm:>12.3}");
                csv.push_str(&format!("{kernel},{d},{l},{rpm}\n"));
                if rpm < 1.0 {
                    break l;
                }
                l += 1;
                if l > 64 {
                    break l;
                }
            };
            println!();
            chosen.push((kernel.to_owned(), d, selected, paper_choice(kernel, d)));
        }
    }

    println!("== Table V: selected variant parameters ==\n");
    let table = Table::new(&[
        ("Kernel", 12),
        ("Distance d", 11),
        ("Chosen l", 9),
        ("Paper l", 8),
    ]);
    for (kernel, d, l, paper) in &chosen {
        table.row(&[
            kernel.clone(),
            d.to_string(),
            l.to_string(),
            paper.to_string(),
        ]);
    }
    println!(
        "\npaper shape to check: reports fall exponentially with l; the \
         selected lengths match Table V (small-scale runs may select one \
         shorter, since fewer inputs under-sample rare reports)."
    );
    if let Some(path) = csv_path {
        match std::fs::write(&path, &csv) {
            Ok(()) => println!("wrote Figure 1 series to {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}

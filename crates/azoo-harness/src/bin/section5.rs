//! Regenerates the **Section V** experiment: improving the Snort
//! benchmark's representative behaviour by excluding rules whose patterns
//! are only meaningful inside packet sub-buffers.
//!
//! The paper observes: the raw regex set reports on almost every input
//! byte; dropping rules with Snort-specific regex modifiers cuts the
//! report rate ~5x; additionally dropping `isdataat` rules (including one
//! extreme outlier responsible for over half of all reports) cuts a
//! further ~2x.
//!
//! Usage: `section5 [--scale tiny|small|full] [--threads N] [--prefilter]
//! [--metrics-json PATH]`
//!
//! `--metrics-json` exports the three ruleset scans as feeds in the
//! `azoo-serve-metrics-v1` schema shared with the serve binaries.
//!
//! With `--threads N` the rulesets are scanned by the multi-threaded
//! [`ParallelScanner`]; with `--prefilter` the scan runs behind the
//! literal-prefilter engine (per shard when threaded). The report stream
//! (and thus every number in the table) is identical in every mode.

#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]

use azoo_engines::{CollectSink, Engine, NfaEngine, ParallelScanner, PrefilterEngine};
use azoo_harness::{
    flag_present, fmt_count, scale_from_args, threads_from_args, write_metrics_json, Table,
};
use azoo_serve::MetricsRegistry;
use azoo_workloads::network::{pcap_like, PcapConfig};
use azoo_zoo::snort::{compile_rules, filter_rules, generate_ruleset};
use azoo_zoo::Scale;

fn main() {
    let scale = scale_from_args();
    let args: Vec<String> = std::env::args().collect();
    let threads = threads_from_args(&args);
    let prefilter = flag_present(&args, "--prefilter");
    let (n_rules, input_len) = match scale {
        Scale::Tiny => (400, 1 << 16),
        Scale::Small => (1200, 1 << 18),
        Scale::Full => (3200, 1 << 20),
    };
    println!(
        "== Section V: Snort rule filtering (scale: {scale:?}, {n_rules} rules, \
         {input_len}-byte PCAP-like stream, {threads} scan thread{}{}) ==\n",
        if threads == 1 { "" } else { "s" },
        if prefilter { ", prefilter on" } else { "" }
    );
    let rules = generate_ruleset(0x5210, n_rules);
    let input = pcap_like(
        0xCAFE,
        &PcapConfig {
            len: input_len,
            ..PcapConfig::default()
        },
    );

    let stages: [(&str, bool, bool); 3] = [
        ("all compilable rules", false, false),
        ("- buffer-modifier rules", true, false),
        ("- isdataat rules too", true, true),
    ];
    let table = Table::new(&[
        ("Ruleset", 26),
        ("Rules", 7),
        ("Reports", 12),
        ("Rep/KB", 10),
        ("Drop", 7),
    ]);
    let metrics = MetricsRegistry::new();
    let mut prev_rate = None;
    let mut outlier_share = 0.0;
    for (name, no_buffer, no_isdataat) in stages {
        let kept = filter_rules(&rules, no_buffer, no_isdataat);
        let ruleset = compile_rules(&kept);
        let mut engine: Box<dyn Engine> = if threads > 1 {
            Box::new(
                ParallelScanner::with_prefilter(&ruleset.automaton, threads, prefilter)
                    .expect("valid"),
            )
        } else if prefilter {
            Box::new(PrefilterEngine::new(&ruleset.automaton).expect("valid"))
        } else {
            Box::new(NfaEngine::new(&ruleset.automaton).expect("valid"))
        };
        let mut sink = CollectSink::new();
        let t = std::time::Instant::now();
        engine.scan(&input, &mut sink);
        let nanos = t.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let reports = sink.reports().len();
        metrics.record_feed(input.len() as u64, reports as u64, nanos);
        let rate = reports as f64 / (input.len() as f64 / 1024.0);
        let drop = prev_rate
            .map(|p: f64| format!("{:.1}x", p / rate.max(1e-9)))
            .unwrap_or_else(|| "-".into());
        table.row(&[
            name.into(),
            kept.len().to_string(),
            fmt_count(reports),
            format!("{rate:.1}"),
            drop,
        ]);
        prev_rate = Some(rate);
        if no_buffer && !no_isdataat {
            // Identify the single loudest rule (the paper's outlier,
            // observed after the buffer-modifier exclusion).
            let mut counts = std::collections::HashMap::new();
            for r in sink.reports() {
                *counts.entry(r.code).or_insert(0usize) += 1;
            }
            // Ties go to the lowest code so reruns print the same rule.
            if let Some((&code, &max)) = counts
                .iter()
                .max_by_key(|&(&code, &c)| (c, std::cmp::Reverse(code)))
            {
                outlier_share = max as f64 / reports.max(1) as f64;
                println!(
                    "  (loudest rule: #{code} with {} reports = {:.0}% of all)",
                    fmt_count(max),
                    outlier_share * 100.0
                );
            }
        }
    }
    println!(
        "\npaper shape to check: ~5x drop from excluding buffer-modifier \
         rules, a further ~2x from isdataat rules, and a single outlier \
         rule dominating the unfiltered report stream \
         (ours: {:.0}%).",
        outlier_share * 100.0
    );
    write_metrics_json(&args, &metrics);
}

//! Regenerates **Table II**: Random Forest benchmark variant trade-offs —
//! features, max leaves, automaton states, model accuracy, and relative
//! runtime.
//!
//! Runtime is reported two ways (see DESIGN.md §3.1 on the chain-encoding
//! substitution): the classification stream length (symbols consumed per
//! classification by the automaton) and the end-to-end symbol count
//! including feature ingestion (pool features + stream), both normalized
//! to variant B as the paper does.
//!
//! Usage: `table2 [--scale tiny|small|full]`

#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]

use azoo_harness::{fmt_count, scale_from_args, Table};
use azoo_zoo::random_forest::{build, RandomForestParams, Variant};
use azoo_zoo::Scale;

fn main() {
    let scale = scale_from_args();
    println!("== Table II: Random Forest variant trade-offs (scale: {scale:?}) ==\n");
    let mut rows = Vec::new();
    for variant in [Variant::A, Variant::B, Variant::C] {
        let mut params = RandomForestParams::published(variant);
        match scale {
            Scale::Tiny => {
                params.trees = 5;
                params.train_samples = 500;
                params.test_samples = 100;
            }
            Scale::Small => {
                params.trees = 10;
                params.train_samples = 2000;
                params.test_samples = 200;
            }
            Scale::Full => {}
        }
        let bench = build(&params);
        let fp = variant.params(params.trees, 0);
        rows.push((
            variant,
            fp.feature_pool,
            fp.max_leaves,
            bench.fa.automaton.state_count(),
            bench.accuracy,
            bench.fa.symbols_per_classification,
            fp.feature_pool + bench.fa.symbols_per_classification,
        ));
    }
    let b_stream = rows[1].5 as f64;
    let b_e2e = rows[1].6 as f64;
    let table = Table::new(&[
        ("Variant", 8),
        ("Features", 9),
        ("MaxLeaves", 10),
        ("States", 10),
        ("Accuracy", 9),
        ("Runtime", 8),
        ("Rt(e2e)", 8),
        ("Paper-Rt", 9),
    ]);
    for (variant, features, leaves, states, acc, stream, e2e) in &rows {
        let paper_rt = match variant {
            Variant::A => "1.35x",
            _ => "1.0x",
        };
        table.row(&[
            format!("{variant:?}"),
            features.to_string(),
            leaves.to_string(),
            fmt_count(*states),
            format!("{:.2}%", acc * 100.0),
            format!("{:.2}x", *stream as f64 / b_stream),
            format!("{:.2}x", *e2e as f64 / b_e2e),
            paper_rt.to_owned(),
        ]);
    }
    println!(
        "\npaper trends to check: accuracy A > B (more features), C > B \
         (more leaves); states C ~= 4x B; runtime A > B in proportion to \
         the feature count (our per-tree-segment encoding shows this in \
         the e2e column — see EXPERIMENTS.md)."
    );
}

//! The `azoo-serve` binary: hosts a [`ScanService`] behind the framed
//! protocol on a TCP address or Unix socket.
//!
//! ```text
//! azoo-serve (--unix PATH | --tcp ADDR)
//!            [--max-sessions N]          global open-session cap
//!            [--max-tenant-sessions N]   per-tenant open-session cap
//!            [--max-bytes N]             global bytes-in-flight cap
//!            [--max-tenant-bytes N]      per-tenant bytes-in-flight cap
//!            [--max-buffered-reports N]  per-session undrained-report cap
//!            [--deadline-ms N]           feed deadline (0 = disabled)
//!            [--metrics-json PATH]       also write the final snapshot here
//! ```
//!
//! Clients ship their own compiled databases as `OPEN` artifacts (or
//! reuse a cached key), so the server is ruleset-agnostic. It runs until
//! a client sends `SHUTDOWN` — the graceful-exit path in place of a
//! signal handler — then prints the final `azoo-serve-metrics-v1`
//! snapshot to stdout.

#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]

use std::time::Duration;

use azoo_harness::{arg_value, write_metrics_json};
use azoo_serve::{Listener, ScanService, ServeLimits, Server};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut limits = ServeLimits::default();
    if let Some(n) = parse(&args, "--max-sessions") {
        limits.max_sessions = n as usize;
    }
    if let Some(n) = parse(&args, "--max-tenant-sessions") {
        limits.max_sessions_per_tenant = n as usize;
    }
    if let Some(n) = parse(&args, "--max-bytes") {
        limits.max_bytes_in_flight = n;
    }
    if let Some(n) = parse(&args, "--max-tenant-bytes") {
        limits.max_bytes_in_flight_per_tenant = n;
    }
    if let Some(n) = parse(&args, "--max-buffered-reports") {
        limits.max_buffered_reports = n as usize;
    }
    if let Some(ms) = parse(&args, "--deadline-ms") {
        limits.feed_deadline = (ms > 0).then(|| Duration::from_millis(ms));
    }

    let listener = match (arg_value(&args, "--unix"), arg_value(&args, "--tcp")) {
        (Some(path), None) => Listener::bind_unix(std::path::Path::new(&path))
            .unwrap_or_else(|e| fatal(&format!("cannot bind unix socket {path}: {e}"))),
        (None, Some(addr)) => Listener::bind_tcp(&addr)
            .unwrap_or_else(|e| fatal(&format!("cannot bind tcp address {addr}: {e}"))),
        _ => fatal("exactly one of --unix PATH or --tcp ADDR is required"),
    };

    let svc = ScanService::new(limits);
    let metrics = svc.metrics().clone();
    match (arg_value(&args, "--unix"), listener.local_addr()) {
        (Some(path), _) => eprintln!("azoo-serve: listening on unix socket {path}"),
        (None, Some(addr)) => eprintln!("azoo-serve: listening on tcp {addr}"),
        _ => {}
    }

    let server = Server::new(svc, listener);
    if let Err(e) = server.run() {
        fatal(&format!("accept loop failed: {e}"));
    }

    // Graceful exit (SHUTDOWN frame): print the final snapshot.
    println!("{}", metrics.to_json_string());
    write_metrics_json(&args, &metrics);
}

fn parse(args: &[String], flag: &str) -> Option<u64> {
    arg_value(args, flag).map(|v| {
        v.parse()
            .unwrap_or_else(|_| fatal(&format!("{flag} expects an integer, got {v:?}")))
    })
}

fn fatal(msg: &str) -> ! {
    eprintln!("azoo-serve: {msg}");
    std::process::exit(2);
}

//! Regenerates **Table I**: the full benchmark-suite statistics table —
//! states, edges, edges/node, subgraph count, average subgraph size and
//! standard deviation, compressed states (after prefix merging), the
//! compression factor, and the dynamic active set measured with the
//! VASim-equivalent engine on the standard input.
//!
//! Usage: `table1 [--scale tiny|small|full] [--profile-bytes N] [--threads N] [--prefilter] [--reduce]`
//!
//! The `MB/s` column times an NFA scan over the profile window — with
//! `--threads N` it uses the sharding/chunking [`ParallelScanner`]
//! instead, whose report stream is identical. `--prefilter` routes the
//! timed scan through the literal-prefilter engine (per shard when
//! threaded); reports stay byte-identical. `--reduce` computes the
//! `Compr`/`CmprF` columns with the full reduction tier
//! (quotient + residual fold) instead of prefix merging alone.
//!
//! Paper reference values (states / active set) are printed alongside for
//! the rows the paper reports.

#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]

use azoo_engines::{Engine, NfaEngine, NullSink, ParallelScanner, PrefilterEngine};
use azoo_harness::{
    arg_value, flag_present, fmt_count, scale_from_args, threads_from_args, time_scan, Table,
};
use azoo_passes::merge_prefixes;
use azoo_zoo::{BenchmarkId, Scale};

/// Paper Table I values: (states, active set); `None` where not given.
fn paper_values(id: BenchmarkId) -> (usize, f64) {
    use BenchmarkId::*;
    match id {
        Snort => (202_043, 409.358),
        ClamAv => (2_374_717, 356.532),
        Protomata => (24_103, 712.884),
        Brill => (115_549, 78.2558),
        RandomForestA => (248_000, 862.504),
        RandomForestB => (248_000, 1_043.18),
        RandomForestC => (992_000, 2_334.97),
        Hamming18x3 => (108_000, 1_944.38),
        Hamming22x5 => (192_000, 6_324.49),
        Hamming31x10 => (451_000, 19_617.8),
        Levenshtein19x3 => (109_000, 4_528.69),
        Levenshtein24x5 => (204_000, 18_033.9),
        Levenshtein37x10 => (557_000, 85_866.1),
        SeqMatch6w6p => (51_570, 5_538.98),
        SeqMatch6w6pWc => (53_289, 5_555.98),
        SeqMatch6w10p => (85_950, 5_465.23),
        SeqMatch6w10pWc => (87_669, 5_497.23),
        EntityResolution => (413_352, 57.5615),
        CrisprCasOffinder => (74_000, 191.64),
        CrisprCasOt => (202_000, 953.753),
        Yara => (1_047_528, 579.739),
        YaraWide => (115_246, 123.964),
        FileCarving => (2_663, 15.6547),
        ApPrng4 => (20_000, 4_500.0),
        ApPrng8 => (72_000, 2_500.0),
        // Suite extensions: fuzzy content matching is not a Table I row
        // in the paper; zero marks "no published reference".
        FuzzySnort | FuzzyDna => (0, 0.0),
    }
}

fn main() {
    let scale = scale_from_args();
    let args: Vec<String> = std::env::args().collect();
    let profile_bytes: usize = arg_value(&args, "--profile-bytes")
        .and_then(|v| v.parse().ok())
        .unwrap_or(16_384);
    let threads = threads_from_args(&args);
    let prefilter = flag_present(&args, "--prefilter");
    let reduce = flag_present(&args, "--reduce");
    println!(
        "== Table I: AutomataZoo benchmark statistics (scale: {scale:?}, \
         active set over {profile_bytes} input symbols, {threads} scan \
         thread{}{}{}) ==\n",
        if threads == 1 { "" } else { "s" },
        if prefilter { ", prefilter on" } else { "" },
        if reduce {
            ", compression via reduction tier"
        } else {
            ""
        }
    );
    let table = Table::new(&[
        ("Benchmark", 20),
        ("States", 10),
        ("Edges", 10),
        ("E/N", 5),
        ("Subgr", 7),
        ("Avg", 7),
        ("Std", 6),
        ("Compr", 10),
        ("CmprF", 6),
        ("ActiveSet", 10),
        ("MB/s", 8),
        ("Paper-S", 10),
        ("Paper-AS", 9),
    ]);
    for id in BenchmarkId::ALL {
        let bench = id.build(scale);
        let stats = azoo_core::AutomatonStats::compute(&bench.automaton);
        let (compressed_states, compression) = if reduce {
            let (r, rstats) = azoo_passes::reduce(&bench.automaton);
            (r.state_count(), rstats.compression_factor())
        } else {
            let (m, mstats) = merge_prefixes(&bench.automaton);
            (m.state_count(), mstats.compression_factor())
        };
        let mut engine = NfaEngine::new(&bench.automaton).expect("valid benchmark");
        let mut sink = NullSink::new();
        let window = bench.input.len().min(profile_bytes);
        let profile = engine.scan_profiled(&bench.input[..window], &mut sink);
        let mut scan_engine: Box<dyn Engine> = if threads > 1 {
            Box::new(
                ParallelScanner::with_prefilter(&bench.automaton, threads, prefilter)
                    .expect("valid benchmark"),
            )
        } else if prefilter {
            Box::new(PrefilterEngine::new(&bench.automaton).expect("valid benchmark"))
        } else {
            Box::new(engine)
        };
        let (_, mbps) = time_scan(scan_engine.as_mut(), &bench.input[..window]);
        let (paper_states, paper_as) = paper_values(id);
        let scale_note = if scale == Scale::Full { "" } else { "~" };
        table.row(&[
            id.name().to_owned(),
            fmt_count(stats.states),
            fmt_count(stats.edges),
            format!("{:.2}", stats.edges_per_node),
            fmt_count(stats.subgraphs),
            format!("{:.1}", stats.avg_subgraph_size),
            format!("{:.1}", stats.stddev_subgraph_size),
            fmt_count(compressed_states),
            format!("{compression:.2}"),
            format!("{:.1}", profile.active_set()),
            format!("{mbps:.1}"),
            format!("{scale_note}{}", fmt_count(paper_states)),
            format!("{paper_as:.0}"),
        ]);
    }
    if scale != Scale::Full {
        println!(
            "\nnote: running below full scale; paper columns are full-scale \
             references (prefix ~)."
        );
    }
}

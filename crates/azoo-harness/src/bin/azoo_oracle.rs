//! `azoo-oracle` — run the cross-engine differential oracle.
//!
//! ```text
//! azoo-oracle [--seeds N] [--start S] [--engines a,b,...] [--no-passes]
//!             [--shrink] [--save-bank DIR] [--mutation-check] [--json]
//! ```
//!
//! Exit status is non-zero if any divergence is found, or if the
//! mutation self-check kills fewer than 8 of its 10 planted bugs.

#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]

use std::path::PathBuf;
use std::process::ExitCode;

use azoo_oracle::{
    kill_check, run_range, BugbankEntry, Divergence, EngineKind, Mutation, OracleConfig,
};

struct Args {
    seeds: u64,
    start: u64,
    shrink: bool,
    json: bool,
    mutation_check: bool,
    save_bank: Option<PathBuf>,
    cfg: OracleConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seeds: 100,
        start: 0,
        shrink: false,
        json: false,
        mutation_check: false,
        save_bank: None,
        cfg: OracleConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--seeds" => {
                args.seeds = value("--seeds")?
                    .parse()
                    .map_err(|e| format!("--seeds: {e}"))?;
            }
            "--start" => {
                args.start = value("--start")?
                    .parse()
                    .map_err(|e| format!("--start: {e}"))?;
            }
            "--engines" => {
                args.cfg.engines = EngineKind::parse_list(&value("--engines")?)?;
            }
            "--no-passes" => args.cfg.check_passes = false,
            "--shrink" => args.shrink = true,
            "--json" => args.json = true,
            "--mutation-check" => args.mutation_check = true,
            "--save-bank" => args.save_bank = Some(PathBuf::from(value("--save-bank")?)),
            "--help" | "-h" => {
                println!(
                    "usage: azoo-oracle [--seeds N] [--start S] [--engines a,b,...] \
                     [--no-passes] [--shrink] [--save-bank DIR] [--mutation-check] [--json]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn reports_json(reps: &[(u64, u32)]) -> String {
    let items: Vec<String> = reps.iter().map(|(o, c)| format!("[{o},{c}]")).collect();
    format!("[{}]", items.join(","))
}

fn print_divergence(d: &Divergence, json: bool) {
    if json {
        let chunks = match &d.chunks {
            None => "null".to_string(),
            Some(p) => format!(
                "[{}]",
                p.iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(",")
            ),
        };
        println!(
            "{{\"seed\":{},\"subject\":\"{}\",\"states\":{},\"input_len\":{},\
             \"chunks\":{},\"expected\":{},\"got\":{}}}",
            d.seed,
            d.subject.label(),
            d.automaton.state_count(),
            d.input.len(),
            chunks,
            reports_json(&d.expected),
            reports_json(&d.got),
        );
    } else {
        println!(
            "DIVERGENCE seed {} on {}: {} state(s), {} input byte(s), chunks {:?}",
            d.seed,
            d.subject.label(),
            d.automaton.state_count(),
            d.input.len(),
            d.chunks,
        );
        println!("  expected {:?}", d.expected);
        println!("  got      {:?}", d.got);
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("azoo-oracle: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut failed = false;

    let report = run_range(args.start, args.seeds, &args.cfg, args.shrink);
    if args.json {
        println!(
            "{{\"seeds_run\":{},\"divergences\":{}}}",
            report.seeds_run,
            report.divergences.len()
        );
    } else {
        println!(
            "oracle: {} seed(s) run, {} divergence(s)",
            report.seeds_run,
            report.divergences.len()
        );
    }
    for d in &report.divergences {
        failed = true;
        print_divergence(d, args.json);
        if let Some(bank) = &args.save_bank {
            let name = format!("seed-{}-{}", d.seed, d.subject.label().replace(':', "-"));
            match BugbankEntry::from_divergence(&name, "found by azoo-oracle", d) {
                Some(entry) => {
                    if let Err(e) = entry.save(bank) {
                        eprintln!("azoo-oracle: failed to save {name}: {e}");
                    } else {
                        println!("  saved to {}", bank.join(&name).display());
                    }
                }
                None => eprintln!("azoo-oracle: {name} is not bankable"),
            }
        }
    }

    if args.mutation_check {
        let outcomes = kill_check(500, &args.cfg.gen);
        let killed = outcomes.iter().filter(|o| o.killed_by.is_some()).count();
        for o in &outcomes {
            match o.killed_by {
                Some(seed) => println!("mutation {:<26} killed by seed {seed}", o.mutation.name()),
                None => println!("mutation {:<26} SURVIVED", o.mutation.name()),
            }
        }
        println!(
            "mutation self-check: {killed}/{} killed",
            Mutation::ALL.len()
        );
        if killed < 8 {
            eprintln!("azoo-oracle: mutation self-check below threshold (8)");
            failed = true;
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

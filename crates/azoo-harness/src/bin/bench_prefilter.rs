//! Records the quiescence/prefilter/SIMD before-and-after throughput for
//! the sparse benchmarks (Snort, ClamAV, Brill) as `BENCH_prefilter.json`
//! — the machine-readable companion to `ablation` row 6 and
//! `bench/benches/prefilter.rs`.
//!
//! Up to five single-threaded engines per benchmark, identical report
//! streams (asserted): the baseline NFA with the quiescent skip forced
//! off, the quiescence-aware NFA, the literal-prefilter engine with its
//! trigger pinned scalar (Aho–Corasick), the same engine with the
//! ambient vectorized trigger (Teddy where the literal set fits — the
//! `simd_prefilter` column, `null` when the process runs scalar), and
//! the Sheng shuffle DFA (`null` when the machine exceeds its 16-state
//! budget, as all three suites do). Each row also records the portfolio
//! tier [`select_session_engine_explained`] would pick and its reason,
//! routed through [`ReportStats::set_engine_tier`], so near-parity rows
//! explain themselves.
//!
//! Usage: `bench-prefilter [--scale tiny|small|full] [--out PATH]
//! [--simd|--no-simd]`
//!
//! `--no-simd` forces `AZOO_FORCE_SCALAR=1` for the whole process before
//! the dispatch level is first probed (it is cached per process), so
//! every kernel runs its scalar twin; `--simd` (the default) keeps
//! runtime dispatch.

#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]

use azoo_engines::{
    select_session_engine_explained, CollectSink, CountSink, Engine, EngineChoice, NfaEngine,
    PrefilterEngine, ReportStats, ShengEngine,
};
use azoo_harness::{arg_value, scale_from_args, time_scan_with};
use azoo_zoo::BenchmarkId;

/// Best-of-3 scan time in seconds plus the (stable) report count.
fn best_of3(engine: &mut dyn Engine, input: &[u8]) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut count = 0u64;
    for run in 0..3 {
        let mut sink = CountSink::new();
        let secs = time_scan_with(engine, input, &mut sink);
        best = best.min(secs);
        if run > 0 {
            assert_eq!(count, sink.count(), "nondeterministic report count");
        }
        count = sink.count();
    }
    (best, count)
}

fn tier_name(choice: EngineChoice) -> &'static str {
    match choice {
        EngineChoice::BitParallel => "bit-parallel",
        EngineChoice::LazyDfa => "lazy-dfa",
        EngineChoice::Sheng => "sheng",
        EngineChoice::Prefilter => "prefilter",
        EngineChoice::Nfa => "nfa",
        EngineChoice::Parallel { .. } => "parallel",
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let no_simd = args.iter().any(|a| a == "--no-simd");
    if no_simd && args.iter().any(|a| a == "--simd") {
        eprintln!("--simd and --no-simd are mutually exclusive");
        std::process::exit(2);
    }
    if no_simd {
        // Must precede the first azoo_simd::level() call anywhere in the
        // process: the dispatch level is probed once and cached.
        std::env::set_var("AZOO_FORCE_SCALAR", "1");
    }
    let level = azoo_simd::level();
    let simd_on = level > azoo_simd::SimdLevel::Scalar;
    let scale = scale_from_args();
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_prefilter.json".into());
    let mut rows = Vec::new();
    for id in [BenchmarkId::Snort, BenchmarkId::ClamAv, BenchmarkId::Brill] {
        let bench = id.build(scale);
        let window = bench.input.len().min(1 << 18);
        let input = &bench.input[..window];

        // Reference stream (also the warmup) and the tier annotation.
        let mut base = NfaEngine::new(&bench.automaton).expect("valid");
        base.set_quiescent_skip(false);
        let mut ref_sink = CollectSink::new();
        base.scan(input, &mut ref_sink);
        let mut stats = ReportStats::compute(ref_sink.reports(), input.len() as u64);
        let (choice, reason, _) = select_session_engine_explained(&bench.automaton).expect("valid");
        stats.set_engine_tier(tier_name(choice), reason);

        let (base_secs, base_count) = best_of3(&mut base, input);
        assert_eq!(base_count, stats.total(), "{}: baseline drifted", id.name());

        let mut skip = NfaEngine::new(&bench.automaton).expect("valid");
        let (skip_secs, skip_count) = best_of3(&mut skip, input);
        assert_eq!(base_count, skip_count, "{}: skip diverged", id.name());

        // Scalar-trigger prefilter: the Aho–Corasick path, regardless of
        // host SIMD (inner kernels still follow the process level).
        let mut pf = PrefilterEngine::with_scalar_trigger(&bench.automaton).expect("valid");
        let (pf_secs, pf_count) = best_of3(&mut pf, input);
        assert_eq!(base_count, pf_count, "{}: prefilter diverged", id.name());

        // Ambient-trigger prefilter: only meaningful when dispatch found
        // a vector tier.
        let mut simd_pf = PrefilterEngine::new(&bench.automaton).expect("valid");
        let simd_trigger = simd_pf.trigger_kind();
        let simd_pf_secs = if simd_on {
            let (secs, count) = best_of3(&mut simd_pf, input);
            assert_eq!(base_count, count, "{}: simd prefilter diverged", id.name());
            Some(secs)
        } else {
            None
        };

        let sheng_secs = match ShengEngine::new(&bench.automaton) {
            Ok(mut sheng) => {
                let (secs, count) = best_of3(&mut sheng, input);
                assert_eq!(base_count, count, "{}: sheng diverged", id.name());
                Some(secs)
            }
            Err(_) => None,
        };

        let mbps = |secs: f64| input.len() as f64 / secs / 1e6;
        let opt_mbps = |secs: Option<f64>| match secs {
            Some(s) => format!("{:.3}", mbps(s)),
            None => "null".into(),
        };
        let opt_speedup = |secs: Option<f64>| match secs {
            Some(s) => format!("{:.2}", base_secs / s),
            None => "null".into(),
        };
        rows.push(format!(
            concat!(
                "    {{\n",
                "      \"benchmark\": \"{}\",\n",
                "      \"input_bytes\": {},\n",
                "      \"reports\": {},\n",
                "      \"prefilter_coverage\": {:.4},\n",
                "      \"selected_tier\": \"{}\",\n",
                "      \"tier_reason\": \"{}\",\n",
                "      \"simd_trigger\": \"{}\",\n",
                "      \"baseline_mbps\": {:.3},\n",
                "      \"quiescent_skip_mbps\": {:.3},\n",
                "      \"prefilter_mbps\": {:.3},\n",
                "      \"simd_prefilter_mbps\": {},\n",
                "      \"sheng_mbps\": {},\n",
                "      \"skip_speedup\": {:.2},\n",
                "      \"prefilter_speedup\": {:.2},\n",
                "      \"simd_prefilter_speedup\": {}\n",
                "    }}"
            ),
            id.name(),
            input.len(),
            base_count,
            pf.coverage(),
            stats.engine_tier().unwrap_or("?"),
            stats.tier_reason().unwrap_or("?"),
            simd_trigger,
            mbps(base_secs),
            mbps(skip_secs),
            mbps(pf_secs),
            opt_mbps(simd_pf_secs),
            opt_mbps(sheng_secs),
            base_secs / skip_secs,
            base_secs / pf_secs,
            opt_speedup(simd_pf_secs),
        ));
        eprintln!(
            "{}: baseline {:.3} MB/s, skip {:.3} MB/s, prefilter {:.3} MB/s, simd {} MB/s ({} trigger), sheng {} MB/s [{}]",
            id.name(),
            mbps(base_secs),
            mbps(skip_secs),
            mbps(pf_secs),
            opt_mbps(simd_pf_secs),
            simd_trigger,
            opt_mbps(sheng_secs),
            stats.tier_reason().unwrap_or("?"),
        );
    }
    let scale_name = format!("{scale:?}").to_lowercase();
    let json = format!(
        concat!(
            "{{\n",
            "  \"artifact\": \"quiescent skip + literal prefilter + SIMD throughput (DESIGN.md 6d, 6i)\",\n",
            "  \"version\": 2,\n",
            "  \"command\": \"cargo run --release -p azoo-harness --bin bench-prefilter -- --scale {}{}\",\n",
            "  \"scale\": \"{}\",\n",
            "  \"threads\": 1,\n",
            "  \"simd\": {},\n",
            "  \"simd_level\": \"{}\",\n",
            "  \"rows\": [\n{}\n  ]\n",
            "}}\n"
        ),
        scale_name,
        if no_simd { " --no-simd" } else { "" },
        scale_name,
        simd_on,
        format!("{level:?}").to_lowercase(),
        rows.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("writable output path");
    eprintln!("wrote {out_path}");
}
